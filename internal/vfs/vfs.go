// Package vfs is the filesystem seam of the durability layer. The
// store and the predictd fit-job journal reach the disk only through
// the FS interface, so their fsync/rename/truncate ordering can be
// exercised under injected failures: in production the seam is the
// thin OS passthrough below, in crash tests it is the errfs of
// internal/faultinject, which scripts short writes, ENOSPC, failed
// fsyncs, and crash points that freeze the directory state.
//
// The interface is deliberately narrow — exactly the operations the
// WAL + snapshot store performs — rather than a general filesystem
// abstraction; a fault model is only trustworthy if every mutation of
// the guarded directory flows through it.
package vfs

import (
	"io"
	"os"
)

// FS is the set of filesystem operations the durable store performs.
// Implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates a directory (and parents) like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file for writing/appending like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the entry names of a directory, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(name string) error
	// Truncate resizes a file by path like os.Truncate.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making a just-renamed entry durable.
	SyncDir(dir string) error
}

// File is an open writable file handle.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close closes the handle.
	Close() error
	// Truncate resizes the open file.
	Truncate(size int64) error
	// Seek repositions the write offset.
	Seek(offset int64, whence int) (int64, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
