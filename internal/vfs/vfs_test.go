package vfs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises every FS method against a temp directory —
// the passthrough must behave exactly like the os package it wraps,
// since crash tests compare errfs behaviour against it.
func TestOSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "d")
	if err := OS.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	name := filepath.Join(dir, "f")
	f, err := OS.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := OS.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS.Truncate(name, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ = OS.ReadFile(name); string(got) != "he" {
		t.Fatalf("after Truncate: %q", got)
	}

	renamed := filepath.Join(dir, "g")
	if err := OS.Rename(name, renamed); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	names, err := OS.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := OS.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(renamed); !os.IsNotExist(err) {
		t.Fatalf("removed file still readable: %v", err)
	}
}
