package gate

import (
	"strings"
	"testing"
)

var kernelRules = []Rule{
	{Metric: "ns_per_op", Worse: HigherIsWorse, Tolerance: 0.10},
	{Metric: "allocs_per_op", Worse: HigherIsWorse, Tolerance: 0.10, Slack: 0.5},
}

func TestCompareWithinBandPasses(t *testing.T) {
	base := map[string]Row{"BenchA": {"ns_per_op": 1000, "allocs_per_op": 10}}
	cur := map[string]Row{"BenchA": {"ns_per_op": 1090, "allocs_per_op": 10}}
	if fails := Compare(base, cur, kernelRules); len(fails) != 0 {
		t.Fatalf("within-band run failed the gate: %v", fails)
	}
}

func TestCompareHigherIsWorse(t *testing.T) {
	base := map[string]Row{"BenchA": {"ns_per_op": 1000}}
	cur := map[string]Row{"BenchA": {"ns_per_op": 1111}}
	fails := Compare(base, cur, kernelRules)
	if len(fails) != 1 {
		t.Fatalf("11%% ns/op regression not caught: %v", fails)
	}
	if fails[0].Row != "BenchA" || fails[0].Metric != "ns_per_op" {
		t.Errorf("failure misattributed: %+v", fails[0])
	}
	if !strings.Contains(fails[0].String(), "ns_per_op") {
		t.Errorf("failure text missing metric: %s", fails[0])
	}
	// improvement in a higher-is-worse metric never fails
	cur["BenchA"]["ns_per_op"] = 10
	if fails := Compare(base, cur, kernelRules); len(fails) != 0 {
		t.Fatalf("improvement failed the gate: %v", fails)
	}
}

func TestCompareLowerIsWorse(t *testing.T) {
	rules := []Rule{{Metric: "qps", Worse: LowerIsWorse, Tolerance: 0.10}}
	base := map[string]Row{"scenario": {"qps": 100}}
	if fails := Compare(base, map[string]Row{"scenario": {"qps": 91}}, rules); len(fails) != 0 {
		t.Fatalf("9%% QPS drop inside the band failed: %v", fails)
	}
	fails := Compare(base, map[string]Row{"scenario": {"qps": 89}}, rules)
	if len(fails) != 1 {
		t.Fatalf("11%% QPS drop not caught: %v", fails)
	}
	// higher QPS is an improvement
	if fails := Compare(base, map[string]Row{"scenario": {"qps": 500}}, rules); len(fails) != 0 {
		t.Fatalf("QPS improvement failed the gate: %v", fails)
	}
}

func TestCompareAbsoluteSlack(t *testing.T) {
	// 10 → 11 allocs is +10% exactly at the band, plus 0.5 slack: passes.
	// 2 → 3 allocs is +50%: still passes on slack. 2 → 4 fails.
	base := map[string]Row{"B": {"allocs_per_op": 2}}
	if fails := Compare(base, map[string]Row{"B": {"allocs_per_op": 2.7}}, kernelRules); len(fails) != 0 {
		t.Fatalf("slack not applied: %v", fails)
	}
	if fails := Compare(base, map[string]Row{"B": {"allocs_per_op": 4}}, kernelRules); len(fails) != 1 {
		t.Fatalf("doubling allocs not caught: %v", fails)
	}
}

func TestCompareMissingRowFails(t *testing.T) {
	base := map[string]Row{"gone": {"ns_per_op": 1}}
	fails := Compare(base, map[string]Row{}, kernelRules)
	if len(fails) != 1 || !strings.Contains(fails[0].String(), "not in current run") {
		t.Fatalf("deleted row not caught: %v", fails)
	}
}

func TestCompareNewRowPasses(t *testing.T) {
	cur := map[string]Row{"brand-new": {"ns_per_op": 1e9}}
	if fails := Compare(map[string]Row{}, cur, kernelRules); len(fails) != 0 {
		t.Fatalf("row absent from baseline failed the gate: %v", fails)
	}
}

func TestCompareMissingMetric(t *testing.T) {
	base := map[string]Row{"r": {"rss_bytes": 100}}
	rules := []Rule{{Metric: "rss_bytes", Worse: HigherIsWorse, Tolerance: 0.10}}
	fails := Compare(base, map[string]Row{"r": {}}, rules)
	if len(fails) != 1 {
		t.Fatalf("dropped mandatory metric not caught: %v", fails)
	}
	rules[0].Optional = true
	if fails := Compare(base, map[string]Row{"r": {}}, rules); len(fails) != 0 {
		t.Fatalf("optional metric absence failed the gate: %v", fails)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := map[string]Row{
		"b": {"ns_per_op": 1}, "a": {"ns_per_op": 1}, "c": {"ns_per_op": 1},
	}
	fails := Compare(base, map[string]Row{}, kernelRules)
	if len(fails) != 3 || fails[0].Row != "a" || fails[1].Row != "b" || fails[2].Row != "c" {
		t.Fatalf("failures not in sorted row order: %v", fails)
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		want, got, band float64
		ok              bool
	}{
		{100, 100, 0, true},
		{100, 119, 0.20, true},
		{100, 121, 0.20, false},
		{100, 81, 0.20, true},
		{100, 79, 0.20, false},
		{0, 0, 0.10, true},
		{0, 1, 0.10, false},
	}
	for _, c := range cases {
		if got := Within(c.want, c.got, c.band); got != c.ok {
			t.Errorf("Within(%v, %v, %v) = %v, want %v", c.want, c.got, c.band, got, c.ok)
		}
	}
}
