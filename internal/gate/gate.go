// Package gate is the baseline-compare engine shared by the kernel
// microbenchmark gate (cmd/benchgate, BENCH_kernels.json) and the system
// scenario gate (internal/scenario, BENCH_system.json): named rows of
// named metrics, compared against a committed baseline under per-metric
// rules, so "did it regress" is answered the same way whether the row is
// a Go benchmark or a whole-cluster macro-run.
//
// The engine is deliberately direction-aware: ns/op and p99 latency
// regress upward, QPS regresses downward. A Rule declares which, plus a
// relative tolerance and an optional absolute slack (allocs/op uses 0.5
// so a flat +0 alloc noise band never trips the relative check).
package gate

import (
	"fmt"
	"sort"
)

// Direction states which way a metric gets worse.
type Direction int

const (
	// HigherIsWorse gates metrics like ns/op, p99 latency, or RSS: the
	// current value may not exceed baseline·(1+tolerance)+slack.
	HigherIsWorse Direction = iota
	// LowerIsWorse gates metrics like QPS or hit rate: the current value
	// may not fall below baseline·(1-tolerance)-slack.
	LowerIsWorse
)

// Rule gates one metric across all rows.
type Rule struct {
	// Metric is the key into each row's measurement map.
	Metric string
	// Worse is the regression direction.
	Worse Direction
	// Tolerance is the relative band, e.g. 0.10 for ±10%.
	Tolerance float64
	// Slack is an absolute allowance added on top of the relative band.
	Slack float64
	// Optional marks a metric that may be absent from a row (e.g. a
	// scenario that declares no RSS budget); absent values are skipped
	// instead of failed.
	Optional bool
}

// Row is one named set of measurements (a benchmark, an endpoint, or a
// whole scenario aggregate).
type Row map[string]float64

// Failure describes one gated regression.
type Failure struct {
	Row    string
	Metric string
	// Base and Cur are the compared values; for a missing row or metric
	// both are zero and Reason carries the explanation.
	Base, Cur float64
	Reason    string
}

func (f Failure) String() string {
	if f.Reason != "" {
		return fmt.Sprintf("%s: %s", f.Row, f.Reason)
	}
	return ""
}

// failf builds a value-comparison failure with the standard phrasing.
func failf(row string, r Rule, base, cur float64) Failure {
	verb, sign := "regressed to", "+"
	delta := 0.0
	if base != 0 {
		delta = 100 * (cur/base - 1)
	}
	if r.Worse == LowerIsWorse {
		sign = ""
	}
	return Failure{
		Row: row, Metric: r.Metric, Base: base, Cur: cur,
		Reason: fmt.Sprintf("%s %s %.4g vs baseline %.4g (%s%.1f%%, limit %.0f%%)",
			r.Metric, verb, cur, base, sign, delta, r.Tolerance*100),
	}
}

// Compare gates every baseline row against the current run under the
// rules. A row present in the baseline but absent from the current run is
// itself a failure: a silently deleted benchmark (or endpoint) ungates
// whatever it measured. Rows only in the current run pass — new
// measurements enter the gate when the baseline is next rewritten.
// Failures come back in sorted row order so output is deterministic.
func Compare(base, cur map[string]Row, rules []Rule) []Failure {
	var failures []Failure
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			failures = append(failures, Failure{
				Row:    name,
				Reason: "present in baseline but not in current run",
			})
			continue
		}
		for _, r := range rules {
			bv, bok := b[r.Metric]
			cv, cok := c[r.Metric]
			if !bok {
				// the baseline never recorded this metric for this row;
				// nothing to gate against
				continue
			}
			if !cok {
				if !r.Optional {
					failures = append(failures, Failure{
						Row: name, Metric: r.Metric,
						Reason: fmt.Sprintf("metric %s present in baseline but not in current run", r.Metric),
					})
				}
				continue
			}
			if exceeds(r, bv, cv) {
				failures = append(failures, failf(name, r, bv, cv))
			}
		}
	}
	return failures
}

// exceeds reports whether cur regressed past the rule's band around base.
func exceeds(r Rule, base, cur float64) bool {
	switch r.Worse {
	case LowerIsWorse:
		return cur < base*(1-r.Tolerance)-r.Slack
	default:
		return cur > base*(1+r.Tolerance)+r.Slack
	}
}

// Within reports whether got lands inside the ±band relative error band
// around want — the conformance primitive the capacity model uses to
// check a prediction against a measured run. A zero want with a nonzero
// got never conforms (the relative error is unbounded).
func Within(want, got, band float64) bool {
	if want == got {
		return true
	}
	if want == 0 {
		return false
	}
	err := (got - want) / want
	if err < 0 {
		err = -err
	}
	return err <= band
}
