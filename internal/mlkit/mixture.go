package mlkit

import (
	"bytes"
	"encoding/gob"
	"math"
)

// MixtureRegression is an EM-fitted mixture of K linear regressions with a
// feature-space gate: each component owns a linear model and a Gaussian
// responsibility centre in feature space; prediction soft-weights the
// component models by the gate. This is the mixture-model device Ganguli
// 2023 uses to absorb the sparse/dense heterogeneity that defeats single
// global fits on Hurricane (paper §6).
type MixtureRegression struct {
	// K is the component count (default 3).
	K int
	// Iters is the EM iteration budget (default 30).
	Iters int
	// Seed makes initialization deterministic (default 1).
	Seed uint64

	Components []MixtureComponent
}

// MixtureComponent is one expert: a linear model plus its feature-space
// gate parameters.
type MixtureComponent struct {
	Coef   []float64 // linear model, [intercept, w...]
	Center []float64 // gate mean in feature space
	Radius float64   // gate scale (isotropic std)
	Weight float64   // mixing proportion
}

func (m *MixtureRegression) k() int {
	if m.K <= 0 {
		return 3
	}
	return m.K
}

func (m *MixtureRegression) iters() int {
	if m.Iters <= 0 {
		return 30
	}
	return m.Iters
}

// Fit implements Model with hard-assignment EM (k-means style on joint
// residual + feature distance), which is robust at the small sample sizes
// the bench produces.
func (m *MixtureRegression) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrBadInput
	}
	k := m.k()
	if len(x) < 2*k {
		k = 1 // not enough data to support a mixture
	}
	n := len(x)
	nf := len(x[0])
	rng := &splitRNG{state: m.Seed | 1}

	// init: k distinct random rows as centres
	assign := make([]int, n)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = append([]float64(nil), x[rng.intn(n)]...)
	}
	scale := featureScales(x)

	comps := make([]MixtureComponent, k)
	for iter := 0; iter < m.iters(); iter++ {
		// E: assign rows to nearest centre (scaled distance)
		changed := false
		for i := range x {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				d := scaledDist(x[i], centers[c], scale)
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// M: refit every component
		for c := 0; c < k; c++ {
			var cx [][]float64
			var cy []float64
			for i := range x {
				if assign[i] == c {
					cx = append(cx, x[i])
					cy = append(cy, y[i])
				}
			}
			if len(cx) == 0 {
				// dead component: reseed on the worst-fit row
				centers[c] = append([]float64(nil), x[rng.intn(n)]...)
				continue
			}
			lin := &LinearRegression{Lambda: 1e-6}
			if err := lin.Fit(cx, cy); err != nil {
				return err
			}
			center := make([]float64, nf)
			for _, row := range cx {
				for f := range center {
					center[f] += row[f]
				}
			}
			for f := range center {
				center[f] /= float64(len(cx))
			}
			var radius float64
			for _, row := range cx {
				radius += scaledDist(row, center, scale)
			}
			radius = radius/float64(len(cx)) + 1e-9
			comps[c] = MixtureComponent{
				Coef:   lin.Coef,
				Center: center,
				Radius: radius,
				Weight: float64(len(cx)) / float64(n),
			}
			centers[c] = center
		}
		if !changed && iter > 0 {
			break
		}
	}
	// drop components that never fit
	m.Components = m.Components[:0]
	for _, c := range comps {
		if c.Coef != nil {
			m.Components = append(m.Components, c)
		}
	}
	if len(m.Components) == 0 {
		return ErrSingular
	}
	return nil
}

// featureScales returns per-feature standard deviations for distance
// normalization (1 for constant features).
func featureScales(x [][]float64) []float64 {
	nf := len(x[0])
	mean := make([]float64, nf)
	for _, row := range x {
		for f, v := range row {
			mean[f] += v
		}
	}
	for f := range mean {
		mean[f] /= float64(len(x))
	}
	s := make([]float64, nf)
	for _, row := range x {
		for f, v := range row {
			d := v - mean[f]
			s[f] += d * d
		}
	}
	for f := range s {
		s[f] = math.Sqrt(s[f] / float64(len(x)))
		if s[f] == 0 {
			s[f] = 1
		}
	}
	return s
}

func scaledDist(a, b, scale []float64) float64 {
	d := 0.0
	for f := range a {
		diff := (a[f] - b[f]) / scale[f]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// Predict implements Model: gate-weighted expert average.
func (m *MixtureRegression) Predict(x []float64) (float64, error) {
	if len(m.Components) == 0 {
		return 0, ErrNotFitted
	}
	scale := make([]float64, len(x))
	for i := range scale {
		scale[i] = 1
	}
	var num, den float64
	for _, c := range m.Components {
		if len(x) != len(c.Center) {
			return 0, ErrBadInput
		}
		d := scaledDist(x, c.Center, scale)
		w := c.Weight * math.Exp(-d*d/(2*c.Radius*c.Radius+1e-12))
		lin := &LinearRegression{Coef: c.Coef}
		v, err := lin.Predict(x)
		if err != nil {
			return 0, err
		}
		num += w * v
		den += w
	}
	if den < 1e-300 {
		// far from every gate: fall back to the heaviest component
		best := 0
		for i := range m.Components {
			if m.Components[i].Weight > m.Components[best].Weight {
				best = i
			}
		}
		lin := &LinearRegression{Coef: m.Components[best].Coef}
		return lin.Predict(x)
	}
	return num / den, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *MixtureRegression) MarshalBinary() ([]byte, error) {
	// encode through an alias type so gob does not re-enter this method
	type plain MixtureRegression
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*plain)(m))
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *MixtureRegression) UnmarshalBinary(b []byte) error {
	type plain MixtureRegression
	return gob.NewDecoder(bytes.NewReader(b)).Decode((*plain)(m))
}
