package mlkit

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// TreeNode is one node of a CART regression tree. Exported fields keep the
// structure gob-serializable for predictor state save/restore.
type TreeNode struct {
	// Leaf nodes predict Value.
	Leaf  bool
	Value float64
	// Internal nodes route on Feature < Threshold.
	Feature   int
	Threshold float64
	Left      *TreeNode
	Right     *TreeNode
}

// DecisionTree is a CART regression tree grown by variance reduction.
type DecisionTree struct {
	// MaxDepth bounds tree depth (default 8).
	MaxDepth int
	// MinSamples is the minimum samples to split a node (default 4).
	MinSamples int
	// Features restricts each split to a random subset of this many
	// features (0 = all); used by RandomForest. The subset is drawn with
	// the tree's rng.
	Features int

	Root *TreeNode

	rng *splitRNG
}

// splitRNG is a tiny deterministic generator so tree growth is
// reproducible without importing math/rand state into gob payloads.
type splitRNG struct{ state uint64 }

func (r *splitRNG) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *splitRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (t *DecisionTree) maxDepth() int {
	if t.MaxDepth <= 0 {
		return 8
	}
	return t.MaxDepth
}

func (t *DecisionTree) minSamples() int {
	if t.MinSamples <= 0 {
		return 4
	}
	return t.MinSamples
}

// Fit implements Model.
func (t *DecisionTree) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrBadInput
	}
	if t.rng == nil {
		t.rng = &splitRNG{state: 0x9e3779b97f4a7c15}
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.grow(x, y, idx, 0)
	return nil
}

// SeedRNG sets the deterministic split RNG (used by RandomForest to give
// each tree different feature subsets).
func (t *DecisionTree) SeedRNG(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	t.rng = &splitRNG{state: seed}
}

func mean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *DecisionTree) grow(x [][]float64, y []float64, idx []int, depth int) *TreeNode {
	if depth >= t.maxDepth() || len(idx) < t.minSamples() {
		return &TreeNode{Leaf: true, Value: mean(y, idx)}
	}
	parentSSE := sse(y, idx)
	if parentSSE <= 1e-12 {
		return &TreeNode{Leaf: true, Value: mean(y, idx)}
	}
	nf := len(x[0])
	candidates := make([]int, nf)
	for i := range candidates {
		candidates[i] = i
	}
	if t.Features > 0 && t.Features < nf {
		// Fisher-Yates prefix with the deterministic rng
		for i := 0; i < t.Features; i++ {
			j := i + t.rng.intn(nf-i)
			candidates[i], candidates[j] = candidates[j], candidates[i]
		}
		candidates = candidates[:t.Features]
	}

	bestFeature, bestThreshold := -1, 0.0
	bestScore := parentSSE
	sorted := make([]int, len(idx))
	for _, f := range candidates {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })
		// incremental split scan: maintain left/right sums
		var lSum, lSq float64
		rSum, rSq := 0.0, 0.0
		for _, i := range sorted {
			rSum += y[i]
			rSq += y[i] * y[i]
		}
		nL := 0
		nR := len(sorted)
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			lSum += y[i]
			lSq += y[i] * y[i]
			rSum -= y[i]
			rSq -= y[i] * y[i]
			nL++
			nR--
			if x[sorted[k]][f] == x[sorted[k+1]][f] {
				continue // cannot split between equal values
			}
			score := (lSq - lSum*lSum/float64(nL)) + (rSq - rSum*rSum/float64(nR))
			if score < bestScore-1e-12 {
				bestScore = score
				bestFeature = f
				bestThreshold = (x[sorted[k]][f] + x[sorted[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &TreeNode{Leaf: true, Value: mean(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeature] < bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &TreeNode{Leaf: true, Value: mean(y, idx)}
	}
	return &TreeNode{
		Feature:   bestFeature,
		Threshold: bestThreshold,
		Left:      t.grow(x, y, left, depth+1),
		Right:     t.grow(x, y, right, depth+1),
	}
}

// Predict implements Model.
func (t *DecisionTree) Predict(x []float64) (float64, error) {
	if t.Root == nil {
		return 0, ErrNotFitted
	}
	n := t.Root
	for !n.Leaf {
		if n.Feature >= len(x) {
			return 0, ErrBadInput
		}
		if x[n.Feature] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *DecisionTree) MarshalBinary() ([]byte, error) {
	// encode through an alias type so gob does not re-enter this method
	type plain DecisionTree
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*plain)(t))
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *DecisionTree) UnmarshalBinary(b []byte) error {
	type plain DecisionTree
	return gob.NewDecoder(bytes.NewReader(b)).Decode((*plain)(t))
}
