package mlkit

import (
	"bytes"
	"encoding"
	"encoding/gob"
	"math"
	"sort"
)

// Conformal wraps any fitted Model with split-conformal prediction
// intervals: a held-out calibration set's absolute residuals give a
// distribution-free quantile bound on new-point error — the statistical
// guarantee device of Ganguli 2023 that lets the HDF5 parallel-write use
// case forecast its misprediction rate (paper §2.1).
type Conformal struct {
	// Base is the underlying point predictor.
	Base Model
	// CalibrationFraction of the training data is held out (default 0.25).
	CalibrationFraction float64

	residuals []float64 // sorted calibration |errors|
}

// Fit trains Base on a split of the data and calibrates on the rest.
func (c *Conformal) Fit(x [][]float64, y []float64) error {
	if len(x) < 4 || len(x) != len(y) {
		return ErrBadInput
	}
	frac := c.CalibrationFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	nCal := int(float64(len(x)) * frac)
	if nCal < 2 {
		nCal = 2
	}
	// deterministic interleaved split so both halves span the data
	var trainX, calX [][]float64
	var trainY, calY []float64
	every := len(x) / nCal
	if every < 1 {
		every = 1
	}
	for i := range x {
		if i%every == 0 && len(calX) < nCal {
			calX = append(calX, x[i])
			calY = append(calY, y[i])
		} else {
			trainX = append(trainX, x[i])
			trainY = append(trainY, y[i])
		}
	}
	if err := c.Base.Fit(trainX, trainY); err != nil {
		return err
	}
	c.residuals = c.residuals[:0]
	for i := range calX {
		pred, err := c.Base.Predict(calX[i])
		if err != nil {
			return err
		}
		c.residuals = append(c.residuals, math.Abs(pred-calY[i]))
	}
	sort.Float64s(c.residuals)
	return nil
}

// Predict implements Model (the point prediction).
func (c *Conformal) Predict(x []float64) (float64, error) {
	return c.Base.Predict(x)
}

// PredictInterval returns the point prediction with a symmetric interval
// that covers the truth with probability ≥ 1-alpha under exchangeability.
func (c *Conformal) PredictInterval(x []float64, alpha float64) (pred, lo, hi float64, err error) {
	pred, err = c.Base.Predict(x)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(c.residuals) == 0 {
		return pred, pred, pred, ErrNotFitted
	}
	if alpha <= 0 {
		alpha = 0.1
	}
	// conformal quantile: ceil((n+1)(1-alpha))/n
	n := len(c.residuals)
	rank := int(math.Ceil(float64(n+1) * (1 - alpha)))
	if rank > n {
		rank = n
	}
	q := c.residuals[rank-1]
	return pred, pred - q, pred + q, nil
}

// conformalState is the serialized form of a Conformal wrapper.
type conformalState struct {
	BaseBytes []byte
	Residuals []float64
}

// MarshalBinary implements encoding.BinaryMarshaler: the base model must
// itself be binary-marshalable.
func (c *Conformal) MarshalBinary() ([]byte, error) {
	bm, ok := c.Base.(encoding.BinaryMarshaler)
	if !ok {
		return nil, ErrBadInput
	}
	baseBytes, err := bm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(conformalState{BaseBytes: baseBytes, Residuals: c.residuals})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: Base must be set
// to a zero value of the same model type before calling.
func (c *Conformal) UnmarshalBinary(b []byte) error {
	bu, ok := c.Base.(encoding.BinaryUnmarshaler)
	if !ok {
		return ErrBadInput
	}
	var st conformalState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if err := bu.UnmarshalBinary(st.BaseBytes); err != nil {
		return err
	}
	c.residuals = st.Residuals
	return nil
}
