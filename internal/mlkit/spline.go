package mlkit

import (
	"bytes"
	"encoding/gob"
	"math"
	"sort"
)

// SplineRegression is an additive natural-cubic-spline regression: each
// feature is expanded into a natural cubic spline basis with knots at
// empirical quantiles, and the expanded design is fitted with ridge least
// squares. This is the "more sophisticated cubic spline regression" that
// Underwood 2023 swaps in for Krasowska's plain linear fit.
type SplineRegression struct {
	// Knots per feature (default 5 when zero).
	Knots int
	// Lambda is the ridge penalty on the expanded design (default 1e-6).
	Lambda float64

	// fitted state
	KnotPos [][]float64 // per feature, sorted interior knot positions
	Coef    []float64   // linear model over the expanded basis
}

func (m *SplineRegression) knots() int {
	if m.Knots <= 0 {
		return 5
	}
	return m.Knots
}

func (m *SplineRegression) lambda() float64 {
	if m.Lambda <= 0 {
		return 1e-6
	}
	return m.Lambda
}

// naturalBasis evaluates the natural cubic spline basis for value v with
// the given knots: v itself plus the natural-spline truncated-cubic terms
// (the d_k(v) - d_{K-1}(v) construction from Hastie et al.), giving K-1
// basis functions total for K knots.
func naturalBasis(v float64, knots []float64) []float64 {
	k := len(knots)
	if k < 3 {
		return []float64{v}
	}
	out := make([]float64, 0, k-1)
	out = append(out, v)
	last := knots[k-1]
	prev := knots[k-2]
	d := func(pos float64) float64 {
		num := cube(v-pos) - cube(v-last)
		return num / (last - pos)
	}
	dk := d(prev)
	for i := 0; i < k-2; i++ {
		out = append(out, d(knots[i])-dk)
	}
	return out
}

func cube(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * x * x
}

// expand maps a raw feature vector through the per-feature spline bases.
func (m *SplineRegression) expand(x []float64) []float64 {
	var out []float64
	for f, v := range x {
		out = append(out, naturalBasis(v, m.KnotPos[f])...)
	}
	return out
}

// Fit implements Model.
func (m *SplineRegression) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrBadInput
	}
	nf := len(x[0])
	m.KnotPos = make([][]float64, nf)
	for f := 0; f < nf; f++ {
		vals := make([]float64, len(x))
		for r := range x {
			if len(x[r]) != nf {
				return ErrBadInput
			}
			vals[r] = x[r][f]
		}
		sort.Float64s(vals)
		k := m.knots()
		pos := make([]float64, 0, k)
		for i := 0; i < k; i++ {
			q := float64(i) / float64(k-1)
			pos = append(pos, quantileSorted(vals, q))
		}
		pos = dedupe(pos)
		m.KnotPos[f] = pos
	}
	expanded := make([][]float64, len(x))
	for r := range x {
		expanded[r] = m.expand(x[r])
	}
	lin := &LinearRegression{Lambda: m.lambda()}
	if err := lin.Fit(expanded, y); err != nil {
		return err
	}
	m.Coef = lin.Coef
	return nil
}

// Predict implements Model.
func (m *SplineRegression) Predict(x []float64) (float64, error) {
	if m.Coef == nil {
		return 0, ErrNotFitted
	}
	if len(x) != len(m.KnotPos) {
		return 0, ErrBadInput
	}
	lin := &LinearRegression{Coef: m.Coef}
	return lin.Predict(m.expand(x))
}

// quantileSorted returns the q-quantile of sorted values by linear
// interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *SplineRegression) MarshalBinary() ([]byte, error) {
	// encode through an alias type so gob does not re-enter this method
	type plain SplineRegression
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*plain)(m))
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *SplineRegression) UnmarshalBinary(b []byte) error {
	type plain SplineRegression
	return gob.NewDecoder(bytes.NewReader(b)).Decode((*plain)(m))
}
