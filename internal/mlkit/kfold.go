package mlkit

import "math/rand"

// KFold deterministically partitions n indices into k folds and returns,
// for each fold, the (train, test) index sets — the cross-validation
// machinery predict-bench uses for its Table-2 style evaluation.
func KFold(n, k int, seed int64) (trains, tests [][]int) {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		trains = append(trains, train)
		tests = append(tests, folds[f])
	}
	return trains, tests
}

// GroupKFold partitions indices so that all indices sharing a group label
// land in the same fold — the paper's out-of-sample evaluation keeps all
// timesteps of a field together so prediction is across heterogeneous
// fields rather than between near-identical timesteps.
func GroupKFold(groups []string, k int, seed int64) (trains, tests [][]int) {
	uniq := map[string][]int{}
	var order []string
	for i, g := range groups {
		if _, ok := uniq[g]; !ok {
			order = append(order, g)
		}
		uniq[g] = append(uniq[g], i)
	}
	if k < 2 {
		k = 2
	}
	if k > len(order) {
		k = len(order)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(order))
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], uniq[order[p]]...)
	}
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		trains = append(trains, train)
		tests = append(tests, folds[f])
	}
	return trains, tests
}
