package mlkit

import (
	"bytes"
	"encoding/gob"
	"math"
)

// RandomForest is a bagged ensemble of CART regression trees with random
// feature subsets per split — the model family at the core of the Rahman
// 2023 (FXRZ) prediction scheme.
type RandomForest struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds each tree (default 10).
	MaxDepth int
	// MinSamples is each tree's split minimum (default 4).
	MinSamples int
	// Seed makes training deterministic (default 1).
	Seed uint64

	Ensemble []*DecisionTree
}

func (f *RandomForest) trees() int {
	if f.Trees <= 0 {
		return 50
	}
	return f.Trees
}

// Fit implements Model: each tree trains on a bootstrap resample with
// sqrt(p) feature subsets per split.
func (f *RandomForest) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrBadInput
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	rng := &splitRNG{state: seed}
	nf := len(x[0])
	sub := int(math.Sqrt(float64(nf)) + 0.5)
	if sub < 1 {
		sub = 1
	}
	f.Ensemble = make([]*DecisionTree, f.trees())
	n := len(x)
	for t := range f.Ensemble {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tree := &DecisionTree{
			MaxDepth:   f.maxDepth(),
			MinSamples: f.MinSamples,
			Features:   sub,
		}
		tree.SeedRNG(rng.next())
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		f.Ensemble[t] = tree
	}
	return nil
}

func (f *RandomForest) maxDepth() int {
	if f.MaxDepth <= 0 {
		return 10
	}
	return f.MaxDepth
}

// Predict implements Model: the ensemble mean.
func (f *RandomForest) Predict(x []float64) (float64, error) {
	if len(f.Ensemble) == 0 {
		return 0, ErrNotFitted
	}
	s := 0.0
	for _, t := range f.Ensemble {
		v, err := t.Predict(x)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(f.Ensemble)), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *RandomForest) MarshalBinary() ([]byte, error) {
	// encode through an alias type so gob does not re-enter this method
	type plain RandomForest
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*plain)(f))
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *RandomForest) UnmarshalBinary(b []byte) error {
	type plain RandomForest
	return gob.NewDecoder(bytes.NewReader(b)).Decode((*plain)(f))
}

// AugmentByInterpolation implements FXRZ's data-augmentation trick:
// synthetic training pairs are added by linearly interpolating between
// nearest-neighbour observed (features, target) pairs, cutting the number
// of real compressor runs needed to train. It returns the augmented
// copies appended to the originals.
func AugmentByInterpolation(x [][]float64, y []float64, factor int, seed uint64) ([][]float64, []float64) {
	if factor < 1 || len(x) < 2 {
		return x, y
	}
	rng := &splitRNG{state: seed | 1}
	ax := append([][]float64(nil), x...)
	ay := append([]float64(nil), y...)
	n := len(x)
	for k := 0; k < factor*n; k++ {
		i := rng.intn(n)
		j := nearestOther(x, i)
		t := float64(rng.intn(1000)) / 1000
		row := make([]float64, len(x[i]))
		for c := range row {
			row[c] = x[i][c]*(1-t) + x[j][c]*t
		}
		ax = append(ax, row)
		ay = append(ay, y[i]*(1-t)+y[j]*t)
	}
	return ax, ay
}

// nearestOther finds the closest row to i by Euclidean distance.
func nearestOther(x [][]float64, i int) int {
	best := -1
	bestD := math.Inf(1)
	for j := range x {
		if j == i {
			continue
		}
		d := 0.0
		for c := range x[i] {
			diff := x[i][c] - x[j][c]
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			best = j
		}
	}
	if best < 0 {
		return i
	}
	return best
}
