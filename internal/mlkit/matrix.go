// Package mlkit is the model-fitting substrate for the prediction schemes:
// ordinary/ridge least squares (Krasowska 2021), natural cubic spline
// regression (Underwood 2023), CART regression trees and random forests
// (Rahman 2023 / FXRZ), EM-fitted mixtures of linear regressions and split
// conformal intervals (Ganguli 2023), and k-fold splitting for the bench
// driver. The paper's C++ implementation reaches these model families
// through an embedded Python interpreter; reimplementing them here keeps
// the repository stdlib-only while exercising the same scheme designs.
package mlkit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mlkit: singular system")

// ErrNotFitted is returned by Predict before Fit succeeds.
var ErrNotFitted = errors.New("mlkit: model is not fitted")

// ErrBadInput reports inconsistent design-matrix shapes.
var ErrBadInput = errors.New("mlkit: bad input")

// Solve solves the n×n system a·x = b with Gaussian elimination and
// partial pivoting; a and b are modified.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrBadInput
	}
	for col := 0; col < n; col++ {
		// pivot
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// normalEquations builds XᵀX (+ lambda·I, skipping the intercept column 0)
// and Xᵀy for rows of features with a prepended intercept.
func normalEquations(x [][]float64, y []float64, lambda float64) ([][]float64, []float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, nil, ErrBadInput
	}
	p := len(x[0]) + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for r := range x {
		if len(x[r]) != p-1 {
			return nil, nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadInput, r, len(x[r]), p-1)
		}
		row[0] = 1
		copy(row[1:], x[r])
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	for i := 1; i < p; i++ {
		xtx[i][i] += lambda
	}
	return xtx, xty, nil
}
