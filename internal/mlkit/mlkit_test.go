package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// zero on the diagonal forces a row swap
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestLinearRegressionExactOnLinearData(t *testing.T) {
	// y = 2 + 3a - b must be recovered exactly
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 2+3*a-b)
	}
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-(2+12-7)) > 1e-6 {
		t.Errorf("pred = %v, want 7", pred)
	}
}

func TestLinearRegressionDegenerateDesign(t *testing.T) {
	// duplicated feature columns: OLS normal equations are singular, the
	// tiny-ridge fallback must still fit
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("degenerate design not handled: %v", err)
	}
	pred, _ := m.Predict([]float64{5, 5})
	if math.Abs(pred-10) > 0.1 {
		t.Errorf("pred = %v, want ~10", pred)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := &LinearRegression{}
	if _, err := m.Predict([]float64{1}); err != ErrNotFitted {
		t.Error("unfitted Predict should fail")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	m.Fit([][]float64{{1}, {2}}, []float64{1, 2})
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestLinearRegressionGobRoundTrip(t *testing.T) {
	m := &LinearRegression{}
	m.Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6})
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got LinearRegression
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Predict([]float64{5})
	b, _ := got.Predict([]float64{5})
	if a != b {
		t.Errorf("restored model predicts %v, original %v", b, a)
	}
}

func TestSplineFitsNonlinear(t *testing.T) {
	// spline should beat a line on y = sin(x)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 200 * 2 * math.Pi
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	sp := &SplineRegression{Knots: 8}
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lin := &LinearRegression{}
	lin.Fit(x, y)
	var sErr, lErr float64
	for i := range x {
		s, _ := sp.Predict(x[i])
		l, _ := lin.Predict(x[i])
		sErr += (s - y[i]) * (s - y[i])
		lErr += (l - y[i]) * (l - y[i])
	}
	if sErr >= lErr/4 {
		t.Errorf("spline SSE %v should be well under linear SSE %v", sErr, lErr)
	}
}

func TestSplineMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		x = append(x, []float64{a, b})
		y = append(y, a*a+math.Sqrt(b))
	}
	sp := &SplineRegression{}
	if err := sp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := sp.Predict([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-5) > 0.5 {
		t.Errorf("pred = %v, want ~5", pred)
	}
}

func TestSplineSerialization(t *testing.T) {
	sp := &SplineRegression{}
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, float64(i*i))
	}
	sp.Fit(x, y)
	raw, _ := sp.MarshalBinary()
	var got SplineRegression
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	a, _ := sp.Predict([]float64{25})
	b, _ := got.Predict([]float64{25})
	if a != b {
		t.Error("spline round-trip changed predictions")
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		if v < 50 {
			y = append(y, 1)
		} else {
			y = append(y, 9)
		}
	}
	tr := &DecisionTree{}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, _ := tr.Predict([]float64{10})
	hi, _ := tr.Predict([]float64{90})
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-9) > 1e-9 {
		t.Errorf("step not learned: %v, %v", lo, hi)
	}
}

func TestTreeErrors(t *testing.T) {
	tr := &DecisionTree{}
	if _, err := tr.Predict([]float64{1}); err != ErrNotFitted {
		t.Error("unfitted tree should fail")
	}
	if err := tr.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestForestBeatsMeanOnNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*6, rng.Float64()*6
		x = append(x, []float64{a, b})
		y = append(y, math.Sin(a)*b+0.05*rng.NormFloat64())
	}
	rf := &RandomForest{Trees: 30, Seed: 7}
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	var rfSSE, meanSSE float64
	for i := range x {
		p, err := rf.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		rfSSE += (p - y[i]) * (p - y[i])
		meanSSE += (meanY - y[i]) * (meanY - y[i])
	}
	if rfSSE >= meanSSE/4 {
		t.Errorf("forest SSE %v should be well under mean-predictor SSE %v", rfSSE, meanSSE)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := &RandomForest{Trees: 5, Seed: 11}
	b := &RandomForest{Trees: 5, Seed: 11}
	a.Fit(x, y)
	b.Fit(x, y)
	pa, _ := a.Predict([]float64{4.5})
	pb, _ := b.Predict([]float64{4.5})
	if pa != pb {
		t.Error("same-seed forests disagree")
	}
}

func TestForestSerialization(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{2, 4, 6, 8, 10, 12}
	rf := &RandomForest{Trees: 5}
	rf.Fit(x, y)
	raw, _ := rf.MarshalBinary()
	var got RandomForest
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	a, _ := rf.Predict([]float64{3.5})
	b, _ := got.Predict([]float64{3.5})
	if a != b {
		t.Error("forest round-trip changed predictions")
	}
}

func TestAugmentByInterpolation(t *testing.T) {
	x := [][]float64{{0}, {10}}
	y := []float64{0, 100}
	ax, ay := AugmentByInterpolation(x, y, 5, 3)
	if len(ax) != 2+10 || len(ay) != len(ax) {
		t.Fatalf("augmented to %d rows, want 12", len(ax))
	}
	// synthetic points must lie on the segment between the originals
	for i := 2; i < len(ax); i++ {
		v := ax[i][0]
		if v < 0 || v > 10 {
			t.Errorf("augmented feature %v outside hull", v)
		}
		if math.Abs(ay[i]-10*v) > 1e-9 {
			t.Errorf("augmented target %v inconsistent with feature %v", ay[i], v)
		}
	}
	// degenerate inputs pass through
	ox, oy := AugmentByInterpolation(x[:1], y[:1], 5, 3)
	if len(ox) != 1 || len(oy) != 1 {
		t.Error("single-row input should be returned unchanged")
	}
}

func TestMixtureSeparatesRegimes(t *testing.T) {
	// two regimes: y = 10x for x<0, y = -5x for x>=0; one line fits badly
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		v := rng.Float64()*20 - 10
		x = append(x, []float64{v})
		if v < 0 {
			y = append(y, 10*v)
		} else {
			y = append(y, -5*v)
		}
	}
	mix := &MixtureRegression{K: 2, Seed: 5}
	if err := mix.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lin := &LinearRegression{}
	lin.Fit(x, y)
	var mSSE, lSSE float64
	for i := range x {
		mp, err := mix.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		lp, _ := lin.Predict(x[i])
		mSSE += (mp - y[i]) * (mp - y[i])
		lSSE += (lp - y[i]) * (lp - y[i])
	}
	if mSSE >= lSSE/2 {
		t.Errorf("mixture SSE %v should be well under linear SSE %v", mSSE, lSSE)
	}
}

func TestMixtureSmallSampleFallsBack(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	mix := &MixtureRegression{K: 3}
	if err := mix.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p, err := mix.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-2.5) > 0.5 {
		t.Errorf("small-sample mixture pred = %v, want ~2.5", p)
	}
}

func TestMixtureSerialization(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{1, 2, 3, 4, 10, 12, 14, 16}
	mix := &MixtureRegression{K: 2, Seed: 9}
	mix.Fit(x, y)
	raw, _ := mix.MarshalBinary()
	var got MixtureRegression
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	a, _ := mix.Predict([]float64{5})
	b, _ := got.Predict([]float64{5})
	if a != b {
		t.Error("mixture round-trip changed predictions")
	}
}

func TestConformalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{v})
		y = append(y, 3*v+rng.NormFloat64())
	}
	c := &Conformal{Base: &LinearRegression{}}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	covered := 0
	n := 500
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		truth := 3*v + rng.NormFloat64()
		_, lo, hi, err := c.PredictInterval([]float64{v}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if truth >= lo && truth <= hi {
			covered++
		}
	}
	rate := float64(covered) / float64(n)
	if rate < 0.85 {
		t.Errorf("coverage %.3f below nominal 0.90 minus tolerance", rate)
	}
}

func TestConformalErrors(t *testing.T) {
	c := &Conformal{Base: &LinearRegression{}}
	if err := c.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("too-small calibration accepted")
	}
}

func TestKFoldPartition(t *testing.T) {
	trains, tests := KFold(20, 4, 1)
	if len(trains) != 4 || len(tests) != 4 {
		t.Fatalf("folds %d/%d", len(trains), len(tests))
	}
	seen := map[int]int{}
	for f := range tests {
		if len(trains[f])+len(tests[f]) != 20 {
			t.Errorf("fold %d covers %d indices", f, len(trains[f])+len(tests[f]))
		}
		for _, i := range tests[f] {
			seen[i]++
		}
		// no overlap between train and test of a fold
		inTest := map[int]bool{}
		for _, i := range tests[f] {
			inTest[i] = true
		}
		for _, i := range trains[f] {
			if inTest[i] {
				t.Errorf("fold %d: index %d in both sets", f, i)
			}
		}
	}
	for i := 0; i < 20; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appears in %d test folds, want 1", i, seen[i])
		}
	}
}

func TestGroupKFoldKeepsGroupsTogether(t *testing.T) {
	groups := []string{"A", "A", "B", "B", "C", "C", "D", "D"}
	_, tests := GroupKFold(groups, 2, 1)
	for f, test := range tests {
		inFold := map[string]bool{}
		for _, i := range test {
			inFold[groups[i]] = true
		}
		for g := range inFold {
			// every index of g must be in this fold's test set
			count := 0
			for _, i := range test {
				if groups[i] == g {
					count++
				}
			}
			if count != 2 {
				t.Errorf("fold %d: group %s split across folds", f, g)
			}
		}
	}
}

func TestKFoldQuickProperties(t *testing.T) {
	f := func(n uint8, k uint8, seed int64) bool {
		nn := int(n)%50 + 4
		kk := int(k)%8 + 2
		trains, tests := KFold(nn, kk, seed)
		total := 0
		for f := range tests {
			total += len(tests[f])
			if len(trains[f])+len(tests[f]) != nn {
				return false
			}
		}
		return total == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
