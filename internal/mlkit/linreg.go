package mlkit

import (
	"bytes"
	"encoding/gob"
)

// Model is the common fit/predict interface of mlkit regressors, mirroring
// the SciKit-Learn BaseEstimator shape the paper's predict_plugin copies.
type Model interface {
	// Fit trains on rows of features x and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict evaluates one feature vector.
	Predict(x []float64) (float64, error)
}

// LinearRegression is ordinary (or, with Lambda > 0, ridge) least squares
// with an intercept.
type LinearRegression struct {
	// Lambda is the L2 penalty on non-intercept coefficients; 0 = OLS.
	Lambda float64
	// Coef holds [intercept, w1, ..., wp] after Fit.
	Coef []float64
}

// Fit implements Model.
func (m *LinearRegression) Fit(x [][]float64, y []float64) error {
	xtx, xty, err := normalEquations(x, y, m.Lambda)
	if err != nil {
		return err
	}
	coef, err := Solve(xtx, xty)
	if err != nil {
		if m.Lambda > 0 {
			return err
		}
		// degenerate OLS design: retry with a tiny ridge, as sklearn's
		// lstsq-based solver effectively does
		xtx, xty, _ = normalEquations(x, y, 1e-8)
		coef, err = Solve(xtx, xty)
		if err != nil {
			return err
		}
	}
	m.Coef = coef
	return nil
}

// Predict implements Model.
func (m *LinearRegression) Predict(x []float64) (float64, error) {
	if m.Coef == nil {
		return 0, ErrNotFitted
	}
	if len(x) != len(m.Coef)-1 {
		return 0, ErrBadInput
	}
	out := m.Coef[0]
	for i, v := range x {
		out += m.Coef[i+1] * v
	}
	return out, nil
}

// MarshalBinary implements encoding.BinaryMarshaler via gob.
func (m *LinearRegression) MarshalBinary() ([]byte, error) {
	// encode through an alias type so gob does not re-enter this method
	type plain LinearRegression
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*plain)(m))
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *LinearRegression) UnmarshalBinary(b []byte) error {
	type plain LinearRegression
	return gob.NewDecoder(bytes.NewReader(b)).Decode((*plain)(m))
}
