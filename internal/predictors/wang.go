package predictors

import (
	"fmt"
	"math"

	"repro/internal/compressor/sz3"
	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/mlkit"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// Option keys of the zperf_model metric.
const (
	// OptZperfPredictor selects the modelled prediction stage:
	// "lorenzo" (default), "interp", "regression" (SZ2-style block
	// hyperplanes), or "mean" ("zperf:predictor").
	OptZperfPredictor = "zperf:predictor"
	// OptZperfCoder selects the modelled coding stage: "huffman"
	// (default), "entropy" (an ideal entropy coder), or "fixed"
	// (fixed-width codes) ("zperf:coder").
	OptZperfCoder = "zperf:coder"
	// OptZperfLossless toggles the modelled lossless backend:
	// "estimate" (default) or "none" ("zperf:lossless").
	OptZperfLossless = "zperf:lossless"
	// OptZperfSampleFraction sets the sampled fraction ("zperf:sample_fraction").
	OptZperfSampleFraction = "zperf:sample_fraction"
)

func init() {
	pressio.RegisterMetric("zperf_model", func() pressio.Metric { return &ZperfModel{} })
	core.RegisterScheme("wang2023", func() core.Scheme { return &wangScheme{} })
}

// ZperfModel is the metric plugin implementing the ZPerf approach of Wang
// 2023: compression performance is decomposed into the stages common to
// prediction-based compressors, each stage has a swappable model, and —
// crucially — the stage models can describe *compressor architectures
// that do not exist yet*, enabling the counterfactual design analysis the
// paper highlights (§2.1): discard unpromising designs before spending
// hundreds of person-hours building them.
type ZperfModel struct {
	pressio.BaseMetric
	Abs       float64
	Predictor string
	Coder     string
	Lossless  string
	Fraction  float64
	results   pressio.Options
}

// Name implements pressio.Metric.
func (*ZperfModel) Name() string { return "zperf_model" }

// Configuration implements pressio.Metric: the model is error-dependent
// and also invalidated when any counterfactual stage selection changes.
func (*ZperfModel) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{
		pressio.OptAbs, pressio.InvalidateErrorDependent,
		OptZperfPredictor, OptZperfCoder, OptZperfLossless,
	})
	o.Set("zperf_model:black_box", false)
	o.Set("zperf_model:counterfactual", true)
	return o
}

// SetOptions implements pressio.Metric.
func (m *ZperfModel) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	if v, ok := o.GetString(OptZperfPredictor); ok {
		switch v {
		case "lorenzo", "interp", "mean", "regression":
			m.Predictor = v
		default:
			return fmt.Errorf("zperf_model: unknown predictor stage %q", v)
		}
	}
	if v, ok := o.GetString(OptZperfCoder); ok {
		switch v {
		case "huffman", "entropy", "fixed":
			m.Coder = v
		default:
			return fmt.Errorf("zperf_model: unknown coder stage %q", v)
		}
	}
	if v, ok := o.GetString(OptZperfLossless); ok {
		switch v {
		case "estimate", "none":
			m.Lossless = v
		default:
			return fmt.Errorf("zperf_model: unknown lossless stage %q", v)
		}
	}
	if v, ok := o.GetFloat(OptZperfSampleFraction); ok {
		if v <= 0 || v > 1 {
			return fmt.Errorf("zperf_model: sample fraction %v outside (0, 1]", v)
		}
		m.Fraction = v
	}
	return nil
}

// Options implements pressio.Metric.
func (m *ZperfModel) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.abs())
	o.Set(OptZperfPredictor, m.predictor())
	o.Set(OptZperfCoder, m.coder())
	o.Set(OptZperfLossless, m.lossless())
	o.Set(OptZperfSampleFraction, m.fraction())
	return o
}

func (m *ZperfModel) abs() float64 {
	if m.Abs <= 0 {
		return 1e-4
	}
	return m.Abs
}

func (m *ZperfModel) predictor() string {
	if m.Predictor == "" {
		return "lorenzo"
	}
	return m.Predictor
}

func (m *ZperfModel) coder() string {
	if m.Coder == "" {
		return "huffman"
	}
	return m.Coder
}

func (m *ZperfModel) lossless() string {
	if m.Lossless == "" {
		return "estimate"
	}
	return m.Lossless
}

func (m *ZperfModel) fraction() float64 {
	if m.Fraction <= 0 || m.Fraction > 1 {
		return 0.25
	}
	return m.Fraction
}

// BeginCompress implements pressio.Metric: run the composed stage models
// on a sample and derive the counterfactual compression ratio.
func (m *ZperfModel) BeginCompress(in *pressio.Data) {
	vals := stats.ToFloat64(in)
	elemBits := in.DType().Size() * 8
	r := pressio.Options{}

	// sampled contiguous prefix slabs (ZPerf samples planes)
	n := len(vals)
	sampleLen := int(float64(n) * m.fraction())
	if sampleLen < 64 {
		sampleLen = min(n, 64)
	}
	sample := vals[:sampleLen]

	// stage 1: prediction residuals under the selected predictor model
	hist, outliers := m.residualHistogram(sample)
	total := uint64(sampleLen)

	// stage 2+3: quantization-code distribution → coding cost
	var bitsPerSym float64
	switch m.coder() {
	case "entropy":
		counts := make([]uint64, 0, len(hist))
		for _, c := range hist {
			counts = append(counts, c)
		}
		bitsPerSym = stats.EntropyFromCounts(counts)
	case "fixed":
		// fixed-width codes sized to the alphabet
		if len(hist) > 1 {
			bitsPerSym = math.Ceil(math.Log2(float64(len(hist))))
		} else {
			bitsPerSym = 1
		}
	default: // huffman
		bitsPerSym = huffman.MeanCodeLength(hist)
	}
	outFrac := float64(outliers) / float64(total)
	est := (1-outFrac)*bitsPerSym + outFrac*float64(elemBits+1)

	// stage 4: lossless backend
	if m.lossless() == "estimate" {
		est *= 0.90
	}
	if est <= 0 {
		est = 0.01
	}
	cr := float64(elemBits) / est
	if cr < 1 {
		cr = 1
	}
	r.Set("zperf_model:cr", cr)
	r.Set("zperf_model:bits_per_value", est)
	m.results = r
}

// residualHistogram applies the selected prediction-stage model and
// quantizes the residuals.
func (m *ZperfModel) residualHistogram(sample []float64) (map[int32]uint64, uint64) {
	abs := m.abs()
	step := 2 * abs
	hist := make(map[int32]uint64, 512)
	var outliers uint64
	quantize := func(diff float64) {
		c := math.Round(diff / step)
		if math.Abs(c) >= 32768 {
			outliers++
			return
		}
		hist[int32(c)]++
	}
	switch m.predictor() {
	case "regression":
		// SZ2-style block regression: reuse the compressor's own stage
		q := &sz3.Quantizer{Abs: abs, Bins: 65536, Cast: sz3.CastFloat64}
		codes, outs, _ := sz3.PredictQuantizeRegression(sample, []int{len(sample)}, q)
		for _, c := range codes {
			if c == sz3.OutlierCode {
				continue // counted via outs below
			}
			hist[c]++
		}
		outliers += uint64(len(outs))
	case "mean":
		mean := stats.Mean(sample)
		for _, v := range sample {
			quantize(v - mean)
		}
	case "interp":
		// midpoint interpolation at stride 2
		for i, v := range sample {
			var pred float64
			if i >= 1 && i+1 < len(sample) && i%2 == 1 {
				pred = (sample[i-1] + sample[i+1]) / 2
			} else if i >= 2 {
				pred = sample[i-2]
			}
			quantize(v - pred)
		}
	default: // lorenzo (1-D on the sampled slab)
		prev := 0.0
		for _, v := range sample {
			quantize(v - prev)
			prev = v
		}
	}
	return hist, outliers
}

// Results implements pressio.Metric.
func (m *ZperfModel) Results() pressio.Options { return m.results.Clone() }

// wangScheme wires zperf_model as the wang2023 scheme. Matching ZPerf's
// gray-box design, a light statistical calibration (linear regression of
// the true target on the stage-model estimate) is trained on observed
// runs, and the capability flag advertises counterfactual analysis.
type wangScheme struct{}

func (*wangScheme) Name() string { return "wang2023" }

func (*wangScheme) Info() core.Info {
	return core.Info{
		Method:   "Wang [20]",
		Training: true,
		Sampling: true,
		BlackBox: "no",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "calculation",
		Features: "counterfactuals",
	}
}

// Supports implements core.Scheme: the stage decomposition describes
// prediction-based compressors.
func (*wangScheme) Supports(compressor string) bool {
	return compressor == "sz3" || compressor == "szx"
}

func (*wangScheme) Metrics() []string  { return []string{"zperf_model"} }
func (*wangScheme) Features() []string { return []string{"zperf_model:cr"} }
func (*wangScheme) Target() string     { return "size:compression_ratio" }

func (*wangScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "zperf_calibration",
		Model:     &mlkit.LinearRegression{},
		ClampMin:  1,
	}, nil
}
