package predictors

import (
	"math"
	"testing"

	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/pressio"
	"repro/internal/stats"
)

var testDims = []int{8, 16, 16}

func field(t testing.TB, name string, step int) *pressio.Data {
	t.Helper()
	d, err := hurricane.Field(name, step, testDims)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllSchemesRegistered(t *testing.T) {
	want := []string{"tao2019", "krasowska2021", "underwood2023", "ganguli2023",
		"jin2022", "khan2023", "rahman2023", "wang2023"}
	have := map[string]bool{}
	for _, n := range core.SchemeNames() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("scheme %s not registered", n)
		}
	}
}

func TestSchemeInfoMatchesTable1(t *testing.T) {
	// the taxonomy rows the paper's Table 1 reports
	cases := map[string]core.Info{
		"tao2019":       {Method: "Tao [15]", Training: false, Sampling: true, BlackBox: "partial", Goal: "fast", Metrics: "CR", Approach: "trial-based"},
		"krasowska2021": {Method: "Krasowska [9]", Training: true, Sampling: false, BlackBox: "yes", Goal: "accurate", Metrics: "CR", Approach: "regression"},
		"underwood2023": {Method: "Underwood [17]", Training: true, Sampling: false, BlackBox: "yes", Goal: "accurate", Metrics: "CR", Approach: "regression"},
		"ganguli2023":   {Method: "Ganguli [2]", Training: true, Sampling: false, BlackBox: "yes", Goal: "accurate", Metrics: "CR", Approach: "regression", Features: "bounded"},
		"jin2022":       {Method: "Jin [5, 6]", Training: false, Sampling: false, BlackBox: "no", Goal: "fast", Metrics: "CR, Bandwidth", Approach: "calculation"},
		"khan2023":      {Method: "Khan [7]", Training: false, Sampling: true, BlackBox: "no", Goal: "fast", Metrics: "CR", Approach: "calculation"},
		"rahman2023":    {Method: "Rahman [13]", Training: true, Sampling: true, BlackBox: "partial", Goal: "fast", Metrics: "various", Approach: "machine learning"},
		"wang2023":      {Method: "Wang [20]", Training: true, Sampling: true, BlackBox: "no", Goal: "accurate", Metrics: "CR", Approach: "calculation", Features: "counterfactuals"},
	}
	for name, want := range cases {
		s, err := core.GetScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := s.Info(); got != want {
			t.Errorf("%s: Info = %+v, want %+v", name, got, want)
		}
	}
}

func TestSurveyedInfoCompletesTable1(t *testing.T) {
	extra := SurveyedInfo()
	if len(extra) != 2 {
		t.Fatalf("surveyed rows = %d, want 2 (Lu, Qin)", len(extra))
	}
	wang, err := core.GetScheme("wang2023")
	if err != nil {
		t.Fatal(err)
	}
	if wang.Info().Features != "counterfactuals" {
		t.Error("Wang/ZPerf must carry the counterfactuals capability")
	}
	// 7 implemented + 3 surveyed = the paper's 10 rows
	implemented := 0
	for _, n := range core.SchemeNames() {
		if s, err := core.GetScheme(n); err == nil && s.Info().Method != "" {
			implemented++
		}
	}
	if implemented+len(extra) < 10 {
		t.Errorf("Table 1 coverage: %d rows, want ≥ 10", implemented+len(extra))
	}
}

func TestJinSupportsOnlySZ3(t *testing.T) {
	s, _ := core.GetScheme("jin2022")
	if !s.Supports("sz3") {
		t.Error("jin2022 must support sz3")
	}
	if s.Supports("zfp") {
		t.Error("jin2022 must not support zfp (Table 2 shows N/A)")
	}
}

func predictWithSession(t testing.TB, scheme, compressor string, data *pressio.Data, abs float64) float64 {
	t.Helper()
	s, err := core.NewSession(scheme, compressor)
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, abs)
	opts.Set(OptTaoCompressor, compressor)
	opts.Set(OptKhanCompressor, compressor)
	if err := s.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	pred, _, err := s.Predict(data)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func realCR(t testing.TB, compressor string, data *pressio.Data, abs float64) float64 {
	t.Helper()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, abs)
	cr, _, _, err := core.ObserveTarget(compressor, data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

func TestCalculationSchemesAreInRange(t *testing.T) {
	// untrained estimates won't be exact, but must be the right order of
	// magnitude on a smooth dense field
	data := field(t, "P", 20)
	for _, tc := range []struct {
		scheme, comp string
	}{
		{"jin2022", "sz3"},
		{"khan2023", "sz3"},
		{"khan2023", "zfp"},
		{"tao2019", "sz3"},
		{"tao2019", "zfp"},
	} {
		pred := predictWithSession(t, tc.scheme, tc.comp, data, 1e-3)
		actual := realCR(t, tc.comp, data, 1e-3)
		ratio := pred / actual
		if ratio < 0.15 || ratio > 8 {
			t.Errorf("%s on %s: predicted %.2f, actual %.2f (ratio %.2f out of range)",
				tc.scheme, tc.comp, pred, actual, ratio)
		}
	}
}

func TestJinNaiveAndFastIteratorsAgree(t *testing.T) {
	data := field(t, "TC", 10)
	naive := &JinModel{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	naive.SetOptions(opts)
	naive.BeginCompress(data)
	nv, _ := naive.Results().GetFloat("jin_model:cr")

	fast := &JinModel{}
	opts.Set(OptJinFastIterator, true)
	fast.SetOptions(opts)
	fast.BeginCompress(data)
	fv, _ := fast.Results().GetFloat("jin_model:cr")

	if math.Abs(nv-fv) > 1e-9 {
		t.Errorf("iterator implementations disagree: naive=%v fast=%v", nv, fv)
	}
}

func TestIteratorsVisitAllIndices(t *testing.T) {
	dims := []int{3, 4, 5}
	for _, mk := range []func() ndIterator{
		func() ndIterator { return newNaiveIterator(dims) },
		func() ndIterator { return newFastIterator(dims) },
	} {
		it := mk()
		count := 0
		expect := 0
		for {
			idx, ok := it.Next()
			if !ok {
				break
			}
			if idx != expect {
				t.Fatalf("index %d out of order (want %d)", idx, expect)
			}
			// coords must decode back to idx
			c := it.Coords()
			flat := (c[0]*4+c[1])*5 + c[2]
			if flat != idx {
				t.Fatalf("coords %v do not match index %d", c, idx)
			}
			expect++
			count++
		}
		if count != 60 {
			t.Fatalf("visited %d of 60", count)
		}
	}
}

func TestTrainedSchemesLearnOnHurricane(t *testing.T) {
	// train on a few fields/timesteps against sz3, evaluate in-sample:
	// the fit must clearly beat predicting the mean
	fields := []string{"P", "TC", "U", "QVAPOR", "CLOUD", "QRAIN", "W", "V"}
	var rows [][]float64
	var targets []float64
	const abs = 1e-3

	for _, schemeName := range []string{"krasowska2021", "underwood2023", "ganguli2023", "rahman2023"} {
		s, err := core.NewSession(schemeName, "sz3")
		if err != nil {
			t.Fatal(err)
		}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		if err := s.SetOptions(opts); err != nil {
			t.Fatal(err)
		}
		rows = rows[:0]
		targets = targets[:0]
		for _, f := range fields {
			for _, step := range []int{5, 25, 40} {
				data := field(t, f, step)
				s.InvalidateAll()
				ev, err := s.Evaluate(data)
				if err != nil {
					t.Fatalf("%s: %v", schemeName, err)
				}
				rows = append(rows, append([]float64(nil), ev.Features...))
				targets = append(targets, realCR(t, "sz3", data, abs))
			}
		}
		if err := s.Predictor.Fit(rows, targets); err != nil {
			t.Fatalf("%s: fit: %v", schemeName, err)
		}
		var predSSE, meanSSE float64
		meanT := stats.Mean(targets)
		for i := range rows {
			p, err := s.Predictor.Predict(rows[i])
			if err != nil {
				t.Fatalf("%s: predict: %v", schemeName, err)
			}
			predSSE += (p - targets[i]) * (p - targets[i])
			meanSSE += (meanT - targets[i]) * (meanT - targets[i])
		}
		if predSSE >= meanSSE {
			t.Errorf("%s: in-sample SSE %.3f not better than mean predictor %.3f",
				schemeName, predSSE, meanSSE)
		}
		// state round-trip
		state, err := s.Predictor.Save()
		if err != nil {
			t.Fatalf("%s: save: %v", schemeName, err)
		}
		fresh, err := s.Scheme.NewPredictor("sz3")
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Load(state); err != nil {
			t.Fatalf("%s: load: %v", schemeName, err)
		}
		a, _ := s.Predictor.Predict(rows[0])
		b, err := fresh.Predict(rows[0])
		if err != nil || a != b {
			t.Errorf("%s: restored predictor differs (%v vs %v, err %v)", schemeName, a, b, err)
		}
	}
}

func TestKhanSurrogateValidation(t *testing.T) {
	m := &KhanSurrogate{}
	bad := pressio.Options{}
	bad.Set(OptKhanSampleFraction, 2.0)
	if err := m.SetOptions(bad); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestTaoSampleValidation(t *testing.T) {
	m := &TaoSample{}
	bad := pressio.Options{}
	bad.Set(OptTaoBlocks, 0)
	if err := m.SetOptions(bad); err == nil {
		t.Error("0 blocks accepted")
	}
	bad = pressio.Options{}
	bad.Set(OptTaoBlockElems, 1)
	if err := m.SetOptions(bad); err == nil {
		t.Error("tiny blocks accepted")
	}
	// unknown inner compressor surfaces as a result error, not a panic
	m2 := &TaoSample{}
	o := pressio.Options{}
	o.Set(OptTaoCompressor, "missing")
	m2.SetOptions(o)
	m2.BeginCompress(pressio.NewFloat32(64))
	if v, ok := m2.Results().GetBool("tao_sample:error"); !ok || !v {
		t.Error("missing compressor should set tao_sample:error")
	}
}

func TestSparseVsDensePredictionGap(t *testing.T) {
	// the paper's headline finding: sampling/calculation methods struggle
	// when sparsity varies. Verify our khan estimate is much worse on a
	// sparse field than the field's own real CR scale (it need not be,
	// but the signed error direction should differ across field types or
	// the magnitude should be large somewhere).
	sparse := field(t, "QRAIN", 24)
	dense := field(t, "P", 24)
	for _, d := range []*pressio.Data{sparse, dense} {
		pred := predictWithSession(t, "khan2023", "sz3", d, 1e-4)
		if pred < 1 {
			t.Errorf("khan CR estimate below 1: %v", pred)
		}
	}
	// real CRs differ hugely between sparse and dense — the heterogeneity
	// the paper highlights
	crS := realCR(t, "sz3", sparse, 1e-4)
	crD := realCR(t, "sz3", dense, 1e-4)
	if crS < crD*1.5 {
		t.Errorf("sparse field should compress much better: %v vs %v", crS, crD)
	}
}

func BenchmarkJinNaiveIterator(b *testing.B) {
	data := field(b, "TC", 10)
	m := &JinModel{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	m.SetOptions(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BeginCompress(data)
	}
}

func BenchmarkJinFastIterator(b *testing.B) {
	data := field(b, "TC", 10)
	m := &JinModel{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	opts.Set(OptJinFastIterator, true)
	m.SetOptions(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BeginCompress(data)
	}
}
