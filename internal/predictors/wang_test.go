package predictors

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pressio"
)

func zperfCR(t *testing.T, data *pressio.Data, predictor, coder, lossless string) float64 {
	t.Helper()
	m := &ZperfModel{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	opts.Set(OptZperfPredictor, predictor)
	opts.Set(OptZperfCoder, coder)
	opts.Set(OptZperfLossless, lossless)
	if err := m.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	m.BeginCompress(data)
	cr, ok := m.Results().GetFloat("zperf_model:cr")
	if !ok {
		t.Fatal("missing zperf_model:cr")
	}
	return cr
}

func TestZperfStageOrdering(t *testing.T) {
	data := field(t, "TC", 20)
	lorenzoHuff := zperfCR(t, data, "lorenzo", "huffman", "estimate")
	meanHuff := zperfCR(t, data, "mean", "huffman", "estimate")
	lorenzoFixed := zperfCR(t, data, "lorenzo", "fixed", "none")

	// a spatial predictor must beat the mean predictor on smooth data
	if lorenzoHuff <= meanHuff {
		t.Errorf("lorenzo (%v) should beat mean predictor (%v)", lorenzoHuff, meanHuff)
	}
	// variable-length coding must beat fixed-width codes
	if lorenzoHuff <= lorenzoFixed {
		t.Errorf("huffman (%v) should beat fixed-width (%v)", lorenzoHuff, lorenzoFixed)
	}
	// the lossless backend can only help
	noBackend := zperfCR(t, data, "lorenzo", "huffman", "none")
	if lorenzoHuff < noBackend {
		t.Errorf("lossless backend made the estimate worse: %v < %v", lorenzoHuff, noBackend)
	}
}

func TestZperfEntropyBeatsHuffmanSlightly(t *testing.T) {
	// an ideal entropy coder is the lower bound on the huffman stage
	data := field(t, "QVAPOR", 20)
	huff := zperfCR(t, data, "lorenzo", "huffman", "none")
	ent := zperfCR(t, data, "lorenzo", "entropy", "none")
	if ent < huff {
		t.Errorf("ideal entropy coder (%v) cannot be worse than huffman (%v)", ent, huff)
	}
}

func TestZperfCounterfactualInvalidation(t *testing.T) {
	// changing a stage selection must invalidate the metric
	m := &ZperfModel{}
	inv, ok := m.Configuration().GetStrings(pressio.CfgInvalidate)
	if !ok {
		t.Fatal("missing invalidation metadata")
	}
	found := false
	for _, k := range inv {
		if k == OptZperfCoder {
			found = true
		}
	}
	if !found {
		t.Error("coder stage selection must be an invalidation trigger")
	}
}

func TestZperfValidation(t *testing.T) {
	m := &ZperfModel{}
	for _, bad := range []pressio.Options{
		optsWith(OptZperfPredictor, "psychic"),
		optsWith(OptZperfCoder, "magic"),
		optsWith(OptZperfLossless, "maybe"),
		optsWith(OptZperfSampleFraction, 2.0),
	} {
		if err := m.SetOptions(bad); err == nil {
			t.Errorf("options %v accepted", bad)
		}
	}
}

func optsWith(key string, v any) pressio.Options {
	o := pressio.Options{}
	o.Set(key, v)
	return o
}

func TestWangSchemeCalibrates(t *testing.T) {
	// the gray-box calibration: a linear fit of truth on the stage-model
	// estimate should tighten raw model predictions
	scheme, err := core.GetScheme("wang2023")
	if err != nil {
		t.Fatal(err)
	}
	if !scheme.Supports("sz3") || scheme.Supports("zfp") {
		t.Error("wang2023 should support prediction-based compressors only")
	}
	pred, err := scheme.NewPredictor("sz3")
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Trains() {
		t.Fatal("wang2023 must train its calibration")
	}
	// calibrate y = 2x + 1 and check it is learned
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{3, 5, 7, 9}
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	v, err := pred.Predict([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if v < 10.9 || v > 11.1 {
		t.Errorf("calibration predict(5) = %v, want 11", v)
	}
}

func TestZperfRegressionStage(t *testing.T) {
	// a noisy gradient: regression beats lorenzo, both beat mean
	data := pressio.NewFloat32(4096)
	for i := 0; i < data.Len(); i++ {
		data.Set(i, float64(i)*0.01+0.3*float64((i*2654435761)%1000)/1000)
	}
	reg := zperfCR(t, data, "regression", "huffman", "none")
	mean := zperfCR(t, data, "mean", "huffman", "none")
	if reg <= mean {
		t.Errorf("regression stage (%v) should beat mean predictor (%v)", reg, mean)
	}
}
