package predictors

import (
	"repro/internal/core"
	"repro/internal/mlkit"
)

func init() {
	core.RegisterScheme("rahman2023", func() core.Scheme { return &rahmanScheme{} })
}

// rahmanScheme is Rahman 2023 (FXRZ): cheap error-agnostic dataset
// features — including the sparsity fraction behind the sparsity
// correction factor the paper credits for its win on Hurricane — plus the
// error-bound-derived general distortion, fed to a random forest whose
// training set is enlarged by interpolation-based data augmentation.
type rahmanScheme struct{}

func (*rahmanScheme) Name() string { return "rahman2023" }

func (*rahmanScheme) Info() core.Info {
	return core.Info{
		Method:   "Rahman [13]",
		Training: true,
		Sampling: true,
		BlackBox: "partial",
		Goal:     "fast",
		Metrics:  "various",
		Approach: "machine learning",
	}
}

func (*rahmanScheme) Supports(c string) bool { return blackBoxSupports(c) }

// Metrics implements core.Scheme. All feature metrics except the trivial
// distortion lookup are error-agnostic, which is why Table 2 shows FXRZ
// with per-prediction cost almost entirely in the error-agnostic stage.
func (*rahmanScheme) Metrics() []string {
	return []string{"stat", "spatial", "entropy", "distortion"}
}

func (*rahmanScheme) Features() []string {
	return []string{
		"stat:range", "stat:std", "stat:sparsity",
		"spatial:correlation", "spatial:smoothness", "spatial:coding_gain",
		"entropy:shannon", "distortion:general",
	}
}

func (*rahmanScheme) Target() string { return "size:compression_ratio" }

func (*rahmanScheme) NewPredictor(string) (core.Predictor, error) {
	return &rahmanPredictor{
		core.ModelPredictor{
			ModelName: "random_forest",
			Model:     &mlkit.RandomForest{Trees: 60, MaxDepth: 12, Seed: 23},
			ClampMin:  1,
		},
	}, nil
}

// rahmanPredictor augments the training set by interpolation before
// fitting the forest — FXRZ's device for cutting the number of real
// compressor runs required for training.
type rahmanPredictor struct {
	core.ModelPredictor
}

// Fit implements core.Predictor with FXRZ data augmentation.
func (p *rahmanPredictor) Fit(x [][]float64, y []float64) error {
	ax, ay := mlkit.AugmentByInterpolation(x, y, 2, 29)
	return p.ModelPredictor.Fit(ax, ay)
}

// SurveyedInfo returns the Table-1 rows for the methods the paper surveys
// but which are not ported to the framework (Lu 2018's Gaussian-process
// models and Qin 2020's deep neural networks rely on compressor-internal
// training corpora we have no analogue for); cmd/schemes merges them with
// the implemented registry so the regenerated Table 1 covers all ten rows.
func SurveyedInfo() []core.Info {
	return []core.Info{
		{Method: "Lu [11]", Training: true, Sampling: true, BlackBox: "no",
			Goal: "accurate", Metrics: "CR", Approach: "regression"},
		{Method: "Qin [12]", Training: true, Sampling: true, BlackBox: "no",
			Goal: "accurate", Metrics: "CR", Approach: "deep learning"},
	}
}
