// Package predictors implements the prediction schemes evaluated or
// surveyed by the paper as core.Scheme plugins plus their scheme-specific
// metric plugins: Tao 2019 (trial-based block sampling), Krasowska 2021
// (quantized entropy + variogram regression), Underwood 2023 (SVD
// truncation + spline regression), Ganguli 2023 (spatial features +
// mixture regression with conformal bounds), Jin 2022 (analytic
// ratio-quality model), Khan 2023 (SECRE-style stage surrogate with
// tightly-coupled sampling), and Rahman 2023 (FXRZ feature-driven random
// forest with interpolation augmentation).
package predictors

// ndIterator walks a multi-dimensional index space, yielding flat element
// indices and exposing the current coordinates. The interface indirection
// exists to reproduce the implementation style of the Jin 2022 code the
// paper profiled: its "multi-dimensional iterator" managed C++ shared
// pointers per step, and the paper attributes Jin's surprisingly high
// error-dependent time (518 ms vs the 322 ms compressor) to exactly this
// overhead surviving the optimizer (§6).
type ndIterator interface {
	// Next advances and returns the flat index, or ok=false at the end.
	Next() (idx int, ok bool)
	// Coords returns the coordinates of the element Next just produced.
	Coords() []int
}

// naiveIterator is the faithful analogue of the shared-pointer iterator:
// every step allocates a fresh coordinate snapshot (the shared_ptr churn)
// and recomputes the flat index from scratch. Used by jin_model unless
// jin:fast_iterator is set.
type naiveIterator struct {
	dims   []int
	coords []int
	i, n   int
}

func newNaiveIterator(dims []int) *naiveIterator {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return &naiveIterator{dims: dims, n: n, i: -1}
}

// Next implements ndIterator the expensive way: rebuild the stride table,
// decompose i into coordinates afresh, and allocate the snapshot — every
// element, as the profiled C++ iterator effectively did once the
// optimizer failed to elide its shared-pointer bookkeeping.
func (it *naiveIterator) Next() (int, bool) {
	it.i++
	if it.i >= it.n {
		return 0, false
	}
	strides := make([]int, len(it.dims)) // per-step allocation, by design
	acc := 1
	for d := len(it.dims) - 1; d >= 0; d-- {
		strides[d] = acc
		acc *= it.dims[d]
	}
	coords := make([]int, len(it.dims)) // snapshot allocation, by design
	t := it.i
	for d := 0; d < len(it.dims); d++ {
		coords[d] = t / strides[d]
		t %= strides[d]
	}
	it.coords = coords
	return it.i, true
}

// Coords implements ndIterator.
func (it *naiveIterator) Coords() []int { return it.coords }

// fastIterator is the optimized path (the paper's future-work item 3):
// incremental coordinate updates, no allocation.
type fastIterator struct {
	dims   []int
	coords []int
	i, n   int
}

func newFastIterator(dims []int) *fastIterator {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return &fastIterator{dims: dims, coords: make([]int, len(dims)), n: n, i: -1}
}

// Next implements ndIterator with an O(1) amortized coordinate update.
func (it *fastIterator) Next() (int, bool) {
	it.i++
	if it.i >= it.n {
		return 0, false
	}
	if it.i > 0 {
		for d := len(it.dims) - 1; d >= 0; d-- {
			it.coords[d]++
			if it.coords[d] < it.dims[d] {
				break
			}
			it.coords[d] = 0
		}
	}
	return it.i, true
}

// Coords implements ndIterator.
func (it *fastIterator) Coords() []int { return it.coords }
