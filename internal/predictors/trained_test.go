package predictors

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// fitKrasowska builds and fits a krasowska2021 predictor on a tiny exact
// linear problem so its serialized state is non-trivial.
func fitKrasowska(t *testing.T) core.Predictor {
	t.Helper()
	scheme, err := core.GetScheme("krasowska2021")
	if err != nil {
		t.Fatal(err)
	}
	p, err := scheme.NewPredictor("sz3")
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}, {2, 1, 0}, {0, 2, 1}}
	y := []float64{2, 3, 4, 9, 7, 10}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStateRoundTrip(t *testing.T) {
	p := fitKrasowska(t)
	want, err := p.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := MarshalState(p)
	if err != nil {
		t.Fatal(err)
	}
	name, _, err := UnmarshalState(env)
	if err != nil {
		t.Fatal(err)
	}
	if name != p.Name() {
		t.Fatalf("envelope name %q, want %q", name, p.Name())
	}
	restored, err := RestoreState("krasowska2021", "sz3", env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored prediction %g, want %g", got, want)
	}
}

func TestRestoreStateUnknownPredictorName(t *testing.T) {
	p := fitKrasowska(t)
	env, err := MarshalState(p)
	if err != nil {
		t.Fatal(err)
	}

	// krasowska state restored through underwood2023 (which builds
	// cubic_spline, not linear_regression): typed mismatch, no panic, no
	// silent zero model.
	_, err = RestoreState("underwood2023", "sz3", env)
	var upe *UnknownPredictorError
	if !errors.As(err, &upe) {
		t.Fatalf("want *UnknownPredictorError, got %v", err)
	}
	if upe.Stored != "linear_regression" || upe.Want != "cubic_spline" || upe.Scheme != "underwood2023" {
		t.Fatalf("unexpected error fields: %+v", upe)
	}

	// unknown scheme name (the renamed-scheme case) is also typed
	_, err = RestoreState("krasowska1999", "sz3", env)
	if !errors.As(err, &upe) {
		t.Fatalf("want *UnknownPredictorError for unknown scheme, got %v", err)
	}
	if upe.Stored != "linear_regression" || upe.Scheme != "krasowska1999" {
		t.Fatalf("unexpected error fields: %+v", upe)
	}
}

func TestUnmarshalStateCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":         nil,
		"short":         {'L', 'P', 'P', 'S', 1},
		"bad magic":     {'X', 'X', 'X', 'X', 1, 0, 0, 0, 0},
		"bad version":   {'L', 'P', 'P', 'S', 9, 0, 0, 0, 0},
		"name overrun":  {'L', 'P', 'P', 'S', 1, 0xff, 0xff, 0, 0},
		"state overrun": {'L', 'P', 'P', 'S', 1, 1, 0, 0, 0, 'x', 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, _, err := UnmarshalState(b); !errors.Is(err, ErrCorruptState) {
			t.Errorf("%s: want ErrCorruptState, got %v", name, err)
		}
	}
	if _, err := RestoreState("krasowska2021", "sz3", []byte("garbage")); !errors.Is(err, ErrCorruptState) {
		t.Errorf("RestoreState on garbage: want ErrCorruptState, got %v", err)
	}
}
