package predictors

import (
	"math"

	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// Option keys of the jin_model metric.
const (
	// OptJinFastIterator selects the optimized iterator instead of the
	// faithful naive one ("jin:fast_iterator") — the ablation of §6.
	OptJinFastIterator = "jin:fast_iterator"
	// OptJinQuantBins sets the modelled quantizer bin budget.
	OptJinQuantBins = "jin:quant_bins"
)

func init() {
	pressio.RegisterMetric("jin_model", func() pressio.Metric { return &JinModel{} })
	core.RegisterScheme("jin2022", func() core.Scheme { return &jinScheme{} })
}

// JinModel is the metric plugin implementing Jin 2022's ratio-quality
// model: it decomposes prediction-based compression into prediction,
// quantization, and encoding, runs the first two stages analytically over
// the data to obtain the quantization-code distribution, and derives the
// compression ratio from the Huffman code-length analysis plus a lossless
// stage efficiency — without running the expensive encoding stages.
type JinModel struct {
	pressio.BaseMetric
	Abs      float64
	Bins     int
	FastIter bool
	results  pressio.Options
}

// Name implements pressio.Metric.
func (*JinModel) Name() string { return "jin_model" }

// Configuration implements pressio.Metric: the model depends on the error
// bound, and it reads compressor internals (not black-box).
func (*JinModel) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.OptAbs, pressio.InvalidateErrorDependent})
	o.Set("jin_model:black_box", false)
	return o
}

// SetOptions implements pressio.Metric.
func (m *JinModel) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	if v, ok := o.GetBool(OptJinFastIterator); ok {
		m.FastIter = v
	}
	if v, ok := o.GetInt(OptJinQuantBins); ok && v >= 4 {
		m.Bins = int(v)
	}
	return nil
}

// Options implements pressio.Metric.
func (m *JinModel) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	o.Set(OptJinFastIterator, m.FastIter)
	o.Set(OptJinQuantBins, int64(m.bins()))
	return o
}

func (m *JinModel) bins() int {
	if m.Bins < 4 {
		return 65536
	}
	return m.Bins
}

func (m *JinModel) abs() float64 {
	if m.Abs <= 0 {
		return 1e-4
	}
	return m.Abs
}

// BeginCompress implements pressio.Metric: runs the analytic model.
func (m *JinModel) BeginCompress(in *pressio.Data) {
	vals := stats.ToFloat64(in)
	dims := in.Dims()
	var it ndIterator
	if m.FastIter {
		it = newFastIterator(dims)
	} else {
		it = newNaiveIterator(dims)
	}
	hist, outliers, n := lorenzoCodeHistogram(vals, dims, m.abs(), m.bins(), it, m.FastIter)
	r := pressio.Options{}
	if n == 0 {
		r.Set("jin_model:cr", 1.0)
		m.results = r
		return
	}
	cr := crFromCodeHistogram(hist, outliers, n, in.DType().Size()*8)
	r.Set("jin_model:cr", cr)
	r.Set("jin_model:outlier_fraction", float64(outliers)/float64(n))
	m.results = r
}

// Results implements pressio.Metric.
func (m *JinModel) Results() pressio.Options { return m.results.Clone() }

// lorenzoStrides computes element strides of dims.
func lorenzoStrides(dims []int) []int {
	str := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		str[i] = acc
		acc *= dims[i]
	}
	return str
}

// lorenzoCodeHistogram runs the prediction + quantization stages over the
// data (predicting from original neighbours, as the analytic model does)
// and histograms the quantization codes. The fast flag controls whether
// neighbour addresses come from precomputed offsets or are re-derived
// through per-term coordinate allocation, mirroring the two C++
// implementations the paper compares.
func lorenzoCodeHistogram(vals []float64, dims []int, abs float64, bins int, it ndIterator, fast bool) (hist map[int32]uint64, outliers uint64, n uint64) {
	str := lorenzoStrides(dims)
	nd := len(dims)
	step := 2 * abs
	half := float64(bins / 2)
	counts := make([]uint64, bins) // code c stored at c + bins/2
	for {
		idx, ok := it.Next()
		if !ok {
			break
		}
		coords := it.Coords()
		var pred float64
		// first-order Lorenzo over original values
		for s := 1; s < 1<<nd; s++ {
			inRange := true
			var off int
			for d := 0; d < nd; d++ {
				if s&(1<<d) != 0 {
					if coords[d] < 1 {
						inRange = false
						break
					}
					off += str[d]
				}
			}
			if !inRange {
				continue
			}
			if popcount(uint(s))%2 == 1 {
				pred += vals[idx-off]
			} else {
				pred -= vals[idx-off]
			}
		}
		diff := vals[idx] - pred
		c := math.Round(diff / step)
		n++
		if math.Abs(c) >= half {
			outliers++
			continue
		}
		counts[int(c)+bins/2]++
	}
	hist = make(map[int32]uint64, 1024)
	for i, c := range counts {
		if c != 0 {
			hist[int32(i-bins/2)] = c
		}
	}
	return hist, outliers, n
}

func popcount(x uint) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// crFromCodeHistogram converts the quantization-code distribution to a
// compression-ratio estimate: mean Huffman code length (the encoding-
// efficiency analysis), the outlier escape cost, the code-table header,
// and a lossless-stage efficiency factor.
func crFromCodeHistogram(hist map[int32]uint64, outliers, n uint64, elemBits int) float64 {
	meanBits := huffman.MeanCodeLength(hist)
	outFrac := float64(outliers) / float64(n)
	quantFrac := 1 - outFrac
	// escape symbol + exact value for outliers; canonical table header
	headerBits := float64(len(hist)*5*8) / float64(n)
	// DEFLATE on the Huffman stream typically removes residual
	// redundancy the per-symbol analysis cannot see (run structure);
	// the model uses a fixed stage-efficiency factor.
	const losslessEfficiency = 0.90
	estBits := (quantFrac*meanBits+outFrac*float64(elemBits+1))*losslessEfficiency + headerBits
	if estBits <= 0 {
		estBits = 0.01
	}
	cr := float64(elemBits) / estBits
	if cr < 1 {
		cr = 1
	}
	return cr
}

// jinScheme wires the jin_model metric as a scheme. The prediction IS the
// metric value, so the predictor is the identity module.
type jinScheme struct{}

func (*jinScheme) Name() string { return "jin2022" }

func (*jinScheme) Info() core.Info {
	return core.Info{
		Method:   "Jin [5, 6]",
		Training: false,
		Sampling: false,
		BlackBox: "no",
		Goal:     "fast",
		Metrics:  "CR, Bandwidth",
		Approach: "calculation",
	}
}

// Supports implements core.Scheme: the analytic model decomposes
// prediction-based compressors; it cannot describe transform coders,
// which is why Table 2 reports N/A for zfp.
func (*jinScheme) Supports(compressor string) bool { return compressor == "sz3" }

func (*jinScheme) Metrics() []string  { return []string{"jin_model"} }
func (*jinScheme) Features() []string { return []string{"jin_model:cr"} }
func (*jinScheme) Target() string     { return "size:compression_ratio" }

func (*jinScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.IdentityPredictor{}, nil
}
