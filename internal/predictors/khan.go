package predictors

import (
	"fmt"
	"math"

	"repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// Option keys of the khan_surrogate metric.
const (
	// OptKhanCompressor names the compressor whose stages are modelled
	// ("khan:compressor").
	OptKhanCompressor = "khan:compressor"
	// OptKhanSampleFraction sets the fraction of the data sampled
	// ("khan:sample_fraction").
	OptKhanSampleFraction = "khan:sample_fraction"
)

func init() {
	pressio.RegisterMetric("khan_surrogate", func() pressio.Metric { return &KhanSurrogate{} })
	core.RegisterScheme("khan2023", func() core.Scheme { return &khanScheme{} })
}

// KhanSurrogate is the metric plugin implementing the SECRE approach of
// Khan 2023: model the internal stages of the compressor (prediction +
// quantization + coding for SZ-style compressors; block transform + plane
// coding for ZFP-style) but evaluate the stage models only on a tightly
// coupled sample of the data, trading accuracy for a runtime far below a
// compressor invocation.
type KhanSurrogate struct {
	pressio.BaseMetric
	Compressor string
	Abs        float64
	Fraction   float64
	results    pressio.Options
}

// Name implements pressio.Metric.
func (*KhanSurrogate) Name() string { return "khan_surrogate" }

// Configuration implements pressio.Metric.
func (*KhanSurrogate) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.OptAbs, pressio.InvalidateErrorDependent})
	o.Set("khan_surrogate:black_box", false)
	return o
}

// SetOptions implements pressio.Metric.
func (m *KhanSurrogate) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	if v, ok := o.GetString(OptKhanCompressor); ok {
		m.Compressor = v
	}
	if v, ok := o.GetFloat(OptKhanSampleFraction); ok {
		if v <= 0 || v > 1 {
			return fmt.Errorf("khan_surrogate: sample fraction %v outside (0, 1]", v)
		}
		m.Fraction = v
	}
	return nil
}

// Options implements pressio.Metric.
func (m *KhanSurrogate) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.abs())
	o.Set(OptKhanCompressor, m.compressor())
	o.Set(OptKhanSampleFraction, m.fraction())
	return o
}

func (m *KhanSurrogate) abs() float64 {
	if m.Abs <= 0 {
		return 1e-4
	}
	return m.Abs
}

func (m *KhanSurrogate) compressor() string {
	if m.Compressor == "" {
		return "sz3"
	}
	return m.Compressor
}

func (m *KhanSurrogate) fraction() float64 {
	if m.Fraction <= 0 || m.Fraction > 1 {
		return 0.02
	}
	return m.Fraction
}

// BeginCompress implements pressio.Metric.
func (m *KhanSurrogate) BeginCompress(in *pressio.Data) {
	vals := stats.ToFloat64(in)
	r := pressio.Options{}
	elemBits := in.DType().Size() * 8
	var cr float64
	switch m.compressor() {
	case "zfp":
		cr = m.estimateZFP(vals, in.Dims(), elemBits)
	case "szx":
		cr = m.estimateSZX(vals, elemBits)
	default:
		cr = m.estimateSZ(vals, elemBits)
	}
	if cr < 1 {
		cr = 1
	}
	r.Set("khan_surrogate:cr", cr)
	m.results = r
}

// sampleRuns selects deterministic contiguous runs covering ~fraction of
// the data: tightly coupled sampling, cache-friendly and cheap. Each run
// is at least minRun elements so block-structured stage models always see
// whole blocks.
func (m *KhanSurrogate) sampleRuns(n, minRun int) [][2]int {
	const runs = 16
	target := int(float64(n) * m.fraction())
	if target < runs {
		target = min(n, runs)
	}
	runLen := target / runs
	if runLen < minRun {
		runLen = minRun
	}
	if runLen < 1 {
		runLen = 1
	}
	var out [][2]int
	rng := splitmix(uint64(n)*2654435761 + 12345)
	for i := 0; i < runs; i++ {
		if n <= runLen {
			out = append(out, [2]int{0, n})
			break
		}
		start := int(rng() % uint64(n-runLen))
		out = append(out, [2]int{start, start + runLen})
	}
	return out
}

func splitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// estimateSZ models the SZ stages on sampled runs: 1-D Lorenzo residuals,
// quantization, and an entropy-coding estimate.
func (m *KhanSurrogate) estimateSZ(vals []float64, elemBits int) float64 {
	abs := m.abs()
	step := 2 * abs
	hist := make(map[int64]uint64, 256)
	var total, outliers uint64
	for _, run := range m.sampleRuns(len(vals), 16) {
		prev := 0.0
		for i := run[0]; i < run[1]; i++ {
			diff := vals[i] - prev
			prev = vals[i]
			c := math.Round(diff / step)
			total++
			if math.Abs(c) >= 32768 {
				outliers++
				continue
			}
			hist[int64(c)]++
		}
	}
	if total == 0 {
		return 1
	}
	counts := make([]uint64, 0, len(hist))
	for _, c := range hist {
		counts = append(counts, c)
	}
	bitsPerSym := stats.EntropyFromCounts(counts)
	outFrac := float64(outliers) / float64(total)
	est := (1-outFrac)*bitsPerSym + outFrac*float64(elemBits+1)
	est *= 0.95 // lossless backend estimate
	if est <= 0 {
		est = 0.01
	}
	return float64(elemBits) / est
}

// estimateZFP models the ZFP stages on sampled 4^d blocks using the
// compressor's own block-bit estimator.
func (m *KhanSurrogate) estimateZFP(vals []float64, dims []int, elemBits int) float64 {
	nd := len(dims)
	if nd > 3 {
		nd = 3
	}
	if nd < 1 {
		return 1
	}
	blockElems := 1
	for i := 0; i < nd; i++ {
		blockElems *= 4
	}
	// sample runs, reshaped as flat blocks: a deliberate approximation —
	// the surrogate trades blocking fidelity for speed
	var totalBits float64
	var totalElems int
	block := make([]float64, blockElems)
	for _, run := range m.sampleRuns(len(vals), blockElems) {
		for start := run[0]; start+blockElems <= run[1]; start += blockElems {
			copy(block, vals[start:start+blockElems])
			totalBits += zfp.EstimateBlockBits(block, nd, m.abs())
			totalElems += blockElems
		}
	}
	if totalElems == 0 {
		return 1
	}
	est := totalBits / float64(totalElems)
	if est <= 0 {
		est = 0.01
	}
	return float64(elemBits) / est
}

// estimateSZX models the SZx constant-block detector on sampled runs.
func (m *KhanSurrogate) estimateSZX(vals []float64, elemBits int) float64 {
	abs := m.abs()
	const blockSize = 128
	var constant, totalBlocks int
	for _, run := range m.sampleRuns(len(vals), blockSize) {
		for start := run[0]; start+blockSize <= run[1]; start += blockSize {
			mn, mx := vals[start], vals[start]
			for _, v := range vals[start+1 : start+blockSize] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			totalBlocks++
			if mx-mn <= 2*abs {
				constant++
			}
		}
	}
	if totalBlocks == 0 {
		return 1
	}
	cFrac := float64(constant) / float64(totalBlocks)
	bitsPerVal := cFrac*(64.0/blockSize) + (1-cFrac)*float64(elemBits)
	return float64(elemBits) / (bitsPerVal + 1.0/blockSize)
}

// Results implements pressio.Metric.
func (m *KhanSurrogate) Results() pressio.Options { return m.results.Clone() }

// khanScheme wires khan_surrogate as a scheme with an identity predictor.
type khanScheme struct{}

func (*khanScheme) Name() string { return "khan2023" }

func (*khanScheme) Info() core.Info {
	return core.Info{
		Method:   "Khan [7]",
		Training: false,
		Sampling: true,
		BlackBox: "no",
		Goal:     "fast",
		Metrics:  "CR",
		Approach: "calculation",
	}
}

func (*khanScheme) Supports(compressor string) bool {
	switch compressor {
	case "sz3", "zfp", "szx":
		return true
	}
	return false
}

func (*khanScheme) Metrics() []string  { return []string{"khan_surrogate"} }
func (*khanScheme) Features() []string { return []string{"khan_surrogate:cr"} }
func (*khanScheme) Target() string     { return "size:compression_ratio" }

func (*khanScheme) NewPredictor(compressor string) (core.Predictor, error) {
	return &core.IdentityPredictor{}, nil
}
