package predictors

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mlkit"
)

// stateMagic frames serialized predictor state ("predictors:state") so a
// registry can persist it to disk and later validate what it is restoring
// into, instead of feeding bytes from one model family into another.
var stateMagic = [4]byte{'L', 'P', 'P', 'S'}

const stateVersion = 1

// ErrCorruptState marks predictor-state bytes whose envelope is
// malformed: wrong magic, truncated header, or a length field pointing
// past the end of the buffer.
var ErrCorruptState = errors.New("predictors: corrupt state envelope")

// UnknownPredictorError is returned when restoring serialized state whose
// recorded predictor name does not match what the scheme builds today —
// the unknown/renamed-predictor case. Callers get the typed mismatch
// (errors.As) instead of a panic or a silently zero-valued model.
type UnknownPredictorError struct {
	// Stored is the predictor name recorded in the envelope.
	Stored string
	// Want is the predictor name the scheme currently builds ("" when
	// the scheme itself was unknown).
	Want string
	// Scheme is the scheme the state was restored for.
	Scheme string
}

func (e *UnknownPredictorError) Error() string {
	if e.Want == "" {
		return fmt.Sprintf("predictors: state for unknown predictor %q (scheme %q)", e.Stored, e.Scheme)
	}
	return fmt.Sprintf("predictors: state recorded for predictor %q but scheme %q builds %q", e.Stored, e.Scheme, e.Want)
}

// MarshalState wraps a predictor's Save() bytes in a self-describing
// envelope: magic, version, predictor name, state length. The envelope is
// what registries should persist.
func MarshalState(p core.Predictor) ([]byte, error) {
	state, err := p.Save()
	if err != nil {
		return nil, err
	}
	name := p.Name()
	out := make([]byte, 0, 4+1+4+len(name)+4+len(state))
	out = append(out, stateMagic[:]...)
	out = append(out, stateVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(state)))
	out = append(out, state...)
	return out, nil
}

// UnmarshalState splits an envelope into the recorded predictor name and
// raw state bytes, returning ErrCorruptState on framing damage.
func UnmarshalState(b []byte) (name string, state []byte, err error) {
	if len(b) < 9 || [4]byte(b[:4]) != stateMagic {
		return "", nil, ErrCorruptState
	}
	if b[4] != stateVersion {
		return "", nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptState, b[4])
	}
	nameLen := int(binary.LittleEndian.Uint32(b[5:]))
	if nameLen < 0 || 9+nameLen+4 > len(b) {
		return "", nil, ErrCorruptState
	}
	name = string(b[9 : 9+nameLen])
	stateLen := int(binary.LittleEndian.Uint32(b[9+nameLen:]))
	off := 9 + nameLen + 4
	if stateLen < 0 || off+stateLen > len(b) {
		return "", nil, ErrCorruptState
	}
	return name, b[off : off+stateLen], nil
}

// RestoreState rebuilds the trained predictor a scheme uses for a
// compressor from envelope bytes. The envelope's recorded predictor name
// must match what the scheme builds; a mismatch — a renamed model family,
// or state produced by a different scheme — yields *UnknownPredictorError
// rather than loading bytes into the wrong model.
func RestoreState(schemeName, compressor string, b []byte) (core.Predictor, error) {
	stored, state, err := UnmarshalState(b)
	if err != nil {
		return nil, err
	}
	scheme, err := core.GetScheme(schemeName)
	if err != nil {
		return nil, &UnknownPredictorError{Stored: stored, Scheme: schemeName}
	}
	p, err := scheme.NewPredictor(compressor)
	if err != nil {
		return nil, err
	}
	if p.Name() != stored {
		return nil, &UnknownPredictorError{Stored: stored, Want: p.Name(), Scheme: schemeName}
	}
	if err := p.Load(state); err != nil {
		return nil, fmt.Errorf("predictors: loading %s state: %w", stored, err)
	}
	return p, nil
}

func init() {
	core.RegisterScheme("krasowska2021", func() core.Scheme { return &krasowskaScheme{} })
	core.RegisterScheme("underwood2023", func() core.Scheme { return &underwoodScheme{} })
	core.RegisterScheme("ganguli2023", func() core.Scheme { return &ganguliScheme{} })
}

// blackBoxSupports: black-box schemes work with any error-bounded
// compressor; the lossless baseline has no error bound but the features
// still apply, so it is accepted too.
func blackBoxSupports(string) bool { return true }

// krasowskaScheme is Krasowska 2021: quantized entropy + local variogram
// fitted with a simple linear regression — the first compressor-internal-
// free (black-box) CR predictor.
type krasowskaScheme struct{}

func (*krasowskaScheme) Name() string { return "krasowska2021" }

func (*krasowskaScheme) Info() core.Info {
	return core.Info{
		Method:   "Krasowska [9]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
	}
}

func (*krasowskaScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*krasowskaScheme) Metrics() []string {
	return []string{"quantized_entropy", "variogram"}
}

func (*krasowskaScheme) Features() []string {
	return []string{"quantized_entropy:bits", "variogram:gamma1", "variogram:slope"}
}

func (*krasowskaScheme) Target() string { return "size:compression_ratio" }

func (*krasowskaScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "linear_regression",
		Model:     &mlkit.LinearRegression{},
		ClampMin:  1,
	}, nil
}

// underwoodScheme is Underwood 2023: the variogram is exchanged for the
// SVD truncation (global spatial information) and the linear fit for a
// cubic spline regression. Accurate, but the SVD precompute dominates the
// cost, making it best when many predictions amortize one evaluation
// (paper §6).
type underwoodScheme struct{}

func (*underwoodScheme) Name() string { return "underwood2023" }

func (*underwoodScheme) Info() core.Info {
	return core.Info{
		Method:   "Underwood [17]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
	}
}

func (*underwoodScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*underwoodScheme) Metrics() []string {
	return []string{"svd_trunc", "quantized_entropy"}
}

func (*underwoodScheme) Features() []string {
	return []string{"svd_trunc:fraction", "quantized_entropy:bits"}
}

func (*underwoodScheme) Target() string { return "size:compression_ratio" }

func (*underwoodScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "cubic_spline",
		Model:     &mlkit.SplineRegression{Knots: 5},
		ClampMin:  1,
	}, nil
}

// ganguliScheme is Ganguli 2023: three bespoke spatial metrics
// (correlation, diversity, smoothness) plus coding gain and general
// distortion, fitted with a mixture regression and wrapped in conformal
// prediction for statistically bounded estimates.
type ganguliScheme struct{}

func (*ganguliScheme) Name() string { return "ganguli2023" }

func (*ganguliScheme) Info() core.Info {
	return core.Info{
		Method:   "Ganguli [2]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
		Features: "bounded",
	}
}

func (*ganguliScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*ganguliScheme) Metrics() []string {
	return []string{"spatial", "distortion"}
}

func (*ganguliScheme) Features() []string {
	return []string{
		"spatial:correlation", "spatial:diversity", "spatial:smoothness",
		"spatial:coding_gain", "distortion:general",
	}
}

func (*ganguliScheme) Target() string { return "size:compression_ratio" }

func (*ganguliScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "conformal_mixture",
		Model: &mlkit.Conformal{
			Base: &mlkit.MixtureRegression{K: 3, Seed: 17},
		},
		ClampMin: 1,
	}, nil
}
