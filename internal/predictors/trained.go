package predictors

import (
	"repro/internal/core"
	"repro/internal/mlkit"
)

func init() {
	core.RegisterScheme("krasowska2021", func() core.Scheme { return &krasowskaScheme{} })
	core.RegisterScheme("underwood2023", func() core.Scheme { return &underwoodScheme{} })
	core.RegisterScheme("ganguli2023", func() core.Scheme { return &ganguliScheme{} })
}

// blackBoxSupports: black-box schemes work with any error-bounded
// compressor; the lossless baseline has no error bound but the features
// still apply, so it is accepted too.
func blackBoxSupports(string) bool { return true }

// krasowskaScheme is Krasowska 2021: quantized entropy + local variogram
// fitted with a simple linear regression — the first compressor-internal-
// free (black-box) CR predictor.
type krasowskaScheme struct{}

func (*krasowskaScheme) Name() string { return "krasowska2021" }

func (*krasowskaScheme) Info() core.Info {
	return core.Info{
		Method:   "Krasowska [9]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
	}
}

func (*krasowskaScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*krasowskaScheme) Metrics() []string {
	return []string{"quantized_entropy", "variogram"}
}

func (*krasowskaScheme) Features() []string {
	return []string{"quantized_entropy:bits", "variogram:gamma1", "variogram:slope"}
}

func (*krasowskaScheme) Target() string { return "size:compression_ratio" }

func (*krasowskaScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "linear_regression",
		Model:     &mlkit.LinearRegression{},
		ClampMin:  1,
	}, nil
}

// underwoodScheme is Underwood 2023: the variogram is exchanged for the
// SVD truncation (global spatial information) and the linear fit for a
// cubic spline regression. Accurate, but the SVD precompute dominates the
// cost, making it best when many predictions amortize one evaluation
// (paper §6).
type underwoodScheme struct{}

func (*underwoodScheme) Name() string { return "underwood2023" }

func (*underwoodScheme) Info() core.Info {
	return core.Info{
		Method:   "Underwood [17]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
	}
}

func (*underwoodScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*underwoodScheme) Metrics() []string {
	return []string{"svd_trunc", "quantized_entropy"}
}

func (*underwoodScheme) Features() []string {
	return []string{"svd_trunc:fraction", "quantized_entropy:bits"}
}

func (*underwoodScheme) Target() string { return "size:compression_ratio" }

func (*underwoodScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "cubic_spline",
		Model:     &mlkit.SplineRegression{Knots: 5},
		ClampMin:  1,
	}, nil
}

// ganguliScheme is Ganguli 2023: three bespoke spatial metrics
// (correlation, diversity, smoothness) plus coding gain and general
// distortion, fitted with a mixture regression and wrapped in conformal
// prediction for statistically bounded estimates.
type ganguliScheme struct{}

func (*ganguliScheme) Name() string { return "ganguli2023" }

func (*ganguliScheme) Info() core.Info {
	return core.Info{
		Method:   "Ganguli [2]",
		Training: true,
		Sampling: false,
		BlackBox: "yes",
		Goal:     "accurate",
		Metrics:  "CR",
		Approach: "regression",
		Features: "bounded",
	}
}

func (*ganguliScheme) Supports(c string) bool { return blackBoxSupports(c) }

func (*ganguliScheme) Metrics() []string {
	return []string{"spatial", "distortion"}
}

func (*ganguliScheme) Features() []string {
	return []string{
		"spatial:correlation", "spatial:diversity", "spatial:smoothness",
		"spatial:coding_gain", "distortion:general",
	}
}

func (*ganguliScheme) Target() string { return "size:compression_ratio" }

func (*ganguliScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.ModelPredictor{
		ModelName: "conformal_mixture",
		Model: &mlkit.Conformal{
			Base: &mlkit.MixtureRegression{K: 3, Seed: 17},
		},
		ClampMin: 1,
	}, nil
}
