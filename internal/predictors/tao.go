package predictors

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// Option keys of the tao_sample metric.
const (
	// OptTaoCompressor names the compressor to trial ("tao:compressor").
	OptTaoCompressor = "tao:compressor"
	// OptTaoBlocks sets how many blocks are sampled ("tao:blocks").
	OptTaoBlocks = "tao:blocks"
	// OptTaoBlockElems sets the elements per sampled block
	// ("tao:block_elems").
	OptTaoBlockElems = "tao:block_elems"
)

func init() {
	pressio.RegisterMetric("tao_sample", func() pressio.Metric { return &TaoSample{} })
	core.RegisterScheme("tao2019", func() core.Scheme { return &taoScheme{} })
}

// TaoSample is the metric plugin implementing the earliest trial-based
// estimation method (Tao 2019, expanded by Liang 2019): sample blocks of
// the input, run the real compressor on the concatenated sample, and take
// the sample's compression ratio as the estimate. Accuracy is modest, but
// the method preserves the ranking between compressors, which is all its
// original compressor-selection use case needs (paper §2.1).
type TaoSample struct {
	pressio.BaseMetric
	Compressor string
	Blocks     int
	BlockElems int
	opts       pressio.Options
	results    pressio.Options
}

// Name implements pressio.Metric.
func (*TaoSample) Name() string { return "tao_sample" }

// Configuration implements pressio.Metric: running a compressor is a
// runtime observation and depends on the error configuration.
func (*TaoSample) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{
		pressio.OptAbs, pressio.InvalidateErrorDependent, pressio.InvalidateRuntime,
	})
	return o
}

// SetOptions implements pressio.Metric: all options are retained so the
// trialled compressor sees the caller's full configuration.
func (m *TaoSample) SetOptions(o pressio.Options) error {
	if m.opts == nil {
		m.opts = pressio.Options{}
	}
	m.opts.Merge(o)
	if v, ok := o.GetString(OptTaoCompressor); ok {
		m.Compressor = v
	}
	if v, ok := o.GetInt(OptTaoBlocks); ok {
		if v < 1 || v > 1024 {
			return fmt.Errorf("tao_sample: blocks %d out of range", v)
		}
		m.Blocks = int(v)
	}
	if v, ok := o.GetInt(OptTaoBlockElems); ok {
		if v < 16 {
			return fmt.Errorf("tao_sample: block_elems %d too small", v)
		}
		m.BlockElems = int(v)
	}
	return nil
}

// Options implements pressio.Metric.
func (m *TaoSample) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(OptTaoCompressor, m.compressor())
	o.Set(OptTaoBlocks, int64(m.blocks()))
	o.Set(OptTaoBlockElems, int64(m.blockElems()))
	return o
}

func (m *TaoSample) compressor() string {
	if m.Compressor == "" {
		return "sz3"
	}
	return m.Compressor
}

func (m *TaoSample) blocks() int {
	if m.Blocks <= 0 {
		return 8
	}
	return m.Blocks
}

func (m *TaoSample) blockElems() int {
	if m.BlockElems <= 0 {
		return 256 // based on compressor internals in the original design
	}
	return m.BlockElems
}

// BeginCompress implements pressio.Metric.
func (m *TaoSample) BeginCompress(in *pressio.Data) {
	r := pressio.Options{}
	vals := stats.ToFloat64(in)
	n := len(vals)
	be := m.blockElems()
	nb := m.blocks()
	if n == 0 {
		r.Set("tao_sample:cr", 1.0)
		m.results = r
		return
	}
	var sample []float64
	rng := splitmix(uint64(n)*0x9e3779b9 + 7)
	for b := 0; b < nb; b++ {
		if n <= be {
			sample = append(sample, vals...)
			break
		}
		start := int(rng() % uint64(n-be))
		sample = append(sample, vals[start:start+be]...)
	}
	// trial the real compressor on the sample
	comp, err := pressio.GetCompressor(m.compressor())
	if err != nil {
		r.Set("tao_sample:error", true)
		m.results = r
		return
	}
	if m.opts != nil {
		if err := comp.SetOptions(m.opts); err != nil {
			r.Set("tao_sample:error", true)
			m.results = r
			return
		}
	}
	var buf *pressio.Data
	if in.DType() == pressio.DTypeFloat64 {
		buf = pressio.FromFloat64(sample, len(sample))
	} else {
		f := make([]float32, len(sample))
		for i, v := range sample {
			f[i] = float32(v)
		}
		buf = pressio.FromFloat32(f, len(f))
	}
	compressed, err := comp.Compress(buf)
	if err != nil {
		r.Set("tao_sample:error", true)
		m.results = r
		return
	}
	cr := float64(buf.ByteSize()) / float64(compressed.ByteSize())
	if cr < 1 {
		cr = 1
	}
	r.Set("tao_sample:cr", cr)
	r.Set("tao_sample:sampled_elems", int64(len(sample)))
	m.results = r
}

// Results implements pressio.Metric.
func (m *TaoSample) Results() pressio.Options { return m.results.Clone() }

// taoScheme wires tao_sample as a scheme with an identity predictor.
type taoScheme struct{}

func (*taoScheme) Name() string { return "tao2019" }

func (*taoScheme) Info() core.Info {
	return core.Info{
		Method:   "Tao [15]",
		Training: false,
		Sampling: true,
		BlackBox: "partial",
		Goal:     "fast",
		Metrics:  "CR",
		Approach: "trial-based",
	}
}

// Supports implements core.Scheme: trialling works for any registered
// compressor.
func (*taoScheme) Supports(compressor string) bool {
	_, err := pressio.GetCompressor(compressor)
	return err == nil
}

func (*taoScheme) Metrics() []string  { return []string{"tao_sample"} }
func (*taoScheme) Features() []string { return []string{"tao_sample:cr"} }
func (*taoScheme) Target() string     { return "size:compression_ratio" }

func (*taoScheme) NewPredictor(string) (core.Predictor, error) {
	return &core.IdentityPredictor{}, nil
}
