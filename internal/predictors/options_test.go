package predictors

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pressio"
)

// TestSchemeSurfaceContracts sweeps every registered real scheme and
// checks the registry-facing surface every tool relies on: names map to
// their registry keys, targets are set, option structures round-trip.
func TestSchemeSurfaceContracts(t *testing.T) {
	for _, name := range []string{"tao2019", "krasowska2021", "underwood2023",
		"ganguli2023", "jin2022", "khan2023", "rahman2023", "wang2023"} {
		s, err := core.GetScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("%s: Name() = %q", name, s.Name())
		}
		if s.Target() != "size:compression_ratio" {
			t.Errorf("%s: Target() = %q", name, s.Target())
		}
		if len(s.Metrics()) == 0 || len(s.Features()) == 0 {
			t.Errorf("%s: empty metrics/features", name)
		}
		// every metric must exist in the registry and carry invalidation
		// metadata
		for _, mn := range s.Metrics() {
			m, err := pressio.GetMetric(mn)
			if err != nil {
				t.Errorf("%s: metric %s: %v", name, mn, err)
				continue
			}
			if inv, ok := m.Configuration().GetStrings(pressio.CfgInvalidate); !ok || len(inv) == 0 {
				t.Errorf("%s: metric %s lacks %s", name, mn, pressio.CfgInvalidate)
			}
		}
	}
}

// TestPredictionMetricOptionsRoundTrip checks that each scheme-specific
// metric reports its configuration back through Options() after
// SetOptions, the introspection predict-bench's hashing depends on.
func TestPredictionMetricOptionsRoundTrip(t *testing.T) {
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 0.25)
	opts.Set(OptJinFastIterator, true)
	opts.Set(OptJinQuantBins, 1024)
	opts.Set(OptKhanCompressor, "zfp")
	opts.Set(OptKhanSampleFraction, 0.1)
	opts.Set(OptTaoCompressor, "szx")
	opts.Set(OptTaoBlocks, 4)
	opts.Set(OptTaoBlockElems, 128)
	opts.Set(OptZperfPredictor, "interp")
	opts.Set(OptZperfCoder, "entropy")
	opts.Set(OptZperfLossless, "none")
	opts.Set(OptZperfSampleFraction, 0.5)

	jin := &JinModel{}
	if err := jin.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	got := jin.Options()
	if v, _ := got.GetFloat(pressio.OptAbs); v != 0.25 {
		t.Errorf("jin abs = %v", v)
	}
	if v, _ := got.GetBool(OptJinFastIterator); !v {
		t.Error("jin fast iterator lost")
	}
	if v, _ := got.GetInt(OptJinQuantBins); v != 1024 {
		t.Errorf("jin bins = %v", v)
	}

	khan := &KhanSurrogate{}
	if err := khan.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	got = khan.Options()
	if v, _ := got.GetString(OptKhanCompressor); v != "zfp" {
		t.Errorf("khan compressor = %q", v)
	}
	if v, _ := got.GetFloat(OptKhanSampleFraction); v != 0.1 {
		t.Errorf("khan fraction = %v", v)
	}

	tao := &TaoSample{}
	if err := tao.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	got = tao.Options()
	if v, _ := got.GetString(OptTaoCompressor); v != "szx" {
		t.Errorf("tao compressor = %q", v)
	}
	if v, _ := got.GetInt(OptTaoBlocks); v != 4 {
		t.Errorf("tao blocks = %v", v)
	}
	if v, _ := got.GetInt(OptTaoBlockElems); v != 128 {
		t.Errorf("tao block elems = %v", v)
	}

	zperf := &ZperfModel{}
	if err := zperf.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	got = zperf.Options()
	if v, _ := got.GetString(OptZperfPredictor); v != "interp" {
		t.Errorf("zperf predictor = %q", v)
	}
	if v, _ := got.GetString(OptZperfCoder); v != "entropy" {
		t.Errorf("zperf coder = %q", v)
	}
	if v, _ := got.GetString(OptZperfLossless); v != "none" {
		t.Errorf("zperf lossless = %q", v)
	}
	if v, _ := got.GetFloat(OptZperfSampleFraction); v != 0.5 {
		t.Errorf("zperf fraction = %v", v)
	}
}

// TestKhanSZXEstimate covers the szx stage surrogate: a mostly-constant
// field should be estimated far more compressible than a noisy one.
func TestKhanSZXEstimate(t *testing.T) {
	constant := pressio.NewFloat32(4096)
	noisy := pressio.NewFloat32(4096)
	for i := 0; i < noisy.Len(); i++ {
		noisy.Set(i, float64(i%977)*0.37)
	}
	crOf := func(d *pressio.Data) float64 {
		m := &KhanSurrogate{}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, 1e-3)
		opts.Set(OptKhanCompressor, "szx")
		if err := m.SetOptions(opts); err != nil {
			t.Fatal(err)
		}
		m.BeginCompress(d)
		cr, ok := m.Results().GetFloat("khan_surrogate:cr")
		if !ok {
			t.Fatal("missing khan_surrogate:cr")
		}
		return cr
	}
	cc := crOf(constant)
	nc := crOf(noisy)
	if cc <= nc*2 {
		t.Errorf("constant field (%v) should estimate far better than noisy (%v)", cc, nc)
	}
	if nc < 1 {
		t.Errorf("estimate below 1: %v", nc)
	}
}
