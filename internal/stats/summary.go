package stats

import (
	"math"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/pressio"
)

// Summary is the fused single-pass feature extraction over one data
// buffer: min/max/mean/std/sparsity and (optionally) a fixed-width
// histogram, computed by parallel chunked sweeps over the native element
// type — no float64 materialization, no per-metric re-reads. One Summary
// is shared by every metric observing the same buffer (SummaryOf), which
// is what lets a chain of N metrics touch the data once instead of N
// times.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Std      float64
	// ZeroCount is the number of elements exactly equal to zero — the
	// numerator of the eps=0 sparsity fraction.
	ZeroCount int
	// NaNCount and InfCount record non-finite elements. Non-finite
	// values poison sums, so Mean/Std are computed over finite elements
	// only and the counts let callers detect the exclusion.
	NaNCount int
	InfCount int
	// Bins and Hist hold the equal-width histogram of the values over
	// [Min, Max], bit-identical to Histogram(xs, Min, Max, Bins). Hist
	// is nil when the summary was computed with bins == 0.
	Bins int
	Hist []uint64
}

// Range returns Max - Min, the value range feeding the stat:range and
// general-distortion features.
func (s *Summary) Range() float64 { return s.Max - s.Min }

// Sparsity returns the exact-zero fraction, matching Sparsity(xs, 0).
func (s *Summary) Sparsity() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.ZeroCount) / float64(s.N)
}

// Entropy returns the Shannon entropy in bits of the histogram, matching
// EntropyFromCounts(Histogram(xs, Min, Max, Bins)).
func (s *Summary) Entropy() float64 { return EntropyFromCounts(s.Hist) }

// momentAcc is one chunk's partial reduction for the first sweep.
type momentAcc struct {
	min, max float64
	sum      float64
	n        int // finite element count
	zeros    int
	nans     int
	infs     int
}

// sweepMoments reduces one chunk of the buffer via the generic accessor;
// typed fast paths below shadow it for float32/float64.
func sweepMoments(at func(int) float64, lo, hi int) momentAcc {
	acc := momentAcc{min: math.Inf(1), max: math.Inf(-1)}
	for i := lo; i < hi; i++ {
		v := at(i)
		if v == 0 {
			acc.zeros++
		}
		if math.IsNaN(v) {
			acc.nans++
			continue
		}
		if math.IsInf(v, 0) {
			acc.infs++
		}
		if v < acc.min {
			acc.min = v
		}
		if v > acc.max {
			acc.max = v
		}
		acc.sum += v
		acc.n++
	}
	return acc
}

func momentsF32(xs []float32, lo, hi int) momentAcc {
	acc := momentAcc{min: math.Inf(1), max: math.Inf(-1)}
	for _, f := range xs[lo:hi] {
		v := float64(f)
		if v == 0 {
			acc.zeros++
		}
		if math.IsNaN(v) {
			acc.nans++
			continue
		}
		if math.IsInf(v, 0) {
			acc.infs++
		}
		if v < acc.min {
			acc.min = v
		}
		if v > acc.max {
			acc.max = v
		}
		acc.sum += v
		acc.n++
	}
	return acc
}

func momentsF64(xs []float64, lo, hi int) momentAcc {
	acc := momentAcc{min: math.Inf(1), max: math.Inf(-1)}
	for _, v := range xs[lo:hi] {
		if v == 0 {
			acc.zeros++
		}
		if math.IsNaN(v) {
			acc.nans++
			continue
		}
		if math.IsInf(v, 0) {
			acc.infs++
		}
		if v < acc.min {
			acc.min = v
		}
		if v > acc.max {
			acc.max = v
		}
		acc.sum += v
		acc.n++
	}
	return acc
}

// devHistAcc is one chunk's partial reduction for the second sweep:
// squared deviations from the global mean plus the histogram counts.
type devHistAcc struct {
	sumSq float64
	hist  []uint64
}

// Summarize computes the fused summary of d with the given histogram bin
// count (0 skips the histogram) using up to `workers` pool workers. The
// result is independent of the worker count up to float addition order;
// histogram counts are exact. Prefer SummaryOf, which caches per buffer
// generation.
func Summarize(d *pressio.Data, bins, workers int) *Summary {
	n := d.Len()
	s := &Summary{N: n, Bins: bins}
	if n == 0 {
		if bins > 0 {
			s.Hist = make([]uint64, bins)
		}
		return s
	}

	// sweep 1: min/max/sum/zeros in parallel chunks over the native type.
	// Partials land in a chunk-indexed slice and merge sequentially in
	// chunk order: float sums merged in completion order would make Mean
	// (and everything derived from it) vary run to run, and replicated
	// predictd relies on refitting a model being byte-reproducible.
	bounds := parallel.Split(workers, n)
	accs := make([]momentAcc, len(bounds)-1)
	parallel.ForTasks(workers, len(accs), func(ci int) {
		lo, hi := bounds[ci], bounds[ci+1]
		switch d.DType() {
		case pressio.DTypeFloat32:
			accs[ci] = momentsF32(d.Float32(), lo, hi)
		case pressio.DTypeFloat64:
			accs[ci] = momentsF64(d.Float64(), lo, hi)
		default:
			accs[ci] = sweepMoments(d.At, lo, hi)
		}
	})
	total := momentAcc{min: math.Inf(1), max: math.Inf(-1)}
	for _, acc := range accs {
		if acc.min < total.min {
			total.min = acc.min
		}
		if acc.max > total.max {
			total.max = acc.max
		}
		total.sum += acc.sum
		total.n += acc.n
		total.zeros += acc.zeros
		total.nans += acc.nans
		total.infs += acc.infs
	}
	s.ZeroCount = total.zeros
	s.NaNCount = total.nans
	s.InfCount = total.infs
	if total.n == 0 {
		// all-NaN buffer: no finite values to summarize
		if bins > 0 {
			s.Hist = make([]uint64, bins)
			s.Hist[0] = uint64(total.nans)
		}
		return s
	}
	s.Min = total.min
	s.Max = total.max
	s.Mean = total.sum / float64(total.n)

	// sweep 2: squared deviations and histogram against the known range
	lo64, hi64, mean := s.Min, s.Max, s.Mean
	degenerate := bins > 0 && hi64 <= lo64
	scale := 0.0
	if bins > 0 && !degenerate {
		scale = float64(bins) / (hi64 - lo64)
	}
	var hist []uint64
	if bins > 0 {
		hist = make([]uint64, bins)
	}
	accs2 := make([]devHistAcc, len(bounds)-1)
	parallel.ForTasks(workers, len(accs2), func(ci int) {
		clo, chi := bounds[ci], bounds[ci+1]
		acc := devHistAcc{}
		if bins > 0 {
			acc.hist = make([]uint64, bins)
		}
		at := d.At
		sweep := func(v float64) {
			if !math.IsNaN(v) {
				dv := v - mean
				acc.sumSq += dv * dv
			}
			if bins > 0 {
				if degenerate {
					acc.hist[0]++
					return
				}
				i := int((v - lo64) * scale)
				if i < 0 {
					i = 0
				}
				if i >= bins {
					i = bins - 1
				}
				acc.hist[i]++
			}
		}
		switch d.DType() {
		case pressio.DTypeFloat32:
			for _, f := range d.Float32()[clo:chi] {
				sweep(float64(f))
			}
		case pressio.DTypeFloat64:
			for _, v := range d.Float64()[clo:chi] {
				sweep(v)
			}
		default:
			for i := clo; i < chi; i++ {
				sweep(at(i))
			}
		}
		accs2[ci] = acc
	})
	var sumSq float64
	for _, acc := range accs2 {
		sumSq += acc.sumSq
		for i, c := range acc.hist {
			if c != 0 {
				hist[i] += c
			}
		}
	}
	s.Std = math.Sqrt(sumSq / float64(total.n))
	s.Hist = hist
	return s
}

// --- per-buffer derived-value cache ------------------------------------

// cacheEntry holds the derived values of one (Data pointer, version)
// generation. A new generation invalidates every derived value at once.
type cacheEntry struct {
	data    *pressio.Data
	version uint64

	f64     []float64
	summary *Summary

	qeOK   bool
	qeAbs  float64
	qeBits float64
}

// derivedCache is a small move-to-front cache keyed by Data pointer
// identity. Eight entries cover the working set of a metric chain, a
// bench sweep cell, and concurrent predictd requests without pinning an
// unbounded amount of buffer-sized memory.
type derivedCache struct {
	mu      sync.Mutex
	entries []*cacheEntry // most recently used first
}

const derivedCacheCap = 8

var cache derivedCache

// lookup returns (creating if needed) the entry for d's current
// generation. Callers must hold no locks; the entry is returned outside
// the cache lock and may be concurrently filled by racing goroutines —
// fills are idempotent, so last-write-wins is sound.
func (c *derivedCache) lookup(d *pressio.Data) *cacheEntry {
	v := d.Version()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if e.data == d {
			if e.version != v {
				e = &cacheEntry{data: d, version: v}
				c.entries[i] = e
			}
			// move to front
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			return e
		}
	}
	e := &cacheEntry{data: d, version: v}
	if len(c.entries) < derivedCacheCap {
		c.entries = append(c.entries, nil)
	}
	copy(c.entries[1:], c.entries)
	c.entries[0] = e
	return e
}

// Float64Of returns a float64 view of d, cached per buffer generation: a
// float64 buffer is returned directly, anything else is converted once
// and reused by every subsequent caller (metrics, kernels, predictors)
// until the buffer mutates. The returned slice is shared — callers must
// not modify it.
func Float64Of(d *pressio.Data) []float64 {
	if d.DType() == pressio.DTypeFloat64 {
		return d.Float64()
	}
	e := cache.lookup(d)
	cache.mu.Lock()
	xs := e.f64
	cache.mu.Unlock()
	if xs != nil {
		return xs
	}
	n := d.Len()
	out := make([]float64, n)
	if d.DType() == pressio.DTypeFloat32 {
		src := d.Float32()
		parallel.For(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(src[i])
			}
		})
	} else {
		for i := 0; i < n; i++ {
			out[i] = d.At(i)
		}
	}
	cache.mu.Lock()
	e.f64 = out
	cache.mu.Unlock()
	return out
}

// SummaryOf returns the fused summary of d's current generation, cached
// so a chain of metrics (and predictd's feature synthesis) computes it
// once per buffer. bins == 0 requests moments only; if a histogram with
// different bin width than the cached one is requested, the histogram
// sweep reruns but the moments are reused.
func SummaryOf(d *pressio.Data, bins, workers int) *Summary {
	e := cache.lookup(d)
	cache.mu.Lock()
	s := e.summary
	cache.mu.Unlock()
	if s != nil && (bins == 0 || s.Bins == bins) {
		return s
	}
	s = Summarize(d, bins, workers)
	cache.mu.Lock()
	if e.summary == nil || bins != 0 {
		e.summary = s
	}
	cache.mu.Unlock()
	return s
}

// QuantizedEntropyOf returns the quantized entropy of d at the given
// bound, cached per (generation, bound). The computation is a single
// sweep over the native element type; when the quantized key span is
// small it counts into a pooled dense array instead of a map, which is
// the common case for real error bounds and is several times faster.
func QuantizedEntropyOf(d *pressio.Data, abs float64, workers int) float64 {
	e := cache.lookup(d)
	cache.mu.Lock()
	if e.qeOK && e.qeAbs == abs {
		bits := e.qeBits
		cache.mu.Unlock()
		return bits
	}
	cache.mu.Unlock()
	bits := quantizedEntropyData(d, abs, workers)
	cache.mu.Lock()
	e.qeOK, e.qeAbs, e.qeBits = true, abs, bits
	cache.mu.Unlock()
	return bits
}

// denseCountPool recycles the dense counting arrays of the quantized
// entropy fast path.
var denseCountPool = sync.Pool{New: func() any { return []uint32(nil) }}

// maxDenseSpan bounds the dense fast path's key span (8 MiB of counters);
// wider spans (pathological bounds) fall back to the map path.
const maxDenseSpan = 1 << 21

func quantizedEntropyData(d *pressio.Data, abs float64, workers int) float64 {
	n := d.Len()
	if n == 0 {
		return 0
	}
	if abs <= 0 {
		// entropy of exact values — rare path, via the cached view
		return QuantizedEntropy(Float64Of(d), abs)
	}
	q := 2 * abs
	s := SummaryOf(d, 0, workers)
	if s.NaNCount == 0 && s.InfCount == 0 {
		kmin := int64(math.Floor(s.Min / q))
		kmax := int64(math.Floor(s.Max / q))
		span := kmax - kmin + 1
		if span > 0 && span <= maxDenseSpan {
			counts := denseCountPool.Get().([]uint32)
			if int64(len(counts)) < span {
				counts = make([]uint32, span)
			}
			counts = counts[:span]
			countInto := func(v float64) {
				k := int64(math.Floor(v/q)) - kmin
				// clamp: float rounding at the extremes can land one
				// cell outside the derived span
				if k < 0 {
					k = 0
				}
				if k >= span {
					k = span - 1
				}
				counts[k]++
			}
			switch d.DType() {
			case pressio.DTypeFloat32:
				for _, f := range d.Float32() {
					countInto(float64(f))
				}
			case pressio.DTypeFloat64:
				for _, v := range d.Float64() {
					countInto(v)
				}
			default:
				for i := 0; i < n; i++ {
					countInto(d.At(i))
				}
			}
			var h float64
			ft := float64(n)
			for i := range counts {
				c := counts[i]
				if c != 0 {
					p := float64(c) / ft
					h -= p * math.Log2(p)
					counts[i] = 0 // zero while hot for pool reuse
				}
			}
			denseCountPool.Put(counts)
			return h
		}
	}
	// exact fallback: parallel partial maps, merged
	var mu sync.Mutex
	counts := make(map[int64]uint64, 1024)
	parallel.For(workers, n, func(lo, hi int) {
		local := make(map[int64]uint64, 256)
		switch d.DType() {
		case pressio.DTypeFloat32:
			for _, f := range d.Float32()[lo:hi] {
				local[int64(math.Floor(float64(f)/q))]++
			}
		case pressio.DTypeFloat64:
			for _, v := range d.Float64()[lo:hi] {
				local[int64(math.Floor(v/q))]++
			}
		default:
			for i := lo; i < hi; i++ {
				local[int64(math.Floor(d.At(i)/q))]++
			}
		}
		mu.Lock()
		for k, c := range local {
			counts[k] += c
		}
		mu.Unlock()
	})
	// reduce in key order: summing -p·log2(p) in map iteration order would
	// make the entropy vary in its last bits from run to run
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cs := make([]uint64, 0, len(keys))
	for _, k := range keys {
		cs = append(cs, counts[k])
	}
	return EntropyFromCounts(cs)
}
