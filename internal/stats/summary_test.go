package stats

import (
	"math"
	"testing"

	"repro/internal/pressio"
)

func TestHistogramDegenerateRange(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	h := Histogram(xs, 3, 3, 8) // lo == hi
	if h[0] != 4 {
		t.Errorf("lo==hi: counts[0] = %d, want 4", h[0])
	}
	for i, c := range h[1:] {
		if c != 0 {
			t.Errorf("lo==hi: counts[%d] = %d, want 0", i+1, c)
		}
	}
	h = Histogram(xs, 5, 2, 4) // hi < lo
	if h[0] != 4 {
		t.Errorf("hi<lo: counts[0] = %d, want 4", h[0])
	}
}

func TestHistogramSingleBin(t *testing.T) {
	xs := []float64{-1, 0, 2.5, 7}
	h := Histogram(xs, -1, 7, 1)
	if len(h) != 1 || h[0] != 4 {
		t.Errorf("bins==1: got %v, want [4]", h)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := Histogram(nil, 0, 1, 4)
	var total uint64
	for _, c := range h {
		total += c
	}
	if len(h) != 4 || total != 0 {
		t.Errorf("empty input: got %v, want 4 zero bins", h)
	}
}

func TestHistogramNonFinite(t *testing.T) {
	xs := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0.5}
	h := Histogram(xs, 0, 1, 4)
	var total uint64
	for _, c := range h {
		total += c
	}
	// every element lands in some bin — Go's out-of-range float→int
	// conversion yields the platform "indefinite" value, which the clamp
	// sends to bin 0 for NaN and both infinities
	if total != 4 {
		t.Errorf("non-finite: %d elements binned, want 4", total)
	}
	if h[2] != 1 {
		t.Errorf("0.5 should land in bin 2: %v", h)
	}
}

func summaryFor(t *testing.T, vals []float32, bins int) *Summary {
	t.Helper()
	d := pressio.FromFloat32(vals, len(vals))
	return Summarize(d, bins, 1)
}

func TestSummaryMatchesReferenceStats(t *testing.T) {
	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/37) * float64(i%89))
		if i%97 == 0 {
			vals[i] = 0
		}
	}
	d := pressio.FromFloat32(vals, 100, 100)
	s := Summarize(d, 256, 1)

	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = float64(v)
	}
	lo, hi := d.Range()
	if s.Min != lo || s.Max != hi {
		t.Errorf("min/max = %g/%g, want %g/%g", s.Min, s.Max, lo, hi)
	}
	if diff := math.Abs(s.Mean - Mean(xs)); diff > 1e-9*math.Abs(s.Mean) {
		t.Errorf("mean = %g, want %g", s.Mean, Mean(xs))
	}
	if diff := math.Abs(s.Std - Std(xs)); diff > 1e-9*s.Std {
		t.Errorf("std = %g, want %g", s.Std, Std(xs))
	}
	if s.Sparsity() != Sparsity(xs, 0) {
		t.Errorf("sparsity = %g, want %g", s.Sparsity(), Sparsity(xs, 0))
	}
	ref := Histogram(xs, lo, hi, 256)
	for i := range ref {
		if s.Hist[i] != ref[i] {
			t.Fatalf("hist[%d] = %d, want %d", i, s.Hist[i], ref[i])
		}
	}
	if s.Entropy() != EntropyFromCounts(ref) {
		t.Errorf("entropy = %g, want %g", s.Entropy(), EntropyFromCounts(ref))
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := summaryFor(t, []float32{}, 16)
	if s.N != 0 || s.Sparsity() != 0 || s.Entropy() != 0 {
		t.Errorf("empty summary: N=%d sparsity=%g entropy=%g", s.N, s.Sparsity(), s.Entropy())
	}
	if len(s.Hist) != 16 {
		t.Errorf("empty summary hist len = %d, want 16", len(s.Hist))
	}
}

func TestSummaryConstantField(t *testing.T) {
	s := summaryFor(t, []float32{5, 5, 5, 5, 5}, 8)
	if s.Min != 5 || s.Max != 5 || s.Range() != 0 {
		t.Errorf("constant field: min=%g max=%g", s.Min, s.Max)
	}
	if s.Mean != 5 || s.Std != 0 {
		t.Errorf("constant field: mean=%g std=%g", s.Mean, s.Std)
	}
	// degenerate range: everything in bin 0, matching Histogram
	if s.Hist[0] != 5 {
		t.Errorf("constant field: hist[0]=%d, want 5", s.Hist[0])
	}
	if s.Entropy() != 0 {
		t.Errorf("constant field entropy = %g, want 0", s.Entropy())
	}
}

func TestSummarySingleBin(t *testing.T) {
	s := summaryFor(t, []float32{1, 2, 3, 4}, 1)
	if len(s.Hist) != 1 || s.Hist[0] != 4 {
		t.Errorf("bins==1: hist = %v, want [4]", s.Hist)
	}
	if s.Entropy() != 0 {
		t.Errorf("bins==1 entropy = %g, want 0", s.Entropy())
	}
}

func TestSummaryNaNInf(t *testing.T) {
	nan32 := float32(math.NaN())
	inf32 := float32(math.Inf(1))
	s := summaryFor(t, []float32{1, nan32, 2, inf32, 3}, 4)
	if s.NaNCount != 1 || s.InfCount != 1 {
		t.Errorf("NaN/Inf counts = %d/%d, want 1/1", s.NaNCount, s.InfCount)
	}
	// min/max skip NaN (comparison semantics) but include Inf
	if s.Min != 1 || !math.IsInf(s.Max, 1) {
		t.Errorf("min/max = %g/%g, want 1/+Inf", s.Min, s.Max)
	}
	var total uint64
	for _, c := range s.Hist {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram binned %d elements, want all 5", total)
	}
}

func TestSummaryAllNaN(t *testing.T) {
	nan32 := float32(math.NaN())
	s := summaryFor(t, []float32{nan32, nan32, nan32}, 4)
	if s.NaNCount != 3 {
		t.Errorf("NaNCount = %d, want 3", s.NaNCount)
	}
	if s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("all-NaN moments should be zero: %+v", s)
	}
	if s.Hist[0] != 3 {
		t.Errorf("all-NaN hist[0] = %d, want 3", s.Hist[0])
	}
}

func TestSummaryOfCachesPerGeneration(t *testing.T) {
	d := pressio.FromFloat32([]float32{1, 2, 3, 4}, 4)
	s1 := SummaryOf(d, 8, 1)
	s2 := SummaryOf(d, 8, 1)
	if s1 != s2 {
		t.Errorf("same generation should return the cached summary")
	}
	d.Set(0, 100)
	s3 := SummaryOf(d, 8, 1)
	if s3 == s1 {
		t.Errorf("mutation must invalidate the cached summary")
	}
	if s3.Max != 100 {
		t.Errorf("post-mutation max = %g, want 100", s3.Max)
	}
}

func TestFloat64OfCachesPerGeneration(t *testing.T) {
	d := pressio.FromFloat32([]float32{1, 2, 3}, 3)
	a := Float64Of(d)
	b := Float64Of(d)
	if &a[0] != &b[0] {
		t.Errorf("same generation should share one conversion")
	}
	d.Set(1, 7)
	c := Float64Of(d)
	if c[1] != 7 {
		t.Errorf("post-mutation conversion = %v, want index 1 == 7", c)
	}
	// float64 input passes through without copying
	d64 := pressio.FromFloat64([]float64{1, 2}, 2)
	if &Float64Of(d64)[0] != &d64.Float64()[0] {
		t.Errorf("float64 buffer should be returned directly")
	}
}

func TestQuantizedEntropyOfMatchesReference(t *testing.T) {
	vals := make([]float32, 5000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 11))
	}
	d := pressio.FromFloat32(vals, len(vals))
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = float64(v)
	}
	for _, abs := range []float64{1e-1, 1e-3, 1e-6} {
		got := QuantizedEntropyOf(d, abs, 1)
		want := QuantizedEntropy(xs, abs)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("abs=%g: quantized entropy = %g, want %g", abs, got, want)
		}
	}
	// non-finite values force the exact map fallback
	vals[17] = float32(math.NaN())
	d2 := pressio.FromFloat32(vals, len(vals))
	xs[17] = math.NaN()
	got := QuantizedEntropyOf(d2, 1e-3, 1)
	want := QuantizedEntropy(xs, 1e-3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("NaN fallback: quantized entropy = %g, want %g", got, want)
	}
}
