package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pressio"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, "Mean", Mean(xs), 2.5, 1e-12)
	almost(t, "Variance", Variance(xs), 1.25, 1e-12)
	almost(t, "Std", Std(xs), math.Sqrt(1.25), 1e-12)
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestMedian(t *testing.T) {
	almost(t, "odd", Median([]float64{3, 1, 2}), 2, 0)
	almost(t, "even", Median([]float64{4, 1, 3, 2}), 2.5, 0)
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	// input must not be reordered
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestMedAPE(t *testing.T) {
	pred := []float64{110, 90, 100}
	act := []float64{100, 100, 100}
	almost(t, "MedAPE", MedAPE(pred, act), 10, 1e-12)
	// zero actuals are skipped
	almost(t, "MedAPE with zero", MedAPE([]float64{5, 110}, []float64{0, 100}), 10, 1e-12)
	if MedAPE([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Error("perfect prediction should be 0%")
	}
}

func TestSparsity(t *testing.T) {
	xs := []float64{0, 0, 1e-9, 5, -3}
	almost(t, "Sparsity", Sparsity(xs, 1e-6), 0.6, 1e-12)
	if Sparsity(nil, 1) != 0 {
		t.Error("empty sparsity should be 0")
	}
}

func TestHistogramAndEntropy(t *testing.T) {
	xs := []float64{0, 0.1, 0.9, 1.0, 0.5, -5, 10}
	h := Histogram(xs, 0, 1, 4)
	var total uint64
	for _, c := range h {
		total += c
	}
	if total != uint64(len(xs)) {
		t.Errorf("histogram loses mass: %d != %d", total, len(xs))
	}
	// uniform 2-bin distribution has entropy 1
	almost(t, "entropy", EntropyFromCounts([]uint64{5, 5}), 1, 1e-12)
	if EntropyFromCounts([]uint64{10, 0}) != 0 {
		t.Error("deterministic distribution should have zero entropy")
	}
	if EntropyFromCounts(nil) != 0 {
		t.Error("empty counts should have zero entropy")
	}
	// degenerate range: everything lands in bin 0
	h = Histogram(xs, 3, 3, 4)
	if h[0] != uint64(len(xs)) {
		t.Error("degenerate range should clamp to bin 0")
	}
}

func TestQuantizedEntropyMonotoneInBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	loose := QuantizedEntropy(xs, 0.5)
	tight := QuantizedEntropy(xs, 1e-4)
	if loose >= tight {
		t.Errorf("looser bound should reduce quantized entropy: loose=%v tight=%v", loose, tight)
	}
	if QuantizedEntropy(xs, 0) < tight {
		t.Error("exact entropy should be at least any quantized entropy")
	}
}

func TestVariogramSmoothVsNoise(t *testing.T) {
	n := 64
	smooth := make([]float64, n*n)
	noise := make([]float64, n*n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			smooth[i*n+j] = math.Sin(float64(i)/8) + math.Cos(float64(j)/8)
			noise[i*n+j] = rng.NormFloat64()
		}
	}
	gs := Variogram(smooth, []int{n, n}, 3)
	gn := Variogram(noise, []int{n, n}, 3)
	if gs[0] >= gn[0] {
		t.Errorf("smooth field should have smaller gamma(1): %v vs %v", gs[0], gn[0])
	}
	// variogram grows with lag for smooth fields
	if !(gs[0] < gs[1] && gs[1] < gs[2]) {
		t.Errorf("smooth variogram should increase with lag: %v", gs)
	}
}

func TestVariogramConstantField(t *testing.T) {
	xs := make([]float64, 100)
	g := Variogram(xs, []int{10, 10}, 2)
	if g[0] != 0 || g[1] != 0 {
		t.Errorf("constant field variogram = %v, want zeros", g)
	}
}

func TestSpatialCorrelation(t *testing.T) {
	n := 128
	smooth := make([]float64, n)
	for i := range smooth {
		smooth[i] = float64(i)
	}
	c := SpatialCorrelation(smooth, []int{n})
	if c < 0.99 {
		t.Errorf("linear ramp correlation = %v, want ~1", c)
	}
	rng := rand.New(rand.NewSource(3))
	noise := make([]float64, 4096)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	cn := SpatialCorrelation(noise, []int{4096})
	if math.Abs(cn) > 0.1 {
		t.Errorf("white noise correlation = %v, want ~0", cn)
	}
	// constant field counts as perfectly correlated
	if SpatialCorrelation(make([]float64, 64), []int{64}) != 1 {
		t.Error("constant field should be perfectly correlated")
	}
}

func TestSpatialSmoothnessBounds(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		s := SpatialSmoothness(vals, []int{len(vals)})
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpatialDiversity(t *testing.T) {
	// homogeneous noise: low diversity; half-zero half-noise: high
	rng := rand.New(rand.NewSource(4))
	homo := make([]float64, 4096)
	mixed := make([]float64, 4096)
	for i := range homo {
		homo[i] = rng.NormFloat64()
		if i >= len(mixed)/2 {
			mixed[i] = rng.NormFloat64()
		}
	}
	dh := SpatialDiversity(homo, []int{4096}, 16)
	dm := SpatialDiversity(mixed, []int{4096}, 16)
	if dh >= dm {
		t.Errorf("mixed field should be more diverse: homo=%v mixed=%v", dh, dm)
	}
	if SpatialDiversity(nil, nil, 4) != 0 {
		t.Error("empty diversity should be 0")
	}
}

func TestCodingGain(t *testing.T) {
	n := 4096
	smooth := make([]float64, n)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 100)
	}
	g := CodingGain(smooth, []int{n})
	if g < 20 {
		t.Errorf("smooth field coding gain = %v dB, want > 20", g)
	}
	rng := rand.New(rand.NewSource(5))
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	gn := CodingGain(noise, []int{n})
	if gn > 3 {
		t.Errorf("white noise coding gain = %v dB, want ~0", gn)
	}
	if CodingGain(make([]float64, 10), []int{10}) != 60 {
		t.Error("constant field should cap at 60 dB")
	}
}

func TestGeneralDistortion(t *testing.T) {
	almost(t, "distortion", GeneralDistortion(2, 1), 0, 1e-12)
	almost(t, "distortion16", GeneralDistortion(2, 1.0/65536), 16, 1e-9)
	if GeneralDistortion(0, 1) != 0 || GeneralDistortion(1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestToFloat64(t *testing.T) {
	d32 := pressio.FromFloat32([]float32{1, 2, 3}, 3)
	v := ToFloat64(d32)
	if len(v) != 3 || v[2] != 3 {
		t.Errorf("float32 conversion wrong: %v", v)
	}
	d64 := pressio.FromFloat64([]float64{4, 5}, 2)
	if &ToFloat64(d64)[0] != &d64.Float64()[0] {
		t.Error("float64 should not be copied")
	}
	di := pressio.NewInt32(2)
	di.Set(1, 9)
	if ToFloat64(di)[1] != 9 {
		t.Error("int32 conversion wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	// interpolation between order statistics: p25 of 1..5 is 2
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("p25 = %g, want 2", got)
	}
	if got := Quantile([]float64{1, 2}, 0.75); got != 1.75 {
		t.Errorf("p75 of {1,2} = %g, want 1.75", got)
	}
	if got := Quantile(nil, 0.9); got != 0 {
		t.Errorf("empty input = %g, want 0", got)
	}
	// input must not be reordered
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("input was modified: %v", xs)
	}
}
