package stats

import (
	"math"
	"sort"
)

// SingularValues returns the singular values (descending) of the row-major
// m×n matrix a. It computes the eigenvalues of the smaller Gram matrix
// (A·Aᵀ or Aᵀ·A, whichever is smaller) with a cyclic Jacobi eigensolver,
// which is simple, robust, and adequate for the feature-extraction matrix
// sizes used here (the paper notes the SVD feature is expensive relative
// to other metrics even with optimized implementations — that relative
// cost is preserved).
func SingularValues(a []float64, m, n int) []float64 {
	if m <= 0 || n <= 0 || len(a) != m*n {
		return nil
	}
	k := m
	gram := make([]float64, 0)
	if m <= n {
		// G = A·Aᵀ (m×m)
		gram = make([]float64, m*m)
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				var s float64
				ri, rj := a[i*n:(i+1)*n], a[j*n:(j+1)*n]
				for t := 0; t < n; t++ {
					s += ri[t] * rj[t]
				}
				gram[i*m+j] = s
				gram[j*m+i] = s
			}
		}
	} else {
		// G = Aᵀ·A (n×n)
		k = n
		gram = make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var s float64
				for t := 0; t < m; t++ {
					s += a[t*n+i] * a[t*n+j]
				}
				gram[i*n+j] = s
				gram[j*n+i] = s
			}
		}
	}
	eig := jacobiEigenvalues(gram, k)
	out := make([]float64, len(eig))
	for i, v := range eig {
		if v < 0 {
			v = 0 // numerical noise
		}
		out[i] = math.Sqrt(v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// jacobiEigenvalues computes the eigenvalues of the symmetric k×k matrix g
// (row-major, destroyed) via cyclic Jacobi rotations.
func jacobiEigenvalues(g []float64, k int) []float64 {
	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				off += g[i*k+j] * g[i*k+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < k-1; p++ {
			for q := p + 1; q < k; q++ {
				apq := g[p*k+q]
				if apq == 0 {
					continue
				}
				app := g[p*k+p]
				aqq := g[q*k+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// apply rotation to rows/cols p and q
				for i := 0; i < k; i++ {
					gip := g[i*k+p]
					giq := g[i*k+q]
					g[i*k+p] = c*gip - s*giq
					g[i*k+q] = s*gip + c*giq
				}
				for i := 0; i < k; i++ {
					gpi := g[p*k+i]
					gqi := g[q*k+i]
					g[p*k+i] = c*gpi - s*gqi
					g[q*k+i] = s*gpi + c*gqi
				}
			}
		}
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = g[i*k+i]
	}
	return out
}

// SVDTruncation returns the smallest rank r such that the top-r singular
// values carry at least fraction tau of the total squared energy, together
// with the fraction r/min(m,n) — the SVD-truncation feature of Underwood
// 2023. Fields with little global spatial structure need high rank.
func SVDTruncation(xs []float64, dims []int, tau float64) (rank int, fraction float64) {
	m, n := unfold(dims)
	if m == 0 || n == 0 {
		return 0, 0
	}
	var sv []float64
	if m >= n {
		sv = SingularValuesOneSided(xs, m, n)
	} else {
		sv = SingularValues(xs, m, n)
	}
	var total float64
	for _, s := range sv {
		total += s * s
	}
	if total == 0 {
		return 0, 0
	}
	var acc float64
	for i, s := range sv {
		acc += s * s
		if acc >= tau*total {
			rank = i + 1
			break
		}
	}
	if rank == 0 {
		rank = len(sv)
	}
	return rank, float64(rank) / float64(len(sv))
}

// unfold maps an n-dimensional shape to a 2-D matricization: the first
// dimension becomes rows and the remaining dimensions are flattened into
// columns (mode-1 unfolding). 1-D data is folded into a near-square matrix
// so the SVD still measures structure.
func unfold(dims []int) (m, n int) {
	switch len(dims) {
	case 0:
		return 0, 0
	case 1:
		total := dims[0]
		if total == 0 {
			return 0, 0
		}
		m = int(math.Sqrt(float64(total)))
		for m > 1 && total%m != 0 {
			m--
		}
		if m < 1 {
			m = 1
		}
		return m, total / m
	default:
		// group all leading dimensions into rows: the tall-skinny
		// matricization that keeps the expensive one-sided path applicable
		m = 1
		for _, d := range dims[:len(dims)-1] {
			m *= d
		}
		return m, dims[len(dims)-1]
	}
}

// SingularValuesOneSided computes singular values with one-sided Jacobi
// rotations applied directly to the columns of the row-major m×n matrix
// (m ≥ n is fastest; the matrix is copied). Unlike SingularValues it
// never forms a Gram matrix, which is the numerically robust but
// expensive formulation — the cost profile the paper attributes to the
// Underwood 2023 SVD feature (§6: the SVD dominates that scheme's
// runtime even with optimized implementations).
func SingularValuesOneSided(a []float64, m, n int) []float64 {
	if m <= 0 || n <= 0 || len(a) != m*n {
		return nil
	}
	// column-major copy for cache-friendly column rotations
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = a[i*n+j]
		}
		cols[j] = col
	}
	const maxSweeps = 30
	const tol = 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp, cq := cols[p], cols[q]
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					app += cp[i] * cp[i]
					aqq += cq[i] * cq[i]
					apq += cp[i] * cq[i]
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				rotated = true
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < m; i++ {
					vp := cp[i]
					vq := cq[i]
					cp[i] = c*vp - s*vq
					cq[i] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += cols[j][i] * cols[j][i]
		}
		out[j] = math.Sqrt(norm)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
