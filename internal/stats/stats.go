// Package stats implements the statistical feature extractors used by the
// compression-performance prediction schemes: moments, histograms, Shannon
// and quantized entropy, variograms (Krasowska 2021), truncated SVD
// (Underwood 2023), the spatial correlation/diversity/smoothness trio and
// coding gain (Ganguli 2023), and evaluation statistics such as the median
// absolute percentage error used in the paper's Table 2.
package stats

import (
	"math"
	"sort"

	"repro/internal/pressio"
)

// ToFloat64 converts any numeric Data buffer to a float64 slice. A float64
// buffer is returned directly without copying; other dtypes are converted
// once per buffer generation and the cached slice is shared between all
// callers (see Float64Of), so the result must be treated as read-only.
func ToFloat64(d *pressio.Data) []float64 {
	return Float64Of(d)
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median, or 0 for empty input. The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between order statistics, or 0 for empty input. The input
// is not modified. It backs the latency quantiles (p50/p90/p99) the
// serving subsystem reports on /statz.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[len(tmp)-1]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// MedAPE returns the median absolute percentage error (in percent) of
// predictions against actuals — the prediction-quality metric of the
// paper's evaluation. Pairs whose actual value is zero are skipped.
func MedAPE(predicted, actual []float64) float64 {
	var apes []float64
	for i := range predicted {
		if i >= len(actual) || actual[i] == 0 {
			continue
		}
		apes = append(apes, math.Abs((predicted[i]-actual[i])/actual[i])*100)
	}
	return Median(apes)
}

// Sparsity returns the fraction of elements whose magnitude is at most
// eps — the property Rahman 2023's sparsity correction factor targets.
func Sparsity(xs []float64, eps float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if math.Abs(v) <= eps {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Histogram buckets xs into bins equal-width bins over [lo, hi] and
// returns the counts. Values outside the range are clamped into the edge
// bins. bins must be positive.
func Histogram(xs []float64, lo, hi float64, bins int) []uint64 {
	counts := make([]uint64, bins)
	if hi <= lo {
		counts[0] = uint64(len(xs))
		return counts
	}
	scale := float64(bins) / (hi - lo)
	for _, v := range xs {
		i := int((v - lo) * scale)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// EntropyFromCounts returns the Shannon entropy in bits of the empirical
// distribution described by counts.
func EntropyFromCounts(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// QuantizedEntropy returns the Shannon entropy in bits of the data after
// uniform quantization with bin width 2*absBound — the error-dependent
// statistic introduced by Krasowska 2021. A non-positive bound yields the
// entropy of the exact values.
func QuantizedEntropy(xs []float64, absBound float64) float64 {
	counts := make(map[int64]uint64, 1024)
	if absBound <= 0 {
		// entropy of distinct values
		exact := make(map[float64]uint64, 1024)
		for _, v := range xs {
			exact[v]++
		}
		keys := make([]float64, 0, len(exact))
		for k := range exact {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		cs := make([]uint64, 0, len(keys))
		for _, k := range keys {
			cs = append(cs, exact[k])
		}
		return EntropyFromCounts(cs)
	}
	q := 2 * absBound
	for _, v := range xs {
		counts[int64(math.Floor(v/q))]++
	}
	// key order, not map order: the float reduction must be reproducible
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cs := make([]uint64, 0, len(keys))
	for _, k := range keys {
		cs = append(cs, counts[k])
	}
	return EntropyFromCounts(cs)
}

// strides returns the element stride of each dimension for C-ordered dims.
func strides(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

// Variogram computes the empirical semivariogram gamma(h) for lags
// h = 1..maxLag along each dimension, averaged over dimensions:
//
//	gamma(h) = 1/(2 N_h) * sum (z(x+h e_d) - z(x))^2
//
// The returned slice has maxLag entries (gamma(1)..gamma(maxLag)). This is
// the "local variogram" statistic of Krasowska 2021; its small-lag values
// capture how quickly nearby samples decorrelate.
func Variogram(xs []float64, dims []int, maxLag int) []float64 {
	out := make([]float64, maxLag)
	if len(dims) == 0 {
		return out
	}
	str := strides(dims)
	for h := 1; h <= maxLag; h++ {
		var sum float64
		var count int
		for d := range dims {
			if dims[d] <= h {
				continue
			}
			// positions decompose as i = b·(stride·span) + c·stride + j
			// with c the coordinate along d; pairs are valid when
			// c + h < span, so iterate block/coordinate/offset without
			// per-element division
			stride := str[d]
			span := dims[d]
			block := stride * span
			lag := h * stride
			for base := 0; base < len(xs); base += block {
				for c := 0; c+h < span; c++ {
					row := base + c*stride
					a := xs[row : row+stride]
					b := xs[row+lag : row+lag+stride]
					for j := range a {
						diff := b[j] - a[j]
						sum += diff * diff
					}
					count += stride
				}
			}
		}
		if count > 0 {
			out[h-1] = sum / (2 * float64(count))
		}
	}
	return out
}

// SpatialCorrelation returns the mean lag-1 Pearson autocorrelation across
// dimensions — Ganguli 2023's spatial-correlation feature. It is in
// [-1, 1]; smooth fields approach 1.
func SpatialCorrelation(xs []float64, dims []int) float64 {
	if len(dims) == 0 || len(xs) == 0 {
		return 0
	}
	str := strides(dims)
	var total float64
	var used int
	for d := range dims {
		if dims[d] < 2 {
			continue
		}
		stride := str[d]
		span := dims[d]
		block := stride * span
		var sa, sb, saa, sbb, sab float64
		var n float64
		for base := 0; base < len(xs); base += block {
			for c := 0; c+1 < span; c++ {
				row := base + c*stride
				av := xs[row : row+stride]
				bv := xs[row+stride : row+2*stride]
				for j := range av {
					a, b := av[j], bv[j]
					sa += a
					sb += b
					saa += a * a
					sbb += b * b
					sab += a * b
				}
				n += float64(stride)
			}
		}
		if n < 2 {
			continue
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		if va <= 0 || vb <= 0 {
			// constant along this dimension: perfectly predictable
			total += 1
			used++
			continue
		}
		total += cov / math.Sqrt(va*vb)
		used++
	}
	if used == 0 {
		return 0
	}
	return total / float64(used)
}

// SpatialSmoothness returns 1 - E[(z(x+1)-z(x))^2] / (2 Var z), clamped to
// [0, 1]: 1 for perfectly smooth fields, 0 for white noise (for which the
// mean squared difference equals twice the variance).
func SpatialSmoothness(xs []float64, dims []int) float64 {
	v := Variance(xs)
	if v == 0 {
		return 1
	}
	g := Variogram(xs, dims, 1)
	s := 1 - g[0]/v
	// Overflowing inputs (v or g infinite) yield NaN; treat as rough.
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SpatialDiversity measures how heterogeneous the field is across space:
// the coefficient of variation of block standard deviations over a grid of
// blockCount^d blocks (capped by the data size). Homogeneous fields score
// near 0; fields mixing sparse and dense regions score high. This is the
// spatial-diversity feature of Ganguli 2023 and is the property the paper
// blames for sampling methods' failures on Hurricane.
func SpatialDiversity(xs []float64, dims []int, blockCount int) float64 {
	if len(xs) == 0 || blockCount < 1 {
		return 0
	}
	// Partition along the first dimension only; with C order this gives
	// contiguous slabs, which is both cache-friendly and
	// dimension-agnostic.
	n := len(xs)
	blocks := blockCount
	if blocks > n {
		blocks = n
	}
	blockStds := make([]float64, 0, blocks)
	size := n / blocks
	if size == 0 {
		size = 1
	}
	for b := 0; b < blocks; b++ {
		lo := b * size
		hi := lo + size
		if b == blocks-1 {
			hi = n
		}
		if lo >= n {
			break
		}
		blockStds = append(blockStds, Std(xs[lo:hi]))
	}
	m := Mean(blockStds)
	if m == 0 {
		return 0
	}
	return Std(blockStds) / m
}

// CodingGain returns the prediction gain of a one-step linear predictor in
// decibels: 10*log10(Var(z) / Var(z - z_prev)), averaged over dimensions
// and floored at 0. High coding gain means decorrelating transforms or
// predictors will shrink the data a lot — the coding-gain feature of
// Ganguli 2023.
func CodingGain(xs []float64, dims []int) float64 {
	v := Variance(xs)
	if v == 0 {
		return 60 // constant field: cap at 60 dB, effectively "free"
	}
	g := Variogram(xs, dims, 1)
	residual := 2 * g[0] // E[(z(x+1)-z(x))^2]
	if residual <= 0 {
		return 60
	}
	gain := 10 * math.Log10(v/(residual/2))
	if gain < 0 {
		return 0
	}
	if gain > 60 {
		return 60
	}
	return gain
}

// GeneralDistortion returns the log2 signal-range-to-error-bound ratio,
// log2(range / (2*abs)), floored at 0 — the number of significant bit
// planes an error-bounded compressor must preserve, Ganguli 2023's
// general-distortion feature and the primary error-dependent input of
// most schemes.
func GeneralDistortion(valueRange, absBound float64) float64 {
	if absBound <= 0 || valueRange <= 0 {
		return 0
	}
	d := math.Log2(valueRange / (2 * absBound))
	if d < 0 {
		return 0
	}
	return d
}
