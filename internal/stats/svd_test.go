package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingularValuesIdentity(t *testing.T) {
	// 3x3 identity: all singular values are 1
	a := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	sv := SingularValues(a, 3, 3)
	if len(sv) != 3 {
		t.Fatalf("got %d singular values, want 3", len(sv))
	}
	for i, s := range sv {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("sv[%d] = %v, want 1", i, s)
		}
	}
}

func TestSingularValuesDiagonal(t *testing.T) {
	a := []float64{3, 0, 0, 0, 2, 0, 0, 0, 1}
	sv := SingularValues(a, 3, 3)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-9 {
			t.Errorf("sv[%d] = %v, want %v", i, sv[i], want[i])
		}
	}
}

func TestSingularValuesKnownMatrix(t *testing.T) {
	// A = [[1, 0], [0, 1], [1, 1]]; AᵀA = [[2,1],[1,2]], eigenvalues 3 and 1
	a := []float64{1, 0, 0, 1, 1, 1}
	sv := SingularValues(a, 3, 2)
	if len(sv) != 2 {
		t.Fatalf("got %d singular values, want 2", len(sv))
	}
	if math.Abs(sv[0]-math.Sqrt(3)) > 1e-9 || math.Abs(sv[1]-1) > 1e-9 {
		t.Errorf("sv = %v, want [sqrt(3), 1]", sv)
	}
}

func TestSingularValuesFrobenius(t *testing.T) {
	// sum of squared singular values equals squared Frobenius norm
	rng := rand.New(rand.NewSource(1))
	m, n := 17, 29
	a := make([]float64, m*n)
	var frob float64
	for i := range a {
		a[i] = rng.NormFloat64()
		frob += a[i] * a[i]
	}
	sv := SingularValues(a, m, n)
	if len(sv) != m {
		t.Fatalf("got %d singular values, want %d (min dim)", len(sv), m)
	}
	var sum float64
	for _, s := range sv {
		sum += s * s
	}
	if math.Abs(sum-frob)/frob > 1e-9 {
		t.Errorf("energy %v != Frobenius^2 %v", sum, frob)
	}
}

func TestSingularValuesWideVsTall(t *testing.T) {
	// transposing must not change the singular values
	rng := rand.New(rand.NewSource(2))
	m, n := 5, 11
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	at := make([]float64, n*m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			at[j*m+i] = a[i*n+j]
		}
	}
	sv := SingularValues(a, m, n)
	svt := SingularValues(at, n, m)
	for i := range sv {
		if math.Abs(sv[i]-svt[i]) > 1e-8 {
			t.Errorf("sv[%d]: %v vs %v", i, sv[i], svt[i])
		}
	}
}

func TestSingularValuesBadInput(t *testing.T) {
	if SingularValues(nil, 0, 0) != nil {
		t.Error("empty input should return nil")
	}
	if SingularValues([]float64{1, 2}, 2, 2) != nil {
		t.Error("mismatched size should return nil")
	}
}

func TestSVDTruncationLowRank(t *testing.T) {
	// rank-1 matrix: one singular value carries all the energy
	m, n := 16, 16
	a := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64(i+1) * float64(j+1)
		}
	}
	rank, frac := SVDTruncation(a, []int{m, n}, 0.99)
	if rank != 1 {
		t.Errorf("rank-1 matrix truncation rank = %d, want 1", rank)
	}
	if frac <= 0 || frac > 1 {
		t.Errorf("fraction = %v out of range", frac)
	}
}

func TestSVDTruncationFullRankNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 24, 24
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	rank, _ := SVDTruncation(a, []int{m, n}, 0.99)
	if rank < m/2 {
		t.Errorf("white noise should need high rank, got %d of %d", rank, m)
	}
}

func TestSVDTruncation1D(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 10)
	}
	rank, frac := SVDTruncation(xs, []int{100}, 0.99)
	if rank <= 0 || frac <= 0 {
		t.Errorf("1-D fold failed: rank=%d frac=%v", rank, frac)
	}
}

func TestSVDTruncationDegenerate(t *testing.T) {
	rank, frac := SVDTruncation(nil, nil, 0.99)
	if rank != 0 || frac != 0 {
		t.Error("empty input should give zero truncation")
	}
	zero := make([]float64, 16)
	rank, frac = SVDTruncation(zero, []int{4, 4}, 0.99)
	if rank != 0 || frac != 0 {
		t.Error("all-zero input should give zero truncation")
	}
}

func BenchmarkSVDTruncation64x2048(b *testing.B) {
	// the Underwood 2023 feature at the default field unfolding
	rng := rand.New(rand.NewSource(4))
	dims := []int{64, 64, 32}
	xs := make([]float64, 64*64*32)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVDTruncation(xs, dims, 0.99)
	}
}

func BenchmarkVariogram(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{64, 64, 32}
	xs := make([]float64, 64*64*32)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Variogram(xs, dims, 4)
	}
}
