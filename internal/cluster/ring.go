// Package cluster turns predictd into a replicated service: an
// opthash-space consistent-hash ring assigns every model/job partition
// an owner, the store's CRC-framed WAL frames are shipped owner →
// follower through a durable per-node replication log, and a thin
// stateless router health-probes members, routes fits to owners and
// predictions to any live replica, and fails ownership over to the
// most-caught-up follower when an owner dies. The crash-consistency
// machinery of internal/store and internal/serve (journal-before-ack,
// publish-once-per-opthash, Recover replay) is the replication
// primitive: a shipped frame is exactly a WAL frame, and failover is
// exactly journal recovery run over the shipped log.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node count per member; 64 keeps the
// partition spread within a few percent of even for small clusters.
const defaultVnodes = 64

// Ring is an immutable consistent-hash ring over the cluster members.
// Keys are partition keys — "scheme/compressor", the prefix every model
// and job opthash key carries — so one partition's fits always land on
// one owner, which is what keeps each opthash single-writer.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // member names, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the named members with vnodes virtual
// points each (0 picks the default). Node order does not matter: the
// ring depends only on the set of names.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", n, i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the member owning the partition key.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct members for the partition key,
// owner first, walking the ring clockwise from the key's position —
// the owner plus its R−1 followers.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := map[string]bool{}
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// PartitionKey is the ring key of a (scheme, compressor) pair — the
// shared prefix of every model/ and job/ opthash key in the store, so
// everything about one trained model hashes to one owner.
func PartitionKey(scheme, compressor string) string {
	return scheme + "/" + compressor
}
