package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/vfs"
)

func frame(key, val string) store.Frame {
	return store.Frame{Op: store.FramePut, Key: key, Value: []byte(val)}
}

func TestLogAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, vfs.OS, "n1")
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range []string{"a", "b", "c"} {
		seq, err := l.Append(frame("k/"+kv, kv))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Errorf("append %d got seq %d", i, seq)
		}
	}
	if l.LastSeq() != 3 {
		t.Errorf("LastSeq = %d", l.LastSeq())
	}
	l.Close()

	l2, err := OpenLog(dir, vfs.OS, "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 {
		t.Fatalf("reopened LastSeq = %d, want 3", l2.LastSeq())
	}
	ents := l2.EntriesFrom(2, 10)
	if len(ents) != 2 || ents[0].Seq != 2 || ents[1].Seq != 3 {
		t.Fatalf("EntriesFrom(2) = %+v", ents)
	}
	f, _, err := store.DecodeFrame(ents[0].Frame)
	if err != nil || f.Key != "k/b" {
		t.Errorf("entry 2 decodes to %+v, %v", f, err)
	}
}

func TestLogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, vfs.OS, "n1")
	if err != nil {
		t.Fatal(err)
	}
	l.Append(frame("a", "1"))
	l.Append(frame("b", "2"))
	l.Close()

	path := filepath.Join(dir, "n1.rlog")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{3, 0, 0, 0, 0, 0, 0, 0, 99}) // half a header + garbage
	f.Close()

	l2, err := OpenLog(dir, vfs.OS, "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", l2.LastSeq())
	}
	// the tail was physically cut, so a fresh append lands clean
	if seq, err := l2.Append(frame("c", "3")); err != nil || seq != 3 {
		t.Fatalf("append after truncation = %d, %v", seq, err)
	}
	l2.Close()
	l3, err := OpenLog(dir, vfs.OS, "n1")
	if err != nil || l3.LastSeq() != 3 {
		t.Fatalf("reopen after heal: %d, %v", l3.LastSeq(), err)
	}
	l3.Close()
}

func TestLogAppendRawDupGapAndCorrupt(t *testing.T) {
	l, err := OpenLog(t.TempDir(), vfs.OS, "n2")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	f1 := store.EncodeFrame(frame("a", "1"))
	if err := l.AppendRaw(1, f1); err != nil {
		t.Fatal(err)
	}
	// duplicate delivery (stream resume) is a no-op
	if err := l.AppendRaw(1, f1); err != nil {
		t.Fatalf("dup seq rejected: %v", err)
	}
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq after dup = %d", l.LastSeq())
	}
	// a gap means frames were lost: hard error
	if err := l.AppendRaw(3, store.EncodeFrame(frame("c", "3"))); err == nil {
		t.Fatal("gap accepted")
	}
	// satellite: a CRC-corrupt shipped frame must be rejected before it
	// touches the log — same checksum logic Fsck applies to the WAL
	bad := append([]byte(nil), store.EncodeFrame(frame("b", "2"))...)
	bad[len(bad)-1] ^= 0x10
	err = l.AppendRaw(2, bad)
	if err == nil || !strings.Contains(err.Error(), "corrupt frame rejected") {
		t.Fatalf("corrupt frame error = %v", err)
	}
	if l.LastSeq() != 1 {
		t.Fatalf("corrupt frame advanced the log to %d", l.LastSeq())
	}
	// the good version of seq 2 still lands
	if err := l.AppendRaw(2, store.EncodeFrame(frame("b", "2"))); err != nil {
		t.Fatal(err)
	}
}
