package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/store"
)

type tnode struct {
	name string
	st   *store.Store
	n    *Node
	mux  *http.ServeMux
	srv  *httptest.Server
}

// startCluster brings up an in-process cluster: real stores, real
// replication logs, real HTTP between members — only the listeners are
// httptest.
func startCluster(t *testing.T, names []string, tweak func(name string, cfg *NodeConfig)) map[string]*tnode {
	t.Helper()
	nodes := map[string]*tnode{}
	urls := map[string]string{}
	for _, name := range names {
		mux := http.NewServeMux()
		nodes[name] = &tnode{name: name, mux: mux, srv: httptest.NewServer(mux)}
		urls[name] = nodes[name].srv.URL
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, name := range names {
		tn := nodes[name]
		dir := t.TempDir()
		st, err := store.Open(filepath.Join(dir, "store"))
		if err != nil {
			t.Fatal(err)
		}
		peers := map[string]string{}
		for _, o := range names {
			if o != name {
				peers[o] = urls[o]
			}
		}
		cfg := NodeConfig{
			Name: name, Peers: peers, ReplDir: filepath.Join(dir, "repl"),
			PollInterval: 5 * time.Millisecond, AckTimeout: 2 * time.Second,
			RequestTimeout: time.Second,
		}
		if tweak != nil {
			tweak(name, &cfg)
		}
		n, err := NewNode(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Register(tn.mux)
		n.Start(ctx)
		tn.st, tn.n = st, n
		t.Cleanup(func() { tn.srv.Close(); n.Close(); st.Close() })
	}
	return nodes
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicationConvergence(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2", "n3"}, nil)

	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("model/s/c/h%d", i)
		if err := nodes["n1"].st.Put(k, []byte(fmt.Sprintf("bytes-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes["n1"].st.Delete("model/s/c/h0"); err != nil {
		t.Fatal(err)
	}

	for _, follower := range []string{"n2", "n3"} {
		f := nodes[follower]
		waitFor(t, follower+" convergence", func() bool {
			return f.n.Status().Applied["n1"] == nodes["n1"].n.log.LastSeq()
		})
		if v, ok, _ := f.st.Get("model/s/c/h3"); !ok || string(v) != "bytes-3" {
			t.Errorf("%s: replicated value = %q %v", follower, v, ok)
		}
		if _, ok, _ := f.st.Get("model/s/c/h0"); ok {
			t.Errorf("%s: replicated delete did not land", follower)
		}
		// followers author nothing: their own streams must stay empty —
		// in particular the repl/applied watermarks must not be mirrored
		if got := f.n.log.LastSeq(); got != 0 {
			t.Errorf("%s authored %d frames of its own", follower, got)
		}
		if st := f.n.Status(); st.Divergence != 0 || st.ApplyErrors != 0 {
			t.Errorf("%s status = %+v", follower, st)
		}
	}
}

func TestBarrierReleasesOnFollowerAck(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, nil)
	if err := nodes["n1"].st.Put("model/s/c/h", []byte("m")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := nodes["n1"].n.Barrier(ctx); err != nil {
		t.Fatalf("barrier with a live follower: %v", err)
	}
	if seq := nodes["n1"].n.Status().Acks["n2"]; seq < 1 {
		t.Errorf("n1 saw ack %d from n2", seq)
	}
}

func TestBarrierTimesOutWithoutFollowers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	n, err := NewNode(st, NodeConfig{
		Name: "n1", Peers: map[string]string{"n2": dead.URL},
		ReplDir: filepath.Join(dir, "repl"),
		MinAcks: 1, AckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := st.Put("model/s/c/h", []byte("m")); err != nil {
		t.Fatal(err)
	}
	err = n.Barrier(context.Background())
	if err == nil || !strings.Contains(err.Error(), "0/1 follower acks") {
		t.Fatalf("barrier without followers = %v", err)
	}
}

func TestDivergenceCounterFiresOnConflictingPublish(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, nil)
	if err := nodes["n1"].st.Put("model/s/c/h", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "n2 applied n1's publish", func() bool {
		return nodes["n2"].n.Status().Applied["n1"] == 1
	})
	// a second writer publishing different bytes under the same opthash —
	// the violation single-owner routing exists to prevent
	if err := nodes["n2"].st.Put("model/s/c/h", []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "n1 applied the conflicting publish", func() bool {
		return nodes["n1"].n.Status().Applied["n2"] == 1
	})
	if d := nodes["n1"].n.Status().Divergence; d != 1 {
		t.Errorf("n1 divergence = %d, want 1", d)
	}
	// convergence still holds: last writer wins everywhere
	if v, _, _ := nodes["n1"].st.Get("model/s/c/h"); string(v) != "bbb" {
		t.Errorf("n1 value = %q", v)
	}
}

func TestRelayServesDeadAuthorsStream(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, nil)
	for i := 0; i < 3; i++ {
		if err := nodes["n1"].st.Put(fmt.Sprintf("model/s/c/h%d", i), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "n2 caught up", func() bool {
		return nodes["n2"].n.Status().Applied["n1"] == 3
	})

	// the author dies; a newcomer must still be able to replay n1's
	// stream by pulling n2's copy of it (the relay path)
	nodes["n1"].srv.Close()

	dir := t.TempDir()
	st3, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	n3, err := NewNode(st3, NodeConfig{
		Name: "n3",
		Peers: map[string]string{
			"n1": nodes["n1"].srv.URL, // dead
			"n2": nodes["n2"].srv.URL,
		},
		ReplDir:      filepath.Join(dir, "repl"),
		MinAcks:      -1,
		PollInterval: 5 * time.Millisecond, RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n3.Start(ctx)

	waitFor(t, "n3 relay catch-up", func() bool {
		return n3.Status().Applied["n1"] == 3
	})
	if v, ok, _ := st3.Get("model/s/c/h2"); !ok || string(v) != "m" {
		t.Errorf("relayed value = %q %v", v, ok)
	}
}

func TestAppliedWatermarkSurvivesRestart(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, nil)
	for i := 0; i < 3; i++ {
		if err := nodes["n1"].st.Put(fmt.Sprintf("model/s/c/h%d", i), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	n2 := nodes["n2"]
	waitFor(t, "n2 caught up", func() bool { return n2.n.Status().Applied["n1"] == 3 })
	n2.n.Close()

	// reopen over the same store + repl dir with the author unreachable:
	// the durable watermark alone must restore the position
	nodes["n1"].srv.Close()
	reopened, err := NewNode(n2.st, NodeConfig{
		Name: "n2", Peers: map[string]string{"n1": nodes["n1"].srv.URL},
		ReplDir: filepath.Join(filepath.Dir(n2.n.cfg.ReplDir), "repl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Status().Applied["n1"]; got != 3 {
		t.Errorf("restored watermark = %d, want 3", got)
	}
}

func TestApplyRejectsCorruptShippedFrame(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n, err := NewNode(st, NodeConfig{
		Name: "n2", Peers: map[string]string{"n1": "http://127.0.0.1:1"},
		ReplDir: filepath.Join(dir, "repl"), MinAcks: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	bad := store.EncodeFrame(store.Frame{Op: store.FramePut, Key: "model/s/c/h", Value: []byte("m")})
	bad[len(bad)-1] ^= 0x08
	err = n.applyFrame("n1", Entry{Seq: 1, Frame: bad}, false)
	if err == nil || !strings.Contains(err.Error(), "corrupt frame rejected") {
		t.Fatalf("corrupt shipped frame applied: %v", err)
	}
	if _, ok, _ := st.Get("model/s/c/h"); ok {
		t.Error("corrupt frame reached the store")
	}
	if n.Status().Applied["n1"] != 0 {
		t.Error("corrupt frame advanced the watermark")
	}
}

func TestConvergenceThroughTransientPartition(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, func(name string, cfg *NodeConfig) {
		if name == "n2" {
			// first 10 HTTP calls from n2 hit a partition, then it heals
			plan := faultinject.New(3, faultinject.Rule{
				Op: faultinject.OpHTTP, Kind: faultinject.KindPartition,
				Worker: -1, Count: 10,
			})
			cfg.Client = &http.Client{Transport: &faultinject.RoundTripper{Plan: plan}}
		}
	})
	if err := nodes["n1"].st.Put("model/s/c/h", []byte("m")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "convergence after partition heals", func() bool {
		return nodes["n2"].n.Status().Applied["n1"] == 1
	})
}
