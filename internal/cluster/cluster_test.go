package cluster

// Multi-process cluster harness: builds the real predictd binary, boots a
// 3-node replicated cluster plus a router as separate OS processes, drives
// fit/predict load through the router, and kills the partition owner with
// SIGKILL — both at seeded fault points (exact store/replication
// operations, via -fault-plan crash rules that exit 137) and at randomized
// wall-clock offsets. The invariants checked after every kill:
//
//   - no acknowledged fit job is lost: every 202'd job reaches "done"
//     on a survivor after failover
//   - no opthash is published twice with divergent bytes: every node's
//     divergence counter stays 0 and model state hashes agree across nodes
//   - the router degrades gracefully: every response is a well-formed
//     2xx/4xx/429/503 (backpressure always carries Retry-After) and no
//     request ever hangs (client timeouts are the hang detector)
//
// Run via `make cluster-check` (wired into `make check`); `-short` skips.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const (
	harnessScheme     = "krasowska2021"
	harnessCompressor = "sz3"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// predictdBinary builds cmd/predictd once per test run (with -race, so
// the daemons themselves run under the detector).
func predictdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "predictd-harness-")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "predictd")
		cmd := exec.Command("go", "build", "-race", "-o", buildPath, "repro/cmd/predictd")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building predictd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

// freePorts reserves n distinct listen ports by binding and releasing
// them (peers must be named before any process starts).
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

// proc is one predictd process under harness control.
type proc struct {
	name string
	base string
	dir  string
	args []string
	bin  string
	log  *os.File

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan error // closed result of Wait
}

func (p *proc) start(t *testing.T) {
	t.Helper()
	os.Remove(filepath.Join(p.dir, "ready"))
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = p.log
	cmd.Stderr = p.log
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", p.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait(); close(done) }()
	p.mu.Lock()
	p.cmd, p.done = cmd, done
	p.mu.Unlock()
}

// kill SIGKILLs the process and waits for it to reap.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not die after SIGKILL", p.name)
	}
}

// waitExit waits for the process to exit on its own (a seeded crash
// rule) and returns its exit code.
func (p *proc) waitExit(t *testing.T, within time.Duration) int {
	t.Helper()
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	select {
	case <-done:
		return cmd.ProcessState.ExitCode()
	case <-time.After(within):
		t.Fatalf("%s still alive after %v, expected a seeded crash", p.name, within)
		return -1
	}
}

// harness is a running 3-node cluster + router.
type harness struct {
	nodes  map[string]*proc
	router *proc
	client *http.Client
	owner  string // owner of the harness partition
}

// faultPlans maps node name → -fault-plan text for that node.
func startHarness(t *testing.T, faultPlans map[string]string) *harness {
	t.Helper()
	bin := predictdBinary(t)
	names := []string{"n1", "n2", "n3"}
	ports := freePorts(t, 4)
	bases := map[string]string{}
	for i, name := range names {
		bases[name] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
	}
	h := &harness{
		nodes: map[string]*proc{},
		// the client timeout is the hang detector: a router that wedges
		// fails the test here, not at the suite deadline
		client: &http.Client{Timeout: 20 * time.Second},
		owner:  NewRing(names, 0).Owner(PartitionKey(harnessScheme, harnessCompressor)),
	}
	root := t.TempDir()
	for i, name := range names {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		logf, err := os.Create(filepath.Join(dir, "log"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { logf.Close() })
		var peers []string
		for _, o := range names {
			if o != name {
				peers = append(peers, o+"="+bases[o])
			}
		}
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-store", filepath.Join(dir, "store"),
			"-node", name,
			"-peers", strings.Join(peers, ","),
			"-repl-dir", filepath.Join(dir, "repl"),
			"-poll-interval", "20ms",
			"-ack-timeout", "3s",
			"-ready-file", filepath.Join(dir, "ready"),
		}
		if plan := faultPlans[name]; plan != "" {
			args = append(args, "-fault-plan", plan, "-fault-seed", "1")
		}
		h.nodes[name] = &proc{name: name, base: bases[name], dir: dir, args: args, bin: bin, log: logf}
	}

	rdir := filepath.Join(root, "router")
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		t.Fatal(err)
	}
	rlog, err := os.Create(filepath.Join(rdir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rlog.Close() })
	var members []string
	for _, name := range names {
		members = append(members, name+"="+bases[name])
	}
	h.router = &proc{
		name: "router", base: fmt.Sprintf("http://127.0.0.1:%d", ports[3]), dir: rdir,
		args: []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[3]),
			"-router",
			"-members", strings.Join(members, ","),
			"-probe-interval", "50ms",
			"-ready-file", filepath.Join(rdir, "ready"),
		},
		bin: bin, log: rlog,
	}

	for _, p := range h.nodes {
		p.start(t)
	}
	h.router.start(t)
	t.Cleanup(func() {
		h.router.kill(t)
		for _, p := range h.nodes {
			p.kill(t)
		}
		if t.Failed() {
			for _, p := range append([]*proc{h.router}, h.nodes["n1"], h.nodes["n2"], h.nodes["n3"]) {
				if raw, err := os.ReadFile(filepath.Join(p.dir, "log")); err == nil && len(raw) > 0 {
					t.Logf("--- %s log ---\n%s", p.name, raw)
				}
			}
		}
	})

	for _, p := range h.nodes {
		h.waitHealthy(t, p.base, 30*time.Second)
	}
	h.waitLive(t, 3, 30*time.Second)
	return h
}

func (h *harness) waitHealthy(t *testing.T, base string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

// waitLive blocks until the router reports n live members.
func (h *harness) waitLive(t *testing.T, n int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		var st RouterStatus
		if h.getJSON(h.router.base+"/v1/router/status", &st) == nil {
			live := 0
			for _, state := range st.Members {
				if state == "closed" {
					live++
				}
			}
			if live == n {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("router never saw %d live members", n)
}

func (h *harness) getJSON(url string, v any) error {
	resp, err := h.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// checkWellFormedResp enforces the degradation contract on a live
// router response.
func checkWellFormedResp(t *testing.T, resp *http.Response) {
	t.Helper()
	code := resp.StatusCode
	if !(code >= 200 && code < 300) && !(code >= 400 && code < 500) && code != 503 {
		t.Errorf("router answered HTTP %d for %s", code, resp.Request.URL.Path)
	}
	if (code == 429 || code == 503) && resp.Header.Get("Retry-After") == "" {
		t.Errorf("HTTP %d without Retry-After for %s", code, resp.Request.URL.Path)
	}
}

// fitBody builds the i-th distinct cheap fit request (distinct bounds →
// distinct opthash, same partition).
func fitBody(i int) string {
	return fmt.Sprintf(`{"scheme":%q,"compressor":%q,"training":{"fields":["P"],"steps":2,"dims":[8,8,8],"bounds":[1e-4,%g]}}`,
		harnessScheme, harnessCompressor, 1e-3*float64(i+1))
}

// submitFit posts one fit through the router; returns the job ID when
// the cluster acknowledged (202), "" otherwise. Every response must be
// well-formed either way.
func (h *harness) submitFit(t *testing.T, i int) string {
	t.Helper()
	resp, err := h.client.Post(h.router.base+"/v1/fit", "application/json", strings.NewReader(fitBody(i)))
	if err != nil {
		// transport-level failure against the router itself only happens
		// when the harness killed it; the router must never hang or reset
		t.Errorf("fit %d transport error: %v", i, err)
		return ""
	}
	defer resp.Body.Close()
	checkWellFormedResp(t, resp)
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return ""
	}
	var fr struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(raw, &fr); err != nil || fr.JobID == "" {
		t.Errorf("fit %d: 202 without job_id: %s", i, raw)
		return ""
	}
	return fr.JobID
}

// predictOnce sends one prediction through the router, asserting only
// well-formedness (during failover 503 is legitimate).
func (h *harness) predictOnce(t *testing.T) {
	t.Helper()
	body := fmt.Sprintf(`{"scheme":%q,"compressor":%q,"data":{"field":"P","step":1,"dims":[8,8,8]},"options":{"pressio:abs":1e-3}}`,
		harnessScheme, harnessCompressor)
	resp, err := h.client.Post(h.router.base+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("predict transport error: %v", err)
		return
	}
	defer resp.Body.Close()
	checkWellFormedResp(t, resp)
	io.Copy(io.Discard, resp.Body)
}

// waitJobDone polls a job through the router until "done". 404s and 503s
// along the way are the failover window, not failures.
func (h *harness) waitJobDone(t *testing.T, id string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	last := ""
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(h.router.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("job %s poll transport error: %v", id, err)
		}
		checkWellFormedResp(t, resp)
		var jv struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &jv) == nil {
			last = jv.Status
			if jv.Status == "done" {
				return
			}
			if jv.Status == "failed" {
				t.Fatalf("acked job %s failed: %s", id, jv.Error)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("acked job %s lost: never reached done (last status %q)", id, last)
}

// checkNoDivergence asserts every reachable node reports a zero
// divergence counter, and that no model key carries two different state
// hashes across nodes — the "no double publish with divergent bytes"
// invariant, checked both ways.
func (h *harness) checkNoDivergence(t *testing.T) {
	t.Helper()
	shas := map[string]string{} // model key → state sha
	for name, p := range h.nodes {
		var st StatusResponse
		if err := h.getJSON(p.base+"/v1/repl/status", &st); err != nil {
			continue // dead node
		}
		if st.Divergence != 0 {
			t.Errorf("node %s reports %d divergent publishes", name, st.Divergence)
		}
		var models []struct {
			Key      string `json:"key"`
			StateSHA string `json:"state_sha256"`
		}
		if err := h.getJSON(p.base+"/v1/models", &models); err != nil {
			continue
		}
		for _, m := range models {
			if prev, ok := shas[m.Key]; ok && prev != m.StateSHA {
				t.Errorf("model %s has divergent state across nodes: %s vs %s", m.Key, prev, m.StateSHA)
			}
			shas[m.Key] = m.StateSHA
		}
	}
}

// waitConverged blocks until every live node has applied every other
// live node's stream fully (per /v1/repl/status of each).
func (h *harness) waitConverged(t *testing.T, names []string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		lastSeq := map[string]uint64{}
		applied := map[string]map[string]uint64{}
		ok := true
		for _, name := range names {
			var st StatusResponse
			if err := h.getJSON(h.nodes[name].base+"/v1/repl/status", &st); err != nil {
				ok = false
				break
			}
			lastSeq[name] = st.LastSeq
			applied[name] = st.Applied
		}
		if ok {
			for _, a := range names {
				for _, b := range names {
					if a != b && applied[a][b] < lastSeq[b] {
						ok = false
					}
				}
			}
			if ok {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nodes %v never converged", names)
}

func survivorsOf(h *harness, dead string) []string {
	var out []string
	for name := range h.nodes {
		if name != dead {
			out = append(out, name)
		}
	}
	return out
}

// TestClusterKillOwnerMidFit kills the partition owner with a seeded
// crash at its first model publish: fits were 202-acked and replicated,
// the owner dies mid-fit, and the survivors must finish every acked job.
func TestClusterKillOwnerMidFit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness")
	}
	owner := NewRing([]string{"n1", "n2", "n3"}, 0).Owner(PartitionKey(harnessScheme, harnessCompressor))
	h := startHarness(t, map[string]string{
		// exit 137 the instant the first trained model would be published:
		// after the fit ran, before its result is durable anywhere
		owner: "put-before crash key=model/ at=1",
	})

	var acked []string
	for i := 0; i < 3; i++ {
		if id := h.submitFit(t, i); id != "" {
			acked = append(acked, id)
		}
	}
	if len(acked) == 0 {
		t.Fatal("no fit was acknowledged")
	}

	if code := h.nodes[owner].waitExit(t, 30*time.Second); code != 137 {
		t.Fatalf("owner exited %d, want 137 (seeded crash)", code)
	}

	// the cluster honors every ack without the owner
	for _, id := range acked {
		h.waitJobDone(t, id, 90*time.Second)
	}
	h.predictOnce(t)
	h.checkNoDivergence(t)

	// the owner returns with no fault plan, catches up over the shipped
	// logs, and the router reinstates it
	p := h.nodes[owner]
	p.args = p.args[:len(p.args)-4] // drop -fault-plan/-fault-seed
	p.start(t)
	h.waitHealthy(t, p.base, 30*time.Second)
	h.waitLive(t, 3, 30*time.Second)
	h.waitConverged(t, []string{"n1", "n2", "n3"}, 60*time.Second)
	h.checkNoDivergence(t)
}

// TestClusterKillOwnerAtReplicationOffset kills the owner while it is
// serving its replication stream (seeded crash at a fixed ship offset):
// followers resume over relayed copies and every acked job completes.
func TestClusterKillOwnerAtReplicationOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness")
	}
	owner := NewRing([]string{"n1", "n2", "n3"}, 0).Owner(PartitionKey(harnessScheme, harnessCompressor))
	h := startHarness(t, map[string]string{
		// the owner dies on the 5th frame it ships — mid-replication,
		// with followers at a seeded offset into its stream
		owner: "repl-ship crash at=5",
	})

	var acked []string
	for i := 0; i < 4; i++ {
		if id := h.submitFit(t, i); id != "" {
			acked = append(acked, id)
		}
		h.predictOnce(t)
	}
	if len(acked) == 0 {
		t.Fatal("no fit was acknowledged")
	}
	if code := h.nodes[owner].waitExit(t, 30*time.Second); code != 137 {
		t.Fatalf("owner exited %d, want 137 (seeded crash)", code)
	}
	for _, id := range acked {
		h.waitJobDone(t, id, 90*time.Second)
	}
	h.waitConverged(t, survivorsOf(h, owner), 60*time.Second)
	h.checkNoDivergence(t)
}

// TestClusterRandomizedKillSweep SIGKILLs the owner at a seeded random
// wall-clock offset while load is in flight — the unscripted complement
// to the cataloged crash points.
func TestClusterRandomizedKillSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness")
	}
	// fixed-seed xorshift: reproducible offsets without math/rand
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	h := startHarness(t, nil)
	owner := h.owner

	var acked []string
	killAfter := time.Duration(50+next(250)) * time.Millisecond
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(killAfter)
		h.nodes[owner].kill(t)
	}()
	for i := 0; i < 6; i++ {
		if id := h.submitFit(t, i); id != "" {
			acked = append(acked, id)
		}
		h.predictOnce(t)
		time.Sleep(time.Duration(20+next(60)) * time.Millisecond)
	}
	<-killed

	if len(acked) == 0 {
		t.Fatal("no fit was acknowledged before the kill")
	}
	for _, id := range acked {
		h.waitJobDone(t, id, 90*time.Second)
	}
	h.predictOnce(t)
	h.waitConverged(t, survivorsOf(h, owner), 60*time.Second)
	h.checkNoDivergence(t)
}
