package cluster

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/store"
	"repro/internal/vfs"
)

// Log is a durable, append-only replication log of store WAL frames.
// Each node authors exactly one log (fed by its store's mirror hook)
// and keeps a local copy of every peer's log (fed by the replication
// fetcher), so after an owner dies any survivor can serve the dead
// node's stream for catch-up.
//
// On-disk entry layout (little endian):
//
//	u64 seq | u32 frameLen | frame
//
// where frame is a store CRC-framed record — the same bytes the WAL
// holds — validated with store.DecodeFrame before it is accepted, so a
// frame corrupted in flight (or on disk) is rejected exactly like Fsck
// rejects a corrupt WAL record. Sequence numbers are contiguous and
// 1-based. A torn or corrupt tail is truncated on open: the log has
// the same crash signature as the WAL it mirrors.
type Log struct {
	mu      sync.Mutex
	fs      vfs.FS
	path    string
	f       vfs.File
	entries [][]byte // frame bytes, entries[i] holds seq i+1
	waiters chan struct{}
}

// logHeader is the fixed per-entry prefix: u64 seq + u32 len.
const logHeader = 12

// OpenLog opens (creating if needed) the replication log for the named
// stream under dir, replaying and validating existing entries and
// truncating any torn tail.
func OpenLog(dir string, fsys vfs.FS, stream string) (*Log, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: log dir: %w", err)
	}
	path := filepath.Join(dir, stream+".rlog")
	l := &Log{fs: fsys, path: path, waiters: make(chan struct{})}

	buf, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: log %s: %w", path, err)
	}
	good := 0
	for off := 0; off+logHeader <= len(buf); {
		seq := binary.LittleEndian.Uint64(buf[off:])
		n := int(binary.LittleEndian.Uint32(buf[off+8:]))
		if seq != uint64(len(l.entries)+1) || off+logHeader+n > len(buf) {
			break
		}
		frame := buf[off+logHeader : off+logHeader+n]
		if _, sz, err := store.DecodeFrame(frame); err != nil || sz != n {
			break
		}
		l.entries = append(l.entries, append([]byte(nil), frame...))
		off += logHeader + n
		good = off
	}
	if good < len(buf) {
		// same policy as the WAL: corruption past the last valid entry is
		// a torn append; cut it so the log reopens clean
		if err := fsys.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("cluster: log %s: truncating torn tail: %w", path, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: log %s: %w", path, err)
	}
	l.f = f
	return l, nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// LastSeq returns the highest appended sequence number (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Append appends a store frame as the next sequence number (author
// side: called from the store's mirror hook) and returns its seq.
func (l *Log) Append(f store.Frame) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(uint64(len(l.entries)+1), store.EncodeFrame(f))
}

// AppendRaw appends a shipped frame under an explicit sequence number
// (follower side). Re-delivery of an already-held seq is a no-op —
// resuming a stream after a disconnect re-sends from the last ack — a
// gap is an error, and a frame that fails CRC validation is rejected
// without touching the log.
func (l *Log) AppendRaw(seq uint64, frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	last := uint64(len(l.entries))
	if seq <= last {
		return nil
	}
	if seq != last+1 {
		return fmt.Errorf("cluster: log %s: gap: got seq %d, want %d", l.path, seq, last+1)
	}
	if _, sz, err := store.DecodeFrame(frame); err != nil || sz != len(frame) {
		return fmt.Errorf("cluster: log %s: seq %d: corrupt frame rejected (%v)", l.path, seq, err)
	}
	_, err := l.appendLocked(seq, frame)
	return err
}

func (l *Log) appendLocked(seq uint64, frame []byte) (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("cluster: log %s: closed", l.path)
	}
	rec := make([]byte, logHeader+len(frame))
	binary.LittleEndian.PutUint64(rec, seq)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
	copy(rec[logHeader:], frame)
	if _, err := l.f.Write(rec); err != nil {
		return 0, fmt.Errorf("cluster: log %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("cluster: log %s: %w", l.path, err)
	}
	l.entries = append(l.entries, append([]byte(nil), frame...))
	close(l.waiters)
	l.waiters = make(chan struct{})
	return seq, nil
}

// Entry is one shipped log record.
type Entry struct {
	Seq   uint64 `json:"seq"`
	Frame []byte `json:"frame"` // store CRC-framed record (base64 in JSON)
}

// EntriesFrom returns up to max entries starting at seq (1-based).
func (l *Log) EntriesFrom(seq uint64, max int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 1 {
		seq = 1
	}
	var out []Entry
	for ; seq <= uint64(len(l.entries)) && len(out) < max; seq++ {
		out = append(out, Entry{Seq: seq, Frame: l.entries[seq-1]})
	}
	return out
}

// WaitCh returns a channel closed on the next append — the long-poll
// hook of the stream endpoint.
func (l *Log) WaitCh() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiters
}
