package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/vfs"
)

// replPrefix namespaces the replication layer's own store keys (applied
// watermarks). The mirror hook never ships them: they are per-node
// positions in *other* nodes' streams, meaningless anywhere else.
const replPrefix = "repl/"

// modelKeyPrefix mirrors serve's registry namespace; the apply path
// uses it to detect divergent model publishes and to keep the serving
// caches coherent.
const modelKeyPrefix = "model/"

// NodeConfig tunes one cluster member.
type NodeConfig struct {
	// Name is this node's cluster identity (must differ from every peer).
	Name string
	// Peers maps peer node names to base URLs (e.g. "http://127.0.0.1:7002").
	Peers map[string]string
	// ReplDir holds the replication logs (own stream + peer copies).
	ReplDir string
	// FS is the filesystem seam (default vfs.OS).
	FS vfs.FS
	// MinAcks is how many followers must hold a journaled fit durably
	// before the 202 ack (default 1 when there are peers, 0 otherwise).
	// Negative disables the barrier.
	MinAcks int
	// AckTimeout bounds the fit ack barrier (default 5s).
	AckTimeout time.Duration
	// PollInterval paces the replication fetch loops (default 100ms).
	PollInterval time.Duration
	// RequestTimeout bounds one replication HTTP call (default 5s).
	RequestTimeout time.Duration
	// Client performs replication HTTP calls; tests inject a
	// fault-wrapped transport (default plain http.Client).
	Client *http.Client
	// Clock supplies time for recorded timings (default time.Now).
	Clock func() time.Time
	// Inject scripts replication faults (OpReplShip / OpReplApply).
	Inject *faultinject.Plan
}

func (c *NodeConfig) defaults() {
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.MinAcks == 0 && len(c.Peers) > 0 {
		c.MinAcks = 1
	}
	if c.MinAcks < 0 {
		c.MinAcks = 0
	}
	if c.MinAcks > len(c.Peers) {
		c.MinAcks = len(c.Peers)
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Node is one replicated predictd member: it authors a replication log
// from its store's WAL mirror, pulls every peer's stream into local
// copy logs, applies shipped frames to its own store, and answers the
// replication HTTP API.
type Node struct {
	cfg    NodeConfig
	st     *store.Store
	log    *Log            // stream this node authors
	copies map[string]*Log // peer name → local copy of that peer's stream

	mu          sync.Mutex
	srv         *serve.Server
	acks        map[string]uint64 // follower → acked seq of OUR stream
	ackCh       chan struct{}     // rotated when acks advance
	applied     map[string]uint64 // stream → last seq applied to our store
	divergence  uint64
	applyErrors uint64
	lastErr     string

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewNode opens the node's replication logs, installs the store mirror
// that feeds its authored stream, and replays any shipped-but-unapplied
// copy-log suffix into the store (the crash between "frame durable in
// copy log" and "frame applied" heals here, before the registry opens).
// Call AttachServer once the serve.Server exists, then Start.
func NewNode(st *store.Store, cfg NodeConfig) (*Node, error) {
	cfg.defaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node name required")
	}
	n := &Node{
		cfg:     cfg,
		st:      st,
		copies:  map[string]*Log{},
		acks:    map[string]uint64{},
		ackCh:   make(chan struct{}),
		applied: map[string]uint64{},
		stop:    make(chan struct{}),
	}
	var err error
	n.log, err = OpenLog(cfg.ReplDir, cfg.FS, cfg.Name)
	if err != nil {
		return nil, err
	}
	for peer := range cfg.Peers {
		if peer == cfg.Name {
			return nil, fmt.Errorf("cluster: node %s listed as its own peer", cfg.Name)
		}
		n.copies[peer], err = OpenLog(cfg.ReplDir, cfg.FS, peer)
		if err != nil {
			return nil, err
		}
		n.applied[peer] = n.readApplied(peer)
		if err := n.replayCopy(peer); err != nil {
			return nil, err
		}
	}
	st.SetMirror(n.mirror)
	return n, nil
}

// AttachServer wires the serving subsystem for cache absorption and
// failover adoption.
func (n *Node) AttachServer(srv *serve.Server) {
	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()
}

// Start launches the replication fetch loops (one per peer stream).
func (n *Node) Start(ctx context.Context) {
	for peer := range n.cfg.Peers {
		n.wg.Add(1)
		go n.fetchLoop(ctx, peer)
	}
}

// CatchUp performs a best-effort initial sync: fetch rounds across every
// peer stream until none makes progress (or ctx expires). A node
// restarting after a crash runs this before replaying its fit journal,
// so jobs an adopter already finished — and the models it published —
// arrive as replicated state instead of being re-run from stale records.
func (n *Node) CatchUp(ctx context.Context) {
	position := func() uint64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var sum uint64
		for _, seq := range n.applied {
			sum += seq
		}
		return sum
	}
	for {
		before := position()
		for peer := range n.cfg.Peers {
			if ctx.Err() != nil {
				return
			}
			n.fetchOnce(ctx, peer)
		}
		if position() == before || ctx.Err() != nil {
			return
		}
	}
}

// Close stops the fetch loops and closes the logs.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.log.Close()
	for _, l := range n.copies {
		l.Close()
	}
}

// mirror is the store hook: every durable local WAL frame (except the
// replication layer's own keys) becomes the next entry of this node's
// stream. It runs under the store lock after the frame is durable and
// applied, so stream order is exactly WAL order.
func (n *Node) mirror(f store.Frame) error {
	if strings.HasPrefix(f.Key, replPrefix) {
		return nil
	}
	_, err := n.log.Append(f)
	return err
}

// appliedKey is the store key of this node's durable position in a
// peer's stream.
func appliedKey(stream string) string { return replPrefix + "applied/" + stream }

func (n *Node) readApplied(stream string) uint64 {
	raw, ok, err := n.st.Get(appliedKey(stream))
	if err != nil || !ok {
		return 0
	}
	seq, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0
	}
	return seq
}

// replayCopy re-applies the copy-log suffix past the applied watermark:
// journal recovery over the shipped log. Store puts are idempotent, so
// at-least-once replay is safe — the same property fit-job replay
// leans on.
func (n *Node) replayCopy(stream string) error {
	l := n.copies[stream]
	from := n.applied[stream] + 1
	for {
		ents := l.EntriesFrom(from, 64)
		if len(ents) == 0 {
			return nil
		}
		for _, e := range ents {
			if err := n.applyFrame(stream, e, false); err != nil {
				return err
			}
			from = e.Seq + 1
		}
	}
}

// applyFrame validates, records, and applies one shipped entry: append
// to the copy log (CRC-checked; duplicate seqs no-op), apply to the
// store, absorb into the serving caches, then advance the durable
// watermark. A crash between any two steps re-runs the frame on
// restart; every step is idempotent.
func (n *Node) applyFrame(stream string, e Entry, absorb bool) error {
	if d := n.cfg.Inject.Fire(faultinject.OpReplApply, -1, fmt.Sprintf("%s/%d", stream, e.Seq)); d.Err != nil {
		return d.Err
	} else if d.Delay > 0 {
		select {
		case <-time.After(d.Delay):
		case <-n.stop:
			return fmt.Errorf("cluster: node stopping")
		}
	}
	if err := n.copies[stream].AppendRaw(e.Seq, e.Frame); err != nil {
		return err
	}
	f, sz, err := store.DecodeFrame(e.Frame)
	if err != nil || sz != len(e.Frame) {
		return fmt.Errorf("cluster: stream %s seq %d: corrupt frame: %v", stream, e.Seq, err)
	}
	if f.Op == store.FramePut && strings.HasPrefix(f.Key, modelKeyPrefix) {
		if old, ok, _ := n.st.Get(f.Key); ok && !serve.ModelBytesEquivalent(old, f.Value) {
			// two writers published different bytes under one opthash —
			// the invariant the single-owner routing exists to protect.
			// Last-writer-wins keeps replicas convergent; the counter
			// makes the violation loud.
			n.mu.Lock()
			n.divergence++
			n.mu.Unlock()
		}
	}
	if err := n.st.Apply(f); err != nil {
		return err
	}
	if absorb {
		n.mu.Lock()
		srv := n.srv
		n.mu.Unlock()
		if srv != nil {
			srv.Absorb(f)
		}
	}
	if err := n.st.Put(appliedKey(stream), []byte(strconv.FormatUint(e.Seq, 10))); err != nil {
		return err
	}
	n.mu.Lock()
	if e.Seq > n.applied[stream] {
		n.applied[stream] = e.Seq
	}
	n.mu.Unlock()
	return nil
}

// fetchLoop pulls one peer's stream: from the peer itself when it is
// up, else from any other peer relaying its copy of that stream — the
// catch-up path a restarted or partitioned node heals through.
func (n *Node) fetchLoop(ctx context.Context, stream string) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.PollInterval)
	defer ticker.Stop()
	for {
		n.fetchOnce(ctx, stream)
		select {
		case <-ctx.Done():
			return
		case <-n.stop:
			return
		case <-ticker.C:
		}
	}
}

// fetchOnce tries one fetch+apply+ack round for a stream.
func (n *Node) fetchOnce(ctx context.Context, stream string) {
	n.mu.Lock()
	from := n.applied[stream] + 1
	n.mu.Unlock()

	// author first, then relays
	sources := []string{stream}
	for peer := range n.cfg.Peers {
		if peer != stream {
			sources = append(sources, peer)
		}
	}
	for _, src := range sources {
		ents, err := n.fetchEntries(ctx, src, stream, from)
		if err != nil {
			continue
		}
		progressed := false
		for _, e := range ents {
			if err := n.applyFrame(stream, e, true); err != nil {
				n.mu.Lock()
				n.applyErrors++
				n.lastErr = err.Error()
				n.mu.Unlock()
				return
			}
			progressed = true
		}
		if progressed || len(ents) == 0 {
			// ack our durable position to the author so its fit barrier
			// can release; best-effort (re-sent every round)
			n.sendAck(ctx, stream)
		}
		return
	}
}

// fetchEntries GETs entries of stream from the src peer.
func (n *Node) fetchEntries(ctx context.Context, src, stream string, from uint64) ([]Entry, error) {
	base, ok := n.cfg.Peers[src]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", src)
	}
	cctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/repl/stream?stream=%s&from=%d&max=256", base, stream, from)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: stream %s from %s: HTTP %d", stream, src, resp.StatusCode)
	}
	var out []Entry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// sendAck posts our applied position on stream to its author.
func (n *Node) sendAck(ctx context.Context, stream string) {
	base, ok := n.cfg.Peers[stream]
	if !ok {
		return
	}
	n.mu.Lock()
	seq := n.applied[stream]
	n.mu.Unlock()
	body, _ := json.Marshal(ackRequest{Stream: stream, Node: n.cfg.Name, Seq: seq})
	cctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		base+"/v1/repl/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Barrier blocks until MinAcks followers have durably applied
// everything this node's stream held when the barrier was taken — the
// serve.Config.AckBarrier implementation that upgrades the fit 202 from
// "survives a crash" to "survives losing this node".
func (n *Node) Barrier(ctx context.Context) error {
	need := n.cfg.MinAcks
	if need <= 0 {
		return nil
	}
	target := n.log.LastSeq()
	timer := time.NewTimer(n.cfg.AckTimeout)
	defer timer.Stop()
	for {
		n.mu.Lock()
		got := 0
		for _, seq := range n.acks {
			if seq >= target {
				got++
			}
		}
		ch := n.ackCh
		n.mu.Unlock()
		if got >= need {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			return fmt.Errorf("cluster: %d/%d follower acks for seq %d within %v",
				got, need, target, n.cfg.AckTimeout)
		case <-ch:
		}
	}
}

type ackRequest struct {
	Stream string `json:"stream"`
	Node   string `json:"node"`
	Seq    uint64 `json:"seq"`
}

type adoptRequest struct {
	Node string `json:"node"`
}

// StatusResponse is the /v1/repl/status document.
type StatusResponse struct {
	Node        string            `json:"node"`
	LastSeq     uint64            `json:"last_seq"`
	Applied     map[string]uint64 `json:"applied"`
	Acks        map[string]uint64 `json:"acks"`
	Divergence  uint64            `json:"divergence"`
	ApplyErrors uint64            `json:"apply_errors"`
	LastError   string            `json:"last_error,omitempty"`
}

// Status snapshots the node's replication state.
func (n *Node) Status() StatusResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := StatusResponse{
		Node:        n.cfg.Name,
		LastSeq:     n.log.LastSeq(),
		Applied:     map[string]uint64{},
		Acks:        map[string]uint64{},
		Divergence:  n.divergence,
		ApplyErrors: n.applyErrors,
		LastError:   n.lastErr,
	}
	for k, v := range n.applied {
		st.Applied[k] = v
	}
	for k, v := range n.acks {
		st.Acks[k] = v
	}
	return st
}

// Register mounts the replication API onto mux.
func (n *Node) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/repl/stream", n.handleStream)
	mux.HandleFunc("/v1/repl/ack", n.handleAck)
	mux.HandleFunc("/v1/repl/status", n.handleStatus)
	mux.HandleFunc("/v1/repl/adopt", n.handleAdopt)
}

// streamFor resolves a stream name to the log holding it here.
func (n *Node) streamFor(name string) *Log {
	if name == n.cfg.Name {
		return n.log
	}
	return n.copies[name]
}

func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stream := q.Get("stream")
	l := n.streamFor(stream)
	if l == nil {
		http.Error(w, fmt.Sprintf(`{"error":"unknown stream %q"}`, stream), http.StatusNotFound)
		return
	}
	from, _ := strconv.ParseUint(q.Get("from"), 10, 64)
	if from < 1 {
		from = 1
	}
	max, _ := strconv.Atoi(q.Get("max"))
	if max <= 0 || max > 1024 {
		max = 256
	}
	ents := l.EntriesFrom(from, max)
	// every served frame is a replication-ship fault point: seeded crash
	// rules here are "owner dies mid-stream at frame N"
	for i, e := range ents {
		if d := n.cfg.Inject.Fire(faultinject.OpReplShip, -1, fmt.Sprintf("%s/%d", stream, e.Seq)); d.Err != nil {
			if i == 0 {
				http.Error(w, `{"error":"ship fault"}`, http.StatusInternalServerError)
				return
			}
			ents = ents[:i] // ship what precedes the fault
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if ents == nil {
		ents = []Entry{}
	}
	json.NewEncoder(w).Encode(ents)
}

func (n *Node) handleAck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	var req ackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad ack body"}`, http.StatusBadRequest)
		return
	}
	if req.Stream != n.cfg.Name {
		// an ack for a stream we merely relay is not ours to track
		w.WriteHeader(http.StatusNoContent)
		return
	}
	n.mu.Lock()
	if req.Seq > n.acks[req.Node] {
		n.acks[req.Node] = req.Seq
		close(n.ackCh)
		n.ackCh = make(chan struct{})
	}
	n.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Status())
}

func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	var req adoptRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad adopt body"}`, http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	srv := n.srv
	n.mu.Unlock()
	if srv == nil {
		http.Error(w, `{"error":"no server attached"}`, http.StatusServiceUnavailable)
		return
	}
	adopted, err := srv.Adopt(r.Context(), req.Node)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"adopted": adopted})
}
