package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster/health"
	"repro/internal/serve"
)

// RouterConfig tunes the stateless cluster router.
type RouterConfig struct {
	// Members maps node names to base URLs.
	Members map[string]string
	// Vnodes is the ring's virtual-node count (0 → default).
	Vnodes int
	// Replicas is R: how many members hold each partition (default all).
	Replicas int
	// ProbeInterval paces health probing (default 200ms).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures that mark a member
	// dead (default 2).
	FailThreshold int
	// Cooldown is how long a dead member waits before a recovery probe
	// (default 1s).
	Cooldown time.Duration
	// RequestTimeout bounds every proxied request and probe (default 10s),
	// so a wedged backend can never pin a router connection.
	RequestTimeout time.Duration
	// Client performs backend calls (tests inject fault transports).
	Client *http.Client
	// Clock supplies time for breaker cooldowns (default time.Now).
	Clock func() time.Time
	// Seed drives the failover backoff jitter.
	Seed uint64
}

func (c *RouterConfig) defaults() {
	if c.Replicas <= 0 || c.Replicas > len(c.Members) {
		c.Replicas = len(c.Members)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// routerMember is the router's view of one node.
type routerMember struct {
	name string
	base string
	br   *health.Breaker
	// lastSeq is the member's own stream position; applied is its
	// position in every other stream (both from /v1/repl/status).
	lastSeq uint64
	applied map[string]uint64

	adoptAttempts int
	nextAdoptTry  time.Time // earliest next adopt targeting THIS dead member
}

// Router is the thin stateless entry point of the cluster: it owns no
// data, only liveness beliefs. Fits and invalidations go to partition
// owners (or their adopters after failover), predictions to any live
// replica within the client's staleness bound, and every response it
// originates is a well-formed 2xx/4xx/429/503 — backpressure, never a
// hang.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	backoff *health.Backoff

	mu        sync.Mutex
	members   map[string]*routerMember
	overrides map[string]string // dead owner → adopter
	pins      map[string]string // partition key → pinned member
	repins    int
	failovers int
}

// NewRouter builds a router over the configured members.
func NewRouter(cfg RouterConfig) *Router {
	cfg.defaults()
	names := make([]string, 0, len(cfg.Members))
	for n := range cfg.Members {
		names = append(names, n)
	}
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(names, cfg.Vnodes),
		backoff:   health.NewBackoff(cfg.Cooldown, 8*cfg.Cooldown, cfg.Seed),
		members:   map[string]*routerMember{},
		overrides: map[string]string{},
		pins:      map[string]string{},
	}
	for n, base := range cfg.Members {
		r.members[n] = &routerMember{
			name: n, base: base,
			br:      health.NewBreaker(cfg.FailThreshold, cfg.Cooldown, cfg.Clock),
			applied: map[string]uint64{},
		}
	}
	return r
}

// Start launches the probe/failover loop; it stops with ctx.
func (r *Router) Start(ctx context.Context) {
	go r.probeLoop(ctx)
}

func (r *Router) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		r.probeOnce(ctx)
		r.failoverOnce(ctx)
	}
}

// probeOnce health-checks every member whose breaker admits a probe and
// refreshes replication positions of live members.
func (r *Router) probeOnce(ctx context.Context) {
	r.mu.Lock()
	var due []*routerMember
	for _, m := range r.members {
		if m.br.Available() {
			if m.br.State() == health.StateHalfOpen {
				m.br.MarkProbing()
			}
			due = append(due, m)
		}
	}
	r.mu.Unlock()
	for _, m := range due {
		err := r.probeMember(ctx, m)
		r.mu.Lock()
		m.br.OnResult(err)
		r.mu.Unlock()
	}
}

func (r *Router) probeMember(ctx context.Context, m *routerMember) error {
	cctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, m.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s /healthz: HTTP %d", m.name, resp.StatusCode)
	}
	// refresh replication positions (best-effort; health already passed)
	req, err = http.NewRequestWithContext(cctx, http.MethodGet, m.base+"/v1/repl/status", nil)
	if err != nil {
		return nil
	}
	sresp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		return nil
	}
	var st StatusResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		return nil
	}
	r.mu.Lock()
	m.lastSeq = st.LastSeq
	for k, v := range st.Applied {
		m.applied[k] = v
	}
	r.mu.Unlock()
	return nil
}

// failoverOnce reassigns ownership away from dead members: the live
// member most caught up on the dead node's stream adopts its journaled
// jobs and becomes the routing override for its partitions. Failed
// adopt attempts retry on a jittered backoff. A recovered member takes
// its partitions back (its own journal recovery re-runs anything it
// still holds).
func (r *Router) failoverOnce(ctx context.Context) {
	type attempt struct {
		dead, adopter string
		base          string
		readopt       bool
	}
	var attempts []attempt
	now := r.cfg.Clock()
	r.mu.Lock()
	for name, m := range r.members {
		if m.br.State() == health.StateClosed {
			if _, ok := r.overrides[name]; ok {
				delete(r.overrides, name)
				m.adoptAttempts = 0
			}
			continue
		}
		if m.br.State() != health.StateOpen {
			continue
		}
		if adopter, ok := r.overrides[name]; ok {
			// an override pointing at a member that has since died is
			// worse than none: drop it so a live adopter can be chosen
			if am := r.members[adopter]; am == nil || am.br.State() != health.StateClosed {
				delete(r.overrides, name)
				m.adoptAttempts = 0
			} else if !now.Before(m.nextAdoptTry) {
				// while the member stays dead, periodically re-adopt on the
				// standing adopter: journal records that reached only the
				// other follower keep trickling in over relays, and Adopt is
				// idempotent for everything already taken
				attempts = append(attempts, attempt{dead: name, adopter: adopter, base: am.base, readopt: true})
				m.nextAdoptTry = now.Add(r.cfg.Cooldown)
			}
			continue
		}
		if now.Before(m.nextAdoptTry) {
			continue
		}
		// most-caught-up live follower on the dead node's stream wins;
		// ties break by name so concurrent routers pick the same adopter
		best := ""
		var bestSeq uint64
		for on, om := range r.members {
			if on == name || om.br.State() != health.StateClosed {
				continue
			}
			if best == "" || om.applied[name] > bestSeq ||
				(om.applied[name] == bestSeq && on < best) {
				best, bestSeq = on, om.applied[name]
			}
		}
		if best != "" {
			attempts = append(attempts, attempt{dead: name, adopter: best, base: r.members[best].base})
		}
	}
	r.mu.Unlock()

	for _, a := range attempts {
		err := r.postAdopt(ctx, a.base, a.dead)
		r.mu.Lock()
		m := r.members[a.dead]
		if err == nil {
			r.overrides[a.dead] = a.adopter
			if !a.readopt {
				// periodic re-adopts on the standing adopter are upkeep,
				// not new failover decisions
				r.failovers++
			}
			m.adoptAttempts = 0
		} else {
			m.adoptAttempts++
			m.nextAdoptTry = r.cfg.Clock().Add(r.backoff.Delay(m.adoptAttempts))
		}
		r.mu.Unlock()
	}
}

func (r *Router) postAdopt(ctx context.Context, base, dead string) error {
	body, _ := json.Marshal(adoptRequest{Node: dead})
	cctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		base+"/v1/repl/adopt", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: adopt %s on %s: HTTP %d", dead, base, resp.StatusCode)
	}
	return nil
}

// Handler returns the router's HTTP API: the predictd surface, proxied.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", r.handlePredict)
	// a batch routes exactly like a single predict: same partition key,
	// same replica pinning — only the envelope extraction differs per
	// content type
	mux.HandleFunc("/v1/predict/batch", r.handlePredict)
	mux.HandleFunc("/v1/fit", r.handleOwnerPost)
	mux.HandleFunc("/v1/invalidate", r.handleInvalidate)
	mux.HandleFunc("/v1/jobs/", r.handleJobs)
	mux.HandleFunc("/v1/models", r.handleAnyGet)
	mux.HandleFunc("/statz", r.handleAnyGet)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/v1/router/status", r.handleStatus)
	return mux
}

// unavailable writes the router's own 503 — always with Retry-After.
func unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// routeBody holds the fields routing needs from a predict/fit body.
type routeBody struct {
	Scheme     string `json:"scheme"`
	Compressor string `json:"compressor"`
}

// envelopeJSON extracts the JSON object carrying the routing fields from
// a predict body: the whole body for plain/columnar JSON, the first line
// of an NDJSON stream, or the first length-prefixed frame of a binary
// frame stream — mirroring the batch endpoint's wire formats
// (serve.ContentNDJSON, serve.ContentFrames) so the router can route a
// streaming batch by its envelope without decoding the items.
func envelopeJSON(ct string, body []byte) []byte {
	switch {
	case strings.HasPrefix(ct, serve.ContentNDJSON):
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			return body[:i]
		}
		return body
	case strings.HasPrefix(ct, serve.ContentFrames):
		if len(body) < 4 {
			return nil
		}
		n := binary.LittleEndian.Uint32(body)
		if uint64(n) > uint64(len(body)-4) {
			return nil
		}
		return body[4 : 4+int(n)]
	default:
		return body
	}
}

// readBody buffers a bounded request body for re-sending across
// failover candidates.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
}

// liveName reports whether the named member currently admits requests.
func (r *Router) liveName(name string) bool {
	m := r.members[name]
	if m == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return m.br.State() == health.StateClosed
}

// resolveOwner maps a partition's ring owner through failover overrides.
func (r *Router) resolveOwner(pk string) string {
	owner := r.ring.Owner(pk)
	r.mu.Lock()
	defer r.mu.Unlock()
	if o, ok := r.overrides[owner]; ok {
		return o
	}
	return owner
}

// forward proxies one buffered request to a member, bounded by the
// request timeout. It returns false when the backend could not be
// reached or answered a non-503 5xx (so the caller may try another
// member); well-formed backend responses — including 429/503
// backpressure — are relayed as-is with Retry-After guaranteed.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, name string, body []byte, staleness uint64) bool {
	m := r.members[name]
	cctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(cctx, req.Method, m.base+req.URL.RequestURI(), rd)
	if err != nil {
		return false
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.cfg.Client.Do(out)
	r.mu.Lock()
	m.br.OnResult(err)
	r.mu.Unlock()
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) &&
		w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("X-Served-By", name)
	w.Header().Set("X-Replica-Staleness", strconv.FormatUint(staleness, 10))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// stalenessOf estimates how many frames behind the partition owner's
// stream a candidate is (0 for the owner itself, or when the owner's
// position is unknown).
func (r *Router) stalenessOf(candidate, owner string) uint64 {
	if candidate == owner {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	om, cm := r.members[owner], r.members[candidate]
	if om == nil || cm == nil || om.lastSeq <= cm.applied[owner] {
		return 0
	}
	return om.lastSeq - cm.applied[owner]
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(w, req)
	if err != nil {
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
		return
	}
	var rb routeBody
	env := envelopeJSON(req.Header.Get("Content-Type"), body)
	if err := json.Unmarshal(env, &rb); err != nil || rb.Scheme == "" || rb.Compressor == "" {
		http.Error(w, `{"error":"scheme and compressor are required"}`, http.StatusBadRequest)
		return
	}
	pk := PartitionKey(rb.Scheme, rb.Compressor)
	owner := r.resolveOwner(pk)
	maxStale := uint64(1<<63 - 1)
	if h := req.Header.Get("X-Max-Staleness"); h != "" {
		if v, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			maxStale = v
		}
	}
	var candidates []string
	for _, name := range r.ring.Replicas(pk, r.cfg.Replicas) {
		if o, ok := r.overrideFor(name); ok {
			name = o
		}
		if r.liveName(name) && r.stalenessOf(name, owner) <= maxStale {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		unavailable(w, "no live replica for %s within staleness bound", pk)
		return
	}
	// stick with the pinned replica while it stays a candidate (warm
	// caches), fail over — and count the re-pin — when it does not
	r.mu.Lock()
	pinned := r.pins[pk]
	r.mu.Unlock()
	order := candidates
	if i := indexOf(candidates, pinned); i > 0 {
		order = append([]string{pinned}, removeAt(candidates, i)...)
	}
	for _, name := range order {
		if r.forward(w, req, name, body, r.stalenessOf(name, owner)) {
			r.mu.Lock()
			if r.pins[pk] != name {
				if r.pins[pk] != "" {
					r.repins++
				}
				r.pins[pk] = name
			}
			r.mu.Unlock()
			return
		}
	}
	unavailable(w, "all replicas for %s failed", pk)
}

func (r *Router) overrideFor(name string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.overrides[name]
	return o, ok
}

// handleOwnerPost routes a fit to the partition owner (or its adopter).
func (r *Router) handleOwnerPost(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(w, req)
	if err != nil {
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
		return
	}
	var rb routeBody
	if err := json.Unmarshal(body, &rb); err != nil || rb.Scheme == "" || rb.Compressor == "" {
		http.Error(w, `{"error":"scheme and compressor are required"}`, http.StatusBadRequest)
		return
	}
	pk := PartitionKey(rb.Scheme, rb.Compressor)
	owner := r.resolveOwner(pk)
	if !r.liveName(owner) {
		// the owner is down and no adopter has taken over yet: shed the
		// write honestly instead of letting two nodes fit one opthash
		unavailable(w, "owner %s of %s is unavailable (failover pending)", owner, pk)
		return
	}
	if !r.forward(w, req, owner, body, 0) {
		unavailable(w, "owner %s of %s failed", owner, pk)
	}
}

// handleInvalidate broadcasts to every live member and merges results:
// invalidation names option keys, not one partition, so every replica
// must drop its stale models (shipped deletes make stragglers converge).
func (r *Router) handleInvalidate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(w, req)
	if err != nil {
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
		return
	}
	evicted := map[string]bool{}
	cleared := 0
	reached := 0
	for _, name := range r.liveMembers() {
		m := r.members[name]
		cctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
		out, nerr := http.NewRequestWithContext(cctx, http.MethodPost,
			m.base+"/v1/invalidate", bytes.NewReader(body))
		if nerr != nil {
			cancel()
			continue
		}
		out.Header.Set("Content-Type", "application/json")
		resp, derr := r.cfg.Client.Do(out)
		if derr != nil {
			cancel()
			continue
		}
		var ir struct {
			EvictedModels []string `json:"evicted_models"`
			ClearedCached int      `json:"cleared_cached"`
		}
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&ir) == nil {
			reached++
			for _, k := range ir.EvictedModels {
				evicted[k] = true
			}
			cleared += ir.ClearedCached
		}
		resp.Body.Close()
		cancel()
	}
	if reached == 0 {
		unavailable(w, "no live member accepted the invalidation")
		return
	}
	keys := make([]string, 0, len(evicted))
	for k := range evicted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"evicted_models": keys, "cleared_cached": cleared, "members_reached": reached,
	})
}

// handleJobs fans a job lookup out to live members: after failover a
// job's record lives on the adopter, and the client should not care
// which node that is.
func (r *Router) handleJobs(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
		return
	}
	live := r.liveMembers()
	if len(live) == 0 {
		unavailable(w, "no live members")
		return
	}
	for _, name := range live {
		m := r.members[name]
		cctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
		out, nerr := http.NewRequestWithContext(cctx, http.MethodGet, m.base+req.URL.RequestURI(), nil)
		if nerr != nil {
			cancel()
			continue
		}
		resp, derr := r.cfg.Client.Do(out)
		if derr != nil {
			cancel()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Served-By", name)
			w.WriteHeader(http.StatusOK)
			io.Copy(w, resp.Body)
			resp.Body.Close()
			cancel()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
	}
	http.Error(w, `{"error":"job not found on any live member"}`, http.StatusNotFound)
}

// handleAnyGet forwards a read to the first live member.
func (r *Router) handleAnyGet(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
		return
	}
	for _, name := range r.liveMembers() {
		if r.forward(w, req, name, nil, 0) {
			return
		}
	}
	unavailable(w, "no live members")
}

// liveMembers returns the currently-live member names, sorted.
func (r *Router) liveMembers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name, m := range r.members {
		if m.br.State() == health.StateClosed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	live := r.liveMembers()
	w.Header().Set("Content-Type", "application/json")
	if len(live) == 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	} else {
		w.WriteHeader(http.StatusOK)
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "router", "live": live})
}

// RouterStatus is the /v1/router/status document.
type RouterStatus struct {
	Members   map[string]string `json:"members"` // name → breaker state
	Overrides map[string]string `json:"overrides,omitempty"`
	Repins    int               `json:"repins"`
	Failovers int               `json:"failovers"`
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	st := RouterStatus{
		Members:   map[string]string{},
		Overrides: map[string]string{},
		Repins:    r.repins,
		Failovers: r.failovers,
	}
	for name, m := range r.members {
		st.Members[name] = m.br.State()
	}
	for k, v := range r.overrides {
		st.Overrides[k] = v
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

func removeAt(xs []string, i int) []string {
	out := append([]string(nil), xs[:i]...)
	return append(out, xs[i+1:]...)
}
