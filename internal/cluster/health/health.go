// Package health holds the failure-detection primitives shared by the
// remote benchmark pool (internal/bench) and the predictd cluster
// router (internal/cluster): a per-peer circuit breaker and a seeded,
// deterministically-jittered exponential backoff. Both are clock- and
// seed-injected so fault-plan replays (DESIGN.md §8) observe identical
// breaker transitions and retry schedules run to run.
//
// The Breaker is deliberately NOT internally locked: its owners (the
// bench remotePool, the cluster router) already serialize peer state
// under their own mutex, and folding a second lock in would invite
// lock-ordering bugs for zero benefit. Callers must synchronize.
package health

import "time"

// Breaker states.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a consecutive-failure circuit breaker: closed → open after
// Threshold straight failures, open → half-open once Cooldown elapses,
// half-open admits exactly one probe whose outcome closes or re-opens
// it. Not safe for concurrent use — the owner synchronizes.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	state       string
	consecFails int
	openedAt    time.Time
	probing     bool
	transitions []string
}

// NewBreaker builds a closed breaker. threshold is the consecutive
// failures that open it; cooldown is how long open lasts before a
// half-open probe is admitted; clock supplies the time (inject a fake
// in tests).
func NewBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *Breaker {
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		clock:     clock,
		state:     StateClosed,
	}
}

// transition moves the breaker to state, recording the edge.
func (b *Breaker) transition(state string) {
	if b.state == state {
		return
	}
	b.transitions = append(b.transitions, b.state+"→"+state)
	b.state = state
}

// Available reports whether the peer may serve a request now. An open
// breaker past its cooldown transitions to half-open (and is then
// available for exactly one probe); a half-open breaker with a probe in
// flight is not available.
func (b *Breaker) Available() bool {
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.clock().Sub(b.openedAt) >= b.cooldown {
			b.transition(StateHalfOpen)
			return true
		}
		return false
	default: // half-open: one probe at a time
		return !b.probing
	}
}

// MarkProbing records that the admitted half-open probe is in flight;
// the next OnResult clears it.
func (b *Breaker) MarkProbing() { b.probing = true }

// Probing reports whether a half-open probe is in flight.
func (b *Breaker) Probing() bool { return b.probing }

// OnResult folds one request outcome into the breaker.
func (b *Breaker) OnResult(err error) {
	b.probing = false
	if err == nil {
		b.consecFails = 0
		b.transition(StateClosed)
		return
	}
	b.consecFails++
	if b.state == StateHalfOpen || b.consecFails >= b.threshold {
		b.transition(StateOpen)
		b.openedAt = b.clock()
	}
}

// State returns the current breaker state.
func (b *Breaker) State() string { return b.state }

// Transitions returns a copy of the recorded state edges (e.g.
// "closed→open").
func (b *Breaker) Transitions() []string {
	return append([]string(nil), b.transitions...)
}

// Backoff computes capped exponential retry delays with deterministic
// jitter: attempt n (1-based) waits min(Base·2^(n-1), Max) jittered
// into [delay/2, delay) by a seeded xorshift draw — the same schedule
// shape as the task queue's retry backoff, so replays are exact. Not
// safe for concurrent use.
type Backoff struct {
	base, max time.Duration
	rng       uint64
}

// NewBackoff builds a backoff schedule. base is the first delay, max
// the cap, seed drives the jitter.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	return &Backoff{base: base, max: max, rng: seed | 1}
}

func (b *Backoff) next() uint64 {
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	return b.rng
}

// Delay returns the jittered delay for the given 1-based attempt.
func (b *Backoff) Delay(attempt int) time.Duration {
	if b.base <= 0 {
		return 0
	}
	d := b.base
	for i := 1; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(b.next()%uint64(half+1))
}
