package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for i := 0; i < 100; i++ {
		key := PartitionKey("scheme", fmt.Sprintf("comp-%d", i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across construction orders", key)
		}
		if !reflect.DeepEqual(a.Replicas(key, 2), b.Replicas(key, 2)) {
			t.Fatalf("replicas of %q differ across construction orders", key)
		}
	}
}

func TestRingReplicasDistinctOwnerFirst(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for i := 0; i < 50; i++ {
		key := PartitionKey("s", fmt.Sprintf("c%d", i))
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("%q: %d replicas, want 3", key, len(reps))
		}
		if reps[0] != r.Owner(key) {
			t.Errorf("%q: first replica %s is not the owner %s", key, reps[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Errorf("%q: duplicate replica %s", key, n)
			}
			seen[n] = true
		}
	}
	// asking for more replicas than members clamps
	if got := r.Replicas("k", 10); len(got) != 3 {
		t.Errorf("Replicas(10) = %d members", len(got))
	}
	if empty := NewRing(nil, 0); empty.Owner("k") != "" {
		t.Error("empty ring has an owner")
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("s/c%d", i))]++
	}
	for node, c := range counts {
		// 64 vnodes keeps the spread loose but bounded; a node owning
		// under 15% or over 55% means the hash is broken
		if c < n*15/100 || c > n*55/100 {
			t.Errorf("node %s owns %d/%d partitions", node, c, n)
		}
	}
}

func TestPartitionKeyMatchesStoreKeyPrefix(t *testing.T) {
	if got := PartitionKey("krasowska2021", "sz3"); got != "krasowska2021/sz3" {
		t.Errorf("PartitionKey = %q", got)
	}
}
