package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/health"
)

// fakeMember simulates one predictd node's HTTP surface for router tests.
type fakeMember struct {
	name string
	srv  *httptest.Server

	mu       sync.Mutex
	healthy  bool
	status   StatusResponse
	adopted  []string
	fits     int
	predicts int
	hasJob   bool
	adoptErr bool
}

func newFakeMember(name string) *fakeMember {
	m := &fakeMember{name: name, healthy: true, status: StatusResponse{Node: name, Applied: map[string]uint64{}}}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		ok := m.healthy
		m.mu.Unlock()
		if !ok {
			http.Error(w, `{"status":"down"}`, http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/repl/status", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		json.NewEncoder(w).Encode(m.status)
	})
	mux.HandleFunc("/v1/repl/adopt", func(w http.ResponseWriter, r *http.Request) {
		var req adoptRequest
		json.NewDecoder(r.Body).Decode(&req)
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.adoptErr {
			http.Error(w, `{"error":"adopt failed"}`, http.StatusInternalServerError)
			return
		}
		m.adopted = append(m.adopted, req.Node)
		json.NewEncoder(w).Encode(map[string]int{"adopted": 1})
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		m.predicts++
		m.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"prediction": 0.5, "served_by": m.name})
	})
	mux.HandleFunc("/v1/fit", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		m.fits++
		m.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"job_id": "job-" + m.name + "-1"})
	})
	mux.HandleFunc("/v1/invalidate", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"evicted_models": []string{"model/" + m.name}, "cleared_cached": 1,
		})
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		has := m.hasJob
		m.mu.Unlock()
		if !has {
			http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"state": "done"})
	})
	m.srv = httptest.NewServer(mux)
	return m
}

func (m *fakeMember) setHealthy(ok bool) {
	m.mu.Lock()
	m.healthy = ok
	m.mu.Unlock()
}

func startRouter(t *testing.T, members map[string]*fakeMember, tweak func(*RouterConfig)) *Router {
	t.Helper()
	cfg := RouterConfig{
		Members:        map[string]string{},
		ProbeInterval:  10 * time.Millisecond,
		FailThreshold:  1,
		Cooldown:       100 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}
	for name, m := range members {
		cfg.Members[name] = m.srv.URL
		t.Cleanup(m.srv.Close)
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r := NewRouter(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	r.Start(ctx)
	return r
}

func threeMembers() map[string]*fakeMember {
	return map[string]*fakeMember{
		"n1": newFakeMember("n1"), "n2": newFakeMember("n2"), "n3": newFakeMember("n3"),
	}
}

func postJSON(h http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// checkWellFormed asserts the degradation contract: only 2xx/4xx/429/503,
// and backpressure statuses always carry Retry-After.
func checkWellFormed(t *testing.T, w *httptest.ResponseRecorder) {
	t.Helper()
	code := w.Code
	if !(code >= 200 && code < 300) && !(code >= 400 && code < 500) && code != 503 {
		t.Errorf("router answered HTTP %d", code)
	}
	if (code == 429 || code == 503) && w.Header().Get("Retry-After") == "" {
		t.Errorf("HTTP %d without Retry-After", code)
	}
}

func TestRouterPredictRoutesAndPins(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })
	h := r.Handler()

	body := `{"scheme":"s","compressor":"c","features":{"f":1}}`
	w := postJSON(h, "/v1/predict", body, nil)
	checkWellFormed(t, w)
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", w.Code, w.Body)
	}
	first := w.Header().Get("X-Served-By")
	if first == "" {
		t.Fatal("no X-Served-By header")
	}
	// the partition pins: a second identical request lands on the same replica
	w2 := postJSON(h, "/v1/predict", body, nil)
	if got := w2.Header().Get("X-Served-By"); got != first {
		t.Errorf("pin broke: %s then %s", first, got)
	}

	if w := postJSON(h, "/v1/predict", `{"features":{}}`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("predict without scheme/compressor = %d", w.Code)
	}
}

func TestRouterFitGoesToOwnerOnly(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	owner := r.ring.Owner(PartitionKey("s", "c"))
	w := postJSON(r.Handler(), "/v1/fit", `{"scheme":"s","compressor":"c"}`, nil)
	checkWellFormed(t, w)
	if w.Code != http.StatusAccepted {
		t.Fatalf("fit = %d: %s", w.Code, w.Body)
	}
	for name, m := range members {
		m.mu.Lock()
		fits := m.fits
		m.mu.Unlock()
		if name == owner && fits != 1 {
			t.Errorf("owner %s saw %d fits", name, fits)
		}
		if name != owner && fits != 0 {
			t.Errorf("non-owner %s saw %d fits", name, fits)
		}
	}
}

func TestRouterFailoverAdoptsAndReroutes(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	pk := PartitionKey("s", "c")
	owner := r.ring.Owner(pk)
	// make one survivor clearly most caught-up on the dead stream so the
	// adopter choice is deterministic
	var best string
	for name, m := range members {
		if name == owner {
			continue
		}
		m.mu.Lock()
		if best == "" {
			best = name
			m.status.Applied[owner] = 42
		} else {
			m.status.Applied[owner] = 1
		}
		m.mu.Unlock()
	}
	members[owner].setHealthy(false)

	waitFor(t, "failover override", func() bool {
		if o, ok := r.overrideFor(owner); ok {
			return o == best
		}
		return false
	})
	members[best].mu.Lock()
	adopted := append([]string(nil), members[best].adopted...)
	members[best].mu.Unlock()
	if len(adopted) == 0 || adopted[0] != owner {
		t.Fatalf("adopter %s adopted %v", best, adopted)
	}

	// fits for the dead owner's partition now land on the adopter
	w := postJSON(r.Handler(), "/v1/fit", `{"scheme":"s","compressor":"c"}`, nil)
	if w.Code != http.StatusAccepted || w.Header().Get("X-Served-By") != best {
		t.Fatalf("fit after failover = %d served by %s", w.Code, w.Header().Get("X-Served-By"))
	}

	// the owner comes back: the override clears and it takes the
	// partition again
	members[owner].setHealthy(true)
	waitFor(t, "owner reinstated", func() bool {
		_, ok := r.overrideFor(owner)
		return !ok
	})
}

func TestRouterShedsFitWhileFailoverPending(t *testing.T) {
	members := threeMembers()
	for _, m := range members {
		m.adoptErr = true // no adoption can succeed
	}
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	owner := r.ring.Owner(PartitionKey("s", "c"))
	members[owner].setHealthy(false)
	waitFor(t, "owner marked dead", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.members[owner].br.State() == health.StateOpen
	})

	// no adopter: fits must shed with a well-formed 503, never hang and
	// never land on a non-owner
	w := postJSON(r.Handler(), "/v1/fit", `{"scheme":"s","compressor":"c"}`, nil)
	checkWellFormed(t, w)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("fit with dead owner = %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "failover pending") {
		t.Errorf("body = %s", w.Body)
	}
	for name, m := range members {
		m.mu.Lock()
		fits := m.fits
		m.mu.Unlock()
		if name != owner && fits != 0 {
			t.Errorf("non-owner %s received a fit during failover", name)
		}
	}
	// predictions still flow to surviving replicas
	w = postJSON(r.Handler(), "/v1/predict", `{"scheme":"s","compressor":"c"}`, nil)
	if w.Code != http.StatusOK {
		t.Errorf("predict during failover = %d", w.Code)
	}
}

func TestRouterStalenessBound(t *testing.T) {
	members := threeMembers()
	// router not started: breakers stay closed (live), and we control the
	// replication positions directly
	cfg := RouterConfig{Members: map[string]string{}, FailThreshold: 100}
	for name, m := range members {
		cfg.Members[name] = m.srv.URL
		defer m.srv.Close()
	}
	r := NewRouter(cfg)

	pk := PartitionKey("s", "c")
	owner := r.ring.Owner(pk)
	reps := r.ring.Replicas(pk, len(members))
	follower := reps[1]
	r.mu.Lock()
	r.members[owner].lastSeq = 10
	for _, name := range reps[1:] {
		r.members[name].applied = map[string]uint64{owner: 4} // 6 behind
	}
	r.mu.Unlock()
	// kill the owner's backend so only followers can answer
	members[owner].srv.Close()

	// bound 3 < lag 6: no follower qualifies, owner is unreachable
	w := postJSON(r.Handler(), "/v1/predict", `{"scheme":"s","compressor":"c"}`,
		map[string]string{"X-Max-Staleness": "3"})
	checkWellFormed(t, w)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict under tight staleness = %d", w.Code)
	}

	// bound 10 ≥ lag 6: a follower serves, and the response reports its lag
	w = postJSON(r.Handler(), "/v1/predict", `{"scheme":"s","compressor":"c"}`,
		map[string]string{"X-Max-Staleness": "10"})
	if w.Code != http.StatusOK {
		t.Fatalf("predict under loose staleness = %d: %s", w.Code, w.Body)
	}
	if by := w.Header().Get("X-Served-By"); by == owner {
		t.Errorf("dead owner served the request")
	} else if by != follower && w.Header().Get("X-Replica-Staleness") != "6" {
		t.Errorf("staleness header = %q from %s", w.Header().Get("X-Replica-Staleness"), by)
	}
}

func TestRouterInvalidateBroadcasts(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	w := postJSON(r.Handler(), "/v1/invalidate", `{"compressor":"c","keys":["k"]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("invalidate = %d: %s", w.Code, w.Body)
	}
	var out struct {
		Evicted []string `json:"evicted_models"`
		Reached int      `json:"members_reached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Reached != 3 || len(out.Evicted) != 3 {
		t.Errorf("invalidate merged %+v", out)
	}
}

func TestRouterJobsFanOut(t *testing.T) {
	members := threeMembers()
	members["n2"].hasJob = true
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/job-n2-1", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Header().Get("X-Served-By") != "n2" {
		t.Fatalf("jobs fan-out = %d served by %q", w.Code, w.Header().Get("X-Served-By"))
	}

	members["n2"].mu.Lock()
	members["n2"].hasJob = false
	members["n2"].mu.Unlock()
	w = httptest.NewRecorder()
	r.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-x", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("missing job = %d", w.Code)
	}
}

func TestRouterDegradesWellFormedWhenAllDead(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })
	for _, m := range members {
		m.setHealthy(false)
	}
	waitFor(t, "all members dead", func() bool { return len(r.liveMembers()) == 0 })

	h := r.Handler()
	for _, probe := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder {
			return postJSON(h, "/v1/predict", `{"scheme":"s","compressor":"c"}`, nil)
		},
		func() *httptest.ResponseRecorder {
			return postJSON(h, "/v1/fit", `{"scheme":"s","compressor":"c"}`, nil)
		},
		func() *httptest.ResponseRecorder {
			return postJSON(h, "/v1/invalidate", `{}`, nil)
		},
		func() *httptest.ResponseRecorder {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
			return w
		},
	} {
		w := probe()
		checkWellFormed(t, w)
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("all-dead response = %d: %s", w.Code, w.Body)
		}
	}
}

func TestRouterStatusDocument(t *testing.T) {
	members := threeMembers()
	r := startRouter(t, members, nil)
	waitFor(t, "all members live", func() bool { return len(r.liveMembers()) == 3 })

	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/router/status", nil))
	var st RouterStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 || st.Members["n1"] != health.StateClosed {
		t.Errorf("status = %+v", st)
	}
}
