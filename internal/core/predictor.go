package core

import (
	"encoding"
	"fmt"

	"repro/internal/mlkit"
)

// IdentityPredictor returns one feature unchanged — the "simple" predictor
// module the paper provides for methods whose prediction IS the value of a
// metric (no training stage), like Tao/Khan/Jin.
type IdentityPredictor struct {
	// Index selects which feature is the prediction (default 0).
	Index int
}

// Name implements Predictor.
func (p *IdentityPredictor) Name() string { return "identity" }

// Trains implements Predictor.
func (p *IdentityPredictor) Trains() bool { return false }

// Fit implements Predictor as a no-op.
func (p *IdentityPredictor) Fit([][]float64, []float64) error { return nil }

// Predict implements Predictor.
func (p *IdentityPredictor) Predict(features []float64) (float64, error) {
	if p.Index < 0 || p.Index >= len(features) {
		return 0, fmt.Errorf("core: identity predictor index %d out of range (%d features)", p.Index, len(features))
	}
	return features[p.Index], nil
}

// Save implements Predictor (stateless).
func (p *IdentityPredictor) Save() ([]byte, error) { return []byte{}, nil }

// Load implements Predictor (stateless).
func (p *IdentityPredictor) Load([]byte) error { return nil }

// ModelPredictor adapts any mlkit.Model (which must also implement binary
// (un)marshalling) to the Predictor interface — the trained-predictor
// module backed by the Go model kit instead of the paper's embedded
// Python interpreter.
type ModelPredictor struct {
	// ModelName labels the underlying model family.
	ModelName string
	// Model is the regressor; it must implement
	// encoding.BinaryMarshaler and encoding.BinaryUnmarshaler.
	Model mlkit.Model

	// ClampMin floors predictions (compression ratios are ≥ 1; linear
	// extrapolation can dip below). Disabled when 0.
	ClampMin float64

	fitted bool
}

// Name implements Predictor.
func (p *ModelPredictor) Name() string { return p.ModelName }

// Trains implements Predictor.
func (p *ModelPredictor) Trains() bool { return true }

// Fit implements Predictor.
func (p *ModelPredictor) Fit(x [][]float64, y []float64) error {
	if err := p.Model.Fit(x, y); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// Predict implements Predictor.
func (p *ModelPredictor) Predict(x []float64) (float64, error) {
	v, err := p.Model.Predict(x)
	if err != nil {
		return 0, err
	}
	if p.ClampMin > 0 && v < p.ClampMin {
		v = p.ClampMin
	}
	return v, nil
}

// Save implements Predictor via the model's binary marshaller.
func (p *ModelPredictor) Save() ([]byte, error) {
	m, ok := p.Model.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: model %s is not serializable", p.ModelName)
	}
	return m.MarshalBinary()
}

// Load implements Predictor.
func (p *ModelPredictor) Load(b []byte) error {
	m, ok := p.Model.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("core: model %s is not serializable", p.ModelName)
	}
	if err := m.UnmarshalBinary(b); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// IntervalPredictor is implemented by predictors that can bound their
// estimates — the "bounded" capability of Table 1 (Ganguli 2023) that
// lets the HDF5 parallel-write use case forecast its misprediction rate
// instead of guessing a safety factor.
type IntervalPredictor interface {
	Predictor
	// PredictInterval returns the point prediction with an interval
	// covering the truth with probability ≥ 1-alpha.
	PredictInterval(features []float64, alpha float64) (pred, lo, hi float64, err error)
}

// PredictInterval implements IntervalPredictor when the underlying model
// supports intervals (mlkit.Conformal); otherwise it returns a degenerate
// interval at the point prediction.
func (p *ModelPredictor) PredictInterval(features []float64, alpha float64) (pred, lo, hi float64, err error) {
	if c, ok := p.Model.(*mlkit.Conformal); ok {
		pred, lo, hi, err = c.PredictInterval(features, alpha)
		if err != nil {
			return 0, 0, 0, err
		}
		if p.ClampMin > 0 {
			if pred < p.ClampMin {
				pred = p.ClampMin
			}
			if lo < p.ClampMin {
				lo = p.ClampMin
			}
			if hi < p.ClampMin {
				hi = p.ClampMin
			}
		}
		return pred, lo, hi, nil
	}
	pred, err = p.Predict(features)
	if err != nil {
		return 0, 0, 0, err
	}
	return pred, pred, pred, nil
}
