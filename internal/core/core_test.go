package core

import (
	"testing"

	"repro/internal/mlkit"
	"repro/internal/pressio"
)

// test fixtures: a compressor and metrics registered only for this test
// binary (names are namespaced to avoid colliding with real plugins).

type halfCompressor struct{ opts pressio.Options }

func (h *halfCompressor) Name() string { return "half" }
func (h *halfCompressor) Compress(in *pressio.Data) (*pressio.Data, error) {
	return pressio.NewByte(make([]byte, in.ByteSize()/2)), nil
}
func (h *halfCompressor) Decompress(_ *pressio.Data, out *pressio.Data) error { return nil }
func (h *halfCompressor) SetOptions(o pressio.Options) error {
	if h.opts == nil {
		h.opts = pressio.Options{}
	}
	h.opts.Merge(o)
	return nil
}
func (h *halfCompressor) Options() pressio.Options       { return h.opts }
func (h *halfCompressor) Configuration() pressio.Options { return pressio.Options{} }

// countingMetric counts how many times it was computed; error-agnostic.
type countingMetric struct {
	pressio.BaseMetric
	runs int
}

func (m *countingMetric) Name() string { return "core-test-agnostic" }
func (m *countingMetric) BeginCompress(*pressio.Data) {
	m.runs++
}
func (m *countingMetric) Results() pressio.Options {
	o := pressio.Options{}
	o.Set("core-test-agnostic:value", 2.0)
	o.Set("core-test-agnostic:runs", int64(m.runs))
	return o
}
func (m *countingMetric) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.InvalidateErrorAgnostic})
	return o
}

// boundMetric is error-dependent on pressio:abs.
type boundMetric struct {
	pressio.BaseMetric
	abs  float64
	runs int
}

func (m *boundMetric) Name() string { return "core-test-bound" }
func (m *boundMetric) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.abs = v
	}
	return nil
}
func (m *boundMetric) BeginCompress(*pressio.Data) { m.runs++ }
func (m *boundMetric) Results() pressio.Options {
	o := pressio.Options{}
	o.Set("core-test-bound:value", m.abs*10)
	o.Set("core-test-bound:runs", int64(m.runs))
	return o
}
func (m *boundMetric) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.OptAbs, pressio.InvalidateErrorDependent})
	return o
}

type realTestScheme struct{}

func (*realTestScheme) Name() string { return "core-test-scheme" }
func (*realTestScheme) Info() Info {
	return Info{Method: "Test", Goal: "fast", Approach: "calculation", Metrics: "CR"}
}
func (*realTestScheme) Supports(c string) bool { return c == "core-test-half" }
func (*realTestScheme) Metrics() []string {
	return []string{"core-test-agnostic", "core-test-bound"}
}
func (*realTestScheme) Features() []string {
	return []string{"core-test-agnostic:value", "core-test-bound:value"}
}
func (*realTestScheme) Target() string { return "size:compression_ratio" }
func (*realTestScheme) NewPredictor(string) (Predictor, error) {
	return &IdentityPredictor{Index: 1}, nil
}

func init() {
	pressio.RegisterCompressor("core-test-half", func() pressio.Compressor { return &halfCompressor{} })
	pressio.RegisterMetric("core-test-agnostic", func() pressio.Metric { return &countingMetric{} })
	pressio.RegisterMetric("core-test-bound", func() pressio.Metric { return &boundMetric{} })
	RegisterScheme("core-test-scheme", func() Scheme { return &realTestScheme{} })
}

func TestSchemeRegistry(t *testing.T) {
	s, err := GetScheme("core-test-scheme")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "core-test-scheme" {
		t.Errorf("Name = %q", s.Name())
	}
	if _, err := GetScheme("missing-scheme"); err == nil {
		t.Error("unknown scheme accepted")
	}
	found := false
	for _, n := range SchemeNames() {
		if n == "core-test-scheme" {
			found = true
		}
	}
	if !found {
		t.Error("SchemeNames missing registered scheme")
	}
}

func TestIsStale(t *testing.T) {
	cases := []struct {
		name        string
		metricInv   []string
		invalidated []string
		want        bool
	}{
		{"direct key", []string{pressio.OptAbs}, []string{pressio.OptAbs}, true},
		{"unrelated key", []string{pressio.OptAbs}, []string{"sz3:lorenzo"}, false},
		{"class match", []string{pressio.InvalidateErrorDependent}, []string{pressio.InvalidateErrorDependent}, true},
		{"generic covers specific", []string{pressio.OptAbs}, []string{pressio.InvalidateErrorDependent}, true},
		{"agnostic untouched by error", []string{pressio.InvalidateErrorAgnostic}, []string{pressio.InvalidateErrorDependent, pressio.OptAbs}, false},
		{"agnostic by class", []string{pressio.InvalidateErrorAgnostic}, []string{pressio.InvalidateErrorAgnostic}, true},
		{"runtime", []string{pressio.InvalidateRuntime}, []string{pressio.InvalidateRuntime}, true},
		{"empty invalidation", []string{pressio.OptAbs}, nil, false},
	}
	for _, c := range cases {
		if got := IsStale(c.metricInv, c.invalidated); got != c.want {
			t.Errorf("%s: IsStale(%v, %v) = %v, want %v", c.name, c.metricInv, c.invalidated, got, c.want)
		}
	}
}

func TestStageOf(t *testing.T) {
	if s := StageOf(&countingMetric{}); s != StageErrorAgnostic {
		t.Errorf("agnostic metric stage = %v", s)
	}
	if s := StageOf(&boundMetric{}); s != StageErrorDependent {
		t.Errorf("bound metric stage = %v", s)
	}
	if StageErrorAgnostic.String() != "error-agnostic" || StageRuntime.String() != "runtime" {
		t.Error("stage names wrong")
	}
}

func TestSessionFigure4Flow(t *testing.T) {
	// the paper's Figure-4 usage sketch end to end
	s, err := NewSession("core-test-scheme", "core-test-half")
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 0.5)
	if err := s.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	data := pressio.NewFloat32(64)
	pred, ev, err := s.Predict(data)
	if err != nil {
		t.Fatal(err)
	}
	// identity predictor index 1 → bound metric value = abs*10 = 5
	if pred != 5 {
		t.Errorf("prediction = %v, want 5", pred)
	}
	if len(ev.Recomputed) != 2 {
		t.Errorf("first evaluation should compute both metrics, got %v", ev.Recomputed)
	}
}

func TestSessionInvalidationCaching(t *testing.T) {
	s, err := NewSession("core-test-scheme", "core-test-half")
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 0.1)
	s.SetOptions(opts)
	data := pressio.NewFloat32(32)

	if _, err := s.Evaluate(data); err != nil {
		t.Fatal(err)
	}
	// nothing invalidated: second evaluation is a full cache hit
	ev2, err := s.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev2.Recomputed) != 0 {
		t.Errorf("expected full cache hit, recomputed %v", ev2.Recomputed)
	}

	// change the bound and invalidate it: only the bound metric reruns
	opts.Set(pressio.OptAbs, 0.2)
	s.SetOptions(opts)
	stale := s.Invalidate(pressio.OptAbs)
	if len(stale) != 1 || stale[0] != "core-test-bound" {
		t.Errorf("stale = %v, want [core-test-bound]", stale)
	}
	ev3, err := s.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev3.Recomputed) != 1 || ev3.Recomputed[0] != "core-test-bound" {
		t.Errorf("recomputed = %v", ev3.Recomputed)
	}
	if v, _ := ev3.Results.GetFloat("core-test-bound:value"); v != 2.0 {
		t.Errorf("bound metric did not observe new option: %v", v)
	}
	if v, _ := ev3.Results.GetInt("core-test-agnostic:runs"); v != 1 {
		t.Errorf("agnostic metric reran: %v runs", v)
	}
	// the error-agnostic stage must have cost zero on the cached pass
	if ev3.ErrorAgnosticMS != 0 {
		t.Errorf("cached agnostic stage billed %v ms", ev3.ErrorAgnosticMS)
	}

	// InvalidateAll reruns everything
	s.InvalidateAll()
	ev4, _ := s.Evaluate(data)
	if len(ev4.Recomputed) != 2 {
		t.Errorf("InvalidateAll should rerun both, got %v", ev4.Recomputed)
	}
}

func TestSessionRejectsUnsupportedCompressor(t *testing.T) {
	if _, err := NewSession("core-test-scheme", "sz3-not-registered-here"); err == nil {
		t.Error("unsupported compressor accepted")
	}
}

func TestExtractFeatures(t *testing.T) {
	r := pressio.Options{}
	r.Set("a", 1.5)
	r.Set("b", int64(3))
	f, err := ExtractFeatures(r, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 1.5 || f[1] != 3 {
		t.Errorf("features = %v", f)
	}
	if _, err := ExtractFeatures(r, []string{"missing"}); err == nil {
		t.Error("missing feature accepted")
	}
}

func TestIdentityPredictor(t *testing.T) {
	p := &IdentityPredictor{Index: 2}
	if p.Trains() {
		t.Error("identity should not train")
	}
	v, err := p.Predict([]float64{1, 2, 3})
	if err != nil || v != 3 {
		t.Errorf("Predict = %v, %v", v, err)
	}
	if _, err := p.Predict([]float64{1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := p.Fit(nil, nil); err != nil {
		t.Error("identity Fit should be a no-op")
	}
	b, err := p.Save()
	if err != nil || b == nil {
		t.Error("Save failed")
	}
	if err := p.Load(b); err != nil {
		t.Error("Load failed")
	}
}

func TestModelPredictorSaveLoad(t *testing.T) {
	p := &ModelPredictor{ModelName: "lin", Model: &mlkit.LinearRegression{}, ClampMin: 1}
	if !p.Trains() {
		t.Error("model predictor should train")
	}
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 4, 6, 8}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	state, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	q := &ModelPredictor{ModelName: "lin", Model: &mlkit.LinearRegression{}, ClampMin: 1}
	if err := q.Load(state); err != nil {
		t.Fatal(err)
	}
	a, _ := p.Predict([]float64{5})
	b, _ := q.Predict([]float64{5})
	if a != b {
		t.Errorf("restored predictor differs: %v vs %v", a, b)
	}
	// clamp floor
	lo, _ := p.Predict([]float64{-100})
	if lo < 1 {
		t.Errorf("clamp failed: %v", lo)
	}
}

func TestObserveTarget(t *testing.T) {
	data := pressio.NewFloat32(128)
	cr, cms, dms, err := ObserveTarget("core-test-half", data, pressio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cr != 2.0 {
		t.Errorf("cr = %v, want 2 (half compressor)", cr)
	}
	if cms < 0 || dms < 0 {
		t.Error("negative timings")
	}
	if _, _, _, err := ObserveTarget("missing", data, pressio.Options{}); err == nil {
		t.Error("unknown compressor accepted")
	}
}

func TestModelPredictorInterval(t *testing.T) {
	// conformal-backed predictor exposes real intervals
	p := &ModelPredictor{
		ModelName: "conformal",
		Model:     &mlkit.Conformal{Base: &mlkit.LinearRegression{}},
	}
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 2*float64(i)+float64(i%3)) // slight noise
	}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, lo, hi, err := p.PredictInterval([]float64{10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= pred && pred <= hi) {
		t.Errorf("interval [%v, %v] does not contain prediction %v", lo, hi, pred)
	}
	if hi-lo <= 0 {
		t.Error("conformal interval should have positive width on noisy data")
	}

	// non-conformal model degrades to a point interval
	q := &ModelPredictor{ModelName: "lin", Model: &mlkit.LinearRegression{}}
	q.Fit(x, y)
	pred, lo, hi, err = q.PredictInterval([]float64{10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != pred || hi != pred {
		t.Errorf("point model interval should be degenerate: %v [%v, %v]", pred, lo, hi)
	}
}

func TestGanguliPredictorIsIntervalPredictor(t *testing.T) {
	s, err := GetScheme("core-test-scheme")
	if err != nil {
		t.Fatal(err)
	}
	_ = s // the real check targets ganguli via the predictors package tests
	var ip IntervalPredictor = &ModelPredictor{
		Model: &mlkit.Conformal{Base: &mlkit.LinearRegression{}},
	}
	if ip == nil {
		t.Fatal("ModelPredictor must satisfy IntervalPredictor")
	}
}

// trainingTestScheme is realTestScheme with a trained predictor, for
// SchemeStale's predictors:training handling.
type trainingTestScheme struct{ realTestScheme }

func (*trainingTestScheme) NewPredictor(string) (Predictor, error) {
	return &ModelPredictor{ModelName: "linreg", Model: &mlkit.LinearRegression{}}, nil
}

func TestSchemeStale(t *testing.T) {
	scheme := &realTestScheme{}
	for _, tc := range []struct {
		keys []string
		want bool
	}{
		{[]string{pressio.OptAbs}, true},                   // specific option of the bound metric
		{[]string{pressio.InvalidateErrorDependent}, true}, // class key covers pressio:abs
		{[]string{pressio.InvalidateErrorAgnostic}, true},  // the counting metric
		{[]string{"sz3:quant_bins"}, false},                // unrelated option
		{[]string{pressio.InvalidateTraining}, false},      // identity predictor: nothing trained
		{nil, false},
	} {
		got, err := SchemeStale(scheme, tc.keys)
		if err != nil {
			t.Fatalf("SchemeStale(%v): %v", tc.keys, err)
		}
		if got != tc.want {
			t.Errorf("SchemeStale(%v) = %v, want %v", tc.keys, got, tc.want)
		}
	}
	// a scheme whose predictor trains IS stale under a training invalidation
	got, err := SchemeStale(&trainingTestScheme{}, []string{pressio.InvalidateTraining})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("training scheme should be stale under predictors:training")
	}
}
