// Package core is the Go implementation of libpressio-predict, the
// paper's primary contribution: a lightweight, extendable framework for
// describing, implementing, and using methods that predict compression
// performance without (fully) running compressors.
//
// Three plugin kinds cooperate (paper §4.2):
//
//   - metric plugins (package metrics and scheme-specific ones) compute
//     observations and carry predictors:invalidate metadata describing
//     when their cached values become stale;
//   - Predictor plugins expose fit/predict with serializable state,
//     modelled on SciKit-Learn's BaseEstimator;
//   - Scheme plugins tie the two together: which metrics a method needs,
//     which result keys form its feature vector, what it predicts, and
//     which compressors it supports.
//
// A Session drives the Figure-4 inference flow: get a scheme, get its
// predictor for a compressor, declare what changed (invalidations),
// recompute only the stale metrics, and predict.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/pressio"
)

// Predictor is the predict_plugin interface: fit on observed
// (features, target) rows, predict from one feature vector, and
// save/restore trained state.
type Predictor interface {
	// Name identifies the predictor implementation.
	Name() string

	// Trains reports whether Fit is required before Predict.
	Trains() bool

	// Fit trains on rows of features and targets. Predictors with
	// Trains() == false accept and ignore any input.
	Fit(features [][]float64, targets []float64) error

	// Predict estimates the target for one feature vector.
	Predict(features []float64) (float64, error)

	// Save serializes the trained state ("predictors:state").
	Save() ([]byte, error)

	// Load restores state produced by Save.
	Load([]byte) error
}

// Info is a scheme's Table-1 row: the taxonomy the paper uses to compare
// estimation methods.
type Info struct {
	// Method is the citation label, e.g. "Tao [15]".
	Method string
	// Training reports whether the scheme fits parameters to data.
	Training bool
	// Sampling reports whether the scheme reads only a sample of the data.
	Sampling bool
	// BlackBox is "yes", "no", or "partial" (the ~ of Table 1).
	BlackBox string
	// Goal is "fast" or "accurate".
	Goal string
	// Metrics names what is predicted, e.g. "CR" or "CR, Bandwidth".
	Metrics string
	// Approach is the method family: trial-based, regression,
	// calculation, machine learning, deep learning.
	Approach string
	// Features notes special capabilities: "bounded", "counterfactuals".
	Features string
}

// Scheme is the scheme_plugin interface: everything a user needs to apply
// a prediction method without knowing its internals.
type Scheme interface {
	// Name is the registry key, e.g. "rahman2023".
	Name() string

	// Info returns the scheme's taxonomy row.
	Info() Info

	// Supports reports whether the scheme can predict for the named
	// compressor in its current configuration.
	Supports(compressor string) bool

	// Metrics lists the metric plugins whose results the scheme consumes.
	Metrics() []string

	// Features lists the result keys, in order, forming the feature
	// vector passed to the predictor.
	Features() []string

	// Target is the result key the scheme predicts, e.g.
	// "size:compression_ratio".
	Target() string

	// NewPredictor builds the predictor configured for a compressor.
	NewPredictor(compressor string) (Predictor, error)
}

var schemes struct {
	mu        sync.RWMutex
	factories map[string]func() Scheme
	order     []string
}

// RegisterScheme adds a scheme factory to the registry; it panics on
// duplicates (registration happens in package init).
func RegisterScheme(name string, factory func() Scheme) {
	schemes.mu.Lock()
	defer schemes.mu.Unlock()
	if schemes.factories == nil {
		schemes.factories = make(map[string]func() Scheme)
	}
	if _, dup := schemes.factories[name]; dup {
		panic(fmt.Sprintf("core: duplicate scheme %q", name))
	}
	schemes.factories[name] = factory
	schemes.order = append(schemes.order, name)
}

// GetScheme instantiates a scheme by name.
func GetScheme(name string) (Scheme, error) {
	schemes.mu.RLock()
	factory, ok := schemes.factories[name]
	schemes.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no scheme %q (have %v)", name, SchemeNames())
	}
	return factory(), nil
}

// SchemeNames lists registered schemes, sorted.
func SchemeNames() []string {
	schemes.mu.RLock()
	defer schemes.mu.RUnlock()
	out := append([]string(nil), schemes.order...)
	sort.Strings(out)
	return out
}

// Stage classifies a metric by its invalidation metadata for the paper's
// per-stage timing breakdown (§5).
type Stage int

const (
	// StageErrorAgnostic metrics depend only on the data.
	StageErrorAgnostic Stage = iota
	// StageErrorDependent metrics also depend on error-bound settings.
	StageErrorDependent
	// StageRuntime metrics depend on runtime factors (timings, sizes
	// from actually running the compressor).
	StageRuntime
)

// String returns the Table-2 column name of the stage.
func (s Stage) String() string {
	switch s {
	case StageErrorAgnostic:
		return "error-agnostic"
	case StageErrorDependent:
		return "error-dependent"
	case StageRuntime:
		return "runtime"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// StageOf classifies a metric from its predictors:invalidate metadata:
// runtime beats error-dependent beats error-agnostic when several classes
// are listed (a runtime metric is also invalid under error changes).
func StageOf(m pressio.Metric) Stage {
	inv, _ := m.Configuration().GetStrings(pressio.CfgInvalidate)
	stage := StageErrorAgnostic
	for _, k := range inv {
		switch k {
		case pressio.InvalidateRuntime, pressio.InvalidateNondeterministic:
			return StageRuntime
		case pressio.InvalidateErrorDependent:
			stage = StageErrorDependent
		default:
			if k != pressio.InvalidateErrorAgnostic {
				// a named compressor option: its change affects results,
				// which is the error-dependent contract
				stage = StageErrorDependent
			}
		}
	}
	return stage
}

// IsStale reports whether a metric with the given predictors:invalidate
// list must be recomputed after the user invalidates the given keys.
//
// Matching is set intersection with one refinement from the paper: the
// generic class keys cover their specific options, so invalidating
// predictors:error_dependent also invalidates a metric that only lists
// pressio:abs (a specific error-affecting option), and invalidating a
// specific option a metric lists triggers it even when the user did not
// name the generic class.
func IsStale(metricInvalidate, invalidated []string) bool {
	inv := make(map[string]bool, len(invalidated))
	genericErr := false
	for _, k := range invalidated {
		inv[k] = true
		if k == pressio.InvalidateErrorDependent {
			genericErr = true
		}
	}
	for _, k := range metricInvalidate {
		if inv[k] {
			return true
		}
		// generic error invalidation covers specific error-affecting
		// options (anything that is not one of the class labels)
		if genericErr && !isClassKey(k) {
			return true
		}
	}
	return false
}

// SchemeStale reports whether invalidating the given option names or
// class keys makes any of a scheme's metrics stale — and therefore makes
// anything derived from those metrics (cached feature vectors, trained
// predictor state, served predictions) untrustworthy. The serving layer
// uses it to decide which registry entries and cached results a
// predictors:invalidate declaration must evict. InvalidateTraining is
// handled here too: training is an input of every trained artifact, so a
// training invalidation always reports stale for schemes that train.
func SchemeStale(scheme Scheme, keys []string) (bool, error) {
	for _, k := range keys {
		if k == pressio.InvalidateTraining {
			if p, err := schemeTrains(scheme); err == nil && p {
				return true, nil
			}
		}
	}
	for _, name := range scheme.Metrics() {
		m, err := pressio.GetMetric(name)
		if err != nil {
			return false, err
		}
		inv, _ := m.Configuration().GetStrings(pressio.CfgInvalidate)
		if IsStale(inv, keys) {
			return true, nil
		}
	}
	return false, nil
}

// schemeTrains reports whether the scheme's predictor requires training;
// probing uses an empty compressor name, which every NewPredictor accepts
// for capability inspection.
func schemeTrains(scheme Scheme) (bool, error) {
	p, err := scheme.NewPredictor("")
	if err != nil {
		return false, err
	}
	return p.Trains(), nil
}

func isClassKey(k string) bool {
	switch k {
	case pressio.InvalidateErrorAgnostic, pressio.InvalidateErrorDependent,
		pressio.InvalidateRuntime, pressio.InvalidateNondeterministic,
		pressio.InvalidateTraining:
		return true
	}
	return false
}

// Evaluation is the result of computing a scheme's metrics on a buffer,
// with the per-stage timing split the paper's Table 2 reports.
type Evaluation struct {
	// Features is the vector in scheme.Features() order.
	Features []float64
	// Results is the union of all metric results.
	Results pressio.Options
	// ErrorAgnosticMS / ErrorDependentMS are wall-clock milliseconds
	// spent in metrics of each stage during this evaluation (0 when the
	// stage's metrics were served from cache).
	ErrorAgnosticMS  float64
	ErrorDependentMS float64
	// Recomputed lists the metric names actually executed (the rest were
	// cache hits under the invalidation model).
	Recomputed []string
}

// Session drives the Figure-4 flow for one (scheme, compressor) pair,
// caching metric results between predictions and recomputing only what an
// invalidation makes stale (the paper's challenge #1).
type Session struct {
	Scheme     Scheme
	Compressor pressio.Compressor
	Predictor  Predictor

	metrics []pressio.Metric
	opts    pressio.Options

	// cache state
	cachedResults map[string]pressio.Options // metric name → last results
	stale         map[string]bool
}

// NewSession instantiates the scheme, verifies compressor support, and
// builds the predictor and metric plugins.
func NewSession(schemeName, compressorName string) (*Session, error) {
	scheme, err := GetScheme(schemeName)
	if err != nil {
		return nil, err
	}
	if !scheme.Supports(compressorName) {
		return nil, fmt.Errorf("core: scheme %s does not support compressor %s", schemeName, compressorName)
	}
	comp, err := pressio.GetCompressor(compressorName)
	if err != nil {
		return nil, err
	}
	pred, err := scheme.NewPredictor(compressorName)
	if err != nil {
		return nil, err
	}
	s := &Session{
		Scheme:        scheme,
		Compressor:    comp,
		Predictor:     pred,
		opts:          pressio.Options{},
		cachedResults: map[string]pressio.Options{},
		stale:         map[string]bool{},
	}
	for _, name := range scheme.Metrics() {
		m, err := pressio.GetMetric(name)
		if err != nil {
			return nil, err
		}
		s.metrics = append(s.metrics, m)
		s.stale[name] = true // nothing computed yet
	}
	return s, nil
}

// SetOptions configures the compressor and every metric. It does NOT
// invalidate caches: callers declare what changed via Invalidate, exactly
// as in the paper's usage sketch.
func (s *Session) SetOptions(opts pressio.Options) error {
	s.opts.Merge(opts)
	if err := s.Compressor.SetOptions(opts); err != nil {
		return err
	}
	for _, m := range s.metrics {
		if err := m.SetOptions(opts); err != nil {
			return fmt.Errorf("core: metric %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Invalidate marks the metrics affected by the given option names or
// special class keys as needing recomputation. It returns the names of
// the metrics that became stale.
func (s *Session) Invalidate(keys ...string) []string {
	var out []string
	for _, m := range s.metrics {
		inv, _ := m.Configuration().GetStrings(pressio.CfgInvalidate)
		if IsStale(inv, keys) && !s.stale[m.Name()] {
			s.stale[m.Name()] = true
			out = append(out, m.Name())
		}
	}
	return out
}

// InvalidateAll marks every metric stale (e.g. when the data buffer
// itself changes).
func (s *Session) InvalidateAll() {
	for _, m := range s.metrics {
		s.stale[m.Name()] = true
	}
}

// Evaluate computes the scheme's stale metrics on data, serves the rest
// from cache, and assembles the feature vector.
func (s *Session) Evaluate(data *pressio.Data) (*Evaluation, error) {
	ev := &Evaluation{Results: pressio.Options{}}
	for _, m := range s.metrics {
		name := m.Name()
		if s.stale[name] {
			start := time.Now()
			m.BeginCompress(data)
			elapsed := time.Since(start).Seconds() * 1e3
			switch StageOf(m) {
			case StageErrorDependent, StageRuntime:
				ev.ErrorDependentMS += elapsed
			default:
				ev.ErrorAgnosticMS += elapsed
			}
			s.cachedResults[name] = m.Results()
			s.stale[name] = false
			ev.Recomputed = append(ev.Recomputed, name)
		}
		ev.Results.Merge(s.cachedResults[name])
	}
	features, err := ExtractFeatures(ev.Results, s.Scheme.Features())
	if err != nil {
		return nil, err
	}
	ev.Features = features
	return ev, nil
}

// Predict runs Evaluate and feeds the features to the predictor — the
// whole Figure-4 inference path in one call.
func (s *Session) Predict(data *pressio.Data) (float64, *Evaluation, error) {
	ev, err := s.Evaluate(data)
	if err != nil {
		return 0, nil, err
	}
	v, err := s.Predictor.Predict(ev.Features)
	if err != nil {
		return 0, ev, err
	}
	return v, ev, nil
}

// ExtractFeatures pulls the named keys out of a results structure in
// order — the extract(...) helper of the paper's Figure 4.
func ExtractFeatures(results pressio.Options, keys []string) ([]float64, error) {
	out := make([]float64, len(keys))
	for i, k := range keys {
		v, ok := results.GetFloat(k)
		if !ok {
			if iv, iok := results.GetInt(k); iok {
				v = float64(iv)
			} else {
				return nil, fmt.Errorf("core: results missing feature %q (have %v)", k, results.Keys())
			}
		}
		out[i] = v
	}
	return out, nil
}

// ObserveTarget runs the real compressor on data (with the given options)
// and returns the scheme target observation — the compression ratio —
// plus the compress/decompress wall-clock times in milliseconds. This is
// the "training" stage of Table 2: the expensive observation training-
// based schemes need once per training buffer.
func ObserveTarget(compressorName string, data *pressio.Data, opts pressio.Options) (cr, compressMS, decompressMS float64, err error) {
	comp, err := pressio.GetCompressor(compressorName)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := comp.SetOptions(opts); err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	compressed, err := comp.Compress(data)
	if err != nil {
		return 0, 0, 0, err
	}
	compressMS = time.Since(start).Seconds() * 1e3
	out := pressio.New(data.DType(), data.Dims()...)
	start = time.Now()
	if err := comp.Decompress(compressed, out); err != nil {
		return 0, 0, 0, err
	}
	decompressMS = time.Since(start).Seconds() * 1e3
	cr = float64(data.ByteSize()) / float64(compressed.ByteSize())
	return cr, compressMS, decompressMS, nil
}
