package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []int32) {
	t.Helper()
	buf, err := Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T)  { roundTrip(t, []int32{}) }
func TestRoundTripSingle(t *testing.T) { roundTrip(t, []int32{42}) }
func TestRoundTripUniformSymbol(t *testing.T) {
	roundTrip(t, []int32{7, 7, 7, 7, 7, 7, 7, 7})
}
func TestRoundTripNegativeSymbols(t *testing.T) {
	roundTrip(t, []int32{-1, -2, 3, -1, 0, math.MinInt32, math.MaxInt32})
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]int32, 10000)
	for i := range data {
		// geometric-ish distribution like quantization codes
		v := int32(0)
		for rng.Float64() < 0.7 {
			v++
		}
		if rng.Intn(2) == 0 {
			v = -v
		}
		data[i] = v
	}
	roundTrip(t, data)
}

func TestRoundTripQuick(t *testing.T) {
	f := func(data []int32) bool {
		// narrow the alphabet so codes are exercised, not the map
		for i := range data {
			data[i] = data[i] % 50
		}
		buf, err := Encode(data)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCompressionBeatsFixedWidth(t *testing.T) {
	// Highly skewed data should code well below 32 bits/symbol and below
	// the entropy+1 bound.
	data := make([]int32, 100000)
	rng := rand.New(rand.NewSource(2))
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = 0
		} else {
			data[i] = int32(rng.Intn(16))
		}
	}
	buf, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	bitsPerSym := float64(len(buf)*8) / float64(len(data))
	if bitsPerSym > 2.0 {
		t.Errorf("skewed data coded at %.2f bits/symbol, expected < 2", bitsPerSym)
	}
}

func TestMeanCodeLengthWithinEntropyPlusOne(t *testing.T) {
	counts := map[int32]uint64{0: 900, 1: 50, 2: 30, 3: 15, 4: 5}
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	var entropy float64
	for _, c := range counts {
		p := float64(c) / total
		entropy -= p * math.Log2(p)
	}
	mean := MeanCodeLength(counts)
	if mean < entropy || mean > entropy+1 {
		t.Errorf("mean code length %.4f outside [H, H+1] = [%.4f, %.4f]", mean, entropy, entropy+1)
	}
}

func TestMeanCodeLengthEmpty(t *testing.T) {
	if MeanCodeLength(nil) != 0 {
		t.Error("empty histogram should have zero mean code length")
	}
}

func TestCodeLengthsKraft(t *testing.T) {
	// Kraft equality must hold for a complete prefix code.
	rng := rand.New(rand.NewSource(3))
	counts := map[int32]uint64{}
	for i := 0; i < 300; i++ {
		counts[int32(i)] = uint64(rng.Intn(10000) + 1)
	}
	lengths := CodeLengths(counts)
	var kraft float64
	for _, l := range lengths {
		kraft += math.Pow(2, -float64(l))
	}
	if math.Abs(kraft-1.0) > 1e-9 {
		t.Errorf("Kraft sum = %v, want 1", kraft)
	}
}

func TestCodeLengthsSingleSymbol(t *testing.T) {
	lengths := CodeLengths(map[int32]uint64{5: 100})
	if lengths[5] != 1 {
		t.Errorf("single-symbol code length = %d, want 1", lengths[5])
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := []int32{1, 2, 3, 1, 2, 1, 1}
	buf, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 10, len(buf) - 1} {
		if n > len(buf) {
			continue
		}
		if _, err := Decode(buf[:n]); err == nil {
			t.Errorf("Decode accepted %d-byte truncation", n)
		}
	}
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	// symbol table with a zero code length
	buf := []byte{1, 0, 0, 0 /* nsym=1 */, 5, 0, 0, 0 /* sym=5 */, 0 /* len=0 */}
	buf = append(buf, make([]byte, 16)...)
	if _, err := Decode(buf); err == nil {
		t.Error("Decode accepted zero code length")
	}
}

func TestEncoderRejectsUnknownSymbol(t *testing.T) {
	e, err := NewEncoder(map[int32]uint64{1: 5, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Encode([]int32{1, 2, 99}, 1); err == nil {
		t.Error("Encode accepted symbol missing from the table")
	}
}

func TestEncodedBitLen(t *testing.T) {
	counts := map[int32]uint64{0: 3, 1: 1}
	e, err := NewEncoder(counts)
	if err != nil {
		t.Fatal(err)
	}
	// two symbols → both get 1-bit codes → 4 symbols × 1 bit
	if got := e.EncodedBitLen(counts); got != 4 {
		t.Errorf("EncodedBitLen = %d, want 4", got)
	}
}

func BenchmarkEncode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	data := make([]int32, 65536)
	for i := range data {
		v := int32(0)
		for rng.Float64() < 0.6 {
			v++
		}
		data[i] = v
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := make([]int32, 65536)
	for i := range data {
		data[i] = int32(rng.Intn(100))
	}
	buf, err := Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
