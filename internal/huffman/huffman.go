// Package huffman implements a canonical Huffman coder over integer
// symbols. It is the entropy-coding stage of the sz3 compressor and the
// reference implementation against which the Jin ratio-quality model's
// Huffman-efficiency estimate is validated.
//
// The code table is serialized canonically (symbol, code length) so the
// decoder can rebuild the exact codes without transmitting them; this keeps
// the header small even for the 2^16-bin quantizer alphabets SZ-style
// compressors use.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitstream"
)

// maxCodeLen bounds code lengths; 58 leaves room in the canonical
// construction for any realistic alphabet while fitting in a uint64 with
// room for length counting.
const maxCodeLen = 58

var (
	// ErrCorrupt is returned when a serialized stream fails validation.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

type huffNode struct {
	weight      uint64
	symbol      int32 // valid for leaves
	left, right *huffNode
	order       int // tie-break for determinism
}

type nodeHeap []*huffNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CodeLengths computes canonical Huffman code lengths for the given
// symbol→count histogram. Symbols with zero count receive no code. The
// result maps symbol to code length in bits.
func CodeLengths(counts map[int32]uint64) map[int32]uint {
	if len(counts) == 0 {
		return map[int32]uint{}
	}
	if len(counts) == 1 {
		for s := range counts {
			return map[int32]uint{s: 1}
		}
	}
	// Deterministic construction: seed the heap in sorted symbol order.
	symbols := make([]int32, 0, len(counts))
	for s := range counts {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	h := make(nodeHeap, 0, len(symbols))
	order := 0
	for _, s := range symbols {
		h = append(h, &huffNode{weight: counts[s], symbol: s, order: order})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{weight: a.weight + b.weight, left: a, right: b, order: order})
		order++
	}
	root := h[0]
	lengths := make(map[int32]uint, len(counts))
	var walk func(n *huffNode, depth uint)
	walk = func(n *huffNode, depth uint) {
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical code values from code lengths: codes are
// ordered by (length, symbol). Returns parallel slices sorted that way.
func canonicalCodes(lengths map[int32]uint) (symbols []int32, lens []uint, codes []uint64, err error) {
	symbols = make([]int32, 0, len(lengths))
	for s := range lengths {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool {
		li, lj := lengths[symbols[i]], lengths[symbols[j]]
		if li != lj {
			return li < lj
		}
		return symbols[i] < symbols[j]
	})
	lens = make([]uint, len(symbols))
	codes = make([]uint64, len(symbols))
	var code uint64
	var prevLen uint
	for i, s := range symbols {
		l := lengths[s]
		if l > maxCodeLen {
			return nil, nil, nil, fmt.Errorf("huffman: code length %d exceeds max %d", l, maxCodeLen)
		}
		code <<= (l - prevLen)
		codes[i] = code
		lens[i] = l
		code++
		prevLen = l
	}
	return symbols, lens, codes, nil
}

// Encoder holds a code table built from a histogram.
type Encoder struct {
	codes map[int32]struct {
		code uint64
		len  uint
	}
	symbols []int32
	lens    []uint
}

// NewEncoder builds an encoder for the histogram of the symbols to encode.
func NewEncoder(counts map[int32]uint64) (*Encoder, error) {
	lengths := CodeLengths(counts)
	symbols, lens, codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	e := &Encoder{codes: make(map[int32]struct {
		code uint64
		len  uint
	}, len(symbols)), symbols: symbols, lens: lens}
	for i, s := range symbols {
		e.codes[s] = struct {
			code uint64
			len  uint
		}{codes[i], lens[i]}
	}
	return e, nil
}

// EncodedBitLen returns the total payload length in bits for encoding data
// with this table (exclusive of the table header).
func (e *Encoder) EncodedBitLen(counts map[int32]uint64) uint64 {
	var total uint64
	for s, c := range counts {
		if entry, ok := e.codes[s]; ok {
			total += c * uint64(entry.len)
		}
	}
	return total
}

// Encode serializes the code table and payload for data into one buffer.
//
// Layout: u32 symbolCount, then per symbol (i32 symbol, u8 length) in
// canonical order, then u64 payload element count, then the bit stream.
func (e *Encoder) Encode(data []int32) ([]byte, error) {
	header := make([]byte, 0, 4+5*len(e.symbols)+8)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(e.symbols)))
	for i, s := range e.symbols {
		header = binary.LittleEndian.AppendUint32(header, uint32(s))
		header = append(header, byte(e.lens[i]))
	}
	header = binary.LittleEndian.AppendUint64(header, uint64(len(data)))

	var w bitstream.Writer
	for _, s := range data {
		entry, ok := e.codes[s]
		if !ok {
			return nil, fmt.Errorf("huffman: symbol %d not in code table", s)
		}
		w.WriteBits(entry.code, entry.len)
	}
	payload := w.Bytes()
	out := make([]byte, 0, len(header)+8+len(payload))
	out = append(out, header...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// Encode is a convenience that histograms data, builds the table, and
// encodes in one call.
func Encode(data []int32) ([]byte, error) {
	counts := make(map[int32]uint64)
	for _, s := range data {
		counts[s]++
	}
	if len(counts) == 0 {
		// empty stream: symbolCount=0, elementCount=0, payloadLen=0
		out := make([]byte, 0, 20)
		out = binary.LittleEndian.AppendUint32(out, 0)
		out = binary.LittleEndian.AppendUint64(out, 0)
		out = binary.LittleEndian.AppendUint64(out, 0)
		return out, nil
	}
	e, err := NewEncoder(counts)
	if err != nil {
		return nil, err
	}
	return e.Encode(data)
}

// decodeNode is a binary trie node for decoding.
type decodeNode struct {
	children [2]*decodeNode
	symbol   int32
	leaf     bool
}

// Decode parses a buffer produced by Encode and returns the symbol stream.
func Decode(buf []byte) ([]int32, error) {
	if len(buf) < 4 {
		return nil, ErrCorrupt
	}
	nsym := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if nsym < 0 || len(buf) < nsym*5 {
		return nil, ErrCorrupt
	}
	lengths := make(map[int32]uint, nsym)
	orderedSyms := make([]int32, nsym)
	for i := 0; i < nsym; i++ {
		s := int32(binary.LittleEndian.Uint32(buf))
		l := uint(buf[4])
		buf = buf[5:]
		if l == 0 || l > maxCodeLen {
			return nil, ErrCorrupt
		}
		if _, dup := lengths[s]; dup {
			return nil, ErrCorrupt
		}
		lengths[s] = l
		orderedSyms[i] = s
	}
	if len(buf) < 8 {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if len(buf) < 8 {
		return nil, ErrCorrupt
	}
	payloadLen := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < payloadLen {
		return nil, ErrCorrupt
	}
	payload := buf[:payloadLen]

	if count == 0 {
		return []int32{}, nil
	}
	if nsym == 0 {
		return nil, ErrCorrupt
	}

	// Rebuild canonical codes and the decoding trie.
	symbols, lens, codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, ErrCorrupt
	}
	root := &decodeNode{}
	for i, s := range symbols {
		n := root
		for bit := int(lens[i]) - 1; bit >= 0; bit-- {
			b := (codes[i] >> uint(bit)) & 1
			if n.leaf {
				return nil, ErrCorrupt // prefix violation
			}
			if n.children[b] == nil {
				n.children[b] = &decodeNode{}
			}
			n = n.children[b]
		}
		if n.leaf || n.children[0] != nil || n.children[1] != nil {
			return nil, ErrCorrupt
		}
		n.leaf = true
		n.symbol = s
	}

	// cap the preallocation: count comes from an untrusted header, and
	// the loop below errors out as soon as the payload runs dry anyway
	prealloc := count
	if maxPre := uint64(payloadLen) * 8; prealloc > maxPre {
		prealloc = maxPre
	}
	out := make([]int32, 0, prealloc)
	r := bitstream.NewReader(payload)
	for uint64(len(out)) < count {
		n := root
		for !n.leaf {
			b, err := r.ReadBit()
			if err != nil {
				return nil, ErrCorrupt
			}
			n = n.children[b]
			if n == nil {
				return nil, ErrCorrupt
			}
		}
		out = append(out, n.symbol)
	}
	return out, nil
}

// MeanCodeLength returns the average code length in bits per symbol that an
// optimal Huffman code achieves on the histogram — the quantity the Jin
// model estimates analytically from the code distribution.
func MeanCodeLength(counts map[int32]uint64) float64 {
	lengths := CodeLengths(counts)
	var total, bits uint64
	for s, c := range counts {
		total += c
		bits += c * uint64(lengths[s])
	}
	if total == 0 {
		return 0
	}
	return float64(bits) / float64(total)
}
