// Package huffman implements a canonical Huffman coder over integer
// symbols. It is the entropy-coding stage of the sz3 compressor and the
// reference implementation against which the Jin ratio-quality model's
// Huffman-efficiency estimate is validated.
//
// The code table is serialized canonically (symbol, code length) so the
// decoder can rebuild the exact codes without transmitting them; this keeps
// the header small even for the 2^16-bin quantizer alphabets SZ-style
// compressors use.
//
// The per-element hot paths avoid map operations: the histogram counts
// into a dense window array (quantizer codes cluster tightly; outlier
// sentinels overflow into a small map), encoding looks codes up in a dense
// packed table, and decoding drives a canonical first-code table through a
// K-bit prefix lookup instead of walking a pointer trie. Payload encoding
// is chunk-parallel over the shared worker pool: each chunk encodes into a
// pooled writer and the chunks are bit-spliced in order, so the output is
// byte-identical to single-threaded encoding.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/parallel"
)

// maxCodeLen bounds code lengths; 58 leaves room in the canonical
// construction for any realistic alphabet while fitting in a uint64 with
// room for length counting.
const maxCodeLen = 58

var (
	// ErrCorrupt is returned when a serialized stream fails validation.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

type huffNode struct {
	weight      uint64
	symbol      int32 // valid for leaves
	left, right *huffNode
	order       int // tie-break for determinism
}

type nodeHeap []*huffNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CodeLengths computes canonical Huffman code lengths for the given
// symbol→count histogram. Symbols with zero count receive no code. The
// result maps symbol to code length in bits.
func CodeLengths(counts map[int32]uint64) map[int32]uint {
	if len(counts) == 0 {
		return map[int32]uint{}
	}
	if len(counts) == 1 {
		for s := range counts {
			return map[int32]uint{s: 1}
		}
	}
	// Deterministic construction: seed the heap in sorted symbol order.
	symbols := make([]int32, 0, len(counts))
	for s := range counts {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	// arena-allocate the tree: n leaves plus n-1 internal nodes, one
	// allocation instead of one per node
	arena := make([]huffNode, 0, 2*len(symbols)-1)
	h := make(nodeHeap, 0, len(symbols))
	order := 0
	for _, s := range symbols {
		arena = append(arena, huffNode{weight: counts[s], symbol: s, order: order})
		h = append(h, &arena[len(arena)-1])
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		arena = append(arena, huffNode{weight: a.weight + b.weight, left: a, right: b, order: order})
		heap.Push(&h, &arena[len(arena)-1])
		order++
	}
	root := h[0]
	lengths := make(map[int32]uint, len(counts))
	var walk func(n *huffNode, depth uint)
	walk = func(n *huffNode, depth uint) {
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical code values from code lengths: codes are
// ordered by (length, symbol). Returns parallel slices sorted that way. It
// rejects length sets that over-subscribe the code space (which is how a
// corrupt table manifests after the per-length parse checks).
func canonicalCodes(lengths map[int32]uint) (symbols []int32, lens []uint, codes []uint64, err error) {
	// sort (length, symbol) pairs directly so the comparator does no map
	// lookups; lengths fit in the low bits above the symbol
	type pair struct {
		s int32
		l uint
	}
	pairs := make([]pair, 0, len(lengths))
	for s, l := range lengths {
		pairs = append(pairs, pair{s: s, l: l})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].l != pairs[j].l {
			return pairs[i].l < pairs[j].l
		}
		return pairs[i].s < pairs[j].s
	})
	symbols = make([]int32, len(pairs))
	for i, p := range pairs {
		symbols[i] = p.s
	}
	lens = make([]uint, len(symbols))
	codes = make([]uint64, len(symbols))
	var code uint64
	var prevLen uint
	for i, p := range pairs {
		l := p.l
		if l > maxCodeLen {
			return nil, nil, nil, fmt.Errorf("huffman: code length %d exceeds max %d", l, maxCodeLen)
		}
		code <<= (l - prevLen)
		if code >= 1<<l {
			return nil, nil, nil, fmt.Errorf("huffman: code lengths over-subscribe the code space")
		}
		codes[i] = code
		lens[i] = l
		code++
		prevLen = l
	}
	return symbols, lens, codes, nil
}

// packed dense-table entry: code in the high bits, length in the low 6.
// Zero means "symbol absent" (length 0 is never a valid code).
type packedCode = uint64

func packCode(code uint64, length uint) packedCode { return code<<6 | uint64(length) }

// denseTableMax bounds the dense encode table span (2^20 entries = 8 MiB,
// transient). Symbols beyond the window — sz3's outlier sentinel — go to
// the overflow map, which stays tiny in practice.
const denseTableMax = 1 << 20

// Encoder holds a code table built from a histogram.
type Encoder struct {
	base     int32 // first symbol covered by dense
	dense    []packedCode
	overflow map[int32]packedCode
	symbols  []int32
	lens     []uint
}

// NewEncoder builds an encoder for the histogram of the symbols to encode.
func NewEncoder(counts map[int32]uint64) (*Encoder, error) {
	lengths := CodeLengths(counts)
	symbols, lens, codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	e := &Encoder{symbols: symbols, lens: lens, overflow: map[int32]packedCode{}}
	if len(symbols) > 0 {
		lo, hi := symbols[0], symbols[0]
		for _, s := range symbols {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		span := int64(hi) - int64(lo) + 1
		if span > denseTableMax {
			span = denseTableMax
		}
		e.base = lo
		e.dense = make([]packedCode, span)
	}
	for i, s := range symbols {
		p := packCode(codes[i], lens[i])
		if idx := int64(s) - int64(e.base); idx >= 0 && idx < int64(len(e.dense)) {
			e.dense[idx] = p
		} else {
			e.overflow[s] = p
		}
	}
	return e, nil
}

// lookup returns the packed (code, length) entry for s, or ok=false when
// the symbol has no code.
func (e *Encoder) lookup(s int32) (packedCode, bool) {
	if idx := int64(s) - int64(e.base); idx >= 0 && idx < int64(len(e.dense)) {
		p := e.dense[idx]
		return p, p != 0
	}
	p, ok := e.overflow[s]
	return p, ok
}

// EncodedBitLen returns the total payload length in bits for encoding data
// with this table (exclusive of the table header).
func (e *Encoder) EncodedBitLen(counts map[int32]uint64) uint64 {
	var total uint64
	for s, c := range counts {
		if p, ok := e.lookup(s); ok {
			total += c * (p & 63)
		}
	}
	return total
}

// Encode serializes the code table and payload for data into one buffer,
// using up to `workers` pool workers for the payload ("0" = all cores).
//
// Layout: u32 symbolCount, then per symbol (i32 symbol, u8 length) in
// canonical order, then u64 payload element count, then u64 payload byte
// length, then the bit stream. The bytes are identical for every worker
// count: chunk streams are spliced in order, reproducing the serial bit
// sequence exactly.
func (e *Encoder) Encode(data []int32, workers int) ([]byte, error) {
	header := make([]byte, 0, 4+5*len(e.symbols)+8)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(e.symbols)))
	for i, s := range e.symbols {
		header = binary.LittleEndian.AppendUint32(header, uint32(s))
		header = append(header, byte(e.lens[i]))
	}
	header = binary.LittleEndian.AppendUint64(header, uint64(len(data)))

	// split the payload into deterministic chunks, one pooled writer each
	nchunks := parallel.Resolve(workers)
	if max := (len(data) + 1<<14 - 1) / (1 << 14); nchunks > max {
		nchunks = max
	}
	if nchunks < 1 {
		nchunks = 1
	}
	chunk := (len(data) + nchunks - 1) / nchunks
	writers := make([]*bitstream.Writer, nchunks)
	errs := make([]error, nchunks)
	parallel.ForTasks(workers, nchunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		w := bitstream.GetWriter()
		writers[ci] = w
		for _, s := range data[lo:hi] {
			p, ok := e.lookup(s)
			if !ok {
				errs[ci] = fmt.Errorf("huffman: symbol %d not in code table", s)
				return
			}
			w.WriteBits(p>>6, uint(p&63))
		}
	})
	for _, err := range errs {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					bitstream.PutWriter(w)
				}
			}
			return nil, err
		}
	}
	var w bitstream.Writer
	for _, cw := range writers {
		w.AppendWriter(cw)
		bitstream.PutWriter(cw)
	}
	payload := w.Bytes()
	out := make([]byte, 0, len(header)+8+len(payload))
	out = append(out, header...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// Encode is a convenience that histograms data, builds the table, and
// encodes in one call using the default worker count.
func Encode(data []int32) ([]byte, error) { return EncodeWorkers(data, 0) }

// EncodeWorkers is Encode with an explicit worker cap (0 = all cores).
// The output bytes do not depend on the worker count.
func EncodeWorkers(data []int32, workers int) ([]byte, error) {
	counts := HistogramInt32(data, workers)
	if len(counts) == 0 {
		// empty stream: symbolCount=0, elementCount=0, payloadLen=0
		out := make([]byte, 0, 20)
		out = binary.LittleEndian.AppendUint32(out, 0)
		out = binary.LittleEndian.AppendUint64(out, 0)
		out = binary.LittleEndian.AppendUint64(out, 0)
		return out, nil
	}
	e, err := NewEncoder(counts)
	if err != nil {
		return nil, err
	}
	return e.Encode(data, workers)
}

// denseHistPool recycles the dense counting window of HistogramInt32.
var denseHistPool = sync.Pool{New: func() any { return []uint64(nil) }}

// denseHistMax bounds the dense histogram window; symbols outside
// [min, min+denseHistMax) are counted in a map (the sz3 outlier sentinel
// and nothing else, in practice).
const denseHistMax = 1 << 20

// HistogramInt32 counts symbol occurrences using a dense window array for
// the clustered bulk of the alphabet and a map for far outliers, with the
// window chosen from the data minimum. Chunks count in parallel and merge.
func HistogramInt32(data []int32, workers int) map[int32]uint64 {
	out := make(map[int32]uint64, 256)
	if len(data) == 0 {
		return out
	}
	lo, hi := data[0], data[0]
	var mu sync.Mutex
	parallel.For(workers, len(data), func(clo, chi int) {
		l, h := data[clo], data[clo]
		for _, s := range data[clo:chi] {
			if s < l {
				l = s
			}
			if s > h {
				h = s
			}
		}
		mu.Lock()
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
		mu.Unlock()
	})
	span := int64(hi) - int64(lo) + 1
	if span > denseHistMax {
		// the window would hit the cap — typically a far sentinel (the sz3
		// outlier code) inflating an otherwise tight alphabet. Re-reduce
		// for the largest symbol below the capped window so the window
		// covers exactly the clustered bulk and stays small to zero,
		// merge, and scan; everything above it falls to the map.
		limit := int64(lo) + denseHistMax
		h2 := lo
		parallel.For(workers, len(data), func(clo, chi int) {
			l2 := lo
			for _, s := range data[clo:chi] {
				if int64(s) < limit && s > l2 {
					l2 = s
				}
			}
			mu.Lock()
			if l2 > h2 {
				h2 = l2
			}
			mu.Unlock()
		})
		span = int64(h2) - int64(lo) + 1
	}
	window := denseHistPool.Get().([]uint64)
	if int64(len(window)) < span {
		window = make([]uint64, span)
	}
	window = window[:span]
	parallel.For(workers, len(data), func(clo, chi int) {
		local := denseHistPool.Get().([]uint64)
		if int64(len(local)) < span {
			local = make([]uint64, span)
		}
		local = local[:span]
		var far map[int32]uint64
		for _, s := range data[clo:chi] {
			if idx := int64(s) - int64(lo); idx < span {
				local[idx]++
			} else {
				if far == nil {
					far = make(map[int32]uint64, 4)
				}
				far[s]++
			}
		}
		mu.Lock()
		for i, c := range local {
			if c != 0 {
				window[i] += c
				local[i] = 0
			}
		}
		for s, c := range far {
			out[s] += c
		}
		mu.Unlock()
		denseHistPool.Put(local)
	})
	for i, c := range window {
		if c != 0 {
			out[lo+int32(i)] = c
			window[i] = 0
		}
	}
	denseHistPool.Put(window)
	return out
}

// decodeLookupBits sizes the decoder's prefix table: codes of at most this
// length resolve in one table probe (the overwhelming majority for real
// histograms); longer codes fall back to first-code arithmetic.
const decodeLookupBits = 12

// Decode parses a buffer produced by Encode and returns the symbol stream.
func Decode(buf []byte) ([]int32, error) {
	if len(buf) < 4 {
		return nil, ErrCorrupt
	}
	nsym := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if nsym < 0 || len(buf) < nsym*5 {
		return nil, ErrCorrupt
	}
	lengths := make(map[int32]uint, nsym)
	for i := 0; i < nsym; i++ {
		s := int32(binary.LittleEndian.Uint32(buf))
		l := uint(buf[4])
		buf = buf[5:]
		if l == 0 || l > maxCodeLen {
			return nil, ErrCorrupt
		}
		if _, dup := lengths[s]; dup {
			return nil, ErrCorrupt
		}
		lengths[s] = l
	}
	if len(buf) < 8 {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if len(buf) < 8 {
		return nil, ErrCorrupt
	}
	payloadLen := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < payloadLen {
		return nil, ErrCorrupt
	}
	payload := buf[:payloadLen]

	if count == 0 {
		return []int32{}, nil
	}
	if nsym == 0 {
		return nil, ErrCorrupt
	}

	// Rebuild canonical codes and the per-length decode tables.
	symbols, lens, codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, ErrCorrupt
	}
	maxLen := lens[len(lens)-1]
	var firstCode, firstIdx, cnt [maxCodeLen + 2]uint64
	for i := range symbols {
		l := lens[i]
		if cnt[l] == 0 {
			firstCode[l] = codes[i]
			firstIdx[l] = uint64(i)
		}
		cnt[l]++
	}

	// K-bit prefix table: entry packs (symbol index << 6 | code length)
	// for codes no longer than K bits; zero means "longer code".
	lb := int(maxLen)
	if lb > decodeLookupBits {
		lb = decodeLookupBits
	}
	table := make([]uint32, 1<<lb)
	for i := range symbols {
		l := int(lens[i])
		if l > lb {
			break // canonical order: lengths are non-decreasing
		}
		base := codes[i] << (lb - l)
		span := uint64(1) << (lb - l)
		entry := uint32(i)<<6 | uint32(l)
		for j := uint64(0); j < span; j++ {
			table[base+j] = entry
		}
	}

	// cap the preallocation: count comes from an untrusted header, and
	// the loop below errors out as soon as the payload runs dry anyway
	prealloc := count
	if maxPre := uint64(payloadLen) * 8; prealloc > maxPre {
		prealloc = maxPre
	}
	out := make([]int32, 0, prealloc)

	// manual MSB-first bit buffer: acc holds the next `nbits` of the
	// stream left-aligned at bit 63
	var acc uint64
	var nbits uint
	pos := 0
	for uint64(len(out)) < count {
		for nbits <= 56 && pos < len(payload) {
			acc |= uint64(payload[pos]) << (56 - nbits)
			nbits += 8
			pos++
		}
		if nbits == 0 {
			return nil, ErrCorrupt
		}
		if entry := table[acc>>(64-uint(lb))]; entry != 0 {
			l := uint(entry & 63)
			if l > nbits {
				return nil, ErrCorrupt
			}
			out = append(out, symbols[entry>>6])
			acc <<= l
			nbits -= l
			continue
		}
		// long code: per-length canonical search above the table width
		matched := false
		for l := uint(lb) + 1; l <= maxLen; l++ {
			if cnt[l] == 0 {
				continue
			}
			if l > nbits {
				break
			}
			code := acc >> (64 - l)
			if diff := code - firstCode[l]; code >= firstCode[l] && diff < cnt[l] {
				out = append(out, symbols[firstIdx[l]+diff])
				acc <<= l
				nbits -= l
				matched = true
				break
			}
		}
		if !matched {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}

// MeanCodeLength returns the average code length in bits per symbol that an
// optimal Huffman code achieves on the histogram — the quantity the Jin
// model estimates analytically from the code distribution.
func MeanCodeLength(counts map[int32]uint64) float64 {
	lengths := CodeLengths(counts)
	var total, bits uint64
	for s, c := range counts {
		total += c
		bits += c * uint64(lengths[s])
	}
	if total == 0 {
		return 0
	}
	return float64(bits) / float64(total)
}
