package szx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pressio"
)

func maxError(a, b *pressio.Data) float64 {
	worst := 0.0
	for i := 0; i < a.Len(); i++ {
		e := math.Abs(a.At(i) - b.At(i))
		if e > worst {
			worst = e
		}
	}
	return worst
}

func withAbs(t *testing.T, abs float64) *Compressor {
	t.Helper()
	c := New()
	o := pressio.Options{}
	o.Set(pressio.OptAbs, abs)
	if err := c.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTripMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := pressio.NewFloat32(100, 50)
	for i := 0; i < in.Len(); i++ {
		if i < in.Len()/2 {
			in.Set(i, 3.0) // constant half
		} else {
			in.Set(i, rng.NormFloat64()*10)
		}
	}
	c := withAbs(t, 1e-3)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	out := pressio.NewFloat32(100, 50)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	if e := maxError(in, out); e > 1e-3 {
		t.Errorf("max error %v", e)
	}
	// the constant half should have compressed substantially
	if compressed.ByteSize() >= in.ByteSize() {
		t.Errorf("no compression achieved: %d >= %d", compressed.ByteSize(), in.ByteSize())
	}
}

func TestConstantFieldCompressesHard(t *testing.T) {
	in := pressio.NewFloat64(4096)
	for i := 0; i < in.Len(); i++ {
		in.Set(i, 7.25)
	}
	c := withAbs(t, 1e-6)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(in.ByteSize()) / float64(compressed.ByteSize())
	if cr < 50 {
		t.Errorf("constant field CR = %.1f, want > 50", cr)
	}
	out := pressio.NewFloat64(4096)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	if e := maxError(in, out); e > 1e-6 {
		t.Errorf("max error %v", e)
	}
}

func TestErrorBoundQuick(t *testing.T) {
	f := func(raw []float32, sel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
		}
		abs := []float64{1e-1, 1e-3, 1e-6}[int(sel)%3]
		in := pressio.FromFloat32(raw, len(raw))
		c := New()
		o := pressio.Options{}
		o.Set(pressio.OptAbs, abs)
		o.Set(OptBlockSize, 8)
		c.SetOptions(o)
		compressed, err := c.Compress(in)
		if err != nil {
			return false
		}
		out := pressio.NewFloat32(len(raw))
		if err := c.Decompress(compressed, out); err != nil {
			return false
		}
		return maxError(in, out) <= abs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	c := New()
	bad := pressio.Options{}
	bad.Set(pressio.OptAbs, -2.0)
	if err := c.SetOptions(bad); err == nil {
		t.Error("negative bound accepted")
	}
	bad = pressio.Options{}
	bad.Set(OptBlockSize, 1)
	if err := c.SetOptions(bad); err == nil {
		t.Error("block size 1 accepted")
	}
	if _, err := c.Compress(pressio.NewInt32(4)); err == nil {
		t.Error("int input accepted")
	}
	in := pressio.NewFloat32(64)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Decompress(compressed, pressio.NewFloat64(64)); err == nil {
		t.Error("dtype mismatch accepted")
	}
	raw := compressed.Bytes()
	for _, n := range []int{0, 6, 17} {
		if n > len(raw) {
			continue
		}
		if err := c.Decompress(pressio.NewByte(raw[:n]), pressio.NewFloat32(64)); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
}

func TestRegisteredInPressio(t *testing.T) {
	if _, err := pressio.GetCompressor("szx"); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := pressio.NewFloat32(64, 64, 32)
	for i := 0; i < in.Len(); i++ {
		if rng.Float64() < 0.7 {
			in.Set(i, 0)
		} else {
			in.Set(i, rng.NormFloat64())
		}
	}
	c := New()
	b.SetBytes(int64(in.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}
