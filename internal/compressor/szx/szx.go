// Package szx implements a pure-Go ultra-fast error-bounded lossy
// compressor in the style of SZx: the data is split into fixed-size 1-D
// blocks; a block whose value range fits within twice the error bound is
// coded as a single "constant" mean value, and all other blocks store
// their samples verbatim at storage precision. This trades compression
// ratio for very high throughput — the corner of the design space the
// Khan 2023 (SECRE) scheme extends to.
package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// OptBlockSize sets the 1-D block length ("szx:block_size").
const OptBlockSize = "szx:block_size"

const (
	magic            = "SZXg"
	defaultBlockSize = 128
)

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("szx: corrupt stream")

// Compressor is the szx plugin. Use New.
type Compressor struct {
	abs       float64
	blockSize int
	threads   int // worker cap for the parallel block passes; 0 = all cores
}

// New returns an szx compressor with defaults (abs=1e-4, 128-sample blocks).
func New() *Compressor { return &Compressor{abs: 1e-4, blockSize: defaultBlockSize} }

func init() {
	pressio.RegisterCompressor("szx", func() pressio.Compressor { return New() })
}

// Name implements pressio.Compressor.
func (c *Compressor) Name() string { return "szx" }

// SetOptions implements pressio.Compressor.
func (c *Compressor) SetOptions(opts pressio.Options) error {
	if v, ok := opts.GetFloat(pressio.OptAbs); ok {
		if v <= 0 {
			return fmt.Errorf("szx: %s must be positive, got %v", pressio.OptAbs, v)
		}
		c.abs = v
	}
	if v, ok := opts.GetInt(OptBlockSize); ok {
		if v < 2 || v > 1<<20 {
			return fmt.Errorf("szx: %s out of range: %d", OptBlockSize, v)
		}
		c.blockSize = int(v)
	}
	if v, ok := opts.GetInt(pressio.OptNThreads); ok {
		if v < 0 {
			return fmt.Errorf("szx: %s must be non-negative, got %d", pressio.OptNThreads, v)
		}
		c.threads = int(v)
	}
	return nil
}

// Options implements pressio.Compressor.
func (c *Compressor) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, c.abs)
	o.Set(OptBlockSize, int64(c.blockSize))
	o.Set(pressio.OptNThreads, int64(c.threads))
	return o
}

// Configuration implements pressio.Compressor.
func (c *Compressor) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgThreadSafe, false)
	o.Set(pressio.CfgStability, "stable")
	o.Set("szx:stages", []string{"blocking", "constant_detection"})
	return o
}

// Compress implements pressio.Compressor.
func (c *Compressor) Compress(in *pressio.Data) (*pressio.Data, error) {
	switch in.DType() {
	case pressio.DTypeFloat32, pressio.DTypeFloat64:
	default:
		return nil, fmt.Errorf("szx: unsupported dtype %v", in.DType())
	}
	vals := stats.ToFloat64(in)
	n := len(vals)
	nblocks := (n + c.blockSize - 1) / c.blockSize

	out := make([]byte, 0, n/2+64)
	out = append(out, magic...)
	out = append(out, byte(in.DType()), byte(len(in.Dims())))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.abs))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.blockSize))
	for _, d := range in.Dims() {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}

	// Pass 1 (parallel): classify each block and compute its constant
	// representative. Flags land in a per-block bool slice so workers
	// never share a byte; the bitset packs serially afterwards.
	isConst := make([]bool, nblocks)
	mids := make([]float64, nblocks)
	elem := 8
	if in.DType() == pressio.DTypeFloat32 {
		elem = 4
	}
	dtype := in.DType()
	parallel.ForTasks(c.threads, nblocks, func(b int) {
		lo := b * c.blockSize
		hi := lo + c.blockSize
		if hi > n {
			hi = n
		}
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mid := mn + (mx-mn)/2
		if mx-mn <= 2*c.abs && withinStorage(mid, mn, mx, c.abs, dtype) {
			isConst[b] = true
			mids[b] = mid
		}
	})

	// payload offsets by prefix sum, then pass 2 (parallel) writes each
	// block's bytes into its slot — identical bytes to the serial append
	flags := make([]byte, (nblocks+7)/8)
	offs := make([]int, nblocks+1)
	for b := 0; b < nblocks; b++ {
		size := 8
		if !isConst[b] {
			lo := b * c.blockSize
			hi := lo + c.blockSize
			if hi > n {
				hi = n
			}
			size = (hi - lo) * elem
		} else {
			flags[b/8] |= 1 << (b % 8)
		}
		offs[b+1] = offs[b] + size
	}
	payload := make([]byte, offs[nblocks])
	parallel.ForTasks(c.threads, nblocks, func(b int) {
		lo := b * c.blockSize
		hi := lo + c.blockSize
		if hi > n {
			hi = n
		}
		p := payload[offs[b]:offs[b+1]]
		if isConst[b] {
			binary.LittleEndian.PutUint64(p, math.Float64bits(mids[b]))
		} else if elem == 4 {
			for i, v := range vals[lo:hi] {
				binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(float32(v)))
			}
		} else {
			for i, v := range vals[lo:hi] {
				binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(v))
			}
		}
	})
	out = append(out, flags...)
	out = append(out, payload...)
	return pressio.NewByte(out), nil
}

// withinStorage checks the constant-block representative still satisfies
// the bound after rounding to storage precision.
func withinStorage(mid, mn, mx, abs float64, t pressio.DType) bool {
	if t == pressio.DTypeFloat32 {
		mid = float64(float32(mid))
	}
	return math.Abs(mid-mn) <= abs && math.Abs(mid-mx) <= abs
}

// Decompress implements pressio.Compressor.
func (c *Compressor) Decompress(compressed *pressio.Data, out *pressio.Data) error {
	buf := compressed.Bytes()
	if len(buf) < 4+2+8+4 || string(buf[:4]) != magic {
		return ErrCorrupt
	}
	buf = buf[4:]
	dtype := pressio.DType(buf[0])
	nd := int(buf[1])
	if dtype != pressio.DTypeFloat32 && dtype != pressio.DTypeFloat64 {
		return ErrCorrupt
	}
	buf = buf[2+8:] // skip abs: not needed to decode
	blockSize := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if blockSize < 2 || len(buf) < nd*8 {
		return ErrCorrupt
	}
	dims := make([]int, nd)
	for i := 0; i < nd; i++ {
		dims[i] = int(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	total, err := pressio.CheckDims(dims)
	if err != nil {
		return fmt.Errorf("szx: %w: %v", ErrCorrupt, err)
	}
	if out.DType() != dtype {
		return fmt.Errorf("szx: output dtype %v does not match stream dtype %v", out.DType(), dtype)
	}
	if out.Len() != total {
		return fmt.Errorf("szx: output has %d elements, stream has %d", out.Len(), total)
	}
	nblocks := (total + blockSize - 1) / blockSize
	flagLen := (nblocks + 7) / 8
	if len(buf) < flagLen {
		return ErrCorrupt
	}
	flags := buf[:flagLen]
	payload := buf[flagLen:]

	elem := 8
	if dtype == pressio.DTypeFloat32 {
		elem = 4
	}
	// offsets from the flag bits (serial prescan), then blocks decode in
	// parallel into a flat buffer
	offs := make([]int, nblocks+1)
	for b := 0; b < nblocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > total {
			hi = total
		}
		size := 8
		if flags[b/8]&(1<<(b%8)) == 0 {
			size = (hi - lo) * elem
		}
		offs[b+1] = offs[b] + size
	}
	if offs[nblocks] > len(payload) {
		return ErrCorrupt
	}
	// decode straight into the typed output storage (verbatim blocks are
	// a byte-level copy of the payload), with one version bump at the end
	var dst32 []float32
	var dst64 []float64
	if dtype == pressio.DTypeFloat32 {
		dst32 = out.Float32()
	} else {
		dst64 = out.Float64()
	}
	parallel.ForTasks(c.threads, nblocks, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > total {
			hi = total
		}
		p := payload[offs[b]:]
		if flags[b/8]&(1<<(b%8)) != 0 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(p))
			if dst32 != nil {
				f := float32(v)
				for i := lo; i < hi; i++ {
					dst32[i] = f
				}
			} else {
				for i := lo; i < hi; i++ {
					dst64[i] = v
				}
			}
		} else if elem == 4 {
			for i := lo; i < hi; i++ {
				dst32[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*(i-lo):]))
			}
		} else {
			for i := lo; i < hi; i++ {
				dst64[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*(i-lo):]))
			}
		}
	})
	out.Touch()
	return nil
}
