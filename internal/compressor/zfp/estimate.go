package zfp

import (
	"math"
	"math/bits"
)

// EstimateBlockBits estimates the coded size in bits of one blockLen^nd
// block at the given tolerance without running the group-testing coder —
// the per-stage surrogate the Khan 2023 (SECRE) scheme uses for
// transform-based compressors. The estimate counts the significant
// negabinary planes of each transformed coefficient above the tolerance
// cutoff plus the per-block header, with a small group-test overhead.
func EstimateBlockBits(block []float64, nd int, tol float64) float64 {
	if nd < 1 || nd > 3 {
		return float64(len(block) * 32)
	}
	maxAbs := 0.0
	for _, v := range block {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs <= tol/2 || maxAbs == 0 {
		return 1 // empty-block flag
	}
	_, emax := math.Frexp(maxAbs)
	scale := math.Ldexp(1, fracBits-emax)
	q := make([]int64, len(block))
	for i, v := range block {
		q[i] = int64(math.Round(v * scale))
	}
	fwdXform(q, nd)
	kmin := kminFor(tol, emax)
	total := 1.0 + emaxBits
	planes := 0
	for _, v := range q {
		u := toNegabinary(v)
		top := bits.Len64(u)
		if top > intPrec {
			top = intPrec
		}
		if top > kmin {
			sig := top - kmin
			total += float64(sig)
			if sig > planes {
				planes = sig
			}
		}
	}
	// group-test bits: roughly one per coded plane plus one per
	// coefficient-significance event
	total += float64(planes) + float64(len(block))/2
	return total
}
