// Package zfp implements a pure-Go transform-based error-bounded lossy
// compressor in the style of ZFP's fixed-accuracy mode: the domain is
// partitioned into 4^d blocks, each block is converted to a block-floating-
// point integer representation under a per-block common exponent, an
// exactly invertible integer Haar lifting decorrelates each dimension,
// coefficients are reordered by total degree and converted to negabinary,
// and bit planes are coded MSB-first with ZFP's group-testing embedded
// coder down to a tolerance-derived cutoff plane.
//
// Compared to the reference C implementation the decorrelating transform
// is the (weaker) Haar lifting rather than ZFP's near-orthogonal lifting,
// but the codec family, the tolerance→bitrate response, and the large
// speed advantage over prediction-based compressors (paper §6 baseline:
// ZFP ≈ 5× faster than SZ3) are preserved, which is what the prediction
// schemes under study observe.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/parallel"
	"repro/internal/pressio"
	"repro/internal/stats"
)

const (
	magic    = "ZFPg"
	blockLen = 4  // samples per dimension per block
	fracBits = 30 // fractional bits of the block-floating-point format
	intPrec  = 44 // coded bit planes (coefficient dynamic range)
	// guardBits absorbs the error amplification of the inverse transform
	// so the absolute tolerance holds for every element.
	guardBits = 9
	emaxBias  = 16384
	emaxBits  = 16
)

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// Compressor is the zfp plugin. Use New.
type Compressor struct {
	tol     float64
	threads int // worker cap for the parallel block coder; 0 = all cores
}

// New returns a zfp compressor with the default tolerance 1e-4.
func New() *Compressor { return &Compressor{tol: 1e-4} }

func init() {
	pressio.RegisterCompressor("zfp", func() pressio.Compressor { return New() })
}

// Name implements pressio.Compressor.
func (c *Compressor) Name() string { return "zfp" }

// SetOptions implements pressio.Compressor; it honours pressio:abs and
// pressio:nthreads.
func (c *Compressor) SetOptions(opts pressio.Options) error {
	if v, ok := opts.GetFloat(pressio.OptAbs); ok {
		if v <= 0 {
			return fmt.Errorf("zfp: %s must be positive, got %v", pressio.OptAbs, v)
		}
		c.tol = v
	}
	if v, ok := opts.GetInt(pressio.OptNThreads); ok {
		if v < 0 {
			return fmt.Errorf("zfp: %s must be non-negative, got %d", pressio.OptNThreads, v)
		}
		c.threads = int(v)
	}
	return nil
}

// Options implements pressio.Compressor.
func (c *Compressor) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, c.tol)
	o.Set(pressio.OptNThreads, int64(c.threads))
	return o
}

// Configuration implements pressio.Compressor.
func (c *Compressor) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgThreadSafe, false)
	o.Set(pressio.CfgStability, "stable")
	o.Set("zfp:stages", []string{"blocking", "block_float", "transform", "bitplane_coding"})
	return o
}

// effectiveDims folds shapes with more than 3 dimensions into 3 (leading
// dimensions are merged), matching ZFP's 1-3D execution model.
func effectiveDims(dims []int) []int {
	if len(dims) <= 3 {
		out := make([]int, len(dims))
		copy(out, dims)
		return out
	}
	lead := 1
	for _, d := range dims[:len(dims)-2] {
		lead *= d
	}
	return []int{lead, dims[len(dims)-2], dims[len(dims)-1]}
}

// degreeOrder returns the traversal order of block coefficients sorted by
// total degree (sum of per-dimension frequencies), the reordering ZFP
// applies so low-frequency coefficients come first.
func degreeOrder(nd int) []int {
	size := 1
	for i := 0; i < nd; i++ {
		size *= blockLen
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	degree := func(i int) int {
		d := 0
		for k := 0; k < nd; k++ {
			d += i % blockLen
			i /= blockLen
		}
		return d
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := degree(idx[a]), degree(idx[b])
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	return idx
}

var degreeOrders = [4][]int{nil, degreeOrder(1), degreeOrder(2), degreeOrder(3)}

// fwdLift applies one level of the integer S-transform (Haar lifting) to
// the pair (a, b): exactly invertible by invLift.
func fwdLift(a, b int64) (low, high int64) {
	high = a - b
	low = b + (high >> 1) // == floor((a+b)/2)
	return low, high
}

// invLift exactly inverts fwdLift.
func invLift(low, high int64) (a, b int64) {
	b = low - (high >> 1)
	a = b + high
	return a, b
}

// fwdXform4 transforms 4 samples in place (two Haar levels) at stride s.
func fwdXform4(p []int64, off, s int) {
	l0, h0 := fwdLift(p[off], p[off+s])
	l1, h1 := fwdLift(p[off+2*s], p[off+3*s])
	ll, lh := fwdLift(l0, l1)
	p[off] = ll
	p[off+s] = lh
	p[off+2*s] = h0
	p[off+3*s] = h1
}

// invXform4 inverts fwdXform4.
func invXform4(p []int64, off, s int) {
	ll, lh := p[off], p[off+s]
	h0, h1 := p[off+2*s], p[off+3*s]
	l0, l1 := invLift(ll, lh)
	a0, b0 := invLift(l0, h0)
	a1, b1 := invLift(l1, h1)
	p[off] = a0
	p[off+s] = b0
	p[off+2*s] = a1
	p[off+3*s] = b1
}

// fwdXform applies the transform along every dimension of a block with nd
// dimensions (block has blockLen^nd samples, C order), fastest-varying
// dimension first.
func fwdXform(p []int64, nd int) {
	for _, pass := range passesByND[nd] {
		applyPass(p, pass, fwdXform4)
	}
}

// invXform inverts fwdXform by undoing the dimension passes in reverse
// order (separable transforms only invert when the pass order reverses).
func invXform(p []int64, nd int) {
	passes := passesByND[nd]
	for i := len(passes) - 1; i >= 0; i-- {
		applyPass(p, passes[i], invXform4)
	}
}

// xformPass describes one dimension sweep: the stride of the transformed
// axis; offsets enumerate every 4-sample line of that axis.
type xformPass struct {
	stride  int
	offsets []int
}

func xformPasses(nd int) []xformPass {
	switch nd {
	case 1:
		return []xformPass{{stride: 1, offsets: []int{0}}}
	case 2:
		rows := make([]int, blockLen)
		cols := make([]int, blockLen)
		for i := 0; i < blockLen; i++ {
			rows[i] = i * blockLen
			cols[i] = i
		}
		return []xformPass{{stride: 1, offsets: rows}, {stride: blockLen, offsets: cols}}
	case 3:
		const b = blockLen
		var d2, d1, d0 []int
		for i := 0; i < b*b; i++ {
			d2 = append(d2, i*b)
		}
		for i := 0; i < b; i++ {
			for k := 0; k < b; k++ {
				d1 = append(d1, i*b*b+k)
				d0 = append(d0, i*b+k)
			}
		}
		return []xformPass{{stride: 1, offsets: d2}, {stride: b, offsets: d1}, {stride: b * b, offsets: d0}}
	}
	return nil
}

var passesByND = [4][]xformPass{nil, xformPasses(1), xformPasses(2), xformPasses(3)}

func applyPass(p []int64, pass xformPass, f func([]int64, int, int)) {
	for _, off := range pass.offsets {
		f(p, off, pass.stride)
	}
}

const nbMask = 0xaaaaaaaaaaaaaaaa

// toNegabinary maps a two's-complement integer to its negabinary code,
// which orders magnitudes so MSB-first bit-plane truncation is graceful.
func toNegabinary(x int64) uint64 {
	return (uint64(x) + nbMask) ^ nbMask
}

// fromNegabinary inverts toNegabinary.
func fromNegabinary(u uint64) int64 {
	return int64((u ^ nbMask) - nbMask)
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// encodePlanes writes the bit planes of the negabinary coefficients u
// (already in degree order) from plane intPrec-1 down to kmin using ZFP's
// group-testing embedded coder.
func encodePlanes(w *bitstream.Writer, u []uint64, kmin int) {
	size := len(u)
	n := 0
	// Transpose the coefficients into bit planes once: cheaper than
	// re-gathering each plane because only set bits cost work.
	var planes [intPrec]uint64
	for i := 0; i < size; i++ {
		v := u[i]
		for v != 0 {
			k := bits.TrailingZeros64(v)
			if k >= intPrec {
				break // beyond coded precision: dropped, as in the plane loop
			}
			planes[k] |= uint64(1) << uint(i)
			v &= v - 1
		}
	}
	for k := intPrec - 1; k >= kmin; k-- {
		x := planes[k]
		if x == 0 {
			// empty plane: n verbatim zeros plus a zero group test —
			// identical bits to the general path, without the scan
			w.WriteBits(0, uint(n))
			if n < size {
				w.WriteBit(0)
			}
			continue
		}
		// verbatim bits for the tested prefix
		w.WriteBits(x&lowMask(n), uint(n))
		x >>= uint(n)
		// group-tested unary coding for the rest; runs of zeros batch
		// into single WriteBits calls (same bits as the bit-at-a-time
		// loop: group flag, the zeros, then the terminating one — which
		// is implicit when the run reaches the last position)
		for n < size {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			z := bits.TrailingZeros64(x)
			if rem := size - 1 - n; z >= rem {
				w.WriteBits(0, uint(rem))
				n = size
				break
			}
			w.WriteBits(1, uint(z)+1)
			x >>= uint(z) + 1
			n += z + 1
		}
	}
}

// decodePlanes reads what encodePlanes wrote into u (which the caller has
// zeroed; len(u) is the block size).
func decodePlanes(r *bitstream.Reader, u []uint64, kmin int) error {
	size := len(u)
	n := 0
	for k := intPrec - 1; k >= kmin; k-- {
		x, err := r.ReadBits(uint(n))
		if err != nil {
			return err
		}
		for n < size {
			group, err := r.ReadBit()
			if err != nil {
				return err
			}
			if group == 0 {
				break
			}
			z, err := r.ReadZeroRun(size - 1 - n)
			if err != nil {
				return err
			}
			n += z
			x |= uint64(1) << uint(n)
			n++
		}
		for x != 0 {
			i := bits.TrailingZeros64(x)
			u[i] |= uint64(1) << uint(k)
			x &= x - 1
		}
	}
	return nil
}

// kminFor derives the cutoff plane from the tolerance and block exponent:
// dropped planes contribute error below 2^(kmin+emax-fracBits+guardBits),
// which is kept at or below tol.
func kminFor(tol float64, emax int) int {
	if tol <= 0 {
		return 0
	}
	logTol := int(math.Floor(math.Log2(tol)))
	k := logTol - emax + fracBits - guardBits
	if k < 0 {
		k = 0
	}
	if k > intPrec {
		k = intPrec
	}
	return k
}

// Compress implements pressio.Compressor.
func (c *Compressor) Compress(in *pressio.Data) (*pressio.Data, error) {
	switch in.DType() {
	case pressio.DTypeFloat32, pressio.DTypeFloat64:
	default:
		return nil, fmt.Errorf("zfp: unsupported dtype %v", in.DType())
	}
	vals := stats.ToFloat64(in)
	dims := effectiveDims(in.Dims())
	if len(dims) == 0 || in.Len() == 0 {
		return nil, fmt.Errorf("zfp: empty input")
	}
	nd := len(dims)

	// header
	out := make([]byte, 0, in.ByteSize()/4+64)
	out = append(out, magic...)
	out = append(out, byte(in.DType()), byte(len(in.Dims())))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.tol))
	for _, d := range in.Dims() {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}

	// Blocks are fully independent, so chunks of the block list encode
	// concurrently into separate writers that are bit-spliced in block
	// order afterwards — the spliced stream is identical to serial
	// encoding for any worker count (DESIGN.md §10).
	origins := blockOrigins(dims)
	nchunks := parallel.Resolve(c.threads)
	if max := (len(origins) + minBlocksPerChunk - 1) / minBlocksPerChunk; nchunks > max {
		nchunks = max
	}
	if nchunks < 1 {
		nchunks = 1
	}
	chunkWriters := make([]*bitstream.Writer, nchunks)
	per := (len(origins) + nchunks - 1) / nchunks
	parallel.ForTasks(c.threads, nchunks, func(ci int) {
		lo := ci * per
		hi := lo + per
		if hi > len(origins) {
			hi = len(origins)
		}
		w := bitstream.GetWriter()
		sc := getScratch(nd)
		sc.setDims(dims)
		for _, origin := range origins[lo:hi] {
			sc.gather(vals, dims, origin[:nd])
			encodeBlockF(w, sc, nd, c.tol)
		}
		putScratch(sc)
		chunkWriters[ci] = w
	})
	var w bitstream.Writer
	for _, cw := range chunkWriters {
		w.AppendWriter(cw)
		bitstream.PutWriter(cw)
	}
	payload := w.Bytes()
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return pressio.NewByte(out), nil
}

// minBlocksPerChunk keeps parallel chunks coarse enough that writer
// splicing and scratch churn stay negligible.
const minBlocksPerChunk = 32

// blockOrigins materializes the block traversal of forEachBlock so it can
// be partitioned across workers.
func blockOrigins(dims []int) [][3]int {
	nd := len(dims)
	n := 1
	for _, d := range dims {
		n *= (d + blockLen - 1) / blockLen
	}
	origins := make([][3]int, 0, n)
	forEachBlock(dims, func(origin []int) {
		var o [3]int
		copy(o[:], origin[:nd])
		origins = append(origins, o)
	})
	return origins
}

// scratchPools recycles per-worker block scratch, indexed by nd.
var scratchPools [4]sync.Pool

func getScratch(nd int) *scratch {
	if sc, ok := scratchPools[nd].Get().(*scratch); ok {
		//lint:ignore pressiovet/poolescape ownership-transfer accessor: callers pair with putScratch, matching the pool's Get/Put contract
		return sc
	}
	return newScratch(nd)
}

func putScratch(sc *scratch) { scratchPools[len(sc.str)].Put(sc) }

// scratch holds the per-block working buffers so the block loop does not
// allocate; one scratch serves one (de)compression pass.
type scratch struct {
	block  []float64
	q      []int64
	u      []uint64
	locals [][]int // per block position, local coordinates (nd entries)
	str    []int   // element strides of the data dims, set by setDims
	offs   []int   // flat offset of each block position for interior blocks
}

func newScratch(nd int) *scratch {
	size := 1
	for i := 0; i < nd; i++ {
		size *= blockLen
	}
	locals := make([][]int, size)
	for bi := 0; bi < size; bi++ {
		c := make([]int, nd)
		t := bi
		for d := nd - 1; d >= 0; d-- {
			c[d] = t % blockLen
			t /= blockLen
		}
		locals[bi] = c
	}
	return &scratch{
		block:  make([]float64, size),
		q:      make([]int64, size),
		u:      make([]uint64, size),
		locals: locals,
		str:    make([]int, nd),
		offs:   make([]int, size),
	}
}

// setDims precomputes the element strides of the data shape and the flat
// offset of every block position, which interior blocks use to skip the
// per-element coordinate arithmetic.
func (sc *scratch) setDims(dims []int) {
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		sc.str[i] = acc
		acc *= dims[i]
	}
	for bi, local := range sc.locals {
		off := 0
		for d := range local {
			off += local[d] * sc.str[d]
		}
		sc.offs[bi] = off
	}
}

// interiorBase returns the flat index of origin and whether the block lies
// fully inside dims (no edge replication or clipping needed).
func (sc *scratch) interiorBase(dims, origin []int) (int, bool) {
	base := 0
	for d := range origin {
		if origin[d]+blockLen > dims[d] {
			return 0, false
		}
		base += origin[d] * sc.str[d]
	}
	return base, true
}

// gather extracts the tile at origin into sc.block, replicating edge
// samples for partial blocks.
func (sc *scratch) gather(vals []float64, dims []int, origin []int) {
	if base, ok := sc.interiorBase(dims, origin); ok {
		for bi, off := range sc.offs {
			sc.block[bi] = vals[base+off]
		}
		return
	}
	nd := len(dims)
	str := sc.str
	for bi, local := range sc.locals {
		idx := 0
		for d := 0; d < nd; d++ {
			c := origin[d] + local[d]
			if c >= dims[d] {
				c = dims[d] - 1 // replicate edge
			}
			idx += c * str[d]
		}
		sc.block[bi] = vals[idx]
	}
}

// scatter writes the valid region of sc.block back into out.
func (sc *scratch) scatter(out []float64, dims []int, origin []int) {
	if base, ok := sc.interiorBase(dims, origin); ok {
		for bi, off := range sc.offs {
			out[base+off] = sc.block[bi]
		}
		return
	}
	nd := len(dims)
	str := sc.str
	for bi, local := range sc.locals {
		idx := 0
		valid := true
		for d := 0; d < nd; d++ {
			c := origin[d] + local[d]
			if c >= dims[d] {
				valid = false
				break
			}
			idx += c * str[d]
		}
		if valid {
			out[idx] = sc.block[bi]
		}
	}
}

// encodeBlockF encodes the block currently held in sc.block.
func encodeBlockF(w *bitstream.Writer, sc *scratch, nd int, tol float64) {
	maxAbs := 0.0
	for _, v := range sc.block {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs <= tol/2 || maxAbs == 0 {
		// empty block: reconstructing zero satisfies the bound
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	_, emax := math.Frexp(maxAbs) // maxAbs < 2^emax
	w.WriteBits(uint64(emax+emaxBias), emaxBits)

	scale := math.Ldexp(1, fracBits-emax)
	q := sc.q
	for i, v := range sc.block {
		q[i] = int64(math.Round(v * scale))
	}
	fwdXform(q, nd)
	order := degreeOrders[nd]
	u := sc.u
	for i, p := range order {
		u[i] = toNegabinary(q[p])
	}
	encodePlanes(w, u, kminFor(tol, emax))
}

// decodeBlockF decodes one block into sc.block.
func decodeBlockF(r *bitstream.Reader, sc *scratch, nd int, tol float64) error {
	out := sc.block
	flag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if flag == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(emaxBits)
	if err != nil {
		return err
	}
	emax := int(e) - emaxBias
	u := sc.u
	for i := range u {
		u[i] = 0
	}
	if err := decodePlanes(r, u, kminFor(tol, emax)); err != nil {
		return err
	}
	order := degreeOrders[nd]
	q := sc.q
	for i, p := range order {
		q[p] = fromNegabinary(u[i])
	}
	invXform(q, nd)
	scale := math.Ldexp(1, emax-fracBits)
	for i, v := range q {
		out[i] = float64(v) * scale
	}
	return nil
}

// forEachBlock invokes f with the origin of every block tile of dims.
func forEachBlock(dims []int, f func(origin []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	for {
		f(origin)
		d := nd - 1
		for ; d >= 0; d-- {
			origin[d] += blockLen
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// Decompress implements pressio.Compressor.
func (c *Compressor) Decompress(compressed *pressio.Data, out *pressio.Data) error {
	buf := compressed.Bytes()
	if len(buf) < 4+2+8 || string(buf[:4]) != magic {
		return ErrCorrupt
	}
	buf = buf[4:]
	dtype := pressio.DType(buf[0])
	nd := int(buf[1])
	buf = buf[2:]
	tol := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	if len(buf) < nd*8+8 {
		return ErrCorrupt
	}
	origDims := make([]int, nd)
	for i := range origDims {
		origDims[i] = int(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	total, err := pressio.CheckDims(origDims)
	if err != nil {
		return fmt.Errorf("zfp: %w: %v", ErrCorrupt, err)
	}
	payloadLen := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < payloadLen {
		return ErrCorrupt
	}
	if out.DType() != dtype {
		return fmt.Errorf("zfp: output dtype %v does not match stream dtype %v", out.DType(), dtype)
	}
	if out.Len() != total {
		return fmt.Errorf("zfp: output has %d elements, stream has %d", out.Len(), total)
	}

	// Decoding is serial: block segments are variable-length and the
	// stream carries no block index, so a segment's start is only known
	// once its predecessor is decoded.
	dims := effectiveDims(origDims)
	recon := make([]float64, total)
	r := bitstream.NewReader(buf[:payloadLen])
	sc := getScratch(len(dims))
	sc.setDims(dims)
	var decodeErr error
	forEachBlock(dims, func(origin []int) {
		if decodeErr != nil {
			return
		}
		if err := decodeBlockF(r, sc, len(dims), tol); err != nil {
			decodeErr = err
			return
		}
		sc.scatter(recon, dims, origin)
	})
	putScratch(sc)
	if decodeErr != nil {
		return fmt.Errorf("zfp: %w: %v", ErrCorrupt, decodeErr)
	}
	out.FillFloat64(recon)
	return nil
}
