package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/pressio"
)

func smoothField3D(nx, ny, nz int, seed int64) *pressio.Data {
	rng := rand.New(rand.NewSource(seed))
	d := pressio.NewFloat32(nx, ny, nz)
	v := d.Float32()
	idx := 0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v[idx] = float32(10*math.Sin(float64(i)/7)*math.Cos(float64(j)/9) +
					float64(k)/4 + 0.01*rng.NormFloat64())
				idx++
			}
		}
	}
	return d
}

func maxError(a, b *pressio.Data) float64 {
	worst := 0.0
	for i := 0; i < a.Len(); i++ {
		e := math.Abs(a.At(i) - b.At(i))
		if e > worst {
			worst = e
		}
	}
	return worst
}

func roundTrip(t *testing.T, c *Compressor, in *pressio.Data) *pressio.Data {
	t.Helper()
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	out := pressio.New(in.DType(), in.Dims()...)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	return out
}

func withTol(t *testing.T, tol float64) *Compressor {
	t.Helper()
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, tol)
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLiftRoundTripQuick(t *testing.T) {
	f := func(a, b int32) bool {
		l, h := fwdLift(int64(a), int64(b))
		ga, gb := invLift(l, h)
		return ga == int64(a) && gb == int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nd := range []int{1, 2, 3} {
		size := 1
		for i := 0; i < nd; i++ {
			size *= blockLen
		}
		p := make([]int64, size)
		orig := make([]int64, size)
		for i := range p {
			p[i] = int64(rng.Int31()) - (1 << 30)
			orig[i] = p[i]
		}
		fwdXform(p, nd)
		invXform(p, nd)
		for i := range p {
			if p[i] != orig[i] {
				t.Errorf("nd=%d: element %d = %d, want %d", nd, i, p[i], orig[i])
			}
		}
	}
}

func TestNegabinaryRoundTripQuick(t *testing.T) {
	f := func(x int64) bool {
		// stay within the coded dynamic range
		x %= 1 << 50
		return fromNegabinary(toNegabinary(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreeOrderIsPermutation(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		order := degreeOrders[nd]
		size := 1
		for i := 0; i < nd; i++ {
			size *= blockLen
		}
		if len(order) != size {
			t.Fatalf("nd=%d: order length %d, want %d", nd, len(order), size)
		}
		seen := make([]bool, size)
		for _, p := range order {
			if p < 0 || p >= size || seen[p] {
				t.Fatalf("nd=%d: invalid or duplicate index %d", nd, p)
			}
			seen[p] = true
		}
		// first coefficient must be the DC term (index 0)
		if order[0] != 0 {
			t.Errorf("nd=%d: order[0] = %d, want 0 (DC first)", nd, order[0])
		}
	}
}

func TestPlaneCoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{4, 16, 64} {
		for trial := 0; trial < 20; trial++ {
			u := make([]uint64, size)
			for i := range u {
				if rng.Intn(3) > 0 {
					u[i] = uint64(rng.Int63()) & lowMask(intPrec)
				}
			}
			for _, kmin := range []int{0, 5, 20} {
				var w bitstream.Writer
				encodePlanes(&w, u, kmin)
				got := make([]uint64, size)
				if err := decodePlanes(bitstream.NewReader(w.Bytes()), got, kmin); err != nil {
					t.Fatalf("size=%d kmin=%d: %v", size, kmin, err)
				}
				for i := range u {
					want := u[i] &^ lowMask(kmin)
					if got[i] != want {
						t.Fatalf("size=%d kmin=%d: coeff %d = %x, want %x", size, kmin, i, got[i], want)
					}
				}
			}
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	in := smoothField3D(16, 16, 8, 3)
	for _, tol := range []float64{1e-1, 1e-3, 1e-5} {
		c := withTol(t, tol)
		out := roundTrip(t, c, in)
		if e := maxError(in, out); e > tol {
			t.Errorf("tol=%v: max error %v exceeds tolerance", tol, e)
		}
	}
}

func TestRoundTripPartialBlocks(t *testing.T) {
	// dims not multiples of 4 exercise padding
	in := smoothField3D(9, 7, 5, 4)
	c := withTol(t, 1e-3)
	out := roundTrip(t, c, in)
	if e := maxError(in, out); e > 1e-3 {
		t.Errorf("partial blocks: max error %v", e)
	}
}

func TestRoundTrip1D2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d1 := pressio.NewFloat64(101)
	for i := 0; i < d1.Len(); i++ {
		d1.Set(i, math.Sin(float64(i)/9)+0.01*rng.NormFloat64())
	}
	c := withTol(t, 1e-4)
	out := roundTrip(t, c, d1)
	if e := maxError(d1, out); e > 1e-4 {
		t.Errorf("1D: max error %v", e)
	}
	d2 := pressio.NewFloat32(33, 18)
	for i := 0; i < d2.Len(); i++ {
		d2.Set(i, 5*math.Cos(float64(i)/77))
	}
	out = roundTrip(t, c, d2)
	if e := maxError(d2, out); e > 1e-4 {
		t.Errorf("2D: max error %v", e)
	}
}

func TestRoundTrip4DFolds(t *testing.T) {
	in := pressio.NewFloat32(3, 5, 8, 8)
	for i := 0; i < in.Len(); i++ {
		in.Set(i, math.Sin(float64(i)/40))
	}
	c := withTol(t, 1e-3)
	out := roundTrip(t, c, in)
	if e := maxError(in, out); e > 1e-3 {
		t.Errorf("4D fold: max error %v", e)
	}
}

func TestErrorBoundQuick(t *testing.T) {
	f := func(raw []float32, tolSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
			if v > 1e8 || v < -1e8 {
				raw[i] = float32(math.Mod(float64(v), 1e8))
			}
		}
		tol := []float64{1e-1, 1e-3, 1e-6}[int(tolSel)%3]
		in := pressio.FromFloat32(raw, len(raw))
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, tol)
		c.SetOptions(opts)
		compressed, err := c.Compress(in)
		if err != nil {
			return false
		}
		out := pressio.NewFloat32(len(raw))
		if err := c.Decompress(compressed, out); err != nil {
			return false
		}
		return maxError(in, out) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestZeroBlocksAreCheap(t *testing.T) {
	in := pressio.NewFloat32(64, 64) // all zeros
	c := withTol(t, 1e-6)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	// 256 blocks × 1 bit + header: far below 100 bytes of payload
	if compressed.ByteSize() > 200 {
		t.Errorf("all-zero field compressed to %d bytes", compressed.ByteSize())
	}
	out := pressio.NewFloat32(64, 64)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	if e := maxError(in, out); e != 0 {
		t.Errorf("zero field error %v", e)
	}
}

func TestLooserToleranceCompressesMore(t *testing.T) {
	in := smoothField3D(32, 16, 16, 6)
	prev := -1
	for _, tol := range []float64{1e-6, 1e-4, 1e-2} {
		c := withTol(t, tol)
		compressed, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && compressed.ByteSize() >= prev {
			t.Errorf("tol=%v should compress better than tighter bound (%d vs %d)",
				tol, compressed.ByteSize(), prev)
		}
		prev = compressed.ByteSize()
	}
}

func TestDecompressValidation(t *testing.T) {
	in := smoothField3D(8, 8, 4, 7)
	c := withTol(t, 1e-3)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Decompress(compressed, pressio.NewFloat64(8, 8, 4)); err == nil {
		t.Error("dtype mismatch should be rejected")
	}
	if err := c.Decompress(compressed, pressio.NewFloat32(4, 4)); err == nil {
		t.Error("size mismatch should be rejected")
	}
	raw := compressed.Bytes()
	for _, n := range []int{0, 5, 16, len(raw) / 3} {
		if n > len(raw) {
			continue
		}
		if err := c.Decompress(pressio.NewByte(raw[:n]), pressio.NewFloat32(8, 8, 4)); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	c := New()
	bad := pressio.Options{}
	bad.Set(pressio.OptAbs, 0.0)
	if err := c.SetOptions(bad); err == nil {
		t.Error("zero tolerance should be rejected")
	}
	if _, err := c.Compress(pressio.NewInt64(4)); err == nil {
		t.Error("integer input should be rejected")
	}
}

func TestRegisteredInPressio(t *testing.T) {
	comp, err := pressio.GetCompressor("zfp")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if comp.Name() != "zfp" {
		t.Errorf("Name = %q", comp.Name())
	}
}

func BenchmarkCompress(b *testing.B) {
	in := smoothField3D(64, 64, 32, 8)
	c := New()
	b.SetBytes(int64(in.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	in := smoothField3D(64, 64, 32, 9)
	c := New()
	compressed, err := c.Compress(in)
	if err != nil {
		b.Fatal(err)
	}
	out := pressio.NewFloat32(64, 64, 32)
	b.SetBytes(int64(in.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decompress(compressed, out); err != nil {
			b.Fatal(err)
		}
	}
}
