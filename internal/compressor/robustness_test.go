// Package compressor_test fuzzes every registered compressor's
// decompressor with hostile inputs: random bytes, bit-flipped valid
// streams, and truncations must produce errors, never panics or hangs —
// the resilience predict-bench depends on when it feeds thousands of
// buffers through plugins (the paper notes its testing surfaced many
// faults in prediction codes; this is the corresponding hardening).
package compressor_test

import (
	"math"
	"math/rand"
	"testing"

	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/pressio"
)

var allCompressors = []string{"sz3", "zfp", "szx", "lossless"}

func testField(t testing.TB) *pressio.Data {
	t.Helper()
	d := pressio.NewFloat32(8, 8, 8)
	for i := 0; i < d.Len(); i++ {
		d.Set(i, math.Sin(float64(i)/17)*5)
	}
	return d
}

// decompressNoPanic runs Decompress and converts panics to test failures.
func decompressNoPanic(t *testing.T, name string, comp pressio.Compressor, payload []byte, out *pressio.Data) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: Decompress panicked on hostile input: %v", name, r)
		}
	}()
	// error or success are both fine; panic is not
	_ = comp.Decompress(pressio.NewByte(payload), out)
}

func TestDecompressRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range allCompressors {
		comp, err := pressio.GetCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		out := pressio.NewFloat32(8, 8, 8)
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(2048)
			payload := make([]byte, n)
			rng.Read(payload)
			decompressNoPanic(t, name, comp, payload, out)
		}
	}
}

func TestDecompressBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := testField(t)
	for _, name := range allCompressors {
		comp, err := pressio.GetCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, 1e-3)
		comp.SetOptions(opts)
		compressed, err := comp.Compress(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		base := compressed.Bytes()
		out := pressio.NewFloat32(8, 8, 8)
		for trial := 0; trial < 100; trial++ {
			payload := append([]byte(nil), base...)
			// flip 1-4 random bits
			for f := 0; f < 1+rng.Intn(4); f++ {
				pos := rng.Intn(len(payload))
				payload[pos] ^= 1 << rng.Intn(8)
			}
			decompressNoPanic(t, name, comp, payload, out)
		}
	}
}

func TestDecompressAllTruncations(t *testing.T) {
	in := testField(t)
	for _, name := range allCompressors {
		comp, err := pressio.GetCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, 1e-3)
		comp.SetOptions(opts)
		compressed, err := comp.Compress(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		base := compressed.Bytes()
		out := pressio.NewFloat32(8, 8, 8)
		// every strict truncation must error (never panic, never succeed
		// silently with a full-length stream contract)
		step := len(base)/64 + 1
		for n := 0; n < len(base); n += step {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: panic at truncation %d: %v", name, n, r)
					}
				}()
				if err := comp.Decompress(pressio.NewByte(base[:n]), out); err == nil {
					t.Errorf("%s: truncation to %d of %d bytes decoded without error", name, n, len(base))
				}
			}()
		}
	}
}

// TestCrossCompressorStreams feeds each compressor the other compressors'
// valid streams: magic validation must reject them cleanly.
func TestCrossCompressorStreams(t *testing.T) {
	in := testField(t)
	streams := map[string][]byte{}
	for _, name := range allCompressors {
		comp, _ := pressio.GetCompressor(name)
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, 1e-3)
		comp.SetOptions(opts)
		compressed, err := comp.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		streams[name] = compressed.Bytes()
	}
	for _, decoder := range allCompressors {
		comp, _ := pressio.GetCompressor(decoder)
		out := pressio.NewFloat32(8, 8, 8)
		for producer, payload := range streams {
			if producer == decoder {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: panic on %s stream: %v", decoder, producer, r)
					}
				}()
				if err := comp.Decompress(pressio.NewByte(payload), out); err == nil {
					t.Errorf("%s accepted a %s stream", decoder, producer)
				}
			}()
		}
	}
}
