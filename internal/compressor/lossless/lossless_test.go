package lossless

import (
	"math"
	"testing"

	"repro/internal/pressio"
)

func TestRoundTripExact(t *testing.T) {
	in := pressio.NewFloat32(32, 32)
	for i := 0; i < in.Len(); i++ {
		in.Set(i, math.Sin(float64(i)/10))
	}
	c := New()
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	out := pressio.NewFloat32(32, 32)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Len(); i++ {
		if in.At(i) != out.At(i) {
			t.Fatalf("element %d: %v != %v (lossless must be exact)", i, in.At(i), out.At(i))
		}
	}
}

func TestRepetitiveDataCompresses(t *testing.T) {
	in := pressio.NewFloat64(8192) // zeros
	c := New()
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if compressed.ByteSize() > in.ByteSize()/20 {
		t.Errorf("zeros compressed only to %d of %d bytes", compressed.ByteSize(), in.ByteSize())
	}
}

func TestLevelOption(t *testing.T) {
	c := New()
	o := pressio.Options{}
	o.Set(OptLevel, 9)
	if err := c.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	o.Set(OptLevel, 0)
	if err := c.SetOptions(o); err == nil {
		t.Error("level 0 accepted")
	}
	if v, ok := c.Options().GetInt(OptLevel); !ok || v != 9 {
		t.Errorf("Options level = %v, %v", v, ok)
	}
}

func TestValidation(t *testing.T) {
	c := New()
	in := pressio.NewFloat32(16)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Decompress(compressed, pressio.NewFloat32(8)); err == nil {
		t.Error("size mismatch accepted")
	}
	raw := compressed.Bytes()
	for _, n := range []int{0, 4, 11} {
		if err := c.Decompress(pressio.NewByte(raw[:n]), pressio.NewFloat32(16)); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if err := c.Decompress(pressio.NewByte(corrupt), pressio.NewFloat32(16)); err == nil {
		t.Error("tail corruption accepted")
	}
}

func TestRegisteredInPressio(t *testing.T) {
	if _, err := pressio.GetCompressor("lossless"); err != nil {
		t.Fatal(err)
	}
}
