// Package lossless wraps DEFLATE as a pressio compressor plugin. It is the
// lossless baseline of the study: the entropy bound that Shannon's theorem
// puts on lossless coding (paper §2.2) is what the error-bounded lossy
// compressors beat by discarding sub-tolerance information.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/pressio"
)

// OptLevel sets the DEFLATE effort level 1-9 ("lossless:level").
const OptLevel = "lossless:level"

const magic = "LSLg"

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// Compressor is the lossless plugin. Use New.
type Compressor struct {
	level int
}

// New returns a DEFLATE compressor at the default effort level.
func New() *Compressor { return &Compressor{level: flate.DefaultCompression} }

func init() {
	pressio.RegisterCompressor("lossless", func() pressio.Compressor { return New() })
}

// Name implements pressio.Compressor.
func (c *Compressor) Name() string { return "lossless" }

// SetOptions implements pressio.Compressor.
func (c *Compressor) SetOptions(opts pressio.Options) error {
	if v, ok := opts.GetInt(OptLevel); ok {
		if v < 1 || v > 9 {
			return fmt.Errorf("lossless: %s must be 1-9, got %d", OptLevel, v)
		}
		c.level = int(v)
	}
	return nil
}

// Options implements pressio.Compressor.
func (c *Compressor) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(OptLevel, int64(c.level))
	return o
}

// Configuration implements pressio.Compressor.
func (c *Compressor) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgThreadSafe, false)
	o.Set(pressio.CfgStability, "stable")
	o.Set("lossless:lossless", true)
	return o
}

// Compress implements pressio.Compressor.
func (c *Compressor) Compress(in *pressio.Data) (*pressio.Data, error) {
	raw, err := in.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	body.WriteString(magic)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(raw)))
	body.Write(lenBuf[:])
	fw, err := flate.NewWriter(&body, c.level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return pressio.NewByte(body.Bytes()), nil
}

// Decompress implements pressio.Compressor.
func (c *Compressor) Decompress(compressed *pressio.Data, out *pressio.Data) error {
	buf := compressed.Bytes()
	if len(buf) < 12 || string(buf[:4]) != magic {
		return ErrCorrupt
	}
	rawLen := binary.LittleEndian.Uint64(buf[4:])
	fr := flate.NewReader(bytes.NewReader(buf[12:]))
	defer fr.Close()
	raw, err := io.ReadAll(fr)
	if err != nil || uint64(len(raw)) != rawLen {
		return ErrCorrupt
	}
	var decoded pressio.Data
	if err := decoded.UnmarshalBinary(raw); err != nil {
		return ErrCorrupt
	}
	if decoded.DType() != out.DType() || decoded.Len() != out.Len() {
		return fmt.Errorf("lossless: decoded %v/%d does not match output %v/%d",
			decoded.DType(), decoded.Len(), out.DType(), out.Len())
	}
	for i := 0; i < out.Len(); i++ {
		out.Set(i, decoded.At(i))
	}
	return nil
}
