package sz3

import (
	"math"

	"repro/internal/parallel"
)

// Block-regression prediction, the hallmark predictor of SZ2 (which the
// paper's future-work item (3) contrasts with SZ3's interpolation): the
// domain is tiled into fixed-size blocks, each block's values are fitted
// with a hyperplane over the grid coordinates, the (quantized)
// coefficients are transmitted, and residuals against the hyperplane are
// quantized like any other prediction residual. Unlike Lorenzo, the
// predictor parameters travel with the stream, so prediction reads
// original values — there is no reconstruction feedback loop.

// regBlockEdge is the block edge length (SZ2 uses 6; 8 aligns better
// with power-of-two dims).
const regBlockEdge = 8

// regCoeffs is one block's hyperplane: v ≈ C0 + sum_d Cd·(coord_d -
// blockCenter_d). Stored at float32 precision in the stream.
type regCoeffs struct {
	c [4]float64 // intercept + up to 3 slopes (unused dims stay 0)
}

// fitBlock computes least-squares hyperplane coefficients for one block.
// With coordinates centred per axis the normal equations are diagonal:
// slope_d = Σ v·(x_d - x̄_d) / Σ (x_d - x̄_d)², intercept = mean.
func fitBlock(vals []float64, dims, str, origin, size []int) regCoeffs {
	nd := len(dims)
	var co regCoeffs
	n := 0
	var sum float64
	// centre of the block along each axis
	var center [4]float64
	for d := 0; d < nd; d++ {
		center[d] = float64(size[d]-1) / 2
	}
	var num, den [4]float64
	forEachInBlock(dims, str, origin, size, func(idx int, local []int) {
		v := vals[idx]
		sum += v
		n++
		for d := 0; d < nd; d++ {
			dx := float64(local[d]) - center[d]
			num[d] += v * dx
			den[d] += dx * dx
		}
	})
	if n == 0 {
		return co
	}
	co.c[0] = sum / float64(n)
	for d := 0; d < nd; d++ {
		if den[d] > 0 {
			co.c[d+1] = num[d] / den[d]
		}
	}
	// storage precision: the stream carries float32 coefficients
	for i := range co.c {
		co.c[i] = float64(float32(co.c[i]))
	}
	return co
}

// predictAt evaluates a block's hyperplane at local coordinates.
func (co regCoeffs) predictAt(local []int, size []int, nd int) float64 {
	p := co.c[0]
	for d := 0; d < nd; d++ {
		p += co.c[d+1] * (float64(local[d]) - float64(size[d]-1)/2)
	}
	return p
}

// forEachInBlock visits every element of the block at origin with the
// given per-axis size, passing the flat index and local coordinates.
func forEachInBlock(dims, str, origin, size []int, f func(idx int, local []int)) {
	nd := len(dims)
	local := make([]int, nd)
	for {
		idx := 0
		for d := 0; d < nd; d++ {
			idx += (origin[d] + local[d]) * str[d]
		}
		f(idx, local)
		d := nd - 1
		for ; d >= 0; d-- {
			local[d]++
			if local[d] < size[d] {
				break
			}
			local[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// regressionBlocks enumerates block origins and clamped sizes over dims.
func regressionBlocks(dims []int, f func(origin, size []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	size := make([]int, nd)
	for {
		for d := 0; d < nd; d++ {
			size[d] = regBlockEdge
			if origin[d]+size[d] > dims[d] {
				size[d] = dims[d] - origin[d]
			}
		}
		f(origin, size)
		d := nd - 1
		for ; d >= 0; d-- {
			origin[d] += regBlockEdge
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// regBlock is one tile of the regression decomposition with its code
// stream offset precomputed, so blocks can be processed in any order
// while codes land at exactly the positions the serial traversal used.
type regBlock struct {
	origin [3]int
	size   [3]int
	start  int // offset of the block's first code in the code stream
	vol    int // number of elements in the block
}

// regressionBlockList materializes the block traversal with per-block
// code offsets. Blocks are fully independent (prediction reads original
// values, not reconstructions), so the list is the unit of parallelism.
func regressionBlockList(dims []int) []regBlock {
	var blocks []regBlock
	run := 0
	regressionBlocks(dims, func(origin, size []int) {
		var b regBlock
		vol := 1
		for d := range origin {
			b.origin[d] = origin[d]
			b.size[d] = size[d]
			vol *= size[d]
		}
		b.start = run
		b.vol = vol
		run += vol
		blocks = append(blocks, b)
	})
	return blocks
}

// PredictQuantizeRegression runs the block-regression predictor +
// quantizer. The returned coefficient list has one entry per block in
// traversal order; codes and outliers follow the same order.
func PredictQuantizeRegression(vals []float64, dims []int, q *Quantizer) (codes []int32, outliers []float64, coeffs []float64) {
	return PredictQuantizeRegressionN(vals, dims, q, 0)
}

// PredictQuantizeRegressionN is PredictQuantizeRegression with an
// explicit worker cap (0 = all cores). Output is identical for every
// worker count: blocks are independent, codes write to precomputed
// offsets, and outliers are concatenated in block order afterwards.
func PredictQuantizeRegressionN(vals []float64, dims []int, q *Quantizer, workers int) (codes []int32, outliers []float64, coeffs []float64) {
	codes = make([]int32, len(vals))
	outliers, coeffs = predictQuantizeRegressionInto(codes, vals, dims, q, workers)
	return codes, outliers, coeffs
}

// predictQuantizeRegressionInto runs the regression stage into a
// caller-provided codes buffer (len(vals), fully overwritten).
func predictQuantizeRegressionInto(codes []int32, vals []float64, dims []int, q *Quantizer, workers int) (outliers []float64, coeffs []float64) {
	if len(dims) > 3 {
		dims = flattenTo3(dims)
	}
	nd := len(dims)
	str := stridesOf(dims)
	blocks := regressionBlockList(dims)
	coeffs = make([]float64, len(blocks)*(nd+1))
	blockOutliers := make([][]float64, len(blocks))
	parallel.ForTasks(workers, len(blocks), func(b int) {
		bl := &blocks[b]
		co := fitBlock(vals, dims, str, bl.origin[:nd], bl.size[:nd])
		copy(coeffs[b*(nd+1):], co.c[:nd+1])
		var out []float64
		var local [3]int
		k := bl.start
		for {
			idx := 0
			for d := 0; d < nd; d++ {
				idx += (bl.origin[d] + local[d]) * str[d]
			}
			pred := co.c[0]
			for d := 0; d < nd; d++ {
				pred += co.c[d+1] * (float64(local[d]) - float64(bl.size[d]-1)/2)
			}
			code, r := q.Quantize(vals[idx], pred)
			codes[k] = code
			k++
			if code == OutlierCode {
				out = append(out, r)
			}
			d := nd - 1
			for ; d >= 0; d-- {
				local[d]++
				if local[d] < bl.size[d] {
					break
				}
				local[d] = 0
			}
			if d < 0 {
				break
			}
		}
		if len(out) > 0 {
			blockOutliers[b] = out
		}
	})
	for _, out := range blockOutliers {
		outliers = append(outliers, out...)
	}
	return outliers, coeffs
}

// ReconstructRegression inverts PredictQuantizeRegression into a flat
// value slice.
func ReconstructRegression(codes []int32, outliers, coeffs []float64, dims []int, q *Quantizer) ([]float64, error) {
	return ReconstructRegressionN(codes, outliers, coeffs, dims, q, 0)
}

// ReconstructRegressionN is ReconstructRegression with an explicit
// worker cap.
func ReconstructRegressionN(codes []int32, outliers, coeffs []float64, dims []int, q *Quantizer, workers int) ([]float64, error) {
	if len(dims) > 3 {
		dims = flattenTo3(dims)
	}
	nd := len(dims)
	str := stridesOf(dims)
	total := 1
	for _, d := range dims {
		total *= d
	}
	blocks := regressionBlockList(dims)
	if len(codes) != total || len(coeffs) < len(blocks)*(nd+1) {
		return nil, ErrCorrupt
	}
	// blocks consume the outlier stream in code order: precompute each
	// block's starting offset
	run := 0
	blockOi := make([]int, len(blocks))
	for b := range blocks {
		blockOi[b] = run
		lo := blocks[b].start
		for _, c := range codes[lo : lo+blocks[b].vol] {
			if c == OutlierCode {
				run++
			}
		}
	}
	if run > len(outliers) {
		return nil, ErrCorrupt
	}
	out := make([]float64, total)
	parallel.ForTasks(workers, len(blocks), func(b int) {
		bl := &blocks[b]
		var co regCoeffs
		copy(co.c[:nd+1], coeffs[b*(nd+1):])
		var local [3]int
		k := bl.start
		oi := blockOi[b]
		for {
			idx := 0
			for d := 0; d < nd; d++ {
				idx += (bl.origin[d] + local[d]) * str[d]
			}
			code := codes[k]
			k++
			if code == OutlierCode {
				out[idx] = q.Cast(outliers[oi])
				oi++
			} else {
				pred := co.c[0]
				for d := 0; d < nd; d++ {
					pred += co.c[d+1] * (float64(local[d]) - float64(bl.size[d]-1)/2)
				}
				out[idx] = q.Reconstruct(code, pred)
			}
			d := nd - 1
			for ; d >= 0; d-- {
				local[d]++
				if local[d] < bl.size[d] {
					break
				}
				local[d] = 0
			}
			if d < 0 {
				break
			}
		}
	})
	return out, nil
}

// flattenTo3 folds >3-dimensional shapes into 3 dims (leading dims merge).
func flattenTo3(dims []int) []int {
	lead := 1
	for _, d := range dims[:len(dims)-2] {
		lead *= d
	}
	return []int{lead, dims[len(dims)-2], dims[len(dims)-1]}
}

func stridesOf(dims []int) []int {
	str := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		str[i] = acc
		acc *= dims[i]
	}
	return str
}

// regressionGain estimates, per block, how much better regression is than
// a constant predictor — exported for stage models that want to reason
// about SZ2-style compressors (jin/zperf counterfactuals).
func RegressionGain(vals []float64, dims []int) float64 {
	if len(dims) > 3 {
		dims = flattenTo3(dims)
	}
	str := stridesOf(dims)
	var ssRes, ssConst float64
	regressionBlocks(dims, func(origin, size []int) {
		co := fitBlock(vals, dims, str, origin, size)
		mean := co.c[0]
		nd := len(dims)
		forEachInBlock(dims, str, origin, size, func(idx int, local []int) {
			v := vals[idx]
			r := v - co.predictAt(local, size, nd)
			c := v - mean
			ssRes += r * r
			ssConst += c * c
		})
	})
	if ssRes <= 0 {
		return 60
	}
	gain := 10 * math.Log10(ssConst/ssRes)
	if gain < 0 {
		return 0
	}
	if gain > 60 {
		return 60
	}
	return gain
}
