package sz3

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/huffman"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// Option keys understood by the sz3 plugin.
const (
	// OptPredictor selects the prediction stage: "lorenzo" (default) or
	// "interp" ("sz3:predictor").
	OptPredictor = "sz3:predictor"
	// OptQuantBins sets the quantization bin budget ("sz3:quant_bins").
	OptQuantBins = "sz3:quant_bins"
)

const (
	magic          = "SZ3g"
	modeLorenzo    = 0
	modeInterp     = 1
	modeRegression = 2
	defaultAbs     = 1e-4
	defaultBins    = 65536
)

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("sz3: corrupt stream")

// Compressor is the sz3 plugin. The zero value is not ready; use New.
type Compressor struct {
	abs       float64
	bins      int
	predictor string
	threads   int // worker cap for the parallel kernels; 0 = all cores
}

// kernel scratch pools: the codes and recon working buffers are sized by
// the input and fully overwritten by the prediction stage, so they recycle
// across compressions. sync.Pool hands each in-flight compression an
// exclusive buffer (the -race concurrency test pins this).
var (
	codesPool = sync.Pool{New: func() any { return []int32(nil) }}
	f64Pool   = sync.Pool{New: func() any { return []float64(nil) }}
)

// flatePool recycles DEFLATE writers: flate.NewWriter allocates and zeroes
// roughly a megabyte of match-finder state, which Reset reuses without
// changing the produced bytes.
var flatePool = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
	if err != nil {
		panic(err) // DefaultCompression is always a valid level
	}
	return fw
}}

func getCodesBuf(n int) []int32 {
	b := codesPool.Get().([]int32)
	if cap(b) < n {
		return make([]int32, n)
	}
	//lint:ignore pressiovet/poolescape ownership-transfer accessor: callers pair with putCodesBuf, matching the pool's Get/Put contract
	return b[:n]
}

func getF64Buf(n int) []float64 {
	b := f64Pool.Get().([]float64)
	if cap(b) < n {
		return make([]float64, n)
	}
	//lint:ignore pressiovet/poolescape ownership-transfer accessor: callers pair with putF64Buf, matching the pool's Get/Put contract
	return b[:n]
}

// New returns an sz3 compressor with default settings (abs=1e-4,
// 65536 bins, Lorenzo prediction).
func New() *Compressor {
	return &Compressor{abs: defaultAbs, bins: defaultBins, predictor: "lorenzo"}
}

func init() {
	pressio.RegisterCompressor("sz3", func() pressio.Compressor { return New() })
}

// Name implements pressio.Compressor.
func (c *Compressor) Name() string { return "sz3" }

// SetOptions implements pressio.Compressor. Unknown keys are ignored.
func (c *Compressor) SetOptions(opts pressio.Options) error {
	if v, ok := opts.GetFloat(pressio.OptAbs); ok {
		if v <= 0 {
			return fmt.Errorf("sz3: %s must be positive, got %v", pressio.OptAbs, v)
		}
		c.abs = v
	}
	if v, ok := opts.GetInt(OptQuantBins); ok {
		if v < 4 || v > 1<<24 {
			return fmt.Errorf("sz3: %s out of range: %d", OptQuantBins, v)
		}
		c.bins = int(v)
	}
	if v, ok := opts.GetString(OptPredictor); ok {
		if v != "lorenzo" && v != "interp" && v != "regression" {
			return fmt.Errorf("sz3: unknown predictor %q", v)
		}
		c.predictor = v
	}
	if v, ok := opts.GetInt(pressio.OptNThreads); ok {
		if v < 0 {
			return fmt.Errorf("sz3: %s must be non-negative, got %d", pressio.OptNThreads, v)
		}
		c.threads = int(v)
	}
	return nil
}

// Options implements pressio.Compressor.
func (c *Compressor) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, c.abs)
	o.Set(OptQuantBins, int64(c.bins))
	o.Set(OptPredictor, c.predictor)
	o.Set(pressio.OptNThreads, int64(c.threads))
	return o
}

// Configuration implements pressio.Compressor.
func (c *Compressor) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgThreadSafe, false)
	o.Set(pressio.CfgStability, "stable")
	o.Set("sz3:stages", []string{"prediction", "quantization", "huffman", "lossless"})
	return o
}

func castFor(t pressio.DType) (CastFunc, error) {
	switch t {
	case pressio.DTypeFloat32:
		return CastFloat32, nil
	case pressio.DTypeFloat64:
		return CastFloat64, nil
	}
	return nil, fmt.Errorf("sz3: unsupported dtype %v", t)
}

// Compress implements pressio.Compressor.
func (c *Compressor) Compress(in *pressio.Data) (*pressio.Data, error) {
	cast, err := castFor(in.DType())
	if err != nil {
		return nil, err
	}
	vals := stats.ToFloat64(in)
	q := &Quantizer{Abs: c.abs, Bins: c.bins, Cast: cast}

	codes := getCodesBuf(len(vals))
	defer codesPool.Put(codes)
	var (
		outliers []float64
		coeffs   []float64
		mode     byte
	)
	switch c.predictor {
	case "interp":
		mode = modeInterp
		recon := getF64Buf(len(vals))
		outliers = predictQuantizeInterpInto(codes, recon, vals, q, c.threads)
		f64Pool.Put(recon)
	case "regression":
		mode = modeRegression
		outliers, coeffs = predictQuantizeRegressionInto(codes, vals, in.Dims(), q, c.threads)
	default:
		mode = modeLorenzo
		recon := getF64Buf(len(vals))
		outliers = predictQuantizeLorenzoInto(codes, recon, vals, in.Dims(), q, c.threads)
		f64Pool.Put(recon)
	}

	coded, err := huffman.EncodeWorkers(codes, c.threads)
	if err != nil {
		return nil, err
	}

	// header
	var head bytes.Buffer
	head.WriteString(magic)
	head.WriteByte(byte(in.DType()))
	head.WriteByte(mode)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(c.abs))
	head.Write(scratch[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(c.bins))
	head.Write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(in.Dims())))
	head.Write(scratch[:4])
	for _, d := range in.Dims() {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		head.Write(scratch[:])
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(outliers)))
	head.Write(scratch[:])
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(coeffs)))
	head.Write(scratch[:])

	// body: huffman stream, then outliers, then regression coefficients
	// (float32), DEFLATE-compressed together
	var body bytes.Buffer
	body.Grow(len(coded)/2 + 64)
	fw := flatePool.Get().(*flate.Writer)
	defer flatePool.Put(fw)
	fw.Reset(&body)
	if _, err := fw.Write(coded); err != nil {
		return nil, err
	}
	for _, v := range outliers {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		if _, err := fw.Write(scratch[:]); err != nil {
			return nil, err
		}
	}
	for _, v := range coeffs {
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(float32(v)))
		if _, err := fw.Write(scratch[:4]); err != nil {
			return nil, err
		}
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}

	binary.LittleEndian.PutUint64(scratch[:], uint64(len(coded)))
	head.Write(scratch[:])
	out := append(head.Bytes(), body.Bytes()...)
	return pressio.NewByte(out), nil
}

// Decompress implements pressio.Compressor. out must be allocated with the
// original dtype and dims.
func (c *Compressor) Decompress(compressed *pressio.Data, out *pressio.Data) error {
	buf := compressed.Bytes()
	if len(buf) < len(magic)+2 || string(buf[:4]) != magic {
		return ErrCorrupt
	}
	buf = buf[4:]
	dtype := pressio.DType(buf[0])
	mode := buf[1]
	buf = buf[2:]
	if len(buf) < 8+4+4 {
		return ErrCorrupt
	}
	abs := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	bins := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	nd := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if nd < 0 || len(buf) < nd*8+24 {
		return ErrCorrupt
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	total, err := pressio.CheckDims(dims)
	if err != nil {
		return fmt.Errorf("sz3: %w: %v", ErrCorrupt, err)
	}
	noutlier := int(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	if len(buf) < 16 {
		return ErrCorrupt
	}
	ncoeff := int(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	codedLen := int(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	if noutlier < 0 || codedLen < 0 || ncoeff < 0 {
		return ErrCorrupt
	}

	if out.DType() != dtype {
		return fmt.Errorf("sz3: output dtype %v does not match stream dtype %v", out.DType(), dtype)
	}
	if out.Len() != total {
		return fmt.Errorf("sz3: output has %d elements, stream has %d", out.Len(), total)
	}

	fr := flate.NewReader(bytes.NewReader(buf))
	defer fr.Close()
	body, err := io.ReadAll(fr)
	if err != nil {
		return fmt.Errorf("sz3: %w: %v", ErrCorrupt, err)
	}
	if len(body) != codedLen+8*noutlier+4*ncoeff {
		return ErrCorrupt
	}
	codes, err := huffman.Decode(body[:codedLen])
	if err != nil {
		return fmt.Errorf("sz3: %w: %v", ErrCorrupt, err)
	}
	if len(codes) != total {
		return ErrCorrupt
	}
	sentinels := 0
	for _, code := range codes {
		if code == OutlierCode {
			sentinels++
		}
	}
	if sentinels != noutlier {
		return ErrCorrupt
	}
	outliers := make([]float64, noutlier)
	ob := body[codedLen:]
	for i := range outliers {
		outliers[i] = math.Float64frombits(binary.LittleEndian.Uint64(ob[8*i:]))
	}
	coeffs := make([]float64, ncoeff)
	cb := body[codedLen+8*noutlier:]
	for i := range coeffs {
		coeffs[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(cb[4*i:])))
	}

	cast, err := castFor(dtype)
	if err != nil {
		return err
	}
	q := &Quantizer{Abs: abs, Bins: bins, Cast: cast}
	var recon []float64
	switch mode {
	case modeInterp:
		recon = ReconstructInterpN(codes, outliers, total, q, c.threads)
	case modeRegression:
		recon, err = ReconstructRegressionN(codes, outliers, coeffs, dims, q, c.threads)
		if err != nil {
			return err
		}
	case modeLorenzo:
		recon = ReconstructLorenzoN(codes, outliers, dims, q, c.threads)
	default:
		return ErrCorrupt
	}
	out.FillFloat64(recon)
	return nil
}
