// Package sz3 implements a pure-Go prediction-based error-bounded lossy
// compressor in the style of SZ3: values are predicted from already
// reconstructed neighbours (first-order Lorenzo prediction, or multi-level
// linear interpolation), the prediction residual is quantized with
// linear-scaling quantization against an absolute error bound, the
// quantization codes are entropy-coded with canonical Huffman coding, and
// the result is passed through a DEFLATE lossless stage.
//
// The stage structure matches the decomposition the Jin 2022 ratio-quality
// model analyses (prediction → quantization → encoding), which is what
// makes the prediction problem studied in the paper well-posed against
// this implementation.
//
// The Lorenzo kernels run block-parallel over a wavefront decomposition
// (DESIGN.md §10): the innermost dimension forms contiguous rows, rows are
// grouped by the sum of their leading coordinates, and every row in a
// diagonal group depends only on rows from earlier groups — so groups run
// in order while rows within a group run concurrently on the shared
// worker pool. The interpolation kernels parallelize per refinement
// level. Both produce bit-identical output to the serial traversal for
// any worker count: element arithmetic and ordering are unchanged, only
// the schedule differs.
package sz3

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// OutlierCode is the quantization-code sentinel marking a value that could
// not be quantized within the bin budget and is stored exactly.
const OutlierCode = math.MaxInt32

// CastFunc rounds a reconstructed value to the precision of the stored
// dtype, so the encoder sees exactly what the decoder will produce.
type CastFunc func(float64) float64

// CastFloat32 rounds through float32 storage precision.
func CastFloat32(x float64) float64 { return float64(float32(x)) }

// CastFloat64 is the identity: float64 storage is exact.
func CastFloat64(x float64) float64 { return x }

// cast kinds let the hot loops specialize the two casts this package
// defines instead of paying an indirect call per element; unknown cast
// functions fall back to the indirect path.
const (
	castIdentity = iota
	castF32
	castGeneric
)

// castKindOf classifies a cast function by probing it with values that
// separate identity from float32 rounding. Anything else is generic.
func castKindOf(c CastFunc) int {
	if c == nil {
		return castGeneric
	}
	if c(math.Pi) == math.Pi && c(-math.E) == -math.E {
		return castIdentity
	}
	if c(math.Pi) == float64(float32(math.Pi)) && c(1.5) == 1.5 && c(-math.E) == float64(float32(-math.E)) {
		return castF32
	}
	return castGeneric
}

// Quantizer performs linear-scaling quantization of prediction residuals
// against an absolute error bound.
type Quantizer struct {
	Abs  float64 // absolute error bound (> 0)
	Bins int     // quantization bin budget (codes in (-Bins/2, Bins/2))
	Cast CastFunc
}

// Quantize encodes value against prediction. It returns the quantization
// code (or OutlierCode) and the reconstructed value the decoder will
// produce. For outliers the reconstruction is the cast of the original
// value itself, so the error is zero at storage precision.
func (q *Quantizer) Quantize(value, prediction float64) (code int32, recon float64) {
	diff := value - prediction
	step := 2 * q.Abs
	c := math.Round(diff / step)
	half := float64(q.Bins / 2)
	if math.Abs(c) < half {
		candidate := q.Cast(prediction + c*step)
		if math.Abs(candidate-value) <= q.Abs {
			return int32(c), candidate
		}
	}
	return OutlierCode, q.Cast(value)
}

// Reconstruct decodes a quantization code against a prediction; outliers
// are resolved by the caller from the exact-value stream.
func (q *Quantizer) Reconstruct(code int32, prediction float64) float64 {
	return q.Cast(prediction + float64(code)*2*q.Abs)
}

// lorenzoTerm is one neighbour contribution of the first-order Lorenzo
// predictor: recon[i-offset] * sign, valid when every dimension in mask
// has a coordinate ≥ 1.
type lorenzoTerm struct {
	offset int
	sign   float64
	mask   uint32
}

// lorenzoTerms enumerates the non-empty subsets of dimensions for dims
// (standard n-dimensional first-order Lorenzo). Out-of-domain neighbours
// contribute zero, as in SZ.
func lorenzoTerms(dims []int) []lorenzoTerm {
	nd := len(dims)
	str := make([]int, nd)
	acc := 1
	for i := nd - 1; i >= 0; i-- {
		str[i] = acc
		acc *= dims[i]
	}
	var terms []lorenzoTerm
	for s := 1; s < 1<<nd; s++ {
		off := 0
		bits := 0
		for d := 0; d < nd; d++ {
			if s&(1<<d) != 0 {
				off += str[d]
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1.0
		}
		terms = append(terms, lorenzoTerm{offset: off, sign: sign, mask: uint32(s)})
	}
	return terms
}

// lorenzoPlan caches everything shape-dependent the Lorenzo kernels need:
// the term enumeration and, for every boundary mask, the filtered term
// subsequence. Plans are immutable after construction and shared across
// calls and goroutines (the enumeration used to be rebuilt per call).
type lorenzoPlan struct {
	dims   []int
	str    []int
	terms  []lorenzoTerm
	byMask [][]lorenzoTerm // indexed by haveMask; order preserved
}

var lorenzoPlanCache sync.Map // string key -> *lorenzoPlan

func lorenzoPlanFor(dims []int) *lorenzoPlan {
	key := make([]byte, 0, 4*len(dims))
	for _, d := range dims {
		key = strconv.AppendInt(key, int64(d), 10)
		key = append(key, 'x')
	}
	if p, ok := lorenzoPlanCache.Load(string(key)); ok {
		return p.(*lorenzoPlan)
	}
	nd := len(dims)
	p := &lorenzoPlan{
		dims:  append([]int(nil), dims...),
		str:   make([]int, nd),
		terms: lorenzoTerms(dims),
	}
	acc := 1
	for i := nd - 1; i >= 0; i-- {
		p.str[i] = acc
		acc *= dims[i]
	}
	p.byMask = make([][]lorenzoTerm, 1<<nd)
	for m := uint32(0); m < 1<<nd; m++ {
		var sub []lorenzoTerm
		for _, t := range p.terms {
			if t.mask&m == t.mask {
				sub = append(sub, t)
			}
		}
		p.byMask[m] = sub
	}
	lorenzoPlanCache.Store(string(key), p)
	return p
}

// PredictQuantizeLorenzo runs the Lorenzo predictor + quantizer over vals
// (C-ordered with the given dims) and returns the quantization codes, the
// exactly-stored outlier values, and the reconstruction. It is exported
// (rather than private to Compress) because the Jin 2022 and Khan 2023
// prediction schemes re-run exactly this stage to estimate the code
// distribution without paying for the encoding stages.
func PredictQuantizeLorenzo(vals []float64, dims []int, q *Quantizer) (codes []int32, outliers []float64, recon []float64) {
	return PredictQuantizeLorenzoN(vals, dims, q, 0)
}

// PredictQuantizeLorenzoN is PredictQuantizeLorenzo with an explicit
// worker cap (0 = all cores). Output is identical for every worker count.
func PredictQuantizeLorenzoN(vals []float64, dims []int, q *Quantizer, workers int) (codes []int32, outliers []float64, recon []float64) {
	codes = make([]int32, len(vals))
	recon = make([]float64, len(vals))
	outliers = predictQuantizeLorenzoInto(codes, recon, vals, dims, q, workers)
	return codes, outliers, recon
}

// predictQuantizeLorenzoInto runs the Lorenzo stage into caller-provided
// codes and recon buffers (len(vals) each, fully overwritten), so the
// compressor can recycle them through a pool.
func predictQuantizeLorenzoInto(codes []int32, recon []float64, vals []float64, dims []int, q *Quantizer, workers int) (outliers []float64) {
	n := len(vals)
	if n == 0 {
		return nil
	}
	plan := lorenzoPlanFor(dims)
	kind := castKindOf(q.Cast)
	var outlierCount int64
	forEachRowWavefront(plan, workers, func(base, rowLen int, mask uint32) {
		c := lorenzoRowCompress(vals, recon, codes, base, rowLen, plan, mask, q, kind)
		if c != 0 {
			atomic.AddInt64(&outlierCount, int64(c))
		}
	})
	if outlierCount > 0 {
		// serial gather keeps the outlier stream in index order, exactly
		// as the serial traversal emitted it (recon holds the cast value)
		outliers = make([]float64, 0, outlierCount)
		for i, c := range codes {
			if c == OutlierCode {
				outliers = append(outliers, recon[i])
			}
		}
	}
	return outliers
}

// lorenzoRowCompress quantizes one contiguous row. mask carries the
// boundary bits of the row's leading coordinates; the innermost bit is
// handled per element (clear for element 0, set afterwards). Returns the
// row's outlier count.
func lorenzoRowCompress(vals, recon []float64, codes []int32, base, rowLen int, plan *lorenzoPlan, mask uint32, q *Quantizer, kind int) int {
	nd := len(plan.dims)
	lastBit := uint32(1) << (nd - 1)
	first := plan.byMask[mask&^lastBit]
	rest := plan.byMask[mask|lastBit]
	step := 2 * q.Abs
	abs := q.Abs
	half := float64(q.Bins / 2)
	f32 := kind == castF32
	generic := kind == castGeneric
	out := 0

	// interior rows of 2-D/3-D data take a branch-free unrolled
	// prediction; everything else walks the cached filtered term list
	interior3 := nd == 3 && len(rest) == 7
	interior2 := nd == 2 && len(rest) == 3
	var o1, o2, o3 int
	if interior3 {
		o1, o2, o3 = plan.str[0], plan.str[1], plan.str[0]+plan.str[1]
	} else if interior2 {
		o1 = plan.str[0]
	}

	// rolling neighbour registers for the interior kernels: at element k,
	// the "-1" column values are exactly the previous iteration's loads,
	// and the in-row neighbour is the value just written — so interior
	// rows issue three (3-D) or one (2-D) fresh loads per element. The
	// summands and their order are unchanged, so the float results are
	// bit-identical to the term-list walk.
	var p1, p2, p3, prev float64
	if interior3 {
		p1, p2, p3 = recon[base-o1], recon[base-o2], recon[base-o3]
	} else if interior2 {
		p1 = recon[base-o1]
	}

	for k := 0; k < rowLen; k++ {
		i := base + k
		var pred float64
		switch {
		case k == 0:
			for _, t := range first {
				pred += t.sign * recon[i-t.offset]
			}
		case interior3:
			n1, n2, n3 := recon[i-o1], recon[i-o2], recon[i-o3]
			pred = n1 + n2 - n3 + prev - p1 - p2 + p3
			p1, p2, p3 = n1, n2, n3
		case interior2:
			n1 := recon[i-o1]
			pred = n1 + prev - p1
			p1 = n1
		default:
			for _, t := range rest {
				pred += t.sign * recon[i-t.offset]
			}
		}
		if generic {
			code, r := q.Quantize(vals[i], pred)
			codes[i] = code
			recon[i] = r
			prev = r
			if code == OutlierCode {
				out++
			}
			continue
		}
		v := vals[i]
		c := math.Round((v - pred) / step)
		if c < half && c > -half {
			cand := pred + c*step
			if f32 {
				cand = float64(float32(cand))
			}
			ad := cand - v
			if ad < 0 {
				ad = -ad
			}
			if ad <= abs {
				codes[i] = int32(c)
				recon[i] = cand
				prev = cand
				continue
			}
		}
		cand := v
		if f32 {
			cand = float64(float32(cand))
		}
		codes[i] = OutlierCode
		recon[i] = cand
		prev = cand
		out++
	}
	return out
}

// ReconstructLorenzo inverts PredictQuantizeLorenzo given the codes and
// outlier stream.
func ReconstructLorenzo(codes []int32, outliers []float64, dims []int, q *Quantizer) []float64 {
	return ReconstructLorenzoN(codes, outliers, dims, q, 0)
}

// ReconstructLorenzoN is ReconstructLorenzo with an explicit worker cap.
func ReconstructLorenzoN(codes []int32, outliers []float64, dims []int, q *Quantizer, workers int) []float64 {
	n := len(codes)
	recon := make([]float64, n)
	if n == 0 {
		return recon
	}
	plan := lorenzoPlanFor(dims)
	kind := castKindOf(q.Cast)
	rowLen := plan.dims[len(plan.dims)-1]
	if len(plan.dims) == 1 {
		rowLen = n
	}
	// rows consume the outlier stream in index order: precompute each
	// row's starting offset when outliers are present
	var rowOi []int
	if len(outliers) > 0 {
		nrows := n / rowLen
		rowOi = make([]int, nrows)
		run := 0
		for r := 0; r < nrows; r++ {
			rowOi[r] = run
			lo := r * rowLen
			for _, c := range codes[lo : lo+rowLen] {
				if c == OutlierCode {
					run++
				}
			}
		}
	}
	forEachRowWavefront(plan, workers, func(base, rl int, mask uint32) {
		oi := 0
		if rowOi != nil {
			oi = rowOi[base/rowLen]
		}
		lorenzoRowDecompress(codes, outliers, recon, base, rl, plan, mask, q, kind, oi)
	})
	return recon
}

// lorenzoRowDecompress reconstructs one contiguous row; oi is the row's
// starting index into the outlier stream.
func lorenzoRowDecompress(codes []int32, outliers, recon []float64, base, rowLen int, plan *lorenzoPlan, mask uint32, q *Quantizer, kind, oi int) {
	nd := len(plan.dims)
	lastBit := uint32(1) << (nd - 1)
	first := plan.byMask[mask&^lastBit]
	rest := plan.byMask[mask|lastBit]
	step := 2 * q.Abs
	f32 := kind == castF32
	generic := kind == castGeneric

	interior3 := nd == 3 && len(rest) == 7
	interior2 := nd == 2 && len(rest) == 3
	var o1, o2, o3 int
	if interior3 {
		o1, o2, o3 = plan.str[0], plan.str[1], plan.str[0]+plan.str[1]
	} else if interior2 {
		o1 = plan.str[0]
	}

	for k := 0; k < rowLen; k++ {
		i := base + k
		var pred float64
		switch {
		case k == 0:
			for _, t := range first {
				pred += t.sign * recon[i-t.offset]
			}
		case interior3:
			pred = recon[i-o1] + recon[i-o2] - recon[i-o3] + recon[i-1] - recon[i-o1-1] - recon[i-o2-1] + recon[i-o3-1]
		case interior2:
			pred = recon[i-o1] + recon[i-1] - recon[i-o1-1]
		default:
			for _, t := range rest {
				pred += t.sign * recon[i-t.offset]
			}
		}
		if codes[i] == OutlierCode {
			v := outliers[oi]
			oi++
			switch {
			case f32:
				v = float64(float32(v))
			case generic:
				v = q.Cast(v)
			}
			recon[i] = v
			continue
		}
		r := pred + float64(codes[i])*step
		switch {
		case f32:
			r = float64(float32(r))
		case generic:
			r = q.Cast(r)
		}
		recon[i] = r
	}
}

// rowRef is one row of a wavefront diagonal: its flat base index and the
// boundary mask of its leading coordinates.
type rowRef struct {
	base int
	mask uint32
}

// forEachRowWavefront invokes fn once per contiguous innermost row,
// scheduling rows so that every dependency of a row (all rows whose
// leading coordinates are component-wise ≤) has completed before the row
// runs. Rows whose leading coordinates sum to t form diagonal group t;
// groups run in order, rows within a group run in parallel. 1-D data is a
// single row; 2-D data degrades to one row per group (serial), which is
// correct — each 2-D row depends on the whole previous row.
func forEachRowWavefront(plan *lorenzoPlan, workers int, fn func(base, rowLen int, mask uint32)) {
	nd := len(plan.dims)
	if nd == 1 {
		fn(0, plan.dims[0], 0)
		return
	}
	lead := plan.dims[:nd-1]
	rowLen := plan.dims[nd-1]
	maxSum := 0
	for _, d := range lead {
		maxSum += d - 1
	}
	// suffix[d] = max coordinate sum achievable from dims d+1.. of lead
	suffix := make([]int, len(lead)+1)
	for d := len(lead) - 1; d >= 0; d-- {
		suffix[d] = suffix[d+1] + lead[d] - 1
	}
	rows := make([]rowRef, 0, 64)
	for t := 0; t <= maxSum; t++ {
		rows = rows[:0]
		// enumerate leading coordinate tuples with sum t
		var rec func(d, rem, base int, mask uint32)
		rec = func(d, rem, base int, mask uint32) {
			if d == len(lead) {
				if rem == 0 {
					rows = append(rows, rowRef{base: base, mask: mask})
				}
				return
			}
			lo := rem - suffix[d+1]
			if lo < 0 {
				lo = 0
			}
			hi := lead[d] - 1
			if hi > rem {
				hi = rem
			}
			for c := lo; c <= hi; c++ {
				m := mask
				if c >= 1 {
					m |= 1 << d
				}
				rec(d+1, rem-c, base+c*plan.str[d], m)
			}
		}
		rec(0, t, 0, 0)
		if len(rows) == 1 {
			fn(rows[0].base, rowLen, rows[0].mask)
			continue
		}
		rs := rows
		parallel.ForTasks(workers, len(rs), func(i int) {
			fn(rs[i].base, rowLen, rs[i].mask)
		})
	}
}

// interpOrder returns the traversal order of the multi-level linear
// interpolation predictor over n flattened elements: index 0 first, then
// odd multiples of each stride from coarse to fine. Every index appears
// exactly once.
func interpOrder(n int) []int {
	order := make([]int, 0, n)
	if n == 0 {
		return order
	}
	order = append(order, 0)
	maxStride := 1
	for maxStride*2 < n {
		maxStride *= 2
	}
	for s := maxStride; s >= 1; s /= 2 {
		for i := s; i < n; i += 2 * s {
			order = append(order, i)
		}
	}
	return order
}

// interpLevels invokes fn for each refinement level from coarse to fine
// with the level's stride and the traversal position of its first
// element. Within a level, element k sits at index s+2*s*k and traversal
// position pos0+k; its bracketing neighbours are multiples of 2*s, which
// earlier levels have already reconstructed — so levels parallelize.
func interpLevels(n int, fn func(s, pos0, count int)) {
	if n <= 1 {
		return
	}
	maxStride := 1
	for maxStride*2 < n {
		maxStride *= 2
	}
	pos := 1 // order[0] == 0 precedes all levels
	for s := maxStride; s >= 1; s /= 2 {
		count := (n - s + 2*s - 1) / (2 * s)
		fn(s, pos, count)
		pos += count
	}
}

// PredictQuantizeInterp runs the multi-level linear interpolation
// predictor + quantizer over vals flattened to 1-D. Codes and outliers are
// in traversal order.
func PredictQuantizeInterp(vals []float64, q *Quantizer) (codes []int32, outliers []float64, recon []float64) {
	return PredictQuantizeInterpN(vals, q, 0)
}

// PredictQuantizeInterpN is PredictQuantizeInterp with an explicit worker
// cap (0 = all cores). Output is identical for every worker count.
func PredictQuantizeInterpN(vals []float64, q *Quantizer, workers int) (codes []int32, outliers []float64, recon []float64) {
	codes = make([]int32, len(vals))
	recon = make([]float64, len(vals))
	outliers = predictQuantizeInterpInto(codes, recon, vals, q, workers)
	return codes, outliers, recon
}

// predictQuantizeInterpInto runs the interpolation stage into
// caller-provided codes and recon buffers (len(vals) each, fully
// overwritten).
func predictQuantizeInterpInto(codes []int32, recon []float64, vals []float64, q *Quantizer, workers int) (outliers []float64) {
	n := len(vals)
	if n == 0 {
		return nil
	}
	kind := castKindOf(q.Cast)
	step := 2 * q.Abs
	abs := q.Abs
	half := float64(q.Bins / 2)
	f32 := kind == castF32
	generic := kind == castGeneric
	var outlierCount int64

	quantizeAt := func(i, pos int, pred float64) int {
		if generic {
			code, r := q.Quantize(vals[i], pred)
			codes[pos] = code
			recon[i] = r
			if code == OutlierCode {
				return 1
			}
			return 0
		}
		v := vals[i]
		c := math.Round((v - pred) / step)
		if c < half && c > -half {
			cand := pred + c*step
			if f32 {
				cand = float64(float32(cand))
			}
			ad := cand - v
			if ad < 0 {
				ad = -ad
			}
			if ad <= abs {
				codes[pos] = int32(c)
				recon[i] = cand
				return 0
			}
		}
		cand := v
		if f32 {
			cand = float64(float32(cand))
		}
		codes[pos] = OutlierCode
		recon[i] = cand
		return 1
	}

	outlierCount += int64(quantizeAt(0, 0, 0))
	interpLevels(n, func(s, pos0, count int) {
		parallel.For(workers, count, func(lo, hi int) {
			out := 0
			for k := lo; k < hi; k++ {
				i := s + 2*s*k
				left := i - s
				right := i + s
				var pred float64
				if right < n {
					pred = (recon[left] + recon[right]) / 2
				} else {
					pred = recon[left]
				}
				out += quantizeAt(i, pos0+k, pred)
			}
			if out != 0 {
				atomic.AddInt64(&outlierCount, int64(out))
			}
		})
	})
	if outlierCount > 0 {
		outliers = make([]float64, 0, outlierCount)
		// gather in traversal order: level layout maps code position to
		// element index directly
		if codes[0] == OutlierCode {
			outliers = append(outliers, recon[0])
		}
		interpLevels(n, func(s, pos0, count int) {
			for k := 0; k < count; k++ {
				if codes[pos0+k] == OutlierCode {
					outliers = append(outliers, recon[s+2*s*k])
				}
			}
		})
	}
	return outliers
}

// interpPredict predicts element i from its already-reconstructed
// neighbours at the current level: the midpoint of the two bracketing
// coarse samples when both exist, else the left sample, else zero.
func interpPredict(recon []float64, done []bool, i, n int) float64 {
	if i == 0 {
		return 0
	}
	// stride of i is its largest power-of-two divisor
	s := i & (-i)
	left := i - s
	right := i + s
	if right < n && done[right] {
		return (recon[left] + recon[right]) / 2
	}
	return recon[left]
}

// ReconstructInterp inverts PredictQuantizeInterp.
func ReconstructInterp(codes []int32, outliers []float64, n int, q *Quantizer) []float64 {
	return ReconstructInterpN(codes, outliers, n, q, 0)
}

// ReconstructInterpN is ReconstructInterp with an explicit worker cap.
func ReconstructInterpN(codes []int32, outliers []float64, n int, q *Quantizer, workers int) []float64 {
	recon := make([]float64, n)
	if n == 0 {
		return recon
	}
	kind := castKindOf(q.Cast)
	step := 2 * q.Abs
	f32 := kind == castF32
	generic := kind == castGeneric

	// map each traversal position to its outlier-stream offset up front,
	// so levels can run in parallel even with outliers present
	var ois []int32
	if len(outliers) > 0 {
		ois = make([]int32, len(codes))
		run := int32(0)
		for p, c := range codes {
			ois[p] = run
			if c == OutlierCode {
				run++
			}
		}
	}
	reconAt := func(i, pos int, pred float64) {
		if codes[pos] == OutlierCode {
			v := outliers[ois[pos]]
			switch {
			case f32:
				v = float64(float32(v))
			case generic:
				v = q.Cast(v)
			}
			recon[i] = v
			return
		}
		r := pred + float64(codes[pos])*step
		switch {
		case f32:
			r = float64(float32(r))
		case generic:
			r = q.Cast(r)
		}
		recon[i] = r
	}
	reconAt(0, 0, 0)
	interpLevels(n, func(s, pos0, count int) {
		parallel.For(workers, count, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := s + 2*s*k
				left := i - s
				right := i + s
				var pred float64
				if right < n {
					pred = (recon[left] + recon[right]) / 2
				} else {
					pred = recon[left]
				}
				reconAt(i, pos0+k, pred)
			}
		})
	})
	return recon
}
