// Package sz3 implements a pure-Go prediction-based error-bounded lossy
// compressor in the style of SZ3: values are predicted from already
// reconstructed neighbours (first-order Lorenzo prediction, or multi-level
// linear interpolation), the prediction residual is quantized with
// linear-scaling quantization against an absolute error bound, the
// quantization codes are entropy-coded with canonical Huffman coding, and
// the result is passed through a DEFLATE lossless stage.
//
// The stage structure matches the decomposition the Jin 2022 ratio-quality
// model analyses (prediction → quantization → encoding), which is what
// makes the prediction problem studied in the paper well-posed against
// this implementation.
package sz3

import (
	"math"
)

// OutlierCode is the quantization-code sentinel marking a value that could
// not be quantized within the bin budget and is stored exactly.
const OutlierCode = math.MaxInt32

// CastFunc rounds a reconstructed value to the precision of the stored
// dtype, so the encoder sees exactly what the decoder will produce.
type CastFunc func(float64) float64

// CastFloat32 rounds through float32 storage precision.
func CastFloat32(x float64) float64 { return float64(float32(x)) }

// CastFloat64 is the identity: float64 storage is exact.
func CastFloat64(x float64) float64 { return x }

// Quantizer performs linear-scaling quantization of prediction residuals
// against an absolute error bound.
type Quantizer struct {
	Abs  float64 // absolute error bound (> 0)
	Bins int     // quantization bin budget (codes in (-Bins/2, Bins/2))
	Cast CastFunc
}

// Quantize encodes value against prediction. It returns the quantization
// code (or OutlierCode) and the reconstructed value the decoder will
// produce. For outliers the reconstruction is the cast of the original
// value itself, so the error is zero at storage precision.
func (q *Quantizer) Quantize(value, prediction float64) (code int32, recon float64) {
	diff := value - prediction
	step := 2 * q.Abs
	c := math.Round(diff / step)
	half := float64(q.Bins / 2)
	if math.Abs(c) < half {
		candidate := q.Cast(prediction + c*step)
		if math.Abs(candidate-value) <= q.Abs {
			return int32(c), candidate
		}
	}
	return OutlierCode, q.Cast(value)
}

// Reconstruct decodes a quantization code against a prediction; outliers
// are resolved by the caller from the exact-value stream.
func (q *Quantizer) Reconstruct(code int32, prediction float64) float64 {
	return q.Cast(prediction + float64(code)*2*q.Abs)
}

// lorenzoTerm is one neighbour contribution of the first-order Lorenzo
// predictor: recon[i-offset] * sign, valid when every dimension in mask
// has a coordinate ≥ 1.
type lorenzoTerm struct {
	offset int
	sign   float64
	mask   uint32
}

// lorenzoTerms enumerates the non-empty subsets of dimensions for dims
// (standard n-dimensional first-order Lorenzo). Out-of-domain neighbours
// contribute zero, as in SZ.
func lorenzoTerms(dims []int) []lorenzoTerm {
	nd := len(dims)
	str := make([]int, nd)
	acc := 1
	for i := nd - 1; i >= 0; i-- {
		str[i] = acc
		acc *= dims[i]
	}
	var terms []lorenzoTerm
	for s := 1; s < 1<<nd; s++ {
		off := 0
		bits := 0
		for d := 0; d < nd; d++ {
			if s&(1<<d) != 0 {
				off += str[d]
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1.0
		}
		terms = append(terms, lorenzoTerm{offset: off, sign: sign, mask: uint32(s)})
	}
	return terms
}

// PredictQuantizeLorenzo runs the Lorenzo predictor + quantizer over vals
// (C-ordered with the given dims) and returns the quantization codes, the
// exactly-stored outlier values, and the reconstruction. It is exported
// (rather than private to Compress) because the Jin 2022 and Khan 2023
// prediction schemes re-run exactly this stage to estimate the code
// distribution without paying for the encoding stages.
func PredictQuantizeLorenzo(vals []float64, dims []int, q *Quantizer) (codes []int32, outliers []float64, recon []float64) {
	n := len(vals)
	codes = make([]int32, n)
	recon = make([]float64, n)
	terms := lorenzoTerms(dims)
	nd := len(dims)
	coords := make([]int, nd)
	// boundary mask: bit d set when coords[d] >= 1
	var haveMask uint32
	for i := 0; i < n; i++ {
		var pred float64
		for _, t := range terms {
			if t.mask&haveMask == t.mask {
				pred += t.sign * recon[i-t.offset]
			}
		}
		code, r := q.Quantize(vals[i], pred)
		codes[i] = code
		recon[i] = r
		if code == OutlierCode {
			outliers = append(outliers, r)
		}
		// advance C-order coordinates and maintain haveMask
		for d := nd - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] == 1 {
				haveMask |= 1 << d
			}
			if coords[d] < dims[d] {
				break
			}
			coords[d] = 0
			haveMask &^= 1 << d
		}
	}
	return codes, outliers, recon
}

// ReconstructLorenzo inverts PredictQuantizeLorenzo given the codes and
// outlier stream.
func ReconstructLorenzo(codes []int32, outliers []float64, dims []int, q *Quantizer) []float64 {
	n := len(codes)
	recon := make([]float64, n)
	terms := lorenzoTerms(dims)
	nd := len(dims)
	coords := make([]int, nd)
	var haveMask uint32
	oi := 0
	for i := 0; i < n; i++ {
		var pred float64
		for _, t := range terms {
			if t.mask&haveMask == t.mask {
				pred += t.sign * recon[i-t.offset]
			}
		}
		if codes[i] == OutlierCode {
			recon[i] = q.Cast(outliers[oi])
			oi++
		} else {
			recon[i] = q.Reconstruct(codes[i], pred)
		}
		for d := nd - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] == 1 {
				haveMask |= 1 << d
			}
			if coords[d] < dims[d] {
				break
			}
			coords[d] = 0
			haveMask &^= 1 << d
		}
	}
	return recon
}

// interpOrder returns the traversal order of the multi-level linear
// interpolation predictor over n flattened elements: index 0 first, then
// odd multiples of each stride from coarse to fine. Every index appears
// exactly once.
func interpOrder(n int) []int {
	order := make([]int, 0, n)
	if n == 0 {
		return order
	}
	order = append(order, 0)
	maxStride := 1
	for maxStride*2 < n {
		maxStride *= 2
	}
	for s := maxStride; s >= 1; s /= 2 {
		for i := s; i < n; i += 2 * s {
			order = append(order, i)
		}
	}
	return order
}

// PredictQuantizeInterp runs the multi-level linear interpolation
// predictor + quantizer over vals flattened to 1-D. Codes and outliers are
// in traversal order.
func PredictQuantizeInterp(vals []float64, q *Quantizer) (codes []int32, outliers []float64, recon []float64) {
	n := len(vals)
	codes = make([]int32, 0, n)
	recon = make([]float64, n)
	done := make([]bool, n)
	for _, i := range interpOrder(n) {
		pred := interpPredict(recon, done, i, n)
		code, r := q.Quantize(vals[i], pred)
		codes = append(codes, code)
		recon[i] = r
		done[i] = true
		if code == OutlierCode {
			outliers = append(outliers, r)
		}
	}
	return codes, outliers, recon
}

// interpPredict predicts element i from its already-reconstructed
// neighbours at the current level: the midpoint of the two bracketing
// coarse samples when both exist, else the left sample, else zero.
func interpPredict(recon []float64, done []bool, i, n int) float64 {
	if i == 0 {
		return 0
	}
	// stride of i is its largest power-of-two divisor
	s := i & (-i)
	left := i - s
	right := i + s
	if right < n && done[right] {
		return (recon[left] + recon[right]) / 2
	}
	return recon[left]
}

// ReconstructInterp inverts PredictQuantizeInterp.
func ReconstructInterp(codes []int32, outliers []float64, n int, q *Quantizer) []float64 {
	recon := make([]float64, n)
	done := make([]bool, n)
	oi := 0
	for k, i := range interpOrder(n) {
		pred := interpPredict(recon, done, i, n)
		if codes[k] == OutlierCode {
			recon[i] = q.Cast(outliers[oi])
			oi++
		} else {
			recon[i] = q.Reconstruct(codes[k], pred)
		}
		done[i] = true
	}
	return recon
}
