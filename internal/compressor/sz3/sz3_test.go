package sz3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pressio"
)

// smoothField3D builds a 3-D field with smooth structure plus mild noise.
func smoothField3D(nx, ny, nz int, seed int64) *pressio.Data {
	rng := rand.New(rand.NewSource(seed))
	d := pressio.NewFloat32(nx, ny, nz)
	v := d.Float32()
	idx := 0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v[idx] = float32(10*math.Sin(float64(i)/7)*math.Cos(float64(j)/9) +
					float64(k)/4 + 0.01*rng.NormFloat64())
				idx++
			}
		}
	}
	return d
}

func checkBound(t *testing.T, orig, recon *pressio.Data, abs float64) {
	t.Helper()
	worst := 0.0
	for i := 0; i < orig.Len(); i++ {
		e := math.Abs(orig.At(i) - recon.At(i))
		if e > worst {
			worst = e
		}
	}
	if worst > abs {
		t.Errorf("error bound violated: max error %v > %v", worst, abs)
	}
}

func roundTrip(t *testing.T, c *Compressor, in *pressio.Data) *pressio.Data {
	t.Helper()
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	out := pressio.New(in.DType(), in.Dims()...)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	return out
}

func TestRoundTripLorenzo3D(t *testing.T) {
	in := smoothField3D(16, 16, 8, 1)
	for _, abs := range []float64{1e-2, 1e-4, 1e-6} {
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		if err := c.SetOptions(opts); err != nil {
			t.Fatal(err)
		}
		out := roundTrip(t, c, in)
		checkBound(t, in, out, abs)
	}
}

func TestRoundTripInterp(t *testing.T) {
	in := smoothField3D(16, 8, 8, 2)
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	opts.Set(OptPredictor, "interp")
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, c, in)
	checkBound(t, in, out, 1e-3)
}

func TestRoundTripFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := pressio.NewFloat64(32, 32)
	for i := 0; i < in.Len(); i++ {
		in.Set(i, math.Sin(float64(i)/50)+0.1*rng.NormFloat64())
	}
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-8)
	c.SetOptions(opts)
	out := roundTrip(t, c, in)
	checkBound(t, in, out, 1e-8)
}

func TestCompressionRatioOnSmoothData(t *testing.T) {
	in := smoothField3D(32, 32, 16, 4)
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-2)
	c.SetOptions(opts)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(in.ByteSize()) / float64(compressed.ByteSize())
	if cr < 4 {
		t.Errorf("smooth data compression ratio = %.2f, expected > 4", cr)
	}
}

func TestLooserBoundCompressesMore(t *testing.T) {
	in := smoothField3D(32, 16, 16, 5)
	sizes := map[float64]int{}
	for _, abs := range []float64{1e-6, 1e-4, 1e-2} {
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		c.SetOptions(opts)
		compressed, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		sizes[abs] = compressed.ByteSize()
	}
	if !(sizes[1e-2] < sizes[1e-4] && sizes[1e-4] < sizes[1e-6]) {
		t.Errorf("sizes should decrease with looser bounds: %v", sizes)
	}
}

func TestSparseFieldCompressesWell(t *testing.T) {
	// mostly zero with a few spikes, like Hurricane's CLOUD/PRECIP
	in := pressio.NewFloat32(64, 64)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		in.Set(rng.Intn(in.Len()), rng.Float64()*100)
	}
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	c.SetOptions(opts)
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(in.ByteSize()) / float64(compressed.ByteSize())
	if cr < 10 {
		t.Errorf("sparse data compression ratio = %.2f, expected > 10", cr)
	}
	out := pressio.NewFloat32(64, 64)
	if err := c.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	checkBound(t, in, out, 1e-4)
}

func TestErrorBoundQuick(t *testing.T) {
	f := func(raw []float32, absSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
			// keep magnitudes in a regime where float32 ulp < bound
			if v > 1e6 || v < -1e6 {
				raw[i] = float32(math.Mod(float64(v), 1e6))
			}
		}
		abs := []float64{1e-1, 1e-2, 1e-3}[int(absSel)%3]
		in := pressio.FromFloat32(raw, len(raw))
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		c.SetOptions(opts)
		compressed, err := c.Compress(in)
		if err != nil {
			return false
		}
		out := pressio.NewFloat32(len(raw))
		if err := c.Decompress(compressed, out); err != nil {
			return false
		}
		for i := range raw {
			if math.Abs(float64(raw[i])-out.At(i)) > abs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	c := New()
	bad := pressio.Options{}
	bad.Set(pressio.OptAbs, -1.0)
	if err := c.SetOptions(bad); err == nil {
		t.Error("negative bound should be rejected")
	}
	bad = pressio.Options{}
	bad.Set(OptPredictor, "psychic")
	if err := c.SetOptions(bad); err == nil {
		t.Error("unknown predictor should be rejected")
	}
	bad = pressio.Options{}
	bad.Set(OptQuantBins, 1)
	if err := c.SetOptions(bad); err == nil {
		t.Error("tiny bin budget should be rejected")
	}
	// round-trip through Options()
	opts := c.Options()
	if v, ok := opts.GetFloat(pressio.OptAbs); !ok || v <= 0 {
		t.Error("Options should report the bound")
	}
}

func TestDecompressValidation(t *testing.T) {
	in := smoothField3D(8, 8, 4, 7)
	c := New()
	compressed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	// wrong dtype
	if err := c.Decompress(compressed, pressio.NewFloat64(8, 8, 4)); err == nil {
		t.Error("dtype mismatch should be rejected")
	}
	// wrong size
	if err := c.Decompress(compressed, pressio.NewFloat32(8, 8)); err == nil {
		t.Error("size mismatch should be rejected")
	}
	// corrupt magic
	bad := compressed.Clone()
	bad.Bytes()[0] = 'X'
	if err := c.Decompress(bad, pressio.NewFloat32(8, 8, 4)); err == nil {
		t.Error("bad magic should be rejected")
	}
	// truncations must error, not panic
	raw := compressed.Bytes()
	for _, n := range []int{0, 3, 7, 20, len(raw) / 2} {
		if n > len(raw) {
			continue
		}
		if err := c.Decompress(pressio.NewByte(raw[:n]), pressio.NewFloat32(8, 8, 4)); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestUnsupportedDType(t *testing.T) {
	c := New()
	if _, err := c.Compress(pressio.NewInt32(4)); err == nil {
		t.Error("int32 input should be rejected")
	}
}

func TestRegisteredInPressio(t *testing.T) {
	comp, err := pressio.GetCompressor("sz3")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if comp.Name() != "sz3" {
		t.Errorf("Name = %q", comp.Name())
	}
}

func TestInterpOrderCoversAllOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025} {
		order := interpOrder(n)
		if len(order) != n {
			t.Errorf("n=%d: order has %d entries", n, len(order))
			continue
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Errorf("n=%d: bad or duplicate index %d", n, i)
				break
			}
			seen[i] = true
		}
	}
}

func TestQuantizerOutlierFallback(t *testing.T) {
	q := &Quantizer{Abs: 1e-6, Bins: 16, Cast: CastFloat64}
	// diff way beyond the bin budget
	code, recon := q.Quantize(1e6, 0)
	if code != OutlierCode {
		t.Errorf("expected outlier, got code %d", code)
	}
	if recon != 1e6 {
		t.Errorf("outlier recon = %v, want exact", recon)
	}
	// in-budget value quantizes
	code, recon = q.Quantize(4e-6, 0)
	if code == OutlierCode {
		t.Error("small diff should quantize")
	}
	if math.Abs(recon-4e-6) > 1e-6 {
		t.Errorf("recon error %v", math.Abs(recon-4e-6))
	}
}

func BenchmarkCompressLorenzo(b *testing.B) {
	in := smoothField3D(64, 64, 32, 8)
	c := New()
	b.SetBytes(int64(in.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressLorenzo(b *testing.B) {
	in := smoothField3D(64, 64, 32, 9)
	c := New()
	compressed, err := c.Compress(in)
	if err != nil {
		b.Fatal(err)
	}
	out := pressio.NewFloat32(64, 64, 32)
	b.SetBytes(int64(in.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decompress(compressed, out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripRegression(t *testing.T) {
	in := smoothField3D(16, 12, 8, 11)
	for _, abs := range []float64{1e-2, 1e-4} {
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		opts.Set(OptPredictor, "regression")
		if err := c.SetOptions(opts); err != nil {
			t.Fatal(err)
		}
		out := roundTrip(t, c, in)
		checkBound(t, in, out, abs)
	}
}

func TestRegressionBeatsLorenzoOnGradients(t *testing.T) {
	// planar data with additive noise is the regression predictor's best
	// case: the hyperplane absorbs the gradient while Lorenzo's stencil
	// amplifies the noise into its residuals (why SZ2 carried this stage)
	rng := rand.New(rand.NewSource(21))
	in := pressio.NewFloat32(32, 32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			in.Set(i*32+j, float64(3*i)+float64(2*j)+0.3+0.5*rng.NormFloat64())
		}
	}
	sizeWith := func(pred string) int {
		c := New()
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, 1e-3)
		opts.Set(OptPredictor, pred)
		if err := c.SetOptions(opts); err != nil {
			t.Fatal(err)
		}
		compressed, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		out := pressio.NewFloat32(32, 32)
		if err := c.Decompress(compressed, out); err != nil {
			t.Fatal(err)
		}
		checkBound(t, in, out, 1e-3)
		return compressed.ByteSize()
	}
	reg := sizeWith("regression")
	lor := sizeWith("lorenzo")
	if reg > lor {
		t.Errorf("regression (%dB) should beat lorenzo (%dB) on planar data", reg, lor)
	}
}

func TestRegressionPartialBlocks(t *testing.T) {
	// dims not multiples of the block edge
	in := smoothField3D(9, 7, 5, 12)
	c := New()
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	opts.Set(OptPredictor, "regression")
	c.SetOptions(opts)
	out := roundTrip(t, c, in)
	checkBound(t, in, out, 1e-3)
}

func TestRegressionGainSeparatesFields(t *testing.T) {
	planar := make([]float64, 64*64)
	noise := make([]float64, 64*64)
	rng := rand.New(rand.NewSource(13))
	for i := range planar {
		planar[i] = float64(i%64)*2 + float64(i/64)
		noise[i] = rng.NormFloat64()
	}
	gp := RegressionGain(planar, []int{64, 64})
	gn := RegressionGain(noise, []int{64, 64})
	if gp < 20 {
		t.Errorf("planar gain %v dB, want > 20", gp)
	}
	if gn > 3 {
		t.Errorf("noise gain %v dB, want ~0", gn)
	}
}
