package compressor_test

// Golden tests pin the exact compressed byte streams of the sz3, zfp, and
// szx kernels. The fixtures were generated from the serial implementations
// before the block-parallel refactor; any change to the on-disk hashes
// means the encoding changed, which breaks stored streams and the
// determinism guarantee of DESIGN.md §10. Regenerate (only for a
// deliberate, versioned format change) with:
//
//	go test ./internal/compressor/ -run TestGolden -update-golden
//
// The tests also assert that every thread count produces byte-identical
// output to the serial path, which is the contract that makes
// pressio:nthreads a pure performance knob.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/pressio"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden kernel fixtures")

const goldenPath = "testdata/golden_kernels.json"

// goldenCase describes one pinned compression run.
type goldenCase struct {
	Compressor string
	DType      string
	Dims       []int
	Abs        float64
	Extra      map[string]any // compressor-specific options
}

func (c goldenCase) name() string {
	s := fmt.Sprintf("%s/%s/%v/abs=%g", c.Compressor, c.DType, c.Dims, c.Abs)
	keys := make([]string, 0, len(c.Extra))
	for k := range c.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s += fmt.Sprintf("/%s=%v", k, c.Extra[k])
	}
	return s
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	dimSets := [][]int{{257}, {33, 47}, {16, 24, 20}, {3, 5, 6, 7}}
	for _, dims := range dimSets {
		for _, dt := range []string{"float32", "float64"} {
			for _, abs := range []float64{1e-3, 1e-5} {
				for _, pred := range []string{"lorenzo", "interp", "regression"} {
					cases = append(cases, goldenCase{
						Compressor: "sz3", DType: dt, Dims: dims, Abs: abs,
						Extra: map[string]any{"sz3:predictor": pred},
					})
				}
				cases = append(cases, goldenCase{Compressor: "zfp", DType: dt, Dims: dims, Abs: abs})
				cases = append(cases, goldenCase{Compressor: "szx", DType: dt, Dims: dims, Abs: abs})
			}
		}
	}
	// small block size exercises szx block boundaries
	cases = append(cases, goldenCase{
		Compressor: "szx", DType: "float32", Dims: []int{100}, Abs: 1e-4,
		Extra: map[string]any{"szx:block_size": 16},
	})
	return cases
}

// goldenField synthesizes a deterministic test field: smooth waves plus a
// reproducible pseudo-random component and a constant patch (so szx's
// constant-block path and sz3's outlier path are both exercised).
func goldenField(dtype string, dims []int) *pressio.Data {
	n := 1
	for _, d := range dims {
		n *= d
	}
	var t pressio.DType
	switch dtype {
	case "float32":
		t = pressio.DTypeFloat32
	case "float64":
		t = pressio.DTypeFloat64
	default:
		panic("golden: unknown dtype " + dtype)
	}
	d := pressio.New(t, dims...)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		// xorshift64* noise, scaled small against the smooth component
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		noise := float64(state%10007)/10007 - 0.5
		v := math.Sin(float64(i)*0.01) + 0.3*math.Cos(float64(i)*0.003) + 0.05*noise
		if i%97 == 0 {
			v *= 50 // spikes: force outliers at tight bounds
		}
		if n/4 <= i && i < n/4+n/16 {
			v = 0.25 // constant run
		}
		d.Set(i, v)
	}
	return d
}

func runGoldenCase(t *testing.T, c goldenCase) []byte {
	t.Helper()
	comp, err := pressio.GetCompressor(c.Compressor)
	if err != nil {
		t.Fatal(err)
	}
	o := pressio.Options{}
	o.Set(pressio.OptAbs, c.Abs)
	for k, v := range c.Extra {
		o.Set(k, v)
	}
	if err := comp.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	in := goldenField(c.DType, c.Dims)
	out, err := comp.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	// round-trip: errors must respect the bound
	dec := pressio.New(in.DType(), in.Dims()...)
	if err := comp.Decompress(out, dec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Len(); i++ {
		if e := math.Abs(in.At(i) - dec.At(i)); e > c.Abs*(1+1e-12) {
			t.Fatalf("element %d error %g exceeds bound %g", i, e, c.Abs)
		}
	}
	return out.Bytes()
}

func TestGoldenKernels(t *testing.T) {
	cases := goldenCases()
	got := make(map[string]string, len(cases))
	for _, c := range cases {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			sum := sha256.Sum256(runGoldenCase(t, c))
			got[c.name()] = hex.EncodeToString(sum[:])
		})
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixtures missing (run with -update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for name, h := range got {
		if want[name] == "" {
			t.Errorf("%s: no golden entry (run with -update-golden)", name)
			continue
		}
		if want[name] != h {
			t.Errorf("%s: compressed bytes changed:\n  want %s\n  got  %s", name, want[name], h)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: golden entry no longer exercised", name)
		}
	}
}
