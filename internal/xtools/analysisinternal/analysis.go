// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package analysisinternal is a trimmed vendored copy of
// golang.org/x/tools/internal/analysisinternal: only the ReadFile policy
// helpers required by the unitchecker driver are retained.
package analysisinternal

import (
	"fmt"
	"os"
	"slices"

	"repro/internal/xtools/analysis"
)

// MakeReadFile returns a simple implementation of the Pass.ReadFile function.
func MakeReadFile(pass *analysis.Pass) func(filename string) ([]byte, error) {
	return func(filename string) ([]byte, error) {
		if err := CheckReadable(pass, filename); err != nil {
			return nil, err
		}
		return os.ReadFile(filename)
	}
}

// CheckReadable enforces the access policy defined by the ReadFile field of [analysis.Pass].
func CheckReadable(pass *analysis.Pass, filename string) error {
	if slices.Contains(pass.OtherFiles, filename) ||
		slices.Contains(pass.IgnoredFiles, filename) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.Fset.File(f.FileStart).Name() == filename {
			return nil
		}
	}
	return fmt.Errorf("Pass.ReadFile: %s is not among OtherFiles, IgnoredFiles, or names of Files", filename)
}
