// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package typesinternal provides access to internal go/types APIs that are not
// yet exported.
package typesinternal

import (
	"go/types"

	"repro/internal/xtools/aliases"
)

// NameRelativeTo returns a types.Qualifier that qualifies members of
// all packages other than pkg, using only the package name.
// (By contrast, [types.RelativeTo] uses the complete package path,
// which is often excessive.)
//
// If pkg is nil, it is equivalent to [*types.Package.Name].
func NameRelativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if pkg != nil && pkg == other {
			return "" // same package; unqualified
		}
		return other.Name()
	}
}

// A NamedOrAlias is a [types.Type] that is named (as
// defined by the spec) and capable of bearing type parameters: it
// abstracts aliases ([types.Alias]) and defined types
// ([types.Named]).
//
// Every type declared by an explicit "type" declaration is a
// NamedOrAlias. (Built-in type symbols may additionally
// have type [types.Basic], which is not a NamedOrAlias,
// though the spec regards them as "named".)
//
// NamedOrAlias cannot expose the Origin method, because
// [types.Alias.Origin] and [types.Named.Origin] have different
// (covariant) result types; use [Origin] instead.
type NamedOrAlias interface {
	types.Type
	Obj() *types.TypeName
}

// TypeParams is a light shim around t.TypeParams().
// (go/types.Alias).TypeParams requires >= 1.23.
func TypeParams(t NamedOrAlias) *types.TypeParamList {
	switch t := t.(type) {
	case *types.Alias:
		return aliases.TypeParams(t)
	case *types.Named:
		return t.TypeParams()
	}
	return nil
}

// TypeArgs is a light shim around t.TypeArgs().
// (go/types.Alias).TypeArgs requires >= 1.23.
func TypeArgs(t NamedOrAlias) *types.TypeList {
	switch t := t.(type) {
	case *types.Alias:
		return aliases.TypeArgs(t)
	case *types.Named:
		return t.TypeArgs()
	}
	return nil
}

// Origin returns the generic type of the Named or Alias type t if it
// is instantiated, otherwise it returns t.
func Origin(t NamedOrAlias) NamedOrAlias {
	switch t := t.(type) {
	case *types.Alias:
		return aliases.Origin(t)
	case *types.Named:
		return t.Origin()
	}
	return t
}
