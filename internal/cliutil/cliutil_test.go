package cliutil

import "testing"

func TestParseDims(t *testing.T) {
	d, err := ParseDims("32x64x64")
	if err != nil || len(d) != 3 || d[0] != 32 || d[2] != 64 {
		t.Errorf("ParseDims = %v, %v", d, err)
	}
	d, err = ParseDims("100")
	if err != nil || len(d) != 1 || d[0] != 100 {
		t.Errorf("1-D ParseDims = %v, %v", d, err)
	}
	if _, err := ParseDims("4x0x4"); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := ParseDims("axb"); err == nil {
		t.Error("letters accepted")
	}
	if _, err := ParseDims(""); err == nil {
		t.Error("empty accepted")
	}
	d, err = ParseDims(" 8 x 16 ")
	if err != nil || d[0] != 8 || d[1] != 16 {
		t.Errorf("whitespace handling = %v, %v", d, err)
	}
}

func TestParseBounds(t *testing.T) {
	b, err := ParseBounds("1e-6,1e-4")
	if err != nil || len(b) != 2 || b[0] != 1e-6 || b[1] != 1e-4 {
		t.Errorf("ParseBounds = %v, %v", b, err)
	}
	if _, err := ParseBounds("0.1,-2"); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := ParseBounds("abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseBounds("1e-4,0"); err == nil {
		t.Error("zero bound accepted")
	}
}

func TestParseList(t *testing.T) {
	l := ParseList("P, CLOUD ,U")
	if len(l) != 3 || l[0] != "P" || l[1] != "CLOUD" || l[2] != "U" {
		t.Errorf("ParseList = %v", l)
	}
	if got := ParseList(""); len(got) != 0 {
		t.Errorf("empty string should yield no entries: %v", got)
	}
	if got := ParseList("a,,b,"); len(got) != 2 {
		t.Errorf("empty entries should be dropped: %v", got)
	}
}

func TestParseAssignments(t *testing.T) {
	m, err := ParseAssignments("pressio:abs=1e-4, jin:quant_bins=32 ,flag=")
	if err != nil {
		t.Fatal(err)
	}
	if m["pressio:abs"] != "1e-4" || m["jin:quant_bins"] != "32" {
		t.Errorf("ParseAssignments = %v", m)
	}
	if v, ok := m["flag"]; !ok || v != "" {
		t.Errorf("empty value should be kept: %v", m)
	}
	if m, err := ParseAssignments(""); err != nil || len(m) != 0 {
		t.Errorf("empty input: %v, %v", m, err)
	}
	if _, err := ParseAssignments("novalue"); err == nil {
		t.Error("missing '=' should error")
	}
	if _, err := ParseAssignments("=v"); err == nil {
		t.Error("empty key should error")
	}
}
