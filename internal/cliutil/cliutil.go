// Package cliutil holds the small flag-parsing helpers shared by the
// command-line tools (dims like "32x64x64", bound lists like
// "1e-6,1e-4", field lists).
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDims parses "ZxYxX"-style dimension strings into positive ints.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad dims %q (want e.g. 32x64x64)", s)
		}
		dims[i] = n
	}
	return dims, nil
}

// ParseBounds parses a comma-separated list of positive floats.
func ParseBounds(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad bound %q (want e.g. 1e-6,1e-4)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseAssignments parses a comma-separated "key=value" list (e.g.
// "pressio:abs=1e-4,jin:quant_bins=32") into an ordered key→value map.
// Keys must be non-empty; values may be empty strings.
func ParseAssignments(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, value, ok := strings.Cut(part, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("bad assignment %q (want key=value)", part)
		}
		out[key] = strings.TrimSpace(value)
	}
	return out, nil
}

// ParseList splits a comma-separated list, trimming whitespace and
// dropping empty entries.
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
