package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/capacity"
	"repro/internal/gate"
)

// Metrics is what one scenario run measured over its steady window.
type Metrics struct {
	// Requests/Errors count steady-window completions; ErrorRate is
	// Errors/Requests.
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// AchievedQPS is steady completions over the steady wall-clock.
	AchievedQPS float64 `json:"achieved_qps"`
	// Predictions counts the predictions carried by successful steady
	// requests: 1 per single predict, the batch size per batched predict.
	// PredictionQPS is the amortized rate the batch scenarios' speedup
	// claim compares — it diverges from AchievedQPS exactly when batching
	// carries more than one prediction per request. (Both are zero in
	// baselines recorded before batching existed.)
	Predictions   int     `json:"predictions"`
	PredictionQPS float64 `json:"prediction_qps"`
	// Latency quantiles over steady-window requests, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	// CacheHitRate is cluster-wide predict cache hits/(hits+misses)
	// scraped from /statz at the end of the run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MaxRSSBytes is the largest per-node resident set observed.
	MaxRSSBytes int64 `json:"max_rss_bytes"`
}

// SystemResult is one scenario's record in BENCH_system.json: what the
// run was, what it measured, and what the capacity model predicted.
type SystemResult struct {
	Scenario  string  `json:"scenario"`
	Nodes     int     `json:"nodes"`
	TargetQPS float64 `json:"target_qps"`
	SteadyS   float64 `json:"steady_s"`
	Measured  Metrics `json:"measured"`
	// Predicted is the capacity model's output for this scenario;
	// PredictedQPS is its achieved-QPS claim (offered rate clipped at
	// predicted saturation) that conformance checks against Measured.
	Predicted       *capacity.Prediction `json:"predicted,omitempty"`
	PredictedQPS    float64              `json:"predicted_qps"`
	ConformanceBand float64              `json:"conformance_band"`
}

// Document is the committed BENCH_system.json schema: one result per
// scenario name.
type Document struct {
	Note      string                   `json:"note"`
	Scenarios map[string]*SystemResult `json:"scenarios"`
}

// defaultNote explains the file to readers of the committed artifact.
const defaultNote = "System macro-benchmark baseline for `make scenario-check` " +
	"(scenariobench -check fails on regression past the scenario's declared gate " +
	"tolerances, SLO violation, or capacity-model nonconformance). Regenerate " +
	"with `scenariobench -scenario <file> -baseline` on a quiet machine."

// ReadDocument loads a BENCH_system.json.
func ReadDocument(path string) (*Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Scenarios == nil {
		d.Scenarios = map[string]*SystemResult{}
	}
	return &d, nil
}

// WriteDocument persists the document, installing the default note.
func WriteDocument(path string, d *Document) error {
	if d.Note == "" {
		d.Note = defaultNote
	}
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// gateRules projects the scenario's declared tolerances into the shared
// gate engine's rule set — the same engine cmd/benchgate runs the kernel
// baseline on. Achieved QPS regresses downward; latency quantiles and
// error rate regress upward, latency with an absolute slack so
// microsecond-scale baselines don't gate on scheduler noise.
func gateRules(g Gate) []gate.Rule {
	return []gate.Rule{
		{Metric: "achieved_qps", Worse: gate.LowerIsWorse, Tolerance: g.QPSTolerance},
		// baselines recorded before batching carry prediction_qps 0, which
		// LowerIsWorse treats as an always-passing floor — re-baselining
		// tightens the gate automatically
		{Metric: "prediction_qps", Worse: gate.LowerIsWorse, Tolerance: g.QPSTolerance},
		{Metric: "p50_ms", Worse: gate.HigherIsWorse, Tolerance: g.LatencyTolerance, Slack: g.LatencySlackMS},
		{Metric: "p99_ms", Worse: gate.HigherIsWorse, Tolerance: g.LatencyTolerance, Slack: g.LatencySlackMS},
		{Metric: "error_rate", Worse: gate.HigherIsWorse, Tolerance: g.QPSTolerance, Slack: g.ErrorRateSlack},
	}
}

func metricRow(m Metrics) gate.Row {
	return gate.Row{
		"achieved_qps":   m.AchievedQPS,
		"prediction_qps": m.PredictionQPS,
		"p50_ms":         m.P50MS,
		"p99_ms":         m.P99MS,
		"error_rate":     m.ErrorRate,
	}
}

// Compare gates a fresh run against the committed baseline under the
// scenario's declared tolerances.
func Compare(base, cur *SystemResult, g Gate) []gate.Failure {
	return gate.Compare(
		map[string]gate.Row{base.Scenario: metricRow(base.Measured)},
		map[string]gate.Row{cur.Scenario: metricRow(cur.Measured)},
		gateRules(g),
	)
}

// CheckSLO returns one violation string per SLO the measured run broke.
func CheckSLO(r *SystemResult, slo SLO) []string {
	var v []string
	m := r.Measured
	if m.P50MS > slo.MaxP50MS {
		v = append(v, fmt.Sprintf("p50 %.1fms > SLO %.1fms", m.P50MS, slo.MaxP50MS))
	}
	if m.P99MS > slo.MaxP99MS {
		v = append(v, fmt.Sprintf("p99 %.1fms > SLO %.1fms", m.P99MS, slo.MaxP99MS))
	}
	if m.ErrorRate > slo.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f > SLO %.4f", m.ErrorRate, slo.MaxErrorRate))
	}
	if m.MaxRSSBytes > slo.MaxRSSBytes {
		v = append(v, fmt.Sprintf("max RSS %d > SLO %d bytes", m.MaxRSSBytes, slo.MaxRSSBytes))
	}
	sort.Strings(v)
	return v
}

// CheckSpeedup asserts the declared cross-scenario claim: cur's
// prediction throughput is at least MinQPSRatio times vs's, at a p99 no
// worse than MaxP99Ratio times vs's plus the absolute slack. vs is the
// referenced scenario's committed baseline result.
func CheckSpeedup(cur, vs *SystemResult, sp *Speedup) error {
	if vs.Measured.PredictionQPS <= 0 {
		return fmt.Errorf("speedup: baseline %s has no prediction_qps (re-baseline it)", vs.Scenario)
	}
	ratio := cur.Measured.PredictionQPS / vs.Measured.PredictionQPS
	if ratio < sp.MinQPSRatio {
		return fmt.Errorf("speedup: %s at %.1f prediction qps is only %.1fx %s's %.1f (want >= %.1fx)",
			cur.Scenario, cur.Measured.PredictionQPS, ratio, vs.Scenario,
			vs.Measured.PredictionQPS, sp.MinQPSRatio)
	}
	if bound := vs.Measured.P99MS*sp.MaxP99Ratio + sp.P99SlackMS; cur.Measured.P99MS > bound {
		return fmt.Errorf("speedup: %s p99 %.1fms exceeds %.1fms (%s p99 %.1fms x %.2f + %.0fms slack)",
			cur.Scenario, cur.Measured.P99MS, bound, vs.Scenario,
			vs.Measured.P99MS, sp.MaxP99Ratio, sp.P99SlackMS)
	}
	return nil
}

// CheckConformance asserts the measured throughput is within the
// scenario's declared error band of the capacity model's prediction.
func CheckConformance(r *SystemResult) error {
	if r.Predicted == nil {
		return fmt.Errorf("scenario %s: no capacity prediction recorded", r.Scenario)
	}
	return capacity.Conformance("achieved_qps", r.PredictedQPS, r.Measured.AchievedQPS, r.ConformanceBand)
}
