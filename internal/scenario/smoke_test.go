package scenario

// TestScenarioSmoke is the CI macro-benchmark (`make scenario-check`):
// it deploys the committed smoke scenario — real predictd processes
// behind a real router — drives the seeded traffic mix, and gates the
// result three ways: absolute SLOs, run-vs-run against the committed
// BENCH_system.json baseline under the scenario's declared tolerances,
// and conformance of measured throughput against the capacity model.
// `-short` skips (it builds a binary and runs ~10s of wall-clock load);
// SCENARIO_ARTIFACT names a path to write the fresh result document to
// (CI uploads it).

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process macro-benchmark")
	}
	sc := loadSmoke(t)
	ctx := context.Background()

	bin, err := BuildPredictd(ctx, filepath.Join("..", ".."), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, sc, RunConfig{
		Bin:            bin,
		WorkDir:        t.TempDir(),
		CorpusDir:      filepath.Join(t.TempDir(), "corpus"),
		KernelBaseline: filepath.Join("..", "..", "BENCH_kernels.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("measured: %d requests, %d errors, %.1f qps, p50 %.1fms p99 %.1fms, hit rate %.2f, max rss %d MiB",
		res.Measured.Requests, res.Measured.Errors, res.Measured.AchievedQPS,
		res.Measured.P50MS, res.Measured.P99MS, res.Measured.CacheHitRate,
		res.Measured.MaxRSSBytes>>20)
	t.Logf("predicted: %.1f qps achievable of %.1f cluster capacity (band ±%.0f%%)",
		res.PredictedQPS, res.Predicted.ClusterQPS, res.ConformanceBand*100)

	if res.Measured.Requests == 0 {
		t.Fatal("no steady-window requests completed")
	}
	for _, v := range CheckSLO(res, sc.SLO) {
		t.Errorf("SLO: %s", v)
	}
	if err := CheckConformance(res); err != nil {
		t.Errorf("capacity conformance: %v", err)
	}

	// gate against the committed system baseline under the scenario's
	// declared tolerances — the macro equivalent of `make bench-check`
	doc, err := ReadDocument(filepath.Join("..", "..", "BENCH_system.json"))
	if err != nil {
		t.Fatalf("committed BENCH_system.json: %v (run `make scenario-baseline`)", err)
	}
	base := doc.Scenarios[sc.Name]
	if base == nil {
		t.Fatalf("BENCH_system.json has no %q baseline", sc.Name)
	}
	for _, f := range Compare(base, res, sc.Gate) {
		t.Errorf("gate: %s", f.String())
	}

	if artifact := os.Getenv("SCENARIO_ARTIFACT"); artifact != "" {
		out := &Document{Scenarios: map[string]*SystemResult{sc.Name: res}}
		if err := WriteDocument(artifact, out); err != nil {
			t.Errorf("writing %s: %v", artifact, err)
		}
	}
}
