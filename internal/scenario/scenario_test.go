package scenario

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capacity"
)

func loadSmoke(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Load(filepath.Join("..", "..", "scenarios", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestCommittedScenariosLoad(t *testing.T) {
	for _, name := range []string{"smoke.json", "full.json", "batch.json", "batch-single.json"} {
		sc, err := Load(filepath.Join("..", "..", "scenarios", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// every committed scenario must also produce a live prediction
		// from the committed kernel baseline
		if _, err := PredictOnly(sc, filepath.Join("..", "..", "BENCH_kernels.json")); err != nil {
			t.Errorf("%s: capacity prediction: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := map[string]func(*Scenario){
		"no name":             func(s *Scenario) { s.Name = "" },
		"single node":         func(s *Scenario) { s.Topology.Nodes = 1 },
		"unknown field":       func(s *Scenario) { s.Corpus.Fields = []string{"BOGUS"} },
		"zero steps":          func(s *Scenario) { s.Corpus.Steps = 0 },
		"bad dims":            func(s *Scenario) { s.Corpus.Dims = []int{8, 8} },
		"mix not 100":         func(s *Scenario) { s.Traffic.PredictPct = 50 },
		"zero qps":            func(s *Scenario) { s.Traffic.TargetQPS = 0 },
		"zero steady":         func(s *Scenario) { s.Traffic.SteadyS = 0 },
		"fit without bounds":  func(s *Scenario) { s.Traffic.Bounds = nil },
		"inval without keys":  func(s *Scenario) { s.Traffic.InvalidateKeys = nil },
		"zero p99 slo":        func(s *Scenario) { s.SLO.MaxP99MS = 0 },
		"zero tolerance":      func(s *Scenario) { s.Gate.QPSTolerance = 0 },
		"effective > nodes":   func(s *Scenario) { s.Capacity.EffectiveNodes = 99 },
		"zero band":           func(s *Scenario) { s.Capacity.ErrorBand = 0 },
		"batch without sizes": func(s *Scenario) { s.Traffic.BatchPct = 50 },
		"batch pct over 100":  func(s *Scenario) { s.Traffic.BatchPct = 101; s.Traffic.BatchSizes = []int{4} },
		"oversized batch":     func(s *Scenario) { s.Traffic.BatchPct = 50; s.Traffic.BatchSizes = []int{4097} },
		"speedup vs self":     func(s *Scenario) { s.Speedup = &Speedup{Vs: s.Name, MinQPSRatio: 10, MaxP99Ratio: 1} },
		"speedup zero ratio":  func(s *Scenario) { s.Speedup = &Speedup{Vs: "other", MaxP99Ratio: 1} },
	}
	for name, mutate := range mutations {
		sc := loadSmoke(t)
		mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCapacitySpecMapping(t *testing.T) {
	sc := loadSmoke(t)
	spec := sc.CapacitySpec()
	if spec.Elements != 512 {
		t.Errorf("elements = %d, want 8*8*8", spec.Elements)
	}
	if spec.FitCells != sc.Traffic.FitSteps*len(sc.Traffic.Bounds) {
		t.Errorf("fit_cells = %d", spec.FitCells)
	}
	if spec.Nodes != sc.Capacity.EffectiveNodes {
		t.Errorf("nodes = %d, want effective %d", spec.Nodes, sc.Capacity.EffectiveNodes)
	}
	if err := spec.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	sc := loadSmoke(t)
	a := Schedule(sc.Traffic, sc.Corpus.Cells())
	b := Schedule(sc.Traffic, sc.Corpus.Cells())
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("two schedules of the same traffic differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScheduleShape(t *testing.T) {
	sc := loadSmoke(t)
	ops := Schedule(sc.Traffic, sc.Corpus.Cells())
	total := sc.Traffic.WarmupS + sc.Traffic.SteadyS
	expected := sc.Traffic.TargetQPS * total
	if n := float64(len(ops)); n < expected*0.7 || n > expected*1.3 {
		t.Errorf("%d ops for ~%.0f expected arrivals", len(ops), expected)
	}
	kinds := map[OpKind]int{}
	steady := 0
	for i, op := range ops {
		kinds[op.Kind]++
		if op.Steady {
			steady++
		}
		if op.Cell < 0 || op.Cell >= sc.Corpus.Cells() {
			t.Fatalf("op %d cell %d out of corpus range", i, op.Cell)
		}
		if i > 0 && op.At < ops[i-1].At {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	if kinds[OpPredict] == 0 || steady == 0 {
		t.Errorf("degenerate schedule: kinds=%v steady=%d", kinds, steady)
	}
	// the mix percentages should roughly hold
	if frac := float64(kinds[OpPredict]) / float64(len(ops)); frac < 0.75 {
		t.Errorf("predict fraction %.2f for a 90%% mix", frac)
	}
}

func baselineResult() *SystemResult {
	return &SystemResult{
		Scenario:  "smoke",
		Nodes:     2,
		TargetQPS: 12,
		SteadyS:   6,
		Measured: Metrics{
			Requests:     72,
			AchievedQPS:  12,
			P50MS:        20,
			P90MS:        45,
			P99MS:        80,
			CacheHitRate: 0.9,
			MaxRSSBytes:  200 << 20,
		},
		Predicted:       &capacity.Prediction{ClusterQPS: 480},
		PredictedQPS:    12,
		ConformanceBand: 0.25,
	}
}

// TestCompareGatesInjectedRegressions is the negative control the
// acceptance criteria demand: a synthetic >10% QPS drop or a p99 blowout
// past tolerance+slack must fail the gate, while a clean run passes.
func TestCompareGatesInjectedRegressions(t *testing.T) {
	g := Gate{QPSTolerance: 0.10, LatencyTolerance: 0.10, LatencySlackMS: 5, ErrorRateSlack: 0.02}
	base := baselineResult()

	clean := baselineResult()
	clean.Measured.AchievedQPS *= 0.95 // within 10%
	clean.Measured.P99MS *= 1.05
	if fails := Compare(base, clean, g); len(fails) != 0 {
		t.Errorf("clean run failed the gate: %v", fails)
	}

	slowQPS := baselineResult()
	slowQPS.Measured.AchievedQPS *= 0.85 // 15% drop
	if fails := Compare(base, slowQPS, g); len(fails) == 0 {
		t.Error("15% QPS drop passed the gate")
	} else if !strings.Contains(fails[0].String(), "achieved_qps") {
		t.Errorf("wrong failure: %v", fails[0])
	}

	slowTail := baselineResult()
	slowTail.Measured.P99MS = base.Measured.P99MS*1.15 + 10 // past tolerance AND slack
	if fails := Compare(base, slowTail, g); len(fails) == 0 {
		t.Error("15% p99 regression passed the gate")
	}

	flaky := baselineResult()
	flaky.Measured.ErrorRate = 0.10
	if fails := Compare(base, flaky, g); len(fails) == 0 {
		t.Error("10% error rate passed the gate")
	}
}

func TestCompareLatencySlackAbsorbsNoise(t *testing.T) {
	// cross-machine latency noise: 2× slower but within the absolute
	// slack must pass when the scenario declares a loose latency gate
	g := Gate{QPSTolerance: 0.10, LatencyTolerance: 1.0, LatencySlackMS: 250, ErrorRateSlack: 0.02}
	base := baselineResult()
	noisy := baselineResult()
	noisy.Measured.P50MS, noisy.Measured.P99MS = 39, 155
	if fails := Compare(base, noisy, g); len(fails) != 0 {
		t.Errorf("latency noise failed a loose gate: %v", fails)
	}
}

func TestCheckSLO(t *testing.T) {
	sc := loadSmoke(t)
	ok := baselineResult()
	if v := CheckSLO(ok, sc.SLO); len(v) != 0 {
		t.Errorf("healthy run violates SLO: %v", v)
	}
	bad := baselineResult()
	bad.Measured.P99MS = sc.SLO.MaxP99MS + 1
	bad.Measured.ErrorRate = sc.SLO.MaxErrorRate + 0.1
	bad.Measured.MaxRSSBytes = sc.SLO.MaxRSSBytes + 1
	if v := CheckSLO(bad, sc.SLO); len(v) != 3 {
		t.Errorf("expected 3 violations, got %v", v)
	}
}

func TestCheckConformance(t *testing.T) {
	r := baselineResult()
	if err := CheckConformance(r); err != nil {
		t.Errorf("exact match fails conformance: %v", err)
	}
	r.Measured.AchievedQPS = r.PredictedQPS * 0.5
	if err := CheckConformance(r); err == nil {
		t.Error("2× miss passes a 25% band")
	}
	r.Predicted = nil
	if err := CheckConformance(r); err == nil {
		t.Error("missing prediction passes conformance")
	}
}

func loadBatch(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Load(filepath.Join("..", "..", "scenarios", "batch.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestScheduleBatchMix pins the batch draw's shape and determinism: a
// 100% batch_pct mix batches every predict with a size from the declared
// distribution, and two schedules of the same traffic are identical
// including the batch draws.
func TestScheduleBatchMix(t *testing.T) {
	sc := loadBatch(t)
	a := Schedule(sc.Traffic, sc.Corpus.Cells())
	b := Schedule(sc.Traffic, sc.Corpus.Cells())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules: %d vs %d ops", len(a), len(b))
	}
	sizes := map[int]bool{}
	for _, n := range sc.Traffic.BatchSizes {
		sizes[n] = true
	}
	preds := 0
	for i, op := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical schedules: %+v vs %+v", i, a[i], b[i])
		}
		if op.Kind == OpPredict && !sizes[op.Batch] {
			t.Fatalf("op %d: predict with batch %d outside the declared distribution", i, op.Batch)
		}
		preds += op.Predictions()
	}
	// a fully-batched mix must amortize: many predictions per arrival
	if preds < len(a)*sc.Traffic.BatchSizes[0] {
		t.Errorf("%d predictions over %d ops — batching not applied", preds, len(a))
	}
	// and the single-mix smoke schedule must stay batch-free
	for _, op := range Schedule(loadSmoke(t).Traffic, 8) {
		if op.Batch != 0 {
			t.Fatalf("smoke schedule drew a batch op: %+v", op)
		}
	}
}

// TestCheckSpeedup pins the cross-scenario claim arithmetic.
func TestCheckSpeedup(t *testing.T) {
	sp := &Speedup{Vs: "batch-single", MinQPSRatio: 10, MaxP99Ratio: 1.0, P99SlackMS: 50}
	vs := baselineResult()
	vs.Scenario = "batch-single"
	vs.Measured.PredictionQPS = 30
	vs.Measured.P99MS = 40

	fast := baselineResult()
	fast.Scenario = "batch"
	fast.Measured.PredictionQPS = 480
	fast.Measured.P99MS = 60 // worse, but within ratio+slack
	if err := CheckSpeedup(fast, vs, sp); err != nil {
		t.Errorf("16x at tolerable p99 fails: %v", err)
	}

	slow := baselineResult()
	slow.Measured.PredictionQPS = 200 // only 6.7x
	slow.Measured.P99MS = 40
	if err := CheckSpeedup(slow, vs, sp); err == nil {
		t.Error("6.7x passes a 10x gate")
	}

	laggy := baselineResult()
	laggy.Measured.PredictionQPS = 480
	laggy.Measured.P99MS = 200 // past 40*1.0+50
	if err := CheckSpeedup(laggy, vs, sp); err == nil {
		t.Error("p99 blowout passes the speedup gate")
	}

	stale := baselineResult()
	stale.Measured.PredictionQPS = 480
	old := baselineResult()
	old.Measured.PredictionQPS = 0 // pre-batching baseline
	if err := CheckSpeedup(stale, old, sp); err == nil {
		t.Error("zero-prediction baseline should demand a re-baseline, not divide by zero")
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_system.json")
	d := &Document{Scenarios: map[string]*SystemResult{"smoke": baselineResult()}}
	if err := WriteDocument(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note == "" {
		t.Error("default note not installed")
	}
	r := got.Scenarios["smoke"]
	if r == nil || r.Measured.AchievedQPS != 12 || r.Predicted == nil {
		t.Errorf("round trip lost data: %+v", r)
	}
}
