package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// now is the injectable wall clock (replay-sensitive code never reads
// time.Now directly; see pressiovet/detrand).
var now = time.Now

// BuildPredictd compiles cmd/predictd (race-enabled, so the deployed
// daemons run under the detector) into dir and returns the binary path.
// repoRoot is the module root the build runs from.
func BuildPredictd(ctx context.Context, repoRoot, dir string) (string, error) {
	bin := filepath.Join(dir, "predictd")
	cmd := exec.CommandContext(ctx, "go", "build", "-race", "-o", bin, "repro/cmd/predictd")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building predictd: %v\n%s", err, out)
	}
	return bin, nil
}

// freePorts reserves n distinct listen ports by binding and releasing
// them (peers must be named before any process starts).
func freePorts(n int) ([]int, error) {
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	defer func() {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
	}()
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	return ports, nil
}

// Proc is one deployed predictd (node or router) process.
type Proc struct {
	Name string
	Base string // http://127.0.0.1:port
	Dir  string
	args []string
	bin  string
	log  *os.File
	cmd  *exec.Cmd
	done chan error
}

func (p *Proc) start() error {
	os.Remove(filepath.Join(p.Dir, "ready"))
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = p.log
	cmd.Stderr = p.log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %v", p.Name, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait(); close(done) }()
	p.cmd, p.done = cmd, done
	return nil
}

// kill SIGKILLs the process and waits for it to reap.
func (p *Proc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Kill()
	select {
	case <-p.done:
		return nil
	case <-time.After(10 * time.Second):
		return fmt.Errorf("%s did not die after SIGKILL", p.Name)
	}
}

// Log returns the process's captured stdout+stderr so far.
func (p *Proc) Log() string {
	raw, err := os.ReadFile(filepath.Join(p.Dir, "log"))
	if err != nil {
		return ""
	}
	return string(raw)
}

// Harness is a deployed scenario cluster: Topology.Nodes predictd
// replicas plus one router, all real OS processes.
type Harness struct {
	Nodes  []*Proc
	Router *Proc
	client *http.Client
}

// Deploy boots the scenario topology under workDir using a prebuilt
// predictd binary and waits until every node is healthy and the router
// sees them all live. On any error the partial deployment is torn down.
func Deploy(ctx context.Context, bin, workDir string, topo Topology) (*Harness, error) {
	ports, err := freePorts(topo.Nodes + 1)
	if err != nil {
		return nil, err
	}
	names := make([]string, topo.Nodes)
	bases := make([]string, topo.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		bases[i] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
	}

	h := &Harness{
		// the client timeout is the hang detector: a wedged router fails
		// the run here, not at a suite deadline
		client: &http.Client{Timeout: 20 * time.Second},
	}
	fail := func(err error) (*Harness, error) {
		h.Close()
		return nil, err
	}
	for i, name := range names {
		dir := filepath.Join(workDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(err)
		}
		logf, err := os.Create(filepath.Join(dir, "log"))
		if err != nil {
			return fail(err)
		}
		var peers []string
		for j, o := range names {
			if o != name {
				peers = append(peers, o+"="+bases[j])
			}
		}
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-store", filepath.Join(dir, "store"),
			"-node", name,
			"-peers", strings.Join(peers, ","),
			"-repl-dir", filepath.Join(dir, "repl"),
			"-poll-interval", fmt.Sprintf("%dms", topo.PollIntervalMS),
			"-ack-timeout", "3s",
			// every deployed node gets a spill dir, so scenario load always
			// exercises the dataset cache's mmap disk tier, not just the
			// memory tier the unit tests cover
			"-data-spill", filepath.Join(dir, "spill"),
			"-ready-file", filepath.Join(dir, "ready"),
		}
		p := &Proc{Name: name, Base: bases[i], Dir: dir, args: args, bin: bin, log: logf}
		h.Nodes = append(h.Nodes, p)
		if err := p.start(); err != nil {
			return fail(err)
		}
	}

	rdir := filepath.Join(workDir, "router")
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		return fail(err)
	}
	rlog, err := os.Create(filepath.Join(rdir, "log"))
	if err != nil {
		return fail(err)
	}
	var members []string
	for i, name := range names {
		members = append(members, name+"="+bases[i])
	}
	h.Router = &Proc{
		Name: "router", Base: fmt.Sprintf("http://127.0.0.1:%d", ports[topo.Nodes]), Dir: rdir,
		args: []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[topo.Nodes]),
			"-router",
			"-members", strings.Join(members, ","),
			"-probe-interval", fmt.Sprintf("%dms", topo.ProbeIntervalMS),
			"-ready-file", filepath.Join(rdir, "ready"),
		},
		bin: bin, log: rlog,
	}
	if err := h.Router.start(); err != nil {
		return fail(err)
	}

	for _, p := range h.Nodes {
		if err := h.waitHealthy(ctx, p.Base, 30*time.Second); err != nil {
			return fail(err)
		}
	}
	if err := h.waitLive(ctx, topo.Nodes, 30*time.Second); err != nil {
		return fail(err)
	}
	return h, nil
}

// Close kills every process. Safe on a partially-deployed harness.
func (h *Harness) Close() error {
	var firstErr error
	if h.Router != nil {
		if err := h.Router.kill(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range h.Nodes {
		if err := p.kill(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range append(h.Nodes, h.Router) {
		if p != nil && p.log != nil {
			p.log.Close()
		}
	}
	return firstErr
}

func (h *Harness) waitHealthy(ctx context.Context, base string, within time.Duration) error {
	deadline := now().Add(within)
	for now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := h.client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s never became healthy", base)
}

// waitLive blocks until the router reports n live members.
func (h *Harness) waitLive(ctx context.Context, n int, within time.Duration) error {
	deadline := now().Add(within)
	for now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		var st cluster.RouterStatus
		if h.getJSON(h.Router.Base+"/v1/router/status", &st) == nil {
			live := 0
			for _, state := range st.Members {
				if state == "closed" {
					live++
				}
			}
			if live == n {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("router never saw %d live members", n)
}

func (h *Harness) getJSON(url string, v any) error {
	resp, err := h.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Statz scrapes every node's /statz, keyed by node name.
func (h *Harness) Statz(ctx context.Context) (map[string]serve.Statz, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]serve.Statz, len(h.Nodes))
	for _, p := range h.Nodes {
		var st serve.Statz
		if err := h.getJSON(p.Base+"/statz", &st); err != nil {
			return nil, fmt.Errorf("scraping %s: %w", p.Name, err)
		}
		out[p.Name] = st
	}
	return out, nil
}
