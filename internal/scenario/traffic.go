package scenario

import (
	"math/rand"
	"time"
)

// OpKind is one traffic operation type.
type OpKind int

const (
	OpPredict OpKind = iota
	OpFit
	OpInvalidate
)

func (k OpKind) String() string {
	switch k {
	case OpPredict:
		return "predict"
	case OpFit:
		return "fit"
	case OpInvalidate:
		return "invalidate"
	}
	return "unknown"
}

// Op is one scheduled request: an arrival offset from the run start, the
// operation kind, and the deterministic inputs that shape its body.
type Op struct {
	// At is the arrival offset from the start of the run.
	At time.Duration
	// Kind selects the endpoint.
	Kind OpKind
	// Cell indexes the corpus predict target ((field, step) pair).
	Cell int
	// Seq is a per-kind counter: distinct fit sequences produce distinct
	// training specs (distinct opthash, no dedup collapse).
	Seq int
	// Batch, when positive, issues this predict as one
	// /v1/predict/batch request of Batch cells starting at Cell
	// (wrapping around the corpus). Zero is a single /v1/predict.
	Batch int
	// Steady marks ops in the measured window (past warmup).
	Steady bool
}

// Predictions is how many predictions the op carries: Batch for a
// batched predict, 1 for a single predict, 0 otherwise.
func (o Op) Predictions() int {
	if o.Kind != OpPredict {
		return 0
	}
	if o.Batch > 0 {
		return o.Batch
	}
	return 1
}

// Schedule expands the traffic declaration into the full seeded arrival
// plan: Poisson arrivals at TargetQPS over warmup+steady, each op's kind
// drawn from the mix and its predict cell drawn uniformly from the
// corpus. Everything comes from one seeded source, so the same scenario
// offers the identical byte-level request sequence on every run — the
// property that makes run-vs-run comparison meaningful.
func Schedule(t Traffic, cells int) []Op {
	rng := rand.New(rand.NewSource(t.Seed))
	total := time.Duration((t.WarmupS + t.SteadyS) * float64(time.Second))
	warmup := time.Duration(t.WarmupS * float64(time.Second))
	meanGap := float64(time.Second) / t.TargetQPS

	var ops []Op
	seq := map[OpKind]int{}
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() * meanGap)
		if at >= total {
			break
		}
		kind := OpPredict
		switch p := rng.Float64() * 100; {
		case p < t.PredictPct:
			kind = OpPredict
		case p < t.PredictPct+t.FitPct:
			kind = OpFit
		default:
			kind = OpInvalidate
		}
		cell := 0
		if cells > 0 {
			cell = rng.Intn(cells)
		}
		// a predict arrival may be a batched one: same Poisson slot, one
		// request, BatchSizes-many predictions (both draws are seeded, so
		// the batch mix replays byte-identically too)
		batch := 0
		if kind == OpPredict && t.BatchPct > 0 && len(t.BatchSizes) > 0 &&
			rng.Float64()*100 < t.BatchPct {
			batch = t.BatchSizes[rng.Intn(len(t.BatchSizes))]
		}
		ops = append(ops, Op{
			At:     at,
			Kind:   kind,
			Cell:   cell,
			Seq:    seq[kind],
			Batch:  batch,
			Steady: at >= warmup,
		})
		seq[kind]++
	}
	return ops
}
