package scenario

// TestScenarioBatch is the macro-benchmark behind the batch hot path's
// ≥10x claim (`make scenario-check`): it runs the committed batch
// scenario and its single-request twin back-to-back on the same deployed
// topology shape — same corpus, same scheme, same bounds — and asserts
// the batched mix clears at least the declared multiple of the single
// mix's prediction throughput at no worse p99. Both runs also gate the
// usual three ways (SLOs, committed BENCH_system.json baseline,
// capacity-model conformance), so the speedup can't be bought by letting
// either side degrade.

import (
	"context"
	"path/filepath"
	"testing"
)

func TestScenarioBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process macro-benchmark")
	}
	single, err := Load(filepath.Join("..", "..", "scenarios", "batch-single.json"))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Load(filepath.Join("..", "..", "scenarios", "batch.json"))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Speedup == nil || batch.Speedup.Vs != single.Name {
		t.Fatalf("batch scenario must declare a speedup gate vs %q", single.Name)
	}

	ctx := context.Background()
	bin, err := BuildPredictd(ctx, filepath.Join("..", ".."), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	kernels := filepath.Join("..", "..", "BENCH_kernels.json")
	// the two scenarios declare the identical corpus spec, so one
	// manifest-verified corpus dir serves both runs
	corpus := filepath.Join(t.TempDir(), "corpus")

	doc, err := ReadDocument(filepath.Join("..", "..", "BENCH_system.json"))
	if err != nil {
		t.Fatalf("committed BENCH_system.json: %v (run `make scenario-baseline`)", err)
	}

	results := map[string]*SystemResult{}
	for _, sc := range []*Scenario{single, batch} {
		res, err := Run(ctx, sc, RunConfig{
			Bin:            bin,
			WorkDir:        t.TempDir(),
			CorpusDir:      corpus,
			KernelBaseline: kernels,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		results[sc.Name] = res
		t.Logf("%s: %d requests (%d predictions), %.1f req qps / %.1f prediction qps, p50 %.1fms p99 %.1fms, %d errors",
			sc.Name, res.Measured.Requests, res.Measured.Predictions,
			res.Measured.AchievedQPS, res.Measured.PredictionQPS,
			res.Measured.P50MS, res.Measured.P99MS, res.Measured.Errors)

		if res.Measured.Requests == 0 {
			t.Fatalf("%s: no steady-window requests completed", sc.Name)
		}
		for _, v := range CheckSLO(res, sc.SLO) {
			t.Errorf("%s SLO: %s", sc.Name, v)
		}
		if err := CheckConformance(res); err != nil {
			t.Errorf("%s conformance: %v", sc.Name, err)
		}
		base := doc.Scenarios[sc.Name]
		if base == nil {
			t.Fatalf("BENCH_system.json has no %q baseline (run `make scenario-baseline SCENARIO=scenarios/%s.json`)", sc.Name, sc.Name)
		}
		for _, f := range Compare(base, res, sc.Gate) {
			t.Errorf("%s gate: %s", sc.Name, f.String())
		}
	}

	// the tentpole claim: fresh-vs-fresh from the same machine and the
	// same minutes, so the ratio is not an artifact of stale baselines
	if err := CheckSpeedup(results[batch.Name], results[single.Name], batch.Speedup); err != nil {
		t.Errorf("speedup: %v", err)
	}
}
