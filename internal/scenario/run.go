package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/capacity"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/stats"
)

// RunConfig locates the pieces a scenario run needs on disk.
type RunConfig struct {
	// Bin is the prebuilt predictd binary (see BuildPredictd).
	Bin string
	// WorkDir is scratch space for node stores, logs, and ready files.
	WorkDir string
	// CorpusDir is where the corpus lives; a manifest-verified corpus
	// already there (same spec) is reused across runs.
	CorpusDir string
	// KernelBaseline is the BENCH_kernels.json the capacity model reads.
	KernelBaseline string
}

// PredictOnly evaluates the capacity model for a scenario without
// deploying anything: the -predict-only flow and the prediction half of
// every full run.
func PredictOnly(sc *Scenario, kernelBaseline string) (*SystemResult, error) {
	costs, err := capacity.CostsFromBaseline(kernelBaseline)
	if err != nil {
		return nil, err
	}
	pred, err := capacity.Predict(costs, sc.CapacitySpec())
	if err != nil {
		return nil, err
	}
	return &SystemResult{
		Scenario:        sc.Name,
		Nodes:           sc.Topology.Nodes,
		TargetQPS:       sc.Traffic.TargetQPS,
		SteadyS:         sc.Traffic.SteadyS,
		Predicted:       pred,
		PredictedQPS:    pred.AchievedQPS(sc.Traffic.TargetQPS),
		ConformanceBand: sc.Capacity.ErrorBand,
	}, nil
}

// Run executes one full scenario: corpus, deployment, priming fit,
// seeded open-loop load, /statz scrape. The returned result carries both
// the measured steady-window metrics and the capacity model's
// prediction; gating against baseline/SLO/conformance is the caller's
// choice (cmd/scenariobench, the smoke test).
func Run(ctx context.Context, sc *Scenario, cfg RunConfig) (*SystemResult, error) {
	result, err := PredictOnly(sc, cfg.KernelBaseline)
	if err != nil {
		return nil, err
	}
	if _, _, err := dataset.BuildCorpus(cfg.CorpusDir, sc.Corpus.Fields, sc.Corpus.Steps, sc.Corpus.Dims, sc.Corpus.Seed); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}

	h, err := Deploy(ctx, cfg.Bin, cfg.WorkDir, sc.Topology)
	if err != nil {
		return nil, err
	}
	defer h.Close()

	d := &driver{sc: sc, h: h}
	if err := d.prime(ctx); err != nil {
		return nil, fmt.Errorf("priming fit: %w\nrouter log:\n%s", err, h.Router.Log())
	}
	if err := d.drive(ctx); err != nil {
		return nil, err
	}

	m, err := d.metrics(ctx)
	if err != nil {
		return nil, err
	}
	result.Measured = *m
	return result, nil
}

// driver issues the scheduled traffic and records steady-window samples.
type driver struct {
	sc *Scenario
	h  *Harness

	mu          sync.Mutex
	latencies   []float64 // steady-window request latencies, ms
	requests    int
	errors      int
	predictions int // predictions carried by successful steady requests
}

func (d *driver) post(ctx context.Context, path string, body any) (int, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		d.h.Router.Base+path, bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.h.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out, nil
}

// fitBounds gives fit sequence seq its own distinct training bounds
// (distinct opthash — no dedup collapse between scheduled fits or with
// the priming fit) while keeping the declared cell count.
func (d *driver) fitBounds(seq int) []float64 {
	b := append([]float64(nil), d.sc.Traffic.Bounds...)
	b[len(b)-1] *= 1 + 1e-3*float64(seq+1)
	return b
}

func (d *driver) fitRequest(bounds []float64) serve.FitRequest {
	t := d.sc.Traffic
	return serve.FitRequest{
		Scheme:     t.Scheme,
		Compressor: t.Compressor,
		Training: serve.TrainingSpec{
			Fields: d.sc.Corpus.Fields[:1],
			Steps:  t.FitSteps,
			Dims:   d.sc.Corpus.Dims,
			Bounds: bounds,
		},
	}
}

// prime fits the scheme's model once and waits for it, so predicts have
// a model to serve from before the measured window opens.
func (d *driver) prime(ctx context.Context) error {
	status, raw, err := d.post(ctx, "/v1/fit", d.fitRequest(d.sc.Traffic.Bounds))
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("fit not accepted: HTTP %d: %s", status, raw)
	}
	var fr serve.FitResponse
	if err := json.Unmarshal(raw, &fr); err != nil || fr.JobID == "" {
		return fmt.Errorf("202 without job_id: %s", raw)
	}
	deadline := now().Add(90 * time.Second)
	for now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		var jv struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if d.h.getJSON(d.h.Router.Base+"/v1/jobs/"+fr.JobID, &jv) == nil {
			switch jv.Status {
			case "done":
				return nil
			case "failed":
				return fmt.Errorf("priming job failed: %s", jv.Error)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("priming job %s never finished", fr.JobID)
}

// cellRef resolves a corpus cell index to its (field, step) pair.
func (d *driver) cellRef(cell int) (string, int) {
	return d.sc.Corpus.Fields[cell/d.sc.Corpus.Steps], cell % d.sc.Corpus.Steps
}

// batchRequest builds one columnar /v1/predict/batch body covering
// op.Batch cells starting at op.Cell, wrapping around the corpus.
func (d *driver) batchRequest(op Op) serve.BatchRequest {
	t := d.sc.Traffic
	req := serve.BatchRequest{
		Scheme:     t.Scheme,
		Compressor: t.Compressor,
		Options:    map[string]any{"pressio:abs": t.Bounds[0]},
		Dims:       d.sc.Corpus.Dims,
	}
	cells := d.sc.Corpus.Cells()
	for i := 0; i < op.Batch; i++ {
		field, step := d.cellRef((op.Cell + i) % cells)
		req.Fields = append(req.Fields, field)
		req.Steps = append(req.Steps, step)
	}
	return req
}

// issue sends one scheduled op and records its outcome when steady.
// Every 2xx is a success; anything else (including transport errors —
// the 20s client timeout is the hang detector) is an error sample.
func (d *driver) issue(ctx context.Context, op Op) {
	t := d.sc.Traffic
	var path string
	var body any
	switch {
	case op.Kind == OpPredict && op.Batch > 0:
		path, body = "/v1/predict/batch", d.batchRequest(op)
	case op.Kind == OpPredict:
		field, step := d.cellRef(op.Cell)
		path, body = "/v1/predict", serve.PredictRequest{
			Scheme:     t.Scheme,
			Compressor: t.Compressor,
			Options:    map[string]any{"pressio:abs": t.Bounds[0]},
			Data:       &serve.DataRef{Field: field, Step: step, Dims: d.sc.Corpus.Dims},
		}
	case op.Kind == OpFit:
		path, body = "/v1/fit", d.fitRequest(d.fitBounds(op.Seq))
	case op.Kind == OpInvalidate:
		path, body = "/v1/invalidate", serve.InvalidateRequest{Keys: t.InvalidateKeys}
	}

	start := now()
	status, _, err := d.post(ctx, path, body)
	elapsedMS := float64(now().Sub(start)) / float64(time.Millisecond)

	if !op.Steady {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.requests++
	d.latencies = append(d.latencies, elapsedMS)
	if err != nil || status < 200 || status >= 300 {
		d.errors++
	} else {
		d.predictions += op.Predictions()
	}
}

// drive plays the seeded schedule open-loop: each op fires at its
// arrival offset regardless of whether earlier ops returned.
func (d *driver) drive(ctx context.Context) error {
	schedule := Schedule(d.sc.Traffic, d.sc.Corpus.Cells())
	if len(schedule) == 0 {
		return fmt.Errorf("traffic schedule is empty")
	}
	var wg sync.WaitGroup
	start := now()
	for _, op := range schedule {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return err
		}
		if wait := start.Add(op.At).Sub(now()); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(op Op) {
			defer wg.Done()
			d.issue(ctx, op)
		}(op)
	}
	wg.Wait()
	return nil
}

// metrics folds the recorded samples and a final /statz scrape into the
// measured steady-window metrics.
func (d *driver) metrics(ctx context.Context) (*Metrics, error) {
	d.mu.Lock()
	m := &Metrics{
		Requests:      d.requests,
		Errors:        d.errors,
		Predictions:   d.predictions,
		AchievedQPS:   float64(d.requests-d.errors) / d.sc.Traffic.SteadyS,
		PredictionQPS: float64(d.predictions) / d.sc.Traffic.SteadyS,
		P50MS:         stats.Quantile(d.latencies, 0.50),
		P90MS:         stats.Quantile(d.latencies, 0.90),
		P99MS:         stats.Quantile(d.latencies, 0.99),
	}
	if d.requests > 0 {
		m.ErrorRate = float64(d.errors) / float64(d.requests)
	}
	d.mu.Unlock()

	sts, err := d.h.Statz(ctx)
	if err != nil {
		return nil, err
	}
	var hits, misses uint64
	for _, st := range sts {
		// the four /statz buckets partition predictions exactly one way
		// each: whole-request LRU, cell cache (single + batch items),
		// coalesced windows, and computed misses
		hits += st.CacheHits + st.CellHits + st.CoalescedHits
		misses += st.CacheMisses
		if st.Process.RSSBytes > m.MaxRSSBytes {
			m.MaxRSSBytes = st.Process.RSSBytes
		}
	}
	if hits+misses > 0 {
		m.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return m, nil
}
