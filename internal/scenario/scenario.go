// Package scenario is the declarative macro-benchmark harness: a
// scenario file declares a cluster topology, a generated corpus, a
// seeded traffic mix, and SLOs; the harness deploys real predictd
// processes (the same multi-process machinery the cluster kill tests
// use), drives open-loop load through the router, scrapes /statz, and
// emits a SystemResult that gates the whole serving stack — measured
// throughput and latency against a committed BENCH_system.json baseline
// (via the shared internal/gate engine), absolute SLOs, and conformance
// against the analytical capacity model in internal/capacity.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/capacity"
	"repro/internal/hurricane"
	"repro/internal/serve"
)

// Topology declares the deployment: predictd replicas behind one router.
type Topology struct {
	// Nodes is the predictd replica count (the router is extra).
	Nodes int `json:"nodes"`
	// ProbeIntervalMS is the router health-probe cadence.
	ProbeIntervalMS int `json:"probe_interval_ms"`
	// PollIntervalMS is the nodes' replication poll cadence.
	PollIntervalMS int `json:"poll_interval_ms"`
}

// Corpus declares the generated hurricane corpus the traffic references:
// fields × steps at dims under a seed, materialized by
// dataset.BuildCorpus with a manifest so reruns reuse it byte-verified.
type Corpus struct {
	Fields []string `json:"fields"`
	Steps  int      `json:"steps"`
	Dims   []int    `json:"dims"`
	Seed   uint64   `json:"seed"`
}

// Cells is the number of distinct (field, step) predict targets.
func (c Corpus) Cells() int { return len(c.Fields) * c.Steps }

// Elements is the per-request grid size.
func (c Corpus) Elements() int64 {
	n := int64(1)
	for _, d := range c.Dims {
		n *= int64(d)
	}
	return n
}

// Traffic declares the seeded open-loop request mix the driver offers.
type Traffic struct {
	Scheme     string `json:"scheme"`
	Compressor string `json:"compressor"`
	// PredictPct, FitPct, InvalidatePct is the mix in percent (sum 100).
	PredictPct    float64 `json:"predict_pct"`
	FitPct        float64 `json:"fit_pct"`
	InvalidatePct float64 `json:"invalidate_pct"`
	// TargetQPS is the offered open-loop arrival rate (Poisson).
	TargetQPS float64 `json:"target_qps"`
	// WarmupS/SteadyS split the run: warmup fills caches unmeasured,
	// steady is the measured window.
	WarmupS float64 `json:"warmup_s"`
	SteadyS float64 `json:"steady_s"`
	// Seed drives the arrival process and per-op choices; two runs of
	// the same scenario offer the identical request schedule.
	Seed int64 `json:"seed"`
	// FitSteps and Bounds shape each fit job's training spec (1 field ×
	// FitSteps × len(Bounds) cells at the corpus dims). Bounds[0] is
	// also the predict error-bound option.
	FitSteps int       `json:"fit_steps"`
	Bounds   []float64 `json:"bounds"`
	// InvalidateKeys is what invalidate requests declare changed. Keys
	// the scheme does not depend on exercise the full invalidation path
	// without evicting the serving model (a CI-stable mix); keys it does
	// depend on force refit churn (a stress mix).
	InvalidateKeys []string `json:"invalidate_keys"`
	// BatchPct is the share of predict operations issued against
	// /v1/predict/batch, in percent of predict traffic. A batched op
	// still counts as one arrival in the Poisson process; it carries
	// BatchSizes-many predictions in one request.
	BatchPct float64 `json:"batch_pct"`
	// BatchSizes is the batch-size distribution: each batched op draws
	// its size uniformly from this list (seeded, like every other draw).
	BatchSizes []int `json:"batch_sizes,omitempty"`
}

// MeanBatch is the mean of the declared batch-size distribution (0 when
// the mix has no batch traffic).
func (t Traffic) MeanBatch() float64 {
	if t.BatchPct <= 0 || len(t.BatchSizes) == 0 {
		return 0
	}
	sum := 0
	for _, n := range t.BatchSizes {
		sum += n
	}
	return float64(sum) / float64(len(t.BatchSizes))
}

// SLO is the absolute pass/fail envelope on the measured steady window.
type SLO struct {
	MaxP50MS     float64 `json:"max_p50_ms"`
	MaxP99MS     float64 `json:"max_p99_ms"`
	MaxErrorRate float64 `json:"max_error_rate"`
	MaxRSSBytes  int64   `json:"max_rss_bytes"`
}

// Gate declares the run-vs-run tolerances for comparing a fresh
// SystemResult against the committed baseline. QPS is tight (open-loop
// under capacity tracks the offered rate); latency is loose with an
// absolute slack because wall-clock quantiles vary across machines.
type Gate struct {
	QPSTolerance     float64 `json:"qps_tolerance"`
	LatencyTolerance float64 `json:"latency_tolerance"`
	LatencySlackMS   float64 `json:"latency_slack_ms"`
	ErrorRateSlack   float64 `json:"error_rate_slack"`
}

// Capacity parameterizes the analytical model for this scenario.
type Capacity struct {
	// EffectiveNodes is how many nodes the traffic actually spreads
	// across (1 for a single-partition mix — the router pins predicts).
	EffectiveNodes int     `json:"effective_nodes"`
	CoresPerNode   float64 `json:"cores_per_node"`
	// OverheadUS is the declared fixed per-request overhead (HTTP, JSON,
	// router hop, race-detector tax).
	OverheadUS float64 `json:"overhead_us"`
	// HitRate is the expected steady-state predict cache hit fraction.
	HitRate float64 `json:"hit_rate"`
	// ErrorBand is the conformance band: measured achieved QPS must be
	// within this relative error of the model's prediction.
	ErrorBand float64 `json:"error_band"`
}

// Speedup declares a cross-scenario throughput claim: this scenario's
// measured prediction throughput must be at least MinQPSRatio times the
// referenced scenario's, at no worse p99 (times MaxP99Ratio plus an
// absolute slack, since wall-clock quantiles are noisy). It is how the
// batch scenario pins the ≥10x amortization claim against its
// single-request twin in the same committed baseline file.
type Speedup struct {
	// Vs names the baseline scenario the ratio is taken against.
	Vs string `json:"vs"`
	// MinQPSRatio is the required prediction-QPS ratio (e.g. 10).
	MinQPSRatio float64 `json:"min_qps_ratio"`
	// MaxP99Ratio bounds this scenario's p99 relative to Vs's (1.0 =
	// equal or better).
	MaxP99Ratio float64 `json:"max_p99_ratio"`
	// P99SlackMS is the absolute latency slack on the p99 bound.
	P99SlackMS float64 `json:"p99_slack_ms"`
}

// Scenario is one declarative macro-benchmark.
type Scenario struct {
	Name     string   `json:"name"`
	Topology Topology `json:"topology"`
	Corpus   Corpus   `json:"corpus"`
	Traffic  Traffic  `json:"traffic"`
	SLO      SLO      `json:"slo"`
	Gate     Gate     `json:"gate"`
	Capacity Capacity `json:"capacity"`
	// Speedup, when declared, additionally gates this scenario's result
	// against another scenario's committed baseline.
	Speedup *Speedup `json:"speedup,omitempty"`
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return &s, nil
}

// Validate rejects scenarios the harness cannot run or whose results
// would be meaningless.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("name required")
	}
	if s.Topology.Nodes < 2 {
		// -node requires peers: replicated mode is the whole point of a
		// system scenario, so single-node topologies are rejected
		return fmt.Errorf("topology.nodes %d < 2", s.Topology.Nodes)
	}
	if s.Topology.ProbeIntervalMS < 1 || s.Topology.PollIntervalMS < 1 {
		return fmt.Errorf("probe/poll intervals must be >= 1ms")
	}
	if len(s.Corpus.Fields) == 0 {
		return fmt.Errorf("corpus.fields empty")
	}
	known := map[string]bool{}
	for _, f := range hurricane.FieldNames {
		known[f] = true
	}
	for _, f := range s.Corpus.Fields {
		if !known[f] {
			return fmt.Errorf("corpus field %q is not a hurricane field", f)
		}
	}
	if s.Corpus.Steps < 1 || s.Corpus.Steps > hurricane.Timesteps {
		return fmt.Errorf("corpus.steps %d outside [1, %d]", s.Corpus.Steps, hurricane.Timesteps)
	}
	if len(s.Corpus.Dims) != 3 {
		return fmt.Errorf("corpus.dims %v: want 3 dims", s.Corpus.Dims)
	}
	for _, d := range s.Corpus.Dims {
		if d < 1 {
			return fmt.Errorf("corpus.dims %v: non-positive dim", s.Corpus.Dims)
		}
	}
	t := s.Traffic
	if t.Scheme == "" || t.Compressor == "" {
		return fmt.Errorf("traffic.scheme and traffic.compressor required")
	}
	if sum := t.PredictPct + t.FitPct + t.InvalidatePct; sum < 99.999 || sum > 100.001 {
		return fmt.Errorf("traffic mix sums to %v, want 100", sum)
	}
	if t.PredictPct < 0 || t.FitPct < 0 || t.InvalidatePct < 0 {
		return fmt.Errorf("negative traffic percentage")
	}
	if t.TargetQPS <= 0 {
		return fmt.Errorf("traffic.target_qps %v <= 0", t.TargetQPS)
	}
	if t.WarmupS < 0 || t.SteadyS <= 0 {
		return fmt.Errorf("traffic needs steady_s > 0 and warmup_s >= 0")
	}
	if t.FitPct > 0 && (t.FitSteps < 1 || len(t.Bounds) == 0) {
		return fmt.Errorf("fit traffic needs fit_steps >= 1 and bounds")
	}
	if len(t.Bounds) == 0 {
		return fmt.Errorf("traffic.bounds empty (bounds[0] is the predict error bound)")
	}
	if t.InvalidatePct > 0 && len(t.InvalidateKeys) == 0 {
		return fmt.Errorf("invalidate traffic needs invalidate_keys")
	}
	if t.BatchPct < 0 || t.BatchPct > 100 {
		return fmt.Errorf("traffic.batch_pct %v outside [0, 100]", t.BatchPct)
	}
	if t.BatchPct > 0 {
		if len(t.BatchSizes) == 0 {
			return fmt.Errorf("batch traffic needs batch_sizes")
		}
		for _, n := range t.BatchSizes {
			if n < 1 || n > serve.MaxBatchItems {
				return fmt.Errorf("batch size %d outside [1, %d]", n, serve.MaxBatchItems)
			}
		}
	}
	if sp := s.Speedup; sp != nil {
		if sp.Vs == "" || sp.Vs == s.Name {
			return fmt.Errorf("speedup.vs must name another scenario")
		}
		if sp.MinQPSRatio <= 0 || sp.MaxP99Ratio <= 0 {
			return fmt.Errorf("speedup ratios must be positive")
		}
	}
	if s.SLO.MaxP50MS <= 0 || s.SLO.MaxP99MS <= 0 || s.SLO.MaxRSSBytes <= 0 {
		return fmt.Errorf("slo must declare positive max_p50_ms, max_p99_ms, max_rss_bytes")
	}
	if s.SLO.MaxErrorRate < 0 || s.SLO.MaxErrorRate > 1 {
		return fmt.Errorf("slo.max_error_rate %v outside [0, 1]", s.SLO.MaxErrorRate)
	}
	if s.Gate.QPSTolerance <= 0 || s.Gate.LatencyTolerance <= 0 {
		return fmt.Errorf("gate tolerances must be positive")
	}
	c := s.Capacity
	if c.EffectiveNodes < 1 || c.EffectiveNodes > s.Topology.Nodes {
		return fmt.Errorf("capacity.effective_nodes %d outside [1, %d]", c.EffectiveNodes, s.Topology.Nodes)
	}
	if c.ErrorBand <= 0 {
		return fmt.Errorf("capacity.error_band %v <= 0", c.ErrorBand)
	}
	return s.CapacitySpec().Validate()
}

// CapacitySpec projects the scenario into the analytical model's input.
func (s *Scenario) CapacitySpec() capacity.Spec {
	return capacity.Spec{
		Nodes:         s.Capacity.EffectiveNodes,
		CoresPerNode:  s.Capacity.CoresPerNode,
		Elements:      s.Corpus.Elements(),
		PredictPct:    s.Traffic.PredictPct,
		FitPct:        s.Traffic.FitPct,
		InvalidatePct: s.Traffic.InvalidatePct,
		HitRate:       s.Capacity.HitRate,
		BatchPct:      s.Traffic.BatchPct,
		MeanBatch:     s.Traffic.MeanBatch(),
		FitCells:      s.Traffic.FitSteps * len(s.Traffic.Bounds),
		Compressor:    s.Traffic.Compressor,
		OverheadUS:    s.Capacity.OverheadUS,
	}
}
