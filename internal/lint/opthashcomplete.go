package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/xtools/analysis"
)

const opthashcompleteDoc = `require every exported field to be reachable from Options()

Checkpoint keys and model-registry keys are opthash digests of the
pressio.Options structures that Options() methods build (paper §4.3).
A field added to a compressor, metric, or predictor struct but not
folded into its Options() silently falls out of the checkpoint key:
two differently-configured runs then collide on one cached result.

For every method "func (T) Options() pressio.Options" on a struct type,
this analyzer requires each exported non-embedded field of T to be read
somewhere in Options() or in the same-package helpers it calls.
Deliberately unhashed fields (pure runtime knobs) carry
//lint:ignore pressiovet/opthashcomplete on the field.`

// OptHashComplete is the opthashcomplete analyzer.
var OptHashComplete = &analysis.Analyzer{
	Name: "opthashcomplete",
	Doc:  opthashcompleteDoc,
	Run:  runOptHashComplete,
}

func runOptHashComplete(pass *analysis.Pass) (any, error) {
	idx := newIgnoreIndex(pass, "opthashcomplete")
	decls := funcDecls(pass)
	for _, fd := range decls {
		named, ok := optionsMethodReceiver(pass, fd)
		if !ok {
			continue
		}
		checkOptionsComplete(pass, idx, decls, fd, named)
	}
	return nil, nil
}

// optionsMethodReceiver matches "func (recv T|*T) Options() pressio.Options"
// where T is a named struct type, returning T.
func optionsMethodReceiver(pass *analysis.Pass, fd *ast.FuncDecl) (*types.Named, bool) {
	if fd.Recv == nil || fd.Name.Name != "Options" || fd.Body == nil {
		return nil, false
	}
	ft := fd.Type
	if ft.Params.NumFields() != 0 || ft.Results.NumFields() != 1 {
		return nil, false
	}
	if !isPressioOptions(pass.TypesInfo.TypeOf(ft.Results.List[0].Type)) {
		return nil, false
	}
	recv := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	return named, true
}

func checkOptionsComplete(pass *analysis.Pass, idx *ignoreIndex, decls map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl, named *types.Named) {
	st := named.Underlying().(*types.Struct)

	// the exported non-embedded fields the hasher must reach
	want := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && !f.Embedded() {
			want[f] = true
		}
	}
	if len(want) == 0 {
		return
	}

	// fields read anywhere in the transitive closure of Options(); if a
	// receiver is ever used as a whole value (copied or passed on), all
	// fields are conservatively considered reachable.
	reached := map[*types.Var]bool{}
	wholeCopy := false
	visitTransitive(pass, decls, fd, func(owner *ast.FuncDecl, n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					reached[v] = true
				}
			}
		case *ast.Ident:
			if recvObj := receiverObj(pass, owner); recvObj != nil &&
				objOf(pass.TypesInfo, n) == recvObj && !isSelectorBase(owner, n) {
				wholeCopy = true
			}
		}
	})
	if wholeCopy {
		return
	}

	for f := range want {
		if !reached[f] {
			idx.reportf(pass, f.Pos(),
				"exported field %s.%s is not reachable from Options(): it will silently fall out of opthash checkpoint keys (fold it into Options() or lint:ignore with justification)",
				named.Obj().Name(), f.Name())
		}
	}
}

// receiverObj returns the object of fd's receiver variable, or nil.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// isSelectorBase reports whether id appears as the X of a selector
// expression within fd (i.e. "m" in "m.Field" or "m.helper()") — the
// benign use that must not trigger the whole-copy bailout.
func isSelectorBase(fd *ast.FuncDecl, id *ast.Ident) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if se, ok := n.(*ast.SelectorExpr); ok {
			if base, ok := ast.Unparen(se.X).(*ast.Ident); ok && base == id {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
