package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/xtools/analysis"
)

const ctxflowDoc = `forbid context.Background()/TODO() in queue/serve/bench library code

The resilience layer (DESIGN.md §8) and the serving subsystem (§9) rely
on cancellation flowing from the caller: deadlines, SIGINT drain, and
per-request budgets all propagate through a ctx argument. A
context.Background() buried in library code silently detaches that
subtree from cancellation. This analyzer forbids Background/TODO inside
the scoped packages (default: internal/queue, internal/serve,
internal/bench; _test.go files exempt) and requires any context.Context
parameter to be the first parameter.

Intentional detachment points (async jobs that must outlive a request)
carry //lint:ignore pressiovet/ctxflow with the reason.`

// CtxFlow is the ctxflow analyzer.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  ctxflowDoc,
	Run:  runCtxFlow,
}

// ctxflowScope is the default comma-separated package-path-suffix scope,
// overridable with -ctxflow.scope.
var ctxflowScope = "internal/queue,internal/serve,internal/bench,internal/store,internal/cluster,internal/cluster/health,internal/scenario,internal/capacity"

func init() {
	CtxFlow.Flags.StringVar(&ctxflowScope, "scope",
		ctxflowScope, "comma-separated package path suffixes to police")
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	if !pkgPathMatches(pass.Pkg.Path(), ctxflowScope) {
		return nil, nil
	}
	idx := newIgnoreIndex(pass, "ctxflow")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inTestFile(pass.Fset, n.Pos()) {
					return true
				}
				obj := calleeObj(pass.TypesInfo, n)
				for _, name := range [...]string{"Background", "TODO"} {
					if isPkgFunc(obj, "context", name) {
						idx.reportf(pass, n.Pos(),
							"context.%s() in library code: accept a ctx parameter and pass it through (cancellation must flow from the caller)", name)
					}
				}
			case *ast.FuncDecl:
				if inTestFile(pass.Fset, n.Pos()) {
					return false
				}
				checkCtxFirst(pass, idx, n.Type)
			}
			return true
		})
	}
	return nil, nil
}

// checkCtxFirst reports a context.Context parameter that is not the
// first parameter of the function.
func checkCtxFirst(pass *analysis.Pass, idx *ignoreIndex, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(t) && pos != 0 {
			idx.reportf(pass, field.Pos(),
				"context.Context must be the first parameter")
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
