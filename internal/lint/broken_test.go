package lint_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint/linttest"
)

// TestBrokenTreeEndToEnd drives the real `go vet -vettool` pipeline over
// testdata/brokenmod, a deliberately broken module carrying exactly one
// violation per analyzer, and asserts every analyzer fires. This is the
// end-to-end proof that cmd/pressiovet, the unitchecker protocol, and
// the analyzers compose; the per-analyzer semantics are covered by the
// linttest golden fixtures.
func TestBrokenTreeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	pkgDir := linttest.TestdataDir(t) // .../internal/lint
	repoRoot, err := filepath.Abs(filepath.Join(pkgDir, "..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	vettool := filepath.Join(t.TempDir(), "pressiovet")
	build := exec.Command("go", "build", "-o", vettool, "./cmd/pressiovet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pressiovet: %v\n%s", err, out)
	}

	brokenDir := filepath.Join(pkgDir, "testdata", "brokenmod")

	// -json mode always exits 0; it exists to enumerate findings per
	// analyzer, which is what we assert on.
	vet := exec.Command("go", "vet", "-json", "-vettool="+vettool, "./...")
	vet.Dir = brokenDir
	out, err := vet.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -json on the broken tree: %v\n%s", err, out)
	}
	for _, analyzer := range []string{
		"opthashcomplete", "invalidatedecl", "poolescape", "ctxflow", "detrand",
	} {
		if !bytes.Contains(out, []byte(`"`+analyzer+`"`)) {
			t.Errorf("analyzer %s reported nothing on the broken tree", analyzer)
		}
	}
	if t.Failed() {
		t.Logf("go vet output:\n%s", out)
	}

	// Plain mode must exit non-zero on findings: make lint depends on it.
	plain := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	plain.Dir = brokenDir
	if out, err := plain.CombinedOutput(); err == nil {
		t.Errorf("go vet (plain) on the broken tree exited 0; make lint would not gate\n%s", out)
	}
}
