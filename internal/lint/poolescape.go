package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/xtools/analysis"
)

const poolescapeDoc = `forbid pooled/refcounted scratch values from outliving their release

The block-parallel kernels (DESIGN.md §10) recycle scratch buffers
through sync.Pool, and the tiered dataset cache (DESIGN.md §15) hands
out refcounted mmap-backed handles; correctness of the -race concurrency
drills rests on each in-flight computation holding its scratch
exclusively until it surrenders it. The analyzer knows the repo's
acquire/release pairs (see poolPairs): sync.Pool Get/Put and
dataset.TieredCache.Acquire/dataset.Handle.Release. Within a function
that acquires such a value it reports:

  - a return statement that mentions the acquired value when the
    function also releases it (the caller would receive a buffer already
    surrendered — for a cache handle, memory the evictor may unmap);
  - any use of the acquired value after a non-deferred release in the
    same statement list;
  - storing the acquired value into a struct field or package-level
    variable (retention beyond the call);
  - returning the acquired value from a function that never releases
    it — an ownership-transfer accessor. Deliberate accessors
    (GetWriter/PutWriter pairs, handle-returning getters that also hand
    the caller the release func) carry //lint:ignore
    pressiovet/poolescape.

Copies via append(<fresh slice>, v...) are recognized and not flagged.
The analysis is per-function and syntactic: it does not chase acquired
values through helper calls or into local struct fields.`

// PoolEscape is the poolescape analyzer.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  poolescapeDoc,
	Run:  runPoolEscape,
}

// poolPairs are the acquire/release method pairs the analyzer tracks,
// by types.Func full name. The release method may live on the acquired
// value itself (Handle.Release) or on the pool (sync.Pool.Put) — either
// way a release "mentions" the tracked object, which is all the checks
// need.
var poolPairs = struct{ acquire, release []string }{
	acquire: []string{
		"(*sync.Pool).Get",
		"(*repro/internal/dataset.TieredCache).Acquire",
	},
	release: []string{
		"(*sync.Pool).Put",
		"(*repro/internal/dataset.Handle).Release",
	},
}

func runPoolEscape(pass *analysis.Pass) (any, error) {
	idx := newIgnoreIndex(pass, "poolescape")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			analyzePoolFn(pass, idx, fn)
			return true
		})
	}
	return nil, nil
}

// poolCall reports whether call invokes one of the named methods
// (types.Func full names, as listed in poolPairs).
func poolCall(info *types.Info, call *ast.CallExpr, names []string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	for _, n := range names {
		if full == n {
			return true
		}
	}
	return false
}

func analyzePoolFn(pass *analysis.Pass, idx *ignoreIndex, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// pass 1: variables bound to an acquire-call result
	tracked := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !poolCall(info, call, poolPairs.acquire) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				tracked[obj] = true
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// pass 2: release calls per tracked object (deferred or not)
	putAny := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !poolCall(info, call, poolPairs.release) {
			return true
		}
		for obj := range tracked {
			if mentionsObj(info, call, obj) {
				putAny[obj] = true
			}
		}
		return true
	})

	// pass 3: reports
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range tracked {
					if !mentionsObj(info, res, obj) {
						continue
					}
					if putAny[obj] {
						idx.reportf(pass, n.Pos(),
							"pooled %s is returned after being released: the caller would share memory the pool or cache may hand to another user", obj.Name())
					} else {
						idx.reportf(pass, n.Pos(),
							"pooled %s escapes via return: copy it, or mark the deliberate ownership-transfer accessor with a lint:ignore", obj.Name())
					}
				}
			}
		case *ast.AssignStmt:
			checkPoolStore(pass, idx, info, n, tracked)
		case *ast.BlockStmt:
			checkUseAfterPut(pass, idx, info, n.List, tracked)
		case *ast.CaseClause:
			checkUseAfterPut(pass, idx, info, n.Body, tracked)
		case *ast.CommClause:
			checkUseAfterPut(pass, idx, info, n.Body, tracked)
		}
		return true
	})
}

// checkPoolStore flags stores of a pooled value into a struct field or a
// package-level variable.
func checkPoolStore(pass *analysis.Pass, idx *ignoreIndex, info *types.Info, as *ast.AssignStmt, tracked map[types.Object]bool) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) && len(as.Rhs) != 1 {
			break
		}
		rhs := as.Rhs[min(i, len(as.Rhs)-1)]
		var obj types.Object
		for o := range tracked {
			if mentionsObj(info, rhs, o) {
				obj = o
				break
			}
		}
		if obj == nil {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
				idx.reportf(pass, as.Pos(),
					"pooled %s stored in field %s: it would outlive the call that owns it", obj.Name(), l.Sel.Name)
			}
		case *ast.Ident:
			if o := objOf(info, l); o != nil && isPackageLevel(o) {
				idx.reportf(pass, as.Pos(),
					"pooled %s stored in package-level %s: it would outlive the call that owns it", obj.Name(), l.Name)
			}
		}
	}
}

// checkUseAfterPut scans one statement list in order: a statement that
// mentions a pooled variable after a non-deferred Put of it is a bug.
// Re-binding the variable (e.g. a fresh Get) re-arms it.
func checkUseAfterPut(pass *analysis.Pass, idx *ignoreIndex, info *types.Info, stmts []ast.Stmt, tracked map[types.Object]bool) {
	put := map[types.Object]bool{}
	for _, st := range stmts {
		// a fresh binding of the variable clears its put state
		if as, ok := st.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if o := objOf(info, id); o != nil {
						delete(put, o)
					}
				}
			}
		}
		if _, isReturn := st.(*ast.ReturnStmt); !isReturn { // returns have their own check
			for obj := range put {
				if mentionsObj(info, st, obj) {
					idx.reportf(pass, st.Pos(),
						"pooled %s used after release: the pool or cache may already have handed its memory to another user", obj.Name())
				}
			}
		}
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && poolCall(info, call, poolPairs.release) {
				for obj := range tracked {
					if mentionsObj(info, call, obj) {
						put[obj] = true
					}
				}
			}
		}
	}
}

// mentionsObj reports whether node references obj, treating
// append(<fresh>, v...) as a copy (not a mention) when the destination
// slice is not itself derived from obj.
func mentionsObj(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinAppend(info, call) && len(call.Args) > 0 {
			if !mentionsObj(info, call.Args[0], obj) {
				return false // copying into a fresh slice: safe
			}
		}
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
