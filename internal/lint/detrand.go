package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/xtools/analysis"
)

const detrandDoc = `forbid bare time.Now()/global math/rand in replay-sensitive code

Seeded fault-injection replay (DESIGN.md §8) only reproduces a failure
schedule if every decision the plan can influence is deterministic.
Wall-clock reads (time.Now, time.Since) and the global math/rand source
smuggle nondeterminism into breaker cooldowns, backoff, and recorded
timings. In the scoped packages (default: internal/faultinject,
internal/queue, internal/bench; _test.go files exempt) this analyzer
forbids calling time.Now/time.Since directly and calling the global
math/rand top-level functions.

Sanctioned patterns it does NOT flag: referencing time.Now as a value
(the injection point "var now = time.Now" or "cfg.Clock = time.Now"),
and seeded sources via rand.New(rand.NewSource(seed)).`

// DetRand is the detrand analyzer.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc:  detrandDoc,
	Run:  runDetRand,
}

// detrandScope is the default comma-separated package-path-suffix scope,
// overridable with -detrand.scope.
var detrandScope = "internal/faultinject,internal/queue,internal/bench,internal/store,internal/vfs,internal/cluster,internal/cluster/health,internal/scenario,internal/capacity"

func init() {
	DetRand.Flags.StringVar(&detrandScope, "scope",
		detrandScope, "comma-separated package path suffixes to police")
}

// globalRandFuncs are the math/rand top-level functions that draw from
// the shared, unseedable-for-replay global source. Constructors
// (New, NewSource, NewZipf) are absent: they are how seeds are injected.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint64N": true,
}

// isGlobalRandFunc reports whether obj is a top-level math/rand (or v2)
// function drawing from the shared global source. Methods on *rand.Rand
// are fine: a *rand.Rand is constructed from an explicit, seedable Source.
func isGlobalRandFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	p := fn.Pkg().Path()
	return (p == "math/rand" || p == "math/rand/v2") && globalRandFuncs[fn.Name()]
}

func runDetRand(pass *analysis.Pass) (any, error) {
	if !pkgPathMatches(pass.Pkg.Path(), detrandScope) {
		return nil, nil
	}
	idx := newIgnoreIndex(pass, "detrand")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || inTestFile(pass.Fset, call.Pos()) {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			switch {
			case isPkgFunc(obj, "time", "Now"):
				idx.reportf(pass, call.Pos(),
					"bare time.Now() in replay-sensitive code: call through an injected clock (e.g. the package-level `var now = time.Now`)")
			case isPkgFunc(obj, "time", "Since"):
				idx.reportf(pass, call.Pos(),
					"time.Since reads the wall clock: use clock().Sub(start) with an injected clock")
			case isGlobalRandFunc(obj):
				idx.reportf(pass, call.Pos(),
					"global math/rand source in replay-sensitive code: inject rand.New(rand.NewSource(seed)) so fault plans replay deterministically")
			}
			return true
		})
	}
	return nil, nil
}
