package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/xtools/analysis"
)

// funcDecls maps every function and method object declared in the pass's
// package to its syntax, so analyzers can walk bodies transitively.
func funcDecls(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// maxCallDepth bounds the transitive walk through same-package helpers;
// the repo convention is one or two levels of defaulting helpers
// (Options → bins(), Configuration → invalidate(...)).
const maxCallDepth = 5

// visitTransitive invokes visit(fn, node) for every node in fn's body
// and, transitively, in the bodies of same-package functions and methods
// it calls, up to maxCallDepth. Each function is visited once.
func visitTransitive(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fn *ast.FuncDecl, visit func(*ast.FuncDecl, ast.Node)) {
	seen := map[*ast.FuncDecl]bool{}
	var walk func(fd *ast.FuncDecl, depth int)
	walk = func(fd *ast.FuncDecl, depth int) {
		if fd == nil || fd.Body == nil || seen[fd] || depth > maxCallDepth {
			return
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n != nil {
				visit(fd, n)
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeObj(pass.TypesInfo, call); callee != nil {
					walk(decls[callee], depth+1)
				}
			}
			return true
		})
	}
	walk(fn, 0)
}

// constStringsIn collects every constant-folded string value appearing
// in the transitive closure of fn (call-site arguments included, since
// they appear in caller bodies).
func constStringsIn(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	visitTransitive(pass, decls, fn, func(_ *ast.FuncDecl, n ast.Node) {
		expr, ok := n.(ast.Expr)
		if !ok {
			return
		}
		if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
			if s, ok := stringConst(tv); ok {
				out[s] = true
			}
		}
	})
	return out
}
