package lint_test

import (
	"sort"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAnalyzerSet pins the suite: adding or removing an analyzer must be
// a deliberate, reviewed change (and documented in DESIGN.md §11).
func TestAnalyzerSet(t *testing.T) {
	want := []string{"ctxflow", "detrand", "invalidatedecl", "opthashcomplete", "poolescape"}
	var got []string
	for _, a := range lint.Analyzers() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("analyzer set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("analyzer set = %v, want %v", got, want)
		}
	}
}

func TestOptHashComplete(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lint.OptHashComplete, "opthash/a")
}

func TestInvalidateDecl(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lint.InvalidateDecl, "invalid/a")
}

func TestPoolEscape(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lint.PoolEscape, "pool/a")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lint.CtxFlow,
		"scope/internal/queue", "scope/internal/other")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lint.DetRand,
		"scope/internal/faultinject", "scope/internal/timing")
}
