package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/xtools/analysis"
)

// ignorePrefix is the directive that suppresses a pressiovet diagnostic:
//
//	//lint:ignore pressiovet/<analyzer> <justification>
//	//lint:ignore pressiovet <justification>        (all analyzers)
//
// placed on the flagged line or the line immediately above it. The
// justification is mandatory: a bare directive suppresses nothing, so
// every escape carries its reason in the source.
const ignorePrefix = "//lint:ignore "

// ignoreIndex records, per file line, which analyzers are suppressed
// there. It is rebuilt once per (analyzer, package) pass.
type ignoreIndex struct {
	name string // analyzer name, e.g. "ctxflow"
	fset *token.FileSet
	// suppressed["file:line"] is true when a well-formed directive on
	// that line or the line above covers this analyzer.
	suppressed map[string]bool
}

// newIgnoreIndex scans every comment in the pass for ignore directives
// covering analyzer name.
func newIgnoreIndex(pass *analysis.Pass, name string) *ignoreIndex {
	idx := &ignoreIndex{name: name, fset: pass.Fset, suppressed: map[string]bool{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				scope, reason, _ := strings.Cut(rest, " ")
				if strings.TrimSpace(reason) == "" {
					continue // justification mandatory
				}
				if scope != "pressiovet" && scope != "pressiovet/"+name {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				// the directive covers its own line (trailing comment)
				// and the line below it (comment-above style)
				idx.suppressed[key(pos.Filename, pos.Line)] = true
				idx.suppressed[key(pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return idx
}

func key(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// reportf emits a diagnostic unless an ignore directive covers pos.
func (idx *ignoreIndex) reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	p := idx.fset.Position(pos)
	if idx.suppressed[key(p.Filename, p.Line)] {
		return
	}
	pass.Reportf(pos, format, args...)
}

// inTestFile reports whether pos lies in a _test.go file; the analyzers
// that police library code skip tests (a test harness may legitimately
// originate contexts and clocks).
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pkgPathMatches reports whether path ends with one of the scope
// suffixes (comma-separated). Matching by suffix keeps the analyzers
// usable both on this module ("repro/internal/queue") and on fixture
// modules ("brokenvet/internal/queue").
func pkgPathMatches(path, suffixes string) bool {
	for _, suf := range strings.Split(suffixes, ",") {
		suf = strings.TrimSpace(suf)
		if suf == "" {
			continue
		}
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// calleeObj resolves the called function or method object of a call
// expression, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name, where
// pkgPath is matched exactly ("time", "context", "math/rand").
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isPressioOptions reports whether t is the named type Options from the
// pressio package (matched by path suffix so fixture stubs qualify).
func isPressioOptions(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Options" || obj.Pkg() == nil {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), "internal/pressio")
}
