// Package queue exercises ctxflow inside a scoped package (its import
// path ends in internal/queue).
package queue

import "context"

// Run is the good shape: ctx first, passed through.
func Run(ctx context.Context, n int) error {
	return step(ctx, n)
}

func step(ctx context.Context, n int) error {
	<-ctx.Done()
	return ctx.Err()
}

func detached() {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	_ = ctx
	_ = context.TODO() // want `context\.TODO\(\) in library code`
}

func badOrder(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = n
}

func excused() context.Context {
	//lint:ignore pressiovet/ctxflow fixture: deliberate detachment point with a reason
	return context.Background()
}
