// Package other is outside ctxflow's scope: Background here is legal.
package other

import "context"

// Root originates a context, as top-level code may.
func Root() context.Context {
	return context.Background()
}

func alsoFine(n int, ctx context.Context) { _ = n }
