// Package timing is outside detrand's scope: wall-clock reads are legal.
package timing

import "time"

// Stamp reads the real clock, as unscoped code may.
func Stamp() time.Time { return time.Now() }
