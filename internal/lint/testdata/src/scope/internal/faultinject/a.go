// Package faultinject exercises detrand inside a scoped package.
package faultinject

import (
	"math/rand"
	"time"
)

// now is the sanctioned injection point: a value reference to time.Now,
// not a call, replaceable by a fake clock in tests.
var now = time.Now

func bad() time.Time {
	return time.Now() // want `bare time\.Now\(\) in replay-sensitive code`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func badRand() int {
	return rand.Intn(10) // want `global math/rand source in replay-sensitive code`
}

func goodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func goodClock(start time.Time) time.Duration {
	return now().Sub(start)
}

func excused() time.Time {
	//lint:ignore pressiovet/detrand fixture: wall-clock timestamp for human-facing logs only
	return time.Now()
}
