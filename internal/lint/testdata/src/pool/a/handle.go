// Handle-based acquire/release: the tiered dataset cache's
// TieredCache.Acquire / Handle.Release pair is policed exactly like
// sync.Pool Get/Put — a released handle's memory may be unmapped or
// handed to another caller by the evictor.
package a

import "repro/internal/dataset"

var cache dataset.TieredCache

func handleUseAfterRelease() float32 {
	h, err := cache.Acquire("P", 0, []int{8, 8, 8})
	if err != nil {
		return 0
	}
	h.Release()
	x := h.Data()[0] // want `pooled h used after release`
	return x
}

func handleReturnAfterRelease() *dataset.Handle {
	h, _ := cache.Acquire("P", 0, nil)
	h.Release()
	return h // want `pooled h is returned after being released`
}

func handleLeak() *dataset.Handle {
	h, _ := cache.Acquire("P", 0, nil)
	return h // want `pooled h escapes via return`
}

func handleAccessor() (*dataset.Handle, error) {
	h, err := cache.Acquire("P", 0, nil)
	if err != nil {
		return nil, err
	}
	//lint:ignore pressiovet/poolescape ownership transfers to the caller, which must Release the handle
	return h, nil
}

type pinned struct {
	h *dataset.Handle
}

func (p *pinned) storeHandle() {
	h, _ := cache.Acquire("P", 0, nil)
	p.h = h // want `pooled h stored in field h`
	h.Release()
}

// deferred Release with a copy-out stays legal.
func handleSnapshot() []float32 {
	h, err := cache.Acquire("P", 0, nil)
	if err != nil {
		return nil
	}
	defer h.Release()
	return append([]float32(nil), h.Data()...)
}
