// Package a exercises poolescape: sync.Pool scratch must not be
// retained past Put or returned to callers.
package a

import "sync"

var bufPool = sync.Pool{New: func() any { return []byte(nil) }}

func returnAfterPut() []byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	return b // want `pooled b is returned after being released`
}

func deferReturn() []byte {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	return b // want `pooled b is returned after being released`
}

func useAfterPut() byte {
	b := bufPool.Get().([]byte)
	b = append(b, 1)
	bufPool.Put(b)
	x := b[0] // want `pooled b used after release`
	return x
}

type holder struct {
	buf []byte
}

func (h *holder) storeField() {
	b := bufPool.Get().([]byte)
	h.buf = b // want `pooled b stored in field buf`
	bufPool.Put(b)
}

var retained []byte

func storeGlobal() {
	b := bufPool.Get().([]byte)
	retained = b // want `pooled b stored in package-level retained`
	bufPool.Put(b)
}

func accessor() []byte {
	b := bufPool.Get().([]byte)
	return b // want `pooled b escapes via return`
}

func accessorExcused() []byte {
	b := bufPool.Get().([]byte)
	//lint:ignore pressiovet/poolescape ownership transfers to the caller; paired with a Put accessor
	return b
}

// snapshot copies out of the pooled buffer before returning: fine.
func snapshot() []byte {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	return append([]byte(nil), b...)
}

// rebind re-arms the variable with a fresh Get after a Put.
func rebind() byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	b = bufPool.Get().([]byte)
	x := byte(0)
	if len(b) > 0 {
		x = b[0]
	}
	bufPool.Put(b)
	return x
}

// local aggregation into function-local slices stays legal.
func localUse() int {
	b := bufPool.Get().([]byte)
	total := 0
	for _, v := range b {
		total += int(v)
	}
	parts := make([][]byte, 1)
	parts[0] = b
	bufPool.Put(b)
	return total
}
