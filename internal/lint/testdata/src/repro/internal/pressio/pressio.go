// Package pressio is a minimal fixture stub of repro/internal/pressio:
// just enough surface for the analyzers' type- and constant-matching,
// which resolves the real package and this stub identically (both paths
// end in "internal/pressio", and the invalidation keys are constants).
package pressio

// Invalidation metadata keys and classes, mirroring the real package.
const (
	CfgInvalidate              = "predictors:invalidate"
	InvalidateErrorDependent   = "predictors:error_dependent"
	InvalidateErrorAgnostic    = "predictors:error_agnostic"
	InvalidateRuntime          = "predictors:runtime"
	InvalidateNondeterministic = "predictors:nondeterministic"
	InvalidateTraining         = "predictors:training"
	OptAbs                     = "pressio:abs"
)

// Options mirrors the real option-structure type.
type Options map[string]any

// Set stores a value.
func (o Options) Set(key string, v any) { o[key] = v }

// Metric is the fixture plugin interface. Unlike the real interface it
// does not require Configuration, so fixtures can model a metric that
// forgot to declare one.
type Metric interface {
	Name() string
}

// RegisterMetric mirrors the real registration entry point.
func RegisterMetric(name string, factory func() Metric) {}
