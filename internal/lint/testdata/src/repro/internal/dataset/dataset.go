// Package dataset is a minimal fixture stub of repro/internal/dataset:
// just enough surface for poolescape's acquire/release matching, which
// resolves methods by their types.Func full name — the stub and the
// real package both yield (*repro/internal/dataset.TieredCache).Acquire
// and (*repro/internal/dataset.Handle).Release.
package dataset

// Handle mirrors the real refcounted cache handle.
type Handle struct{ data []float32 }

// Data returns the handle's backing buffer.
func (h *Handle) Data() []float32 { return h.data }

// Release surrenders the handle back to the cache.
func (h *Handle) Release() {}

// TieredCache mirrors the real two-tier dataset cache.
type TieredCache struct{}

// Acquire checks out a refcounted handle on a cell's decoded data.
func (c *TieredCache) Acquire(field string, step int, dims []int) (*Handle, error) {
	return &Handle{}, nil
}
