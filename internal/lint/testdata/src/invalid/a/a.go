// Package a exercises invalidatedecl: every RegisterMetric call must
// resolve to a type whose Configuration declares predictors:invalidate
// with at least one invalidation class.
package a

import "repro/internal/pressio"

func init() {
	pressio.RegisterMetric("good", func() pressio.Metric { return &Good{} })
	pressio.RegisterMetric("helper", func() pressio.Metric { return &Helper{} })
	pressio.RegisterMetric("missing", func() pressio.Metric { return &Missing{} })   // want `Configuration never sets predictors:invalidate`
	pressio.RegisterMetric("keysonly", func() pressio.Metric { return &KeysOnly{} }) // want `lists no invalidation class`
	pressio.RegisterMetric("noconf", func() pressio.Metric { return &NoConf{} })     // want `no reachable Configuration method`
	//lint:ignore pressiovet/invalidatedecl fixture for the documented escape hatch
	pressio.RegisterMetric("excused", func() pressio.Metric { return &NoConf{} })
}

// Good declares a class directly.
type Good struct{}

func (*Good) Name() string { return "good" }

// Configuration declares error_dependent plus an option key.
func (*Good) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.OptAbs, pressio.InvalidateErrorDependent})
	return o
}

// Helper declares its class through a same-package helper, the repo's
// dominant idiom.
type Helper struct{}

func (*Helper) Name() string { return "helper" }

// Configuration goes through invalidate().
func (*Helper) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorAgnostic)
}

func invalidate(keys ...string) pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, keys)
	return o
}

// Missing has a Configuration that never touches invalidation.
type Missing struct{}

func (*Missing) Name() string { return "missing" }

// Configuration sets unrelated metadata only.
func (*Missing) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set("missing:stable", true)
	return o
}

// KeysOnly lists option keys but pins no invalidation class, so the
// eviction machinery cannot classify it.
type KeysOnly struct{}

func (*KeysOnly) Name() string { return "keysonly" }

// Configuration lists only an option key.
func (*KeysOnly) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, []string{pressio.OptAbs})
	return o
}

// NoConf forgot Configuration entirely.
type NoConf struct{}

func (*NoConf) Name() string { return "noconf" }
