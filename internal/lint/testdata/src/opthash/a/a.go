// Package a exercises opthashcomplete: every exported field of a struct
// with an Options() pressio.Options method must be reachable from it.
package a

import "repro/internal/pressio"

// Complete reaches one field directly and one through a helper.
type Complete struct {
	Abs  float64
	Bins int

	cached int
}

// Options covers every exported field.
func (m *Complete) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	o.Set("a:bins", m.bins())
	return o
}

func (m *Complete) bins() int {
	if m.Bins <= 0 {
		return 64
	}
	return m.Bins
}

// Incomplete drops a field from the hash.
type Incomplete struct {
	Abs    float64
	Hidden int // want `exported field Incomplete\.Hidden is not reachable from Options`
}

// Options forgets Hidden.
func (m *Incomplete) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	return o
}

// Tuned demonstrates the sanctioned escape for a deliberate exclusion.
type Tuned struct {
	Abs float64
	//lint:ignore pressiovet/opthashcomplete runtime placement knob, deliberately unhashed
	Threads int
}

// Options excludes Threads on purpose (see lint:ignore above).
func (m *Tuned) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	return o
}

// Copied hands the whole receiver to a helper; all fields count as
// reachable (conservative whole-copy bailout).
type Copied struct {
	A int
	B int
}

// Options passes the receiver by value.
func (m Copied) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("copied:flat", flatten(m))
	return o
}

func flatten(c Copied) []int64 { return []int64{int64(c.A), int64(c.B)} }

// NotOptions has the wrong signature and is out of scope.
type NotOptions struct {
	Ignored int
}

// Options here returns something other than pressio.Options.
func (m *NotOptions) Options() map[string]any { return nil }
