module brokenvet

go 1.22
