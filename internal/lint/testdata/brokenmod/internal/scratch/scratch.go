// Package scratch violates poolescape: a pooled buffer returned after
// being surrendered to the pool.
package scratch

import "sync"

var bufs = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// Render leaks its pooled buffer to the caller after Put.
func Render(msg string) []byte {
	b := bufs.Get().([]byte)
	b = append(b[:0], msg...)
	bufs.Put(b)
	return b // poolescape violation
}
