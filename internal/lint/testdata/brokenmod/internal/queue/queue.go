// Package queue violates ctxflow: library code detaching from the
// caller's context.
package queue

import "context"

// Drain processes pending work with a context it invented itself.
func Drain() error {
	ctx := context.Background() // ctxflow violation
	<-ctx.Done()
	return ctx.Err()
}
