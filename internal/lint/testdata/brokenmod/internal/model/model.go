// Package model violates opthashcomplete: an exported field that never
// reaches the Options map feeding the checkpoint hash.
package model

import "brokenvet/internal/pressio"

// Knobs configures a model; Epochs silently never reaches Options.
type Knobs struct {
	Rate   float64
	Epochs int // opthashcomplete violation: absent from Options()
}

// Options feeds the checkpoint hash.
func (k *Knobs) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("model:rate", k.Rate)
	return o
}
