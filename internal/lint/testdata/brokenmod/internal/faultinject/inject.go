// Package faultinject violates detrand: a bare wall-clock read in
// replay-sensitive code.
package faultinject

import "time"

// Stamp reads the real clock instead of an injected one.
func Stamp() time.Time {
	return time.Now() // detrand violation
}
