// Package pressio is a minimal stand-in so the broken tree type-checks:
// the analyzers key on the internal/pressio path suffix and on the
// constant values, not on the real repro module.
package pressio

// Options mirrors the real option map shape.
type Options map[string]any

// Set stores one option.
func (o Options) Set(k string, v any) { o[k] = v }

// Configuration keys and invalidation classes, value-identical to the
// real package (the analyzers fold constants to their string values).
const (
	CfgInvalidate = "predictors:invalidate"

	InvalidateErrorDependent   = "predictors:error_dependent"
	InvalidateErrorAgnostic    = "predictors:error_agnostic"
	InvalidateRuntime          = "predictors:runtime"
	InvalidateNondeterministic = "predictors:nondeterministic"
	InvalidateTraining         = "predictors:training"
)

// Metric is the metric plugin surface.
type Metric interface {
	Name() string
}

// RegisterMetric records a metric factory.
func RegisterMetric(name string, factory func() Metric) {}
