// Package metrics violates invalidatedecl: a registered metric whose
// Configuration never declares an invalidation class.
package metrics

import "brokenvet/internal/pressio"

type silent struct{}

func (s *silent) Name() string { return "silent" }

// Configuration exists but never sets predictors:invalidate.
func (s *silent) Configuration() pressio.Options {
	o := pressio.Options{}
	o.Set("metrics:description", "declares nothing about invalidation")
	return o
}

func init() {
	pressio.RegisterMetric("silent", func() pressio.Metric { return &silent{} })
}
