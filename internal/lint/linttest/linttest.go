// Package linttest is a self-contained, offline stand-in for
// golang.org/x/tools/go/analysis/analysistest (which needs go/packages
// and therefore cannot be vendored compactly). It loads GOPATH-layout
// fixture packages from testdata/src/<importpath>/, type-checks them
// against the standard library via the source importer, runs one
// analyzer, and matches its diagnostics against analysistest-style
// expectations:
//
//	bad()   // want `regexp`
//	bad2()  // want "one" "two"
//
// A `// want` comment expects each quoted regexp to match one
// diagnostic reported on that line; unmatched expectations and
// unexpected diagnostics both fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/xtools/analysis"
)

// Run loads each fixture package below dir/testdata/src and applies the
// analyzer, matching diagnostics against // want comments. dir is
// usually the analyzer package's own directory (use TestdataDir).
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "testdata", "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		diags := runAnalyzer(t, a, pkg)
		checkExpectations(t, a, pkg, diags)
	}
}

// TestdataDir returns the directory of the calling test file, the
// conventional anchor for testdata/.
func TestdataDir(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("linttest: cannot locate caller")
	}
	return filepath.Dir(file)
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
	busy map[string]bool
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		// the source importer type-checks std from GOROOT/src, which
		// works offline (no pre-built export data needed)
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*fixturePkg{},
		busy: map[string]bool{},
	}
}

// Import implements types.Importer: fixture packages shadow everything
// else; the rest resolves through the std source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.busy[path] = true
	defer delete(ld.busy, path)

	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &fixturePkg{path: path, fset: ld.fset, files: files, pkg: tpkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// runAnalyzer executes a (and, recursively, its Requires) over pkg and
// returns the diagnostics a reported.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkg *fixturePkg) []analysis.Diagnostic {
	t.Helper()
	results := map[*analysis.Analyzer]any{}
	var diags []analysis.Diagnostic
	var run func(a *analysis.Analyzer, record bool)
	run = func(a *analysis.Analyzer, record bool) {
		if _, done := results[a]; done {
			return
		}
		for _, req := range a.Requires {
			run(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   map[*analysis.Analyzer]any{},
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkg.path, err)
		}
		results[a] = res
	}
	run(a, true)
	return diags
}

// wantRe matches one `// want "rx"` / `// want `+"`rx`"+“ comment, with
// any number of quoted or backquoted regexps.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	src  string
}

func checkExpectations(t *testing.T, a *analysis.Analyzer, pkg *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, src: pat,
					})
				}
			}
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	// report leftovers deterministically
	var left []string
	for i, w := range wants {
		if !matched[i] {
			left = append(left, fmt.Sprintf("%s:%d: %s", w.file, w.line, w.src))
		}
	}
	sort.Strings(left)
	for _, l := range left {
		t.Errorf("%s: expected diagnostic not reported: %s", a.Name, l)
	}
}
