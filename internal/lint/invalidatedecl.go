package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/xtools/analysis"
)

const invalidatedeclDoc = `require every metric registration to declare invalidation metadata

Prediction reuse (paper §4.2) is only sound because every metric
declares, under predictors:invalidate, which option changes invalidate
its cached results; serve's eviction and the bench's checkpoint skip
both trust that metadata. For every pressio.RegisterMetric call this
analyzer resolves the concrete metric type and checks that its
Configuration method (directly or through same-package helpers) sets
the predictors:invalidate key with at least one invalidation class
(error_dependent, error_agnostic, runtime, nondeterministic, training);
option-key-only lists pin no class and are flagged.`

// InvalidateDecl is the invalidatedecl analyzer.
var InvalidateDecl = &analysis.Analyzer{
	Name: "invalidatedecl",
	Doc:  invalidatedeclDoc,
	Run:  runInvalidateDecl,
}

// cfgInvalidateKey and invalidateClasses mirror the constants in
// internal/pressio; the analyzer matches constant-folded values, so it
// works identically on the real package and on fixture stubs.
const cfgInvalidateKey = "predictors:invalidate"

var invalidateClasses = map[string]bool{
	"predictors:error_dependent":  true,
	"predictors:error_agnostic":   true,
	"predictors:runtime":          true,
	"predictors:nondeterministic": true,
	"predictors:training":         true,
}

func runInvalidateDecl(pass *analysis.Pass) (any, error) {
	idx := newIgnoreIndex(pass, "invalidatedecl")
	decls := funcDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if obj == nil || obj.Name() != "RegisterMetric" ||
				obj.Pkg() == nil || !pkgPathMatches(obj.Pkg().Path(), "internal/pressio") ||
				len(call.Args) < 2 {
				return true
			}
			checkRegistration(pass, idx, decls, call)
			return true
		})
	}
	return nil, nil
}

func checkRegistration(pass *analysis.Pass, idx *ignoreIndex, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) {
	name := "?"
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
		if s, ok := stringConst(tv); ok {
			name = s
		}
	}
	metricType := factoryResultType(pass.TypesInfo, call.Args[1])
	if metricType == nil {
		return // factory too dynamic to resolve; out of this analyzer's reach
	}
	cfg := lookupMethodDecl(pass, decls, metricType, "Configuration")
	if cfg == nil {
		idx.reportf(pass, call.Pos(),
			"metric %q (%s) has no reachable Configuration method declaring %s metadata",
			name, metricType.Obj().Name(), cfgInvalidateKey)
		return
	}
	consts := constStringsIn(pass, decls, cfg)
	if !consts[cfgInvalidateKey] {
		idx.reportf(pass, call.Pos(),
			"metric %q (%s): Configuration never sets %s; stale cached predictions would never be evicted",
			name, metricType.Obj().Name(), cfgInvalidateKey)
		return
	}
	for s := range consts {
		if invalidateClasses[s] {
			return
		}
	}
	idx.reportf(pass, call.Pos(),
		"metric %q (%s): %s lists no invalidation class (error_dependent, error_agnostic, runtime, nondeterministic, or training)",
		name, metricType.Obj().Name(), cfgInvalidateKey)
}

// factoryResultType resolves the concrete named type a metric factory
// returns: a func literal whose return statements yield *T or T, with T
// a named struct type. Returns nil when the factory is too indirect.
func factoryResultType(info *types.Info, factory ast.Expr) *types.Named {
	lit, ok := ast.Unparen(factory).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var named *types.Named
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if named != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		t := info.TypeOf(ret.Results[0])
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if nt, ok := t.(*types.Named); ok {
			if _, isStruct := nt.Underlying().(*types.Struct); isStruct {
				named = nt
			}
		}
		return true
	})
	return named
}

// lookupMethodDecl finds the syntax of typ's method name (value or
// pointer receiver), resolved through the method set so embedding works,
// provided the method is declared in the pass's package.
func lookupMethodDecl(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, typ *types.Named, name string) *ast.FuncDecl {
	ms := types.NewMethodSet(types.NewPointer(typ))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() == name {
			return decls[m]
		}
	}
	return nil
}

// stringConst extracts a constant string value.
func stringConst(tv types.TypeAndValue) (string, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
