// Package lint holds pressiovet, the repo's static-analysis suite: five
// golang.org/x/tools/go/analysis analyzers that mechanically enforce
// invariants the compiler cannot see but the paper's correctness story
// depends on (DESIGN.md §11):
//
//   - opthashcomplete: every exported field of a struct whose Options()
//     feeds opthash.Hash is reachable by the hasher, so new fields cannot
//     silently fall out of checkpoint keys (§4.3 stable indexing).
//   - invalidatedecl: every metric plugin registration declares at least
//     one predictors:invalidate class, so stale predictions are evicted
//     (§4.2 invalidation metadata).
//   - poolescape: values obtained from sync.Pool scratch are not retained
//     past Put or returned to callers (DESIGN.md §10 pooled kernels).
//   - ctxflow: no context.Background()/TODO() inside queue/serve/bench
//     library code; ctx is the first parameter (resilience, §8).
//   - detrand: no bare time.Now()/global math/rand in replay-sensitive
//     paths, keeping seeded fault plans deterministic (§8).
//
// The suite is driven by cmd/pressiovet through the go vet -vettool
// protocol (`make lint`). Intentional violations are suppressed with
//
//	//lint:ignore pressiovet/<analyzer> <justification>
//
// on, or on the line above, the flagged line; the justification is
// mandatory — a directive without one does not suppress anything.
package lint

import "repro/internal/xtools/analysis"

// Analyzers returns the full pressiovet suite in stable order. This is
// the single registration point: cmd/pressiovet drives exactly this set,
// and the meta-test in lint_test.go pins its contents.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		OptHashComplete,
		InvalidateDecl,
		PoolEscape,
		CtxFlow,
		DetRand,
	}
}
