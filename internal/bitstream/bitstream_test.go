package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	var w Writer
	pattern := []uint64{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	var w Writer
	w.WriteBits(0xFF, 4) // only low 4 bits (0xF) should be written
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(4)
	if err != nil || got != 0xF {
		t.Errorf("got %x, err %v; want f", got, err)
	}
}

func TestFullWidthWords(t *testing.T) {
	var w Writer
	vals := []uint64{0, 1, 0xDEADBEEFCAFEF00D, ^uint64(0)}
	for _, v := range vals {
		w.WriteBits(v, 64)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		if got != want {
			t.Errorf("word %d = %x, want %x", i, got, want)
		}
	}
}

func TestBitLen(t *testing.T) {
	var w Writer
	w.WriteBits(0, 3)
	if w.BitLen() != 3 {
		t.Errorf("BitLen = %d, want 3", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 16 {
		t.Errorf("BitLen = %d, want 16", w.BitLen())
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Errorf("expected ErrShortStream, got %v", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Errorf("Remaining = %d, want 16", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Errorf("Remaining = %d, want 11", r.Remaining())
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%200 + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		var w Writer
		for i := range vals {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	var w Writer
	w.WriteBits(123, 0)
	if w.BitLen() != 0 {
		t.Errorf("zero-width write changed BitLen to %d", w.BitLen())
	}
	r := NewReader(nil)
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Errorf("zero-width read = %d, %v", v, err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w Writer
		for j := 0; j < 4096; j++ {
			w.WriteBits(uint64(j), 13)
		}
		w.Bytes()
	}
}

func BenchmarkReadBits(b *testing.B) {
	var w Writer
	for j := 0; j < 4096; j++ {
		w.WriteBits(uint64(j), 13)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for j := 0; j < 4096; j++ {
			if _, err := r.ReadBits(13); err != nil {
				b.Fatal(err)
			}
		}
	}
}
