// Package bitstream implements MSB-first bit-level readers and writers used
// by the entropy-coding stages of the compressors (Huffman in sz3, embedded
// bit-plane coding in zfp).
//
// Writers accumulate into a 64-bit register and spill whole bytes, which
// keeps the per-bit cost low enough that the coding stages are not the
// bottleneck of the compressor pipelines.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrShortStream is returned when a read runs past the end of the stream.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// Writer appends bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, left-aligned at bit position 63-n
	nacc uint   // number of pending bits in acc
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit uint64) {
	w.WriteBits(bit&1, 1)
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 64", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n+w.nacc >= 8 {
		// take enough top bits of v to fill the accumulator to a byte
		take := 8 - w.nacc
		if take > n {
			take = n
		}
		w.acc = (w.acc << take) | (v >> (n - take))
		n -= take
		if n < 64 {
			v &= (1 << n) - 1
		}
		w.nacc += take
		if w.nacc == 8 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc = 0
			w.nacc = 0
		}
	}
	if n > 0 {
		w.acc = (w.acc << n) | v
		w.nacc += n
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The writer may continue to be used; padding bits become part of the
// stream, so call Bytes only once, when encoding is complete.
func (w *Writer) Bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // next byte index
	acc  uint64
	nacc uint
}

// NewReader returns a Reader over buf. The slice is not copied.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint64, error) { return r.ReadBits(1) }

// ReadBits reads n bits MSB-first. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d > 64", n))
	}
	var out uint64
	need := n
	for need > 0 {
		if r.nacc == 0 {
			if r.pos >= len(r.buf) {
				return 0, ErrShortStream
			}
			r.acc = uint64(r.buf[r.pos])
			r.pos++
			r.nacc = 8
		}
		take := need
		if take > r.nacc {
			take = r.nacc
		}
		shift := r.nacc - take
		bits := (r.acc >> shift) & ((1 << take) - 1)
		out = (out << take) | bits
		r.nacc -= take
		if r.nacc == 0 {
			r.acc = 0
		} else {
			r.acc &= (1 << r.nacc) - 1
		}
		need -= take
	}
	return out, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nacc)
}
