// Package bitstream implements MSB-first bit-level readers and writers used
// by the entropy-coding stages of the compressors (Huffman in sz3, embedded
// bit-plane coding in zfp).
//
// Writers accumulate into a 64-bit register and spill eight bytes at a
// time; readers refill a 64-bit register and serve most reads from it
// without touching memory. This keeps the per-bit cost low enough that the
// coding stages are not the bottleneck of the compressor pipelines.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// ErrShortStream is returned when a read runs past the end of the stream.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// Writer appends bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, right-aligned (low nacc bits)
	nacc uint   // number of pending bits in acc, in [0, 64)
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit uint64) {
	bit &= 1
	if w.nacc < 63 {
		w.acc = w.acc<<1 | bit
		w.nacc++
		return
	}
	w.WriteBits(bit, 1)
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 64", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	if free := 64 - w.nacc; n < free {
		w.acc = w.acc<<n | v
		w.nacc += n
		return
	} else if n == free {
		w.spill(w.acc<<(n&63) | v)
		w.acc = 0
		w.nacc = 0
		return
	} else {
		hi := n - free // bits that do not fit the register
		w.spill(w.acc<<(free&63) | v>>hi)
		w.acc = v & ((1 << hi) - 1)
		w.nacc = hi
	}
}

// spill appends a full 64-bit register, MSB first.
func (w *Writer) spill(word uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, word)
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The writer may continue to be used; padding bits become part of the
// stream, so call Bytes only once, when encoding is complete.
func (w *Writer) Bytes() []byte {
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nacc))
	}
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.acc = 0
		w.nacc = 0
	}
	w.acc = 0
	return w.buf
}

// AppendBits appends the first nbits of buf, interpreted as an MSB-first
// bit stream, to the writer. It is the splice primitive behind the
// parallel entropy coders: chunks encoded into separate writers are
// concatenated bit-exactly, so the result is identical to single-writer
// encoding.
func (w *Writer) AppendBits(buf []byte, nbits int) {
	full := nbits >> 3
	rem := uint(nbits & 7)
	if w.nacc == 0 {
		// byte-aligned: whole bytes copy directly
		w.buf = append(w.buf, buf[:full]...)
	} else {
		i := 0
		for ; i+8 <= full; i += 8 {
			w.WriteBits(binary.BigEndian.Uint64(buf[i:]), 64)
		}
		for ; i < full; i++ {
			w.WriteBits(uint64(buf[i]), 8)
		}
	}
	if rem > 0 {
		w.WriteBits(uint64(buf[full]>>(8-rem)), rem)
	}
}

// AppendWriter appends the entire content of o — full bytes plus any
// pending partial bits — to w. o is not modified.
func (w *Writer) AppendWriter(o *Writer) {
	w.AppendBits(o.buf, len(o.buf)*8)
	if o.nacc > 0 {
		w.WriteBits(o.acc, o.nacc)
	}
}

// writerPool recycles Writers (and their grown buffers) across the
// per-chunk encoders of the parallel kernels.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a reset Writer from the shared pool.
func GetWriter() *Writer { return writerPool.Get().(*Writer) }

// PutWriter resets w and returns it to the shared pool. The caller must
// not retain w or any slice previously returned by w.Bytes().
func PutWriter(w *Writer) {
	w.Reset()
	writerPool.Put(w)
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next unread byte index
	acc  uint64 // pending bits, left-aligned at bit 63
	nacc uint   // number of pending bits in acc
}

// NewReader returns a Reader over buf. The slice is not copied.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint64, error) {
	if r.nacc == 0 && !r.refill() {
		return 0, ErrShortStream
	}
	out := r.acc >> 63
	r.acc <<= 1
	r.nacc--
	return out, nil
}

// refill tops the register up to at least 57 pending bits (or the end of
// the stream) and reports whether any bits are pending.
func (r *Reader) refill() bool {
	for r.nacc <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << (56 - r.nacc)
		r.nacc += 8
		r.pos++
	}
	return r.nacc > 0
}

// ReadBits reads n bits MSB-first. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d > 64", n))
	}
	if n == 0 {
		return 0, nil
	}
	if n > 56 {
		// split so a single refill always suffices per part
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	if r.nacc < n {
		r.refill()
		if r.nacc < n {
			return 0, ErrShortStream
		}
	}
	out := r.acc >> ((64 - n) & 63)
	r.acc <<= n
	r.nacc -= n
	return out, nil
}

// ReadZeroRun consumes a run of zero bits terminated by a one bit, as
// produced by unary coders. It returns the number of zeros read. The
// terminating one is consumed unless maxZeros zeros were read first, in
// which case exactly maxZeros bits are consumed (the caller knows the
// terminator is implicit). Runs resolve with leading-zero counts on the
// bit register instead of per-bit reads.
func (r *Reader) ReadZeroRun(maxZeros int) (int, error) {
	total := 0
	for {
		if r.nacc == 0 && !r.refill() {
			return total, ErrShortStream
		}
		z := bits.LeadingZeros64(r.acc)
		if uint(z) > r.nacc {
			z = int(r.nacc) // bits below nacc are padding, not stream zeros
		}
		if total+z >= maxZeros {
			take := uint(maxZeros - total)
			r.acc <<= take
			r.nacc -= take
			return maxZeros, nil
		}
		if uint(z) < r.nacc {
			// found the terminating one within the register
			r.acc <<= uint(z) + 1
			r.nacc -= uint(z) + 1
			return total + z, nil
		}
		// register is all zeros: consume it and refill
		total += z
		r.acc = 0
		r.nacc = 0
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nacc)
}
