package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAppendWriterMatchesSerial pins the splice guarantee the parallel
// entropy coders rely on: encoding a stream in chunks into separate
// writers and splicing them equals encoding serially into one writer.
func TestAppendWriterMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type item struct {
		v uint64
		n uint
	}
	items := make([]item, 5000)
	for i := range items {
		n := uint(rng.Intn(58) + 1)
		items[i] = item{v: rng.Uint64() & ((1 << n) - 1), n: n}
	}

	var serial Writer
	for _, it := range items {
		serial.WriteBits(it.v, it.n)
	}
	want := serial.Bytes()

	for _, chunks := range []int{1, 2, 3, 7, 16} {
		var spliced Writer
		per := (len(items) + chunks - 1) / chunks
		for lo := 0; lo < len(items); lo += per {
			hi := lo + per
			if hi > len(items) {
				hi = len(items)
			}
			w := GetWriter()
			for _, it := range items[lo:hi] {
				w.WriteBits(it.v, it.n)
			}
			spliced.AppendWriter(w)
			PutWriter(w)
		}
		if got := spliced.Bytes(); !bytes.Equal(got, want) {
			t.Fatalf("chunks=%d: spliced stream differs from serial (%d vs %d bytes)", chunks, len(got), len(want))
		}
	}
}

func TestAppendBitsPartial(t *testing.T) {
	// append 13 of 16 bits from a buffer into a writer already holding 3
	// bits, crossing every alignment case
	var w Writer
	w.WriteBits(0b101, 3)
	w.AppendBits([]byte{0xAB, 0xCD}, 13)
	got := w.Bytes()
	var ref Writer
	ref.WriteBits(0b101, 3)
	ref.WriteBits(0xABCD>>3, 13)
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("AppendBits partial: got %x, want %x", got, ref.Bytes())
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(1, 3)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d, want 0", w.BitLen())
	}
	w.WriteBits(0xA5, 8)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xA5 {
		t.Fatalf("post-Reset write: got %x", got)
	}
}
