// Package bench is the LibPressio-Predict-Bench driver (paper §4.3): it
// schedules metric/target observations over the distributed task queue
// with data-locality placement, checkpoints each result into the embedded
// store under stable option-structure hashes, and evaluates prediction
// schemes with (group) k-fold cross-validation, producing the paper's
// Table-2 report: per-stage times (error-dependent, error-agnostic,
// training, fit, inference) and MedAPE per (scheme, compressor), plus the
// compressor baselines.
package bench

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	_ "repro/internal/compressor/lossless" // register compressor plugins
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hurricane"
	_ "repro/internal/metrics" // register metric plugins
	"repro/internal/mlkit"
	"repro/internal/opthash"
	"repro/internal/predictors"
	"repro/internal/pressio"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/store"
)

// Spec configures a bench run. Zero values select the paper's setup
// scaled to the synthetic dataset.
type Spec struct {
	// Fields of the Hurricane dataset (default: all 13).
	Fields []string
	// Steps is the number of timesteps (default 48).
	Steps int
	// Dims is the 3-D grid (default hurricane.DefaultDims).
	Dims []int
	// Compressors under prediction (default sz3, zfp).
	Compressors []string
	// Bounds are the absolute error bounds (default 1e-6 and 1e-4).
	Bounds []float64
	// Schemes to evaluate (default khan2023, jin2022, rahman2023 — the
	// three the paper ports).
	Schemes []string
	// Folds for cross-validation (default 10).
	Folds int
	// Workers for the task queue (default 4).
	Workers int
	// StoreDir enables checkpointing when non-empty.
	StoreDir string
	// Retries is the per-task retry budget (default 2; negative for
	// none).
	Retries int
	// TaskTimeout bounds each observation attempt; a hung attempt is
	// abandoned and retried elsewhere (0 = no deadline). When remote
	// workers are in play it also bounds each RPC round trip.
	TaskTimeout time.Duration
	// FaultPlan scripts deterministic failures across the queue, RPC
	// pool, and checkpoint store (tests and resilience drills).
	FaultPlan *faultinject.Plan
	// FailureRate injects random worker faults with this probability
	// (tests only); shorthand for a rate rule in FaultPlan.
	FailureRate float64
	// Seed drives fold assignment and failure injection.
	Seed int64
	// InSample switches cross-validation from the paper's out-of-sample
	// grouping (all timesteps of a field stay together) to plain k-fold,
	// where a field's other timesteps may appear in training — the
	// "best-case" evaluation of the paper's future-work item (1).
	InSample bool
	// Target selects what schemes predict: "cr" (default, compression
	// ratio) or "bandwidth" (compression throughput in MB/s) — the
	// paper's future-work item (4). Bandwidth is a runtime,
	// nondeterministic target, so pair it with Replicates > 1.
	Target string
	// Replicates repeats the compressor run per cell and averages the
	// runtime observations (default 1) — the refinement nondeterministic
	// metrics need (paper §4.2, predictors:nondeterministic).
	Replicates int
	// RemoteWorkers lists TCP worker endpoints (host:port) running
	// ServeWorker; when non-empty, observation cells execute remotely
	// with queue worker slots pinned round-robin to endpoints.
	RemoteWorkers []string
	// Progress, when non-nil, receives one line per completed task plus
	// a final queue summary. It is called concurrently from worker
	// goroutines and must be safe for concurrent use.
	Progress func(string)

	// poolCfg overrides the remote pool tuning (in-package tests only).
	poolCfg *poolConfig
}

// Target values.
const (
	TargetCR        = "cr"
	TargetBandwidth = "bandwidth"
)

func (s *Spec) defaults() {
	if len(s.Fields) == 0 {
		s.Fields = hurricane.FieldNames
	}
	if s.Steps <= 0 {
		s.Steps = hurricane.Timesteps
	}
	if len(s.Dims) == 0 {
		s.Dims = hurricane.DefaultDims
	}
	if len(s.Compressors) == 0 {
		s.Compressors = []string{"sz3", "zfp"}
	}
	if len(s.Bounds) == 0 {
		s.Bounds = []float64{1e-6, 1e-4}
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{"khan2023", "jin2022", "rahman2023"}
	}
	if s.Folds <= 0 {
		s.Folds = 10
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Target == "" {
		s.Target = TargetCR
	}
	if s.Replicates <= 0 {
		s.Replicates = 1
	}
}

// Observation is one checkpointable unit: every metric result and the
// compressor target for one (field, step, bound, compressor) cell.
type Observation struct {
	Field      string
	Step       int
	Bound      float64
	Compressor string

	Features     map[string]float64
	MetricMS     map[string]float64 // metric name → wall ms
	CR           float64
	CompressMS   float64 // mean over replicates
	DecompressMS float64 // mean over replicates
	ByteSize     int     // uncompressed bytes (for bandwidth targets)
	Replicates   int
}

// BandwidthMBps returns the observed compression throughput.
func (ob *Observation) BandwidthMBps() float64 {
	if ob.CompressMS <= 0 {
		return 0
	}
	return float64(ob.ByteSize) / (1 << 20) / (ob.CompressMS / 1e3)
}

// TargetValue returns the value a scheme predicts under the given target.
func (ob *Observation) TargetValue(target string) float64 {
	if target == TargetBandwidth {
		return ob.BandwidthMBps()
	}
	return ob.CR
}

// featureMetricsFor returns the union of feature metrics the evaluated
// schemes need for a compressor, so each cell is observed exactly once
// even when several schemes share metrics (the reuse the paper's
// challenge #1 asks for).
func featureMetricsFor(schemes []string, compressor string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, name := range schemes {
		sch, err := core.GetScheme(name)
		if err != nil {
			return nil, err
		}
		if !sch.Supports(compressor) {
			continue
		}
		for _, m := range sch.Metrics() {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// observe computes one cell: data generation, each metric (individually
// timed), and the compressor target.
func observe(spec *Spec, field string, step int, bound float64, compressor string, metricNames []string) (*Observation, error) {
	data, err := hurricane.Field(field, step, spec.Dims)
	if err != nil {
		return nil, err
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, bound)
	opts.Set(predictors.OptTaoCompressor, compressor)
	opts.Set(predictors.OptKhanCompressor, compressor)

	ob := &Observation{
		Field: field, Step: step, Bound: bound, Compressor: compressor,
		Features: map[string]float64{},
		MetricMS: map[string]float64{},
	}
	for _, name := range metricNames {
		m, err := pressio.GetMetric(name)
		if err != nil {
			return nil, err
		}
		if err := m.SetOptions(opts); err != nil {
			return nil, fmt.Errorf("metric %s: %w", name, err)
		}
		start := now()
		m.BeginCompress(data)
		ob.MetricMS[name] = now().Sub(start).Seconds() * 1e3
		for k, v := range m.Results() {
			switch t := v.(type) {
			case float64:
				ob.Features[k] = t
			case int64:
				ob.Features[k] = float64(t)
			}
		}
	}
	// runtime observations are nondeterministic: average over replicates
	var cms, dms float64
	for r := 0; r < spec.Replicates; r++ {
		cr, c, d, err := core.ObserveTarget(compressor, data, opts)
		if err != nil {
			return nil, err
		}
		ob.CR = cr
		cms += c
		dms += d
	}
	ob.CompressMS = cms / float64(spec.Replicates)
	ob.DecompressMS = dms / float64(spec.Replicates)
	ob.ByteSize = data.ByteSize()
	ob.Replicates = spec.Replicates
	return ob, nil
}

// cellKey builds the stable checkpoint key of one cell from its
// compressor configuration, dataset configuration, and experiment
// metadata — the hashing scheme of §4.3.
func cellKey(spec *Spec, field string, step int, bound float64, compressor string) string {
	compOpts := pressio.Options{}
	compOpts.Set("compressor", compressor)
	compOpts.Set(pressio.OptAbs, bound)
	dataOpts := pressio.Options{}
	dataOpts.Set("dataset:field", field)
	dataOpts.Set("dataset:timestep", int64(step))
	dataOpts.Set("dataset:dims", dimsString(spec.Dims))
	expOpts := pressio.Options{}
	expOpts.Set("experiment", "table2")
	expOpts.Set("replicates", int64(spec.Replicates))
	return "cell/" + opthash.Combine(compOpts, dataOpts, expOpts)
}

func dimsString(dims []int) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s
}

func encodeObservation(ob *Observation) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ob)
	return buf.Bytes(), err
}

func decodeObservation(b []byte) (*Observation, error) {
	var ob Observation
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ob)
	return &ob, err
}

// failKey is the checkpoint key recording a cell's last failure.
func failKey(cellKey string) string { return "fail/" + cellKey }

// CellFailure records one observation cell the run could not complete.
type CellFailure struct {
	Key        string
	Field      string
	Step       int
	Bound      float64
	Compressor string
	Attempts   int
	Err        string
}

// CollectResult is the full outcome of the observation phase: the
// surviving observations plus everything an operator needs to reason
// about a degraded run.
type CollectResult struct {
	Observations []*Observation
	Failed       []CellFailure
	QueueStats   queue.Stats
	Pool         *PoolStats // nil for local runs
}

// Collect runs the observation phase: every cell through the queue with
// checkpoint skip and locality placement, returning all observations.
// It degrades gracefully — cells that exhaust their retries are dropped
// (recorded in the checkpoint store when one is configured) and the
// survivors returned; it errors only when nothing survives.
func Collect(ctx context.Context, spec *Spec) ([]*Observation, error) {
	res, err := CollectDetailed(ctx, spec)
	if err != nil {
		return nil, err
	}
	return res.Observations, nil
}

// CollectDetailed is Collect with whole-run cancellation and the full
// resilience picture: failed cells, queue statistics, and remote-pool
// breaker state. Cancelling ctx stops scheduling; already-finished cells
// stay checkpointed so a rerun resumes where this one stopped.
func CollectDetailed(ctx context.Context, spec *Spec) (*CollectResult, error) {
	spec.defaults()

	plan := spec.FaultPlan
	if plan == nil && spec.FailureRate > 0 {
		plan = faultinject.New(uint64(spec.Seed), faultinject.Rule{
			Op: faultinject.OpTask, Kind: faultinject.KindError,
			Worker: -1, Rate: spec.FailureRate,
		})
	}

	var st *store.Store
	if spec.StoreDir != "" {
		var err error
		st, err = store.Open(spec.StoreDir)
		if err != nil {
			return nil, err
		}
		st.Inject = plan
		defer st.Close()
	}

	// restore checkpointed cells
	completed := map[string]bool{}
	var mu sync.Mutex
	results := map[string]*Observation{}
	if st != nil {
		keys, err := st.Keys("cell/")
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			raw, ok, err := st.Get(k)
			if err != nil || !ok {
				continue
			}
			ob, err := decodeObservation(raw)
			if err != nil {
				continue // treat as missing; it will be recomputed
			}
			completed[k] = true
			results[k] = ob
		}
	}

	q := queue.New(queue.Config{
		Workers:     spec.Workers,
		Retries:     spec.Retries,
		Completed:   completed,
		TaskTimeout: spec.TaskTimeout,
		Inject:      plan,
		Seed:        uint64(spec.Seed),
	})
	var pool *remotePool
	if len(spec.RemoteWorkers) > 0 {
		cfg := poolConfig{Inject: plan}
		if spec.poolCfg != nil {
			cfg = *spec.poolCfg
			if cfg.Inject == nil {
				cfg.Inject = plan
			}
		}
		if spec.TaskTimeout > 0 && cfg.CallTimeout == 0 {
			cfg.CallTimeout = spec.TaskTimeout
		}
		pool = newRemotePool(spec.RemoteWorkers, cfg)
		defer pool.close()
	}
	type cellMeta struct {
		field      string
		step       int
		bound      float64
		compressor string
	}
	meta := map[string]cellMeta{}
	var keys []string
	for _, compressor := range spec.Compressors {
		metricNames, err := featureMetricsFor(spec.Schemes, compressor)
		if err != nil {
			return nil, err
		}
		for _, bound := range spec.Bounds {
			for _, field := range spec.Fields {
				for step := 0; step < spec.Steps; step++ {
					key := cellKey(spec, field, step, bound, compressor)
					keys = append(keys, key)
					meta[key] = cellMeta{field, step, bound, compressor}
					field, step, bound, compressor := field, step, bound, compressor
					mn := metricNames
					err := q.Add(queue.Task{
						ID:      key,
						DataKey: fmt.Sprintf("%s/%d", field, step),
						Run: func(_ context.Context, worker int) error {
							var ob *Observation
							var err error
							if pool != nil {
								ob, err = pool.observeRemote(worker, ObserveArgs{
									Dims:        spec.Dims,
									Replicates:  spec.Replicates,
									Field:       field,
									Step:        step,
									Bound:       bound,
									Compressor:  compressor,
									MetricNames: mn,
								})
							} else {
								ob, err = observe(spec, field, step, bound, compressor, mn)
							}
							if err != nil {
								return err
							}
							mu.Lock()
							results[key] = ob
							mu.Unlock()
							if st != nil {
								raw, err := encodeObservation(ob)
								if err != nil {
									return err
								}
								if err := st.Put(key, raw); err != nil {
									return err
								}
								// a success supersedes any failure record
								// from an earlier run
								st.Delete(failKey(key))
							}
							if spec.Progress != nil {
								spec.Progress(fmt.Sprintf("%s %s t%02d abs=%g cr=%.2f",
									compressor, field, step, bound, ob.CR))
							}
							return nil
						},
					})
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// degrade gracefully: record failed cells (checkpointed with their
	// error so a restarted run retries exactly these) and keep going
	// with the survivors
	qResults := q.Run(ctx)
	res := &CollectResult{QueueStats: q.Stats()}
	if pool != nil {
		ps := pool.stats()
		res.Pool = &ps
	}
	for _, key := range keys {
		r := qResults[key]
		if r == nil || r.Err == nil {
			continue
		}
		m := meta[key]
		cf := CellFailure{
			Key: key, Field: m.field, Step: m.step, Bound: m.bound,
			Compressor: m.compressor, Attempts: r.Attempts, Err: r.Err.Error(),
		}
		res.Failed = append(res.Failed, cf)
		if st != nil {
			// best effort: the store may itself be the injected casualty
			st.Put(failKey(key), []byte(cf.Err))
		}
		if spec.Progress != nil {
			spec.Progress(fmt.Sprintf("FAILED %s %s t%02d abs=%g after %d attempts: %v",
				m.compressor, m.field, m.step, m.bound, r.Attempts, r.Err))
		}
	}
	if spec.Progress != nil {
		qs := res.QueueStats
		spec.Progress(fmt.Sprintf(
			"queue: %d tasks (%d from checkpoint), %d retried, %d failed, %d timed out, %d locality hits",
			qs.Tasks, qs.Skipped, qs.Retried, qs.Failed, qs.TimedOut, qs.LocalityHits))
		if res.Pool != nil {
			for _, ep := range res.Pool.Endpoints {
				spec.Progress(fmt.Sprintf("endpoint %s: %d calls, %d failures, breaker %s %v",
					ep.Addr, ep.Calls, ep.Failures, ep.State, ep.Transitions))
			}
			if res.Pool.Repins > 0 {
				spec.Progress(fmt.Sprintf("pool: %d worker-slot re-pins (failover)", res.Pool.Repins))
			}
		}
	}
	for _, k := range keys {
		ob, ok := results[k]
		if !ok {
			continue // failed cell: degraded, not fatal
		}
		res.Observations = append(res.Observations, ob)
	}
	if len(res.Observations) == 0 && len(res.Failed) > 0 {
		first := res.Failed[0]
		return nil, fmt.Errorf("bench: no cell survived (%d failed; first: %s: %s)",
			len(res.Failed), first.Key, first.Err)
	}
	return res, nil
}

type meanStd struct {
	Mean, Std float64
	N         int
}

func summarize(xs []float64) meanStd {
	return meanStd{Mean: stats.Mean(xs), Std: stats.Std(xs), N: len(xs)}
}

// BaselineRow is a compressor row of Table 2.
type BaselineRow struct {
	Compressor string
	Compress   meanStd
	Decompress meanStd
}

// MethodRow is a scheme row of Table 2.
type MethodRow struct {
	Compressor string
	Scheme     string
	Method     string // citation label

	ErrDep      meanStd
	HasErrDep   bool
	ErrAgn      meanStd
	HasErrAgn   bool
	Training    meanStd
	HasTraining bool
	Fit         meanStd
	HasFit      bool
	Infer       meanStd
	HasInfer    bool

	MedAPE    float64
	HasMedAPE bool
	Supported bool
}

// Report is the full Table-2 reproduction. Failed lists observation
// cells the run could not complete (graceful degradation): the rows are
// computed over the surviving cells only.
type Report struct {
	Baselines []BaselineRow
	Rows      []MethodRow
	Failed    []CellFailure
}

// Evaluate turns observations into the Table-2 report using group k-fold
// cross-validation (grouped by field, the paper's out-of-sample setting).
func Evaluate(spec *Spec, obs []*Observation) (*Report, error) {
	spec.defaults()
	report := &Report{}

	byComp := map[string][]*Observation{}
	for _, ob := range obs {
		byComp[ob.Compressor] = append(byComp[ob.Compressor], ob)
	}

	for _, compressor := range spec.Compressors {
		cobs := byComp[compressor]
		if len(cobs) == 0 {
			continue
		}
		var cms, dms []float64
		for _, ob := range cobs {
			cms = append(cms, ob.CompressMS)
			dms = append(dms, ob.DecompressMS)
		}
		report.Baselines = append(report.Baselines, BaselineRow{
			Compressor: compressor,
			Compress:   summarize(cms),
			Decompress: summarize(dms),
		})

		for _, schemeName := range spec.Schemes {
			row, err := evaluateScheme(spec, schemeName, compressor, cobs)
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, *row)
		}
	}
	return report, nil
}

// Run is Collect + Evaluate.
func Run(ctx context.Context, spec *Spec) (*Report, error) {
	return RunContext(ctx, spec)
}

// RunContext is Run with whole-run cancellation: on ctx cancellation the
// observation phase stops, finished cells stay checkpointed, and the
// report is evaluated over the surviving observations with the failed
// cells marked.
func RunContext(ctx context.Context, spec *Spec) (*Report, error) {
	res, err := CollectDetailed(ctx, spec)
	if err != nil {
		return nil, err
	}
	report, err := Evaluate(spec, res.Observations)
	if err != nil {
		return nil, err
	}
	report.Failed = res.Failed
	return report, nil
}

func evaluateScheme(spec *Spec, schemeName, compressor string, cobs []*Observation) (*MethodRow, error) {
	scheme, err := core.GetScheme(schemeName)
	if err != nil {
		return nil, err
	}
	row := &MethodRow{
		Compressor: compressor,
		Scheme:     schemeName,
		Method:     scheme.Info().Method,
	}
	if !scheme.Supports(compressor) {
		return row, nil // all N/A, like zfp sian in Table 2
	}
	row.Supported = true

	// stage times from per-metric timings
	var errDep, errAgn []float64
	stageByMetric := map[string]core.Stage{}
	for _, mn := range scheme.Metrics() {
		m, err := pressio.GetMetric(mn)
		if err != nil {
			return nil, err
		}
		stageByMetric[mn] = core.StageOf(m)
	}
	for _, ob := range cobs {
		var dep, agn float64
		hasDep, hasAgn := false, false
		for _, mn := range scheme.Metrics() {
			ms, ok := ob.MetricMS[mn]
			if !ok {
				continue
			}
			if stageByMetric[mn] == core.StageErrorAgnostic {
				agn += ms
				hasAgn = true
			} else {
				dep += ms
				hasDep = true
			}
		}
		if hasDep {
			errDep = append(errDep, dep)
		}
		if hasAgn {
			errAgn = append(errAgn, agn)
		}
	}
	if len(errDep) > 0 {
		row.ErrDep = summarize(errDep)
		row.HasErrDep = true
	}
	if len(errAgn) > 0 {
		row.ErrAgn = summarize(errAgn)
		row.HasErrAgn = true
	}

	// feature matrix and targets
	featureKeys := scheme.Features()
	x := make([][]float64, len(cobs))
	y := make([]float64, len(cobs))
	groups := make([]string, len(cobs))
	for i, ob := range cobs {
		fv := make([]float64, len(featureKeys))
		for j, k := range featureKeys {
			v, ok := ob.Features[k]
			if !ok {
				return nil, fmt.Errorf("bench: observation %s/%d missing feature %s", ob.Field, ob.Step, k)
			}
			fv[j] = v
		}
		x[i] = fv
		y[i] = ob.TargetValue(spec.Target)
		groups[i] = ob.Field
	}

	pred0, err := scheme.NewPredictor(compressor)
	if err != nil {
		return nil, err
	}

	if !pred0.Trains() && spec.Target != TargetCR {
		// calculation schemes compute a CR, not a bandwidth: N/A row
		row.Supported = false
		return row, nil
	}

	if !pred0.Trains() {
		// calculation/trial methods: prediction is the metric value
		preds := make([]float64, len(x))
		for i := range x {
			v, err := pred0.Predict(x[i])
			if err != nil {
				return nil, err
			}
			preds[i] = v
		}
		row.MedAPE = stats.MedAPE(preds, y)
		row.HasMedAPE = true
		return row, nil
	}

	// trained schemes: cross-validation with fit/inference timed.
	// Out-of-sample (the paper's setting) groups folds by field;
	// in-sample (future-work #1) mixes timesteps freely.
	var trains, tests [][]int
	if spec.InSample {
		trains, tests = mlkit.KFold(len(cobs), spec.Folds, spec.Seed)
	} else {
		trains, tests = mlkit.GroupKFold(groups, spec.Folds, spec.Seed)
	}
	var fitTimes, inferTimes []float64
	var allPreds, allActuals []float64
	var training []float64
	for _, ob := range cobs {
		training = append(training, ob.CompressMS)
	}
	row.Training = summarize(training)
	row.HasTraining = true

	for f := range trains {
		p, err := scheme.NewPredictor(compressor)
		if err != nil {
			return nil, err
		}
		tx := make([][]float64, len(trains[f]))
		ty := make([]float64, len(trains[f]))
		for i, idx := range trains[f] {
			tx[i] = x[idx]
			ty[i] = y[idx]
		}
		start := now()
		if err := p.Fit(tx, ty); err != nil {
			return nil, fmt.Errorf("bench: %s fold %d fit: %w", schemeName, f, err)
		}
		fitTimes = append(fitTimes, now().Sub(start).Seconds()*1e3)
		for _, idx := range tests[f] {
			start := now()
			v, err := p.Predict(x[idx])
			if err != nil {
				return nil, err
			}
			inferTimes = append(inferTimes, now().Sub(start).Seconds()*1e3)
			allPreds = append(allPreds, v)
			allActuals = append(allActuals, y[idx])
		}
	}
	row.Fit = summarize(fitTimes)
	row.HasFit = true
	row.Infer = summarize(inferTimes)
	row.HasInfer = true
	row.MedAPE = stats.MedAPE(allPreds, allActuals)
	row.HasMedAPE = true
	return row, nil
}

// fmtMS renders mean ± std in Table-2 style.
func fmtMS(m meanStd) string {
	return fmt.Sprintf("%.3g ± %.2g", m.Mean, m.Std)
}

func orNA(has bool, m meanStd) string {
	if !has {
		return "N/A"
	}
	return fmtMS(m)
}

// Table2 renders the report as an aligned text table mirroring the
// paper's Table 2.
func (r *Report) Table2() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-18s %-18s %-18s %-18s %-18s %-16s %-28s %-10s\n",
		"method", "ErrDep (ms)", "ErrAgn (ms)", "Training (ms)", "Fit (ms)", "Inference (ms)", "Compress/Decompress (ms)", "MedAPE (%)")
	for _, base := range r.Baselines {
		fmt.Fprintf(&b, "%-18s %-18s %-18s %-18s %-18s %-16s %-28s %-10s\n",
			base.Compressor, "", "", "", "", "",
			fmt.Sprintf("%s / %s", fmtMS(base.Compress), fmtMS(base.Decompress)), "")
		for _, row := range r.Rows {
			if row.Compressor != base.Compressor {
				continue
			}
			medape := "N/A"
			if row.HasMedAPE {
				medape = fmt.Sprintf("%.2f", row.MedAPE)
			}
			fmt.Fprintf(&b, "%-18s %-18s %-18s %-18s %-18s %-16s %-28s %-10s\n",
				base.Compressor+" "+row.Method,
				orNA(row.HasErrDep, row.ErrDep),
				orNA(row.HasErrAgn, row.ErrAgn),
				orNA(row.HasTraining, row.Training),
				orNA(row.HasFit, row.Fit),
				orNA(row.HasInfer, row.Infer),
				"", medape)
		}
	}
	if len(r.Failed) > 0 {
		fmt.Fprintf(&b, "\nWARNING: %d cell(s) failed; rows above cover surviving observations only\n", len(r.Failed))
		for _, f := range r.Failed {
			fmt.Fprintf(&b, "  failed: %s %s t%02d abs=%g (%d attempts): %s\n",
				f.Compressor, f.Field, f.Step, f.Bound, f.Attempts, f.Err)
		}
	}
	return b.String()
}

// Table1 renders the estimation-method taxonomy (paper Table 1) from the
// scheme registry plus the surveyed-only rows.
func Table1() string {
	var b bytes.Buffer
	bool2 := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(&b, "%-16s %-9s %-9s %-10s %-9s %-14s %-17s %-16s\n",
		"method", "training", "sampling", "black-box", "goal", "metrics", "approach", "features")
	var infos []core.Info
	for _, name := range core.SchemeNames() {
		s, err := core.GetScheme(name)
		if err != nil {
			continue
		}
		info := s.Info()
		if info.Method == "" {
			continue // test fixtures
		}
		infos = append(infos, info)
	}
	infos = append(infos, predictors.SurveyedInfo()...)
	sort.Slice(infos, func(i, j int) bool { return infos[i].Method < infos[j].Method })
	for _, info := range infos {
		fmt.Fprintf(&b, "%-16s %-9s %-9s %-10s %-9s %-14s %-17s %-16s\n",
			info.Method, bool2(info.Training), bool2(info.Sampling), info.BlackBox,
			info.Goal, info.Metrics, info.Approach, info.Features)
	}
	return b.String()
}

// MedAPEOnly recomputes just the quality number for a scheme from
// observations — used by ablation tooling.
func MedAPEOnly(spec *Spec, schemeName, compressor string, obs []*Observation) (float64, error) {
	var cobs []*Observation
	for _, ob := range obs {
		if ob.Compressor == compressor {
			cobs = append(cobs, ob)
		}
	}
	row, err := evaluateScheme(spec, schemeName, compressor, cobs)
	if err != nil {
		return 0, err
	}
	if !row.HasMedAPE {
		return math.NaN(), nil
	}
	return row.MedAPE, nil
}

// CSV renders the report machine-readably (for plotting/regression
// tracking): one row per (compressor, scheme) plus baseline rows, with
// empty cells for N/A.
func (r *Report) CSV() string {
	var b bytes.Buffer
	w := csv.NewWriter(&b)
	w.Write([]string{
		"compressor", "scheme", "method",
		"errdep_ms_mean", "errdep_ms_std",
		"erragn_ms_mean", "erragn_ms_std",
		"training_ms_mean", "training_ms_std",
		"fit_ms_mean", "fit_ms_std",
		"infer_ms_mean", "infer_ms_std",
		"compress_ms_mean", "compress_ms_std",
		"decompress_ms_mean", "decompress_ms_std",
		"medape_pct",
	})
	cell := func(has bool, v float64) string {
		if !has {
			return ""
		}
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
	for _, base := range r.Baselines {
		w.Write([]string{
			base.Compressor, "", "baseline",
			"", "", "", "", "", "", "", "", "", "",
			cell(true, base.Compress.Mean), cell(true, base.Compress.Std),
			cell(true, base.Decompress.Mean), cell(true, base.Decompress.Std),
			"",
		})
	}
	for _, row := range r.Rows {
		w.Write([]string{
			row.Compressor, row.Scheme, row.Method,
			cell(row.HasErrDep, row.ErrDep.Mean), cell(row.HasErrDep, row.ErrDep.Std),
			cell(row.HasErrAgn, row.ErrAgn.Mean), cell(row.HasErrAgn, row.ErrAgn.Std),
			cell(row.HasTraining, row.Training.Mean), cell(row.HasTraining, row.Training.Std),
			cell(row.HasFit, row.Fit.Mean), cell(row.HasFit, row.Fit.Std),
			cell(row.HasInfer, row.Infer.Mean), cell(row.HasInfer, row.Infer.Std),
			"", "", "", "",
			cell(row.HasMedAPE, row.MedAPE),
		})
	}
	w.Flush()
	return b.String()
}

// Scatter renders per-cell predicted-vs-actual pairs for one (scheme,
// compressor) as CSV — the raw data behind a prediction-quality scatter
// plot. Trained schemes are fitted out-of-sample with the spec's fold
// grouping first, so every point is a held-out prediction.
func Scatter(spec *Spec, schemeName, compressor string, obs []*Observation) (string, error) {
	spec.defaults()
	scheme, err := core.GetScheme(schemeName)
	if err != nil {
		return "", err
	}
	if !scheme.Supports(compressor) {
		return "", fmt.Errorf("bench: %s does not support %s", schemeName, compressor)
	}
	var cobs []*Observation
	for _, ob := range obs {
		if ob.Compressor == compressor {
			cobs = append(cobs, ob)
		}
	}
	if len(cobs) == 0 {
		return "", fmt.Errorf("bench: no observations for %s", compressor)
	}

	featureKeys := scheme.Features()
	x := make([][]float64, len(cobs))
	y := make([]float64, len(cobs))
	groups := make([]string, len(cobs))
	for i, ob := range cobs {
		fv := make([]float64, len(featureKeys))
		for j, k := range featureKeys {
			fv[j] = ob.Features[k]
		}
		x[i] = fv
		y[i] = ob.TargetValue(spec.Target)
		groups[i] = ob.Field
	}

	preds := make([]float64, len(cobs))
	p0, err := scheme.NewPredictor(compressor)
	if err != nil {
		return "", err
	}
	if !p0.Trains() {
		for i := range x {
			preds[i], err = p0.Predict(x[i])
			if err != nil {
				return "", err
			}
		}
	} else {
		var trains, tests [][]int
		if spec.InSample {
			trains, tests = mlkit.KFold(len(cobs), spec.Folds, spec.Seed)
		} else {
			trains, tests = mlkit.GroupKFold(groups, spec.Folds, spec.Seed)
		}
		for f := range trains {
			p, err := scheme.NewPredictor(compressor)
			if err != nil {
				return "", err
			}
			tx := make([][]float64, len(trains[f]))
			ty := make([]float64, len(trains[f]))
			for i, idx := range trains[f] {
				tx[i] = x[idx]
				ty[i] = y[idx]
			}
			if err := p.Fit(tx, ty); err != nil {
				return "", err
			}
			for _, idx := range tests[f] {
				preds[idx], err = p.Predict(x[idx])
				if err != nil {
					return "", err
				}
			}
		}
	}

	var b bytes.Buffer
	w := csv.NewWriter(&b)
	w.Write([]string{"field", "step", "bound", "actual", "predicted", "ape_pct"})
	for i, ob := range cobs {
		ape := math.NaN()
		if y[i] != 0 {
			ape = math.Abs(preds[i]-y[i]) / y[i] * 100
		}
		w.Write([]string{
			ob.Field,
			strconv.Itoa(ob.Step),
			strconv.FormatFloat(ob.Bound, 'g', -1, 64),
			strconv.FormatFloat(y[i], 'g', 6, 64),
			strconv.FormatFloat(preds[i], 'g', 6, 64),
			strconv.FormatFloat(ape, 'g', 4, 64),
		})
	}
	w.Flush()
	return b.String(), nil
}

// StoreInfo summarizes a checkpoint directory: how many cells are
// checkpointed and the store's physical state — the "what will a restart
// skip" introspection for operators.
func StoreInfo(dir string) (string, error) {
	st, err := store.Open(dir)
	if err != nil {
		return "", err
	}
	defer st.Close()
	keys, err := st.Keys("cell/")
	if err != nil {
		return "", err
	}
	var byCompBound map[string]int
	byCompBound = map[string]int{}
	var bytes int
	for _, k := range keys {
		raw, ok, err := st.Get(k)
		if err != nil || !ok {
			continue
		}
		bytes += len(raw)
		if ob, err := decodeObservation(raw); err == nil {
			byCompBound[fmt.Sprintf("%s abs=%g", ob.Compressor, ob.Bound)]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint store %s\n", dir)
	fmt.Fprintf(&b, "  cells: %d (%d KiB of observations)\n", len(keys), bytes/1024)
	if failKeys, err := st.Keys("fail/"); err == nil && len(failKeys) > 0 {
		fmt.Fprintf(&b, "  failed cells awaiting retry: %d\n", len(failKeys))
		for _, fk := range failKeys {
			if raw, ok, _ := st.Get(fk); ok {
				fmt.Fprintf(&b, "    %s: %s\n", strings.TrimPrefix(fk, "fail/"), raw)
			}
		}
	}
	groups := make([]string, 0, len(byCompBound))
	for g := range byCompBound {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Fprintf(&b, "  %-24s %d cells\n", g, byCompBound[g])
	}
	return b.String(), nil
}
