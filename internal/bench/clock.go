package bench

import "time"

// now is the package clock for measured phases (collection, evaluation,
// ablation timing). It is a variable, not a call to time.Now, so tests
// that replay recorded fault schedules can substitute a deterministic
// clock; the remote pool carries its own injectable poolConfig.Clock.
var now = time.Now
