package bench

import (
	"bytes"
	"fmt"

	"repro/internal/hurricane"
	"repro/internal/predictors"
	"repro/internal/pressio"
	"repro/internal/stats"
)

// AblationSVD reproduces the §6 discussion of Underwood 2023: its
// error-dependent metric (quantized entropy) is cheap, but the
// error-agnostic SVD truncation precompute dominates (the paper reports
// ~43 ms vs ~771 ms), making the scheme best when one evaluation
// amortizes over many predictions. Returns a small report of the two
// stage costs measured on `reps` fields.
func AblationSVD(spec *Spec, reps int) (string, error) {
	spec.defaults()
	if reps <= 0 {
		reps = 8
	}
	var svdMS, qentMS []float64
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, spec.Bounds[0])
	for i := 0; i < reps; i++ {
		field := spec.Fields[i%len(spec.Fields)]
		data, err := hurricane.Field(field, i%spec.Steps, spec.Dims)
		if err != nil {
			return "", err
		}
		svd, err := pressio.GetMetric("svd_trunc")
		if err != nil {
			return "", err
		}
		start := now()
		svd.BeginCompress(data)
		svdMS = append(svdMS, now().Sub(start).Seconds()*1e3)

		qent, err := pressio.GetMetric("quantized_entropy")
		if err != nil {
			return "", err
		}
		if err := qent.SetOptions(opts); err != nil {
			return "", err
		}
		start = now()
		qent.BeginCompress(data)
		qentMS = append(qentMS, now().Sub(start).Seconds()*1e3)
	}
	svdStat := summarize(svdMS)
	qentStat := summarize(qentMS)
	var b bytes.Buffer
	fmt.Fprintf(&b, "Underwood 2023 stage-cost ablation (dims %v, %d reps)\n", spec.Dims, reps)
	fmt.Fprintf(&b, "  error-dependent (quantized entropy): %s ms\n", fmtMS(qentStat))
	fmt.Fprintf(&b, "  error-agnostic  (SVD truncation):    %s ms\n", fmtMS(svdStat))
	fmt.Fprintf(&b, "  ratio: %.1fx — the SVD precompute dominates; suited to amortized use\n",
		svdStat.Mean/qentStat.Mean)
	return b.String(), nil
}

// AblationJin reproduces the §6 iterator finding: the Jin model's
// error-dependent time exceeds the compressor's own runtime because of
// per-element overhead in the multi-dimensional iterator (shared-pointer
// churn in the profiled C++; per-step allocation here), and the optimized
// iterator closes the gap. Returns the three timings on `reps` fields.
func AblationJin(spec *Spec, reps int) (string, error) {
	spec.defaults()
	if reps <= 0 {
		reps = 8
	}
	var naiveMS, fastMS, compressMS []float64
	for i := 0; i < reps; i++ {
		field := spec.Fields[i%len(spec.Fields)]
		data, err := hurricane.Field(field, i%spec.Steps, spec.Dims)
		if err != nil {
			return "", err
		}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, spec.Bounds[0])

		naive, err := pressio.GetMetric("jin_model")
		if err != nil {
			return "", err
		}
		if err := naive.SetOptions(opts); err != nil {
			return "", err
		}
		start := now()
		naive.BeginCompress(data)
		naiveMS = append(naiveMS, now().Sub(start).Seconds()*1e3)

		fast, err := pressio.GetMetric("jin_model")
		if err != nil {
			return "", err
		}
		fastOpts := opts.Clone()
		fastOpts.Set(predictors.OptJinFastIterator, true)
		if err := fast.SetOptions(fastOpts); err != nil {
			return "", err
		}
		start = now()
		fast.BeginCompress(data)
		fastMS = append(fastMS, now().Sub(start).Seconds()*1e3)

		comp, err := pressio.GetCompressor("sz3")
		if err != nil {
			return "", err
		}
		if err := comp.SetOptions(opts); err != nil {
			return "", err
		}
		start = now()
		if _, err := comp.Compress(data); err != nil {
			return "", err
		}
		compressMS = append(compressMS, now().Sub(start).Seconds()*1e3)
	}
	n := summarize(naiveMS)
	f := summarize(fastMS)
	c := summarize(compressMS)
	var b bytes.Buffer
	fmt.Fprintf(&b, "Jin 2022 iterator ablation (dims %v, %d reps)\n", spec.Dims, reps)
	fmt.Fprintf(&b, "  jin_model, naive iterator:     %s ms (%.2fx of compression)\n", fmtMS(n), n.Mean/c.Mean)
	fmt.Fprintf(&b, "  jin_model, optimized iterator: %s ms (%.2fx of compression)\n", fmtMS(f), f.Mean/c.Mean)
	fmt.Fprintf(&b, "  sz3 compression:               %s ms\n", fmtMS(c))
	fmt.Fprintf(&b, "  iterator overhead: %.2fx — the §6 profiling finding; the optimized\n", n.Mean/f.Mean)
	fmt.Fprintf(&b, "  path is the paper's future-work item (3)\n")
	return b.String(), nil
}

// BaselineOnly measures just the compressor baseline rows of Table 2.
func BaselineOnly(spec *Spec) (string, error) {
	spec.defaults()
	var b bytes.Buffer
	for _, compressor := range spec.Compressors {
		var cms, dms, crs []float64
		for i, field := range spec.Fields {
			data, err := hurricane.Field(field, i%spec.Steps, spec.Dims)
			if err != nil {
				return "", err
			}
			opts := pressio.Options{}
			opts.Set(pressio.OptAbs, spec.Bounds[0])
			cr, c, d, err := func() (float64, float64, float64, error) {
				cr, c, d, err := observeBaseline(compressor, data, opts)
				return cr, c, d, err
			}()
			if err != nil {
				return "", err
			}
			cms = append(cms, c)
			dms = append(dms, d)
			crs = append(crs, cr)
		}
		fmt.Fprintf(&b, "%-10s compress %s ms   decompress %s ms   mean CR %.2f\n",
			compressor, fmtMS(summarize(cms)), fmtMS(summarize(dms)), stats.Mean(crs))
	}
	return b.String(), nil
}

func observeBaseline(compressor string, data *pressio.Data, opts pressio.Options) (cr, cms, dms float64, err error) {
	comp, err := pressio.GetCompressor(compressor)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := comp.SetOptions(opts); err != nil {
		return 0, 0, 0, err
	}
	start := now()
	compressed, err := comp.Compress(data)
	if err != nil {
		return 0, 0, 0, err
	}
	cms = now().Sub(start).Seconds() * 1e3
	out := pressio.New(data.DType(), data.Dims()...)
	start = now()
	if err := comp.Decompress(compressed, out); err != nil {
		return 0, 0, 0, err
	}
	dms = now().Sub(start).Seconds() * 1e3
	return float64(data.ByteSize()) / float64(compressed.ByteSize()), cms, dms, nil
}
