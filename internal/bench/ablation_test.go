package bench

import (
	"context"
	"strings"
	"testing"
)

func ablationSpec() *Spec {
	return &Spec{
		Fields: []string{"P", "U"},
		Steps:  2,
		Dims:   []int{4, 12, 12},
		Bounds: []float64{1e-3},
	}
}

func TestAblationSVD(t *testing.T) {
	out, err := AblationSVD(ablationSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"SVD truncation", "quantized entropy", "ratio"} {
		if !strings.Contains(out, needle) {
			t.Errorf("ablation output missing %q:\n%s", needle, out)
		}
	}
}

func TestAblationJin(t *testing.T) {
	out, err := AblationJin(ablationSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"naive iterator", "optimized iterator", "sz3 compression", "overhead"} {
		if !strings.Contains(out, needle) {
			t.Errorf("ablation output missing %q:\n%s", needle, out)
		}
	}
}

func TestBaselineOnly(t *testing.T) {
	spec := ablationSpec()
	spec.Compressors = []string{"sz3", "zfp"}
	out, err := BaselineOnly(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sz3") || !strings.Contains(out, "zfp") {
		t.Errorf("baseline output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "mean CR") {
		t.Errorf("baseline should report the mean CR:\n%s", out)
	}
}

func TestMedAPEOnly(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "CLOUD", "U", "W"}
	spec.Steps = 2
	spec.Compressors = []string{"sz3"}
	spec.Schemes = []string{"khan2023"}
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	medape, err := MedAPEOnly(spec, "khan2023", "sz3", obs)
	if err != nil {
		t.Fatal(err)
	}
	if medape < 0 || medape > 10000 {
		t.Errorf("MedAPE = %v implausible", medape)
	}
	// unsupported pairing yields NaN
	nan, err := MedAPEOnly(spec, "jin2022", "zfp", obs)
	if err != nil {
		t.Fatal(err)
	}
	if nan == nan { // NaN != NaN
		t.Errorf("unsupported pair should yield NaN, got %v", nan)
	}
}
