package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// resilienceSpec is a small spec for fault drills.
func resilienceSpec() *Spec {
	return &Spec{
		Fields:      []string{"P", "CLOUD", "U"},
		Steps:       2,
		Dims:        []int{4, 12, 12},
		Compressors: []string{"sz3"},
		Bounds:      []float64{1e-4, 1e-2},
		Schemes:     []string{"khan2023"},
		Folds:       3,
		Workers:     4,
		Seed:        7,
	}
}

// TestFailoverWithDeadEndpoint is the acceptance scenario: one of two
// remote endpoints is down from the start; Collect must still complete
// every cell by re-pinning queue worker slots off the dead endpoint,
// with the breaker trip visible in the pool stats.
func TestFailoverWithDeadEndpoint(t *testing.T) {
	ln, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// reserve a port and close it so nothing listens there
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	spec := resilienceSpec()
	spec.Retries = 4
	spec.RemoteWorkers = []string{deadAddr, ln.Addr().String()}
	spec.poolCfg = &poolConfig{
		DialTimeout:      300 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // stays open for the whole test
		PingInterval:     -1,          // deterministic: no background probes
	}
	res, err := CollectDetailed(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Fields) * spec.Steps * len(spec.Bounds) * len(spec.Compressors)
	if len(res.Observations) != want {
		t.Fatalf("observations = %d, want %d (failed: %v)", len(res.Observations), want, res.Failed)
	}
	if len(res.Failed) != 0 {
		t.Errorf("failed cells = %v, want none (failover should absorb the dead endpoint)", res.Failed)
	}
	if res.Pool == nil {
		t.Fatal("pool stats missing")
	}
	var deadStats, liveStats *EndpointStats
	for i := range res.Pool.Endpoints {
		ep := &res.Pool.Endpoints[i]
		if ep.Addr == deadAddr {
			deadStats = ep
		} else {
			liveStats = ep
		}
	}
	if deadStats == nil || liveStats == nil {
		t.Fatalf("stats endpoints = %+v", res.Pool.Endpoints)
	}
	if deadStats.State != breakerOpen {
		t.Errorf("dead endpoint breaker = %s, want open", deadStats.State)
	}
	found := false
	for _, tr := range deadStats.Transitions {
		if tr == "closed→open" {
			found = true
		}
	}
	if !found {
		t.Errorf("dead endpoint transitions = %v, want closed→open", deadStats.Transitions)
	}
	if res.Pool.Repins == 0 {
		t.Error("no worker-slot re-pins recorded despite a dead endpoint")
	}
	if liveStats.Calls == 0 || liveStats.State != breakerClosed {
		t.Errorf("live endpoint stats = %+v", liveStats)
	}
	if res.QueueStats.Retried == 0 {
		t.Error("tasks first pinned to the dead endpoint should have retried")
	}
}

// flakyProxy fronts a real worker with a severable TCP hop so tests can
// kill an endpoint (dropping established connections, not just the
// listener) and later revive it on the same address.
type flakyProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   map[net.Conn]bool
	down    bool
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, conns: make(map[net.Conn]bool)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			rejected := p.down
			if !rejected {
				p.conns[conn] = true
			}
			p.mu.Unlock()
			if rejected {
				conn.Close()
				continue
			}
			go p.pipe(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *flakyProxy) pipe(conn net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		conn.Close()
		return
	}
	p.mu.Lock()
	p.conns[up] = true
	p.mu.Unlock()
	go func() { io.Copy(up, conn); up.Close() }()
	io.Copy(conn, up)
	conn.Close()
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

// kill severs every live connection and rejects new ones.
func (p *flakyProxy) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]bool)
}

func (p *flakyProxy) revive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = false
}

// TestBreakerRecoversThroughHalfOpen kills an endpoint mid-run, waits
// for the breaker to open, revives the endpoint, and asserts the
// background ping drives open → half-open → closed.
func TestBreakerRecoversThroughHalfOpen(t *testing.T) {
	ln, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	proxy := newFlakyProxy(t, ln.Addr().String())
	pool := newRemotePool([]string{proxy.addr()}, poolConfig{
		DialTimeout:      200 * time.Millisecond,
		CallTimeout:      time.Second,
		PingInterval:     20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer pool.close()

	// healthy first
	if _, err := pool.observeRemote(0, ObserveArgs{
		Dims: []int{4, 8, 8}, Replicates: 1, Field: "P", Compressor: "sz3",
		Bound: 1e-3,
	}); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	// kill it and push calls until the breaker opens
	proxy.kill()
	for i := 0; i < 6; i++ {
		pool.observeRemote(0, ObserveArgs{Dims: []int{4, 8, 8}, Replicates: 1, Field: "P", Compressor: "sz3", Bound: 1e-3})
		if pool.stats().Endpoints[0].State == breakerOpen {
			break
		}
	}
	if s := pool.stats().Endpoints[0]; s.State != breakerOpen {
		t.Fatalf("breaker = %s after endpoint death, want open (stats %+v)", s.State, s)
	}

	// revive on the same address; the ping loop should close the breaker
	proxy.revive()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pool.stats().Endpoints[0].State == breakerClosed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := pool.stats().Endpoints[0]
	if st.State != breakerClosed {
		t.Fatalf("breaker never closed after revival: %+v", st)
	}
	joined := strings.Join(st.Transitions, " ")
	for _, edge := range []string{"closed→open", "open→half-open", "half-open→closed"} {
		if !strings.Contains(joined, edge) {
			t.Errorf("transitions %v missing %q", st.Transitions, edge)
		}
	}
	// and traffic flows again
	if _, err := pool.observeRemote(0, ObserveArgs{
		Dims: []int{4, 8, 8}, Replicates: 1, Field: "P", Compressor: "sz3", Bound: 1e-3,
	}); err != nil {
		t.Errorf("call after recovery failed: %v", err)
	}
}

// TestScriptedPlanReplaysDeterministically runs the same scripted fault
// plan twice — straggler delays on one worker plus permanent kills of
// two specific cells — and asserts the identical failure sequence, the
// identical surviving-observation set, and the identical failed set.
func TestScriptedPlanReplaysDeterministically(t *testing.T) {
	spec0 := resilienceSpec()
	spec0.defaults()
	// script against concrete cells so the replay is schedule-independent
	killA := cellKey(spec0, "P", 0, 1e-4, "sz3")
	killB := cellKey(spec0, "CLOUD", 1, 1e-2, "sz3")

	type outcome struct {
		log     []faultinject.Event
		obs     []string
		failed  []string
		medapes string
	}
	run := func() outcome {
		plan := faultinject.New(99,
			// permanent death of two cells: every attempt fails
			faultinject.Rule{Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Key: killA},
			faultinject.Rule{Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Key: killB},
			// straggler: worker 0 delayed on every attempt
			faultinject.Rule{Op: faultinject.OpTask, Kind: faultinject.KindDelay, Delay: time.Millisecond, Worker: 0},
		)
		spec := resilienceSpec()
		spec.Workers = 1 // deterministic schedule → deterministic event order
		spec.Retries = 1
		spec.FaultPlan = plan
		res, err := CollectDetailed(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		report, err := Evaluate(spec, res.Observations)
		if err != nil {
			t.Fatal(err)
		}
		report.Failed = res.Failed
		var o outcome
		o.log = plan.Log()
		for _, ob := range res.Observations {
			o.obs = append(o.obs, fmt.Sprintf("%s/%s/%d/%g=%.6f", ob.Compressor, ob.Field, ob.Step, ob.Bound, ob.CR))
		}
		for _, f := range res.Failed {
			o.failed = append(o.failed, fmt.Sprintf("%s/%s/%d/%g", f.Compressor, f.Field, f.Step, f.Bound))
		}
		sort.Strings(o.failed)
		for _, row := range report.Rows {
			if row.HasMedAPE {
				o.medapes += fmt.Sprintf("%s=%.9f;", row.Scheme, row.MedAPE)
			}
		}
		return o
	}

	a, b := run(), run()
	if len(a.failed) != 2 {
		t.Fatalf("failed = %v, want the 2 scripted kills", a.failed)
	}
	if fmt.Sprint(a.log) != fmt.Sprint(b.log) {
		t.Errorf("failure sequence diverged:\n%v\n%v", a.log, b.log)
	}
	if fmt.Sprint(a.obs) != fmt.Sprint(b.obs) {
		t.Errorf("surviving observations diverged")
	}
	if fmt.Sprint(a.failed) != fmt.Sprint(b.failed) {
		t.Errorf("failed sets diverged: %v vs %v", a.failed, b.failed)
	}
	if a.medapes != b.medapes || a.medapes == "" {
		t.Errorf("report quality diverged: %q vs %q", a.medapes, b.medapes)
	}
}

// TestRestartRetriesOnlyFailedCells is the checkpoint half of the
// acceptance scenario: a run with scripted permanent failures records
// the failed cells; a restarted run over the same store recomputes ONLY
// those cells and ends complete.
func TestRestartRetriesOnlyFailedCells(t *testing.T) {
	spec0 := resilienceSpec()
	spec0.defaults()
	killA := cellKey(spec0, "P", 0, 1e-4, "sz3")
	killB := cellKey(spec0, "U", 1, 1e-2, "sz3")

	dir := t.TempDir()
	var computed atomic.Int64
	progress := func(line string) {
		if !strings.HasPrefix(line, "queue:") && !strings.HasPrefix(line, "FAILED") &&
			!strings.HasPrefix(line, "endpoint") && !strings.HasPrefix(line, "pool:") {
			computed.Add(1)
		}
	}

	spec := resilienceSpec()
	spec.StoreDir = dir
	spec.Retries = 1
	spec.Progress = progress
	spec.FaultPlan = faultinject.New(5,
		faultinject.Rule{Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Key: killA},
		faultinject.Rule{Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Key: killB},
	)
	res, err := CollectDetailed(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(spec.Fields) * spec.Steps * len(spec.Bounds) * len(spec.Compressors)
	if len(res.Failed) != 2 || len(res.Observations) != total-2 {
		t.Fatalf("run 1: %d observations, failed %v", len(res.Observations), res.Failed)
	}
	// failures are recorded in the store for the operator
	info, err := StoreInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "failed cells awaiting retry: 2") {
		t.Errorf("StoreInfo does not surface the failures:\n%s", info)
	}

	// restart without the fault plan: only the 2 failed cells recompute
	computed.Store(0)
	spec2 := resilienceSpec()
	spec2.StoreDir = dir
	spec2.Progress = progress
	res2, err := CollectDetailed(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 2 {
		t.Errorf("restart recomputed %d cells, want exactly the 2 failed ones", n)
	}
	if len(res2.Observations) != total || len(res2.Failed) != 0 {
		t.Errorf("restart: %d observations, %d failed; want %d, 0",
			len(res2.Observations), len(res2.Failed), total)
	}
	if res2.QueueStats.Skipped != total-2 {
		t.Errorf("restart skipped %d cells from checkpoint, want %d", res2.QueueStats.Skipped, total-2)
	}
	// the fail/ records are cleared once the cells succeed
	info2, err := StoreInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(info2, "failed cells awaiting retry") {
		t.Errorf("stale failure records after successful retry:\n%s", info2)
	}
}

// TestKilledRunResumesFromCheckpoint cancels a run mid-flight (the
// SIGINT path of cmd/predict-bench) and asserts the restart completes
// from the checkpoint without recomputing finished cells.
func TestKilledRunResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var firstRun atomic.Int64
	spec := resilienceSpec()
	spec.Workers = 2
	spec.StoreDir = dir
	// straggler delays keep cells in flight long enough for the "kill"
	// below to land mid-sweep instead of after the queue drains
	spec.FaultPlan = faultinject.New(11, faultinject.Rule{
		Op: faultinject.OpTask, Kind: faultinject.KindDelay,
		Delay: 40 * time.Millisecond, Worker: -1,
	})
	spec.Progress = func(line string) {
		if strings.HasPrefix(line, "queue:") || strings.HasPrefix(line, "FAILED") {
			return
		}
		// "kill" the driver partway through the sweep
		if firstRun.Add(1) == 3 {
			cancel()
		}
	}
	res, err := CollectDetailed(ctx, spec)
	total := len(spec.Fields) * spec.Steps * len(spec.Bounds) * len(spec.Compressors)
	if err != nil {
		// every cell failed before any completed — possible only if
		// cancellation raced ahead of all checkpoints; retry logic below
		// still covers resumption, so only hard-fail on unexpected errors
		t.Fatalf("interrupted collect: %v", err)
	}
	if len(res.Observations) >= total {
		t.Fatalf("cancellation came too late to test resumption (%d/%d cells)", len(res.Observations), total)
	}
	if res.QueueStats.Cancelled == 0 {
		t.Error("no tasks recorded as cancelled")
	}

	// restart: completes, recomputing only what is not checkpointed
	var recomputed atomic.Int64
	spec2 := resilienceSpec()
	spec2.Workers = 2
	spec2.StoreDir = dir
	spec2.Progress = func(line string) {
		if !strings.HasPrefix(line, "queue:") && !strings.HasPrefix(line, "FAILED") {
			recomputed.Add(1)
		}
	}
	res2, err := CollectDetailed(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Observations) != total || len(res2.Failed) != 0 {
		t.Fatalf("restart incomplete: %d/%d observations, failed %v",
			len(res2.Observations), total, res2.Failed)
	}
	checkpointed := res2.QueueStats.Skipped
	if int(recomputed.Load())+checkpointed != total {
		t.Errorf("recomputed %d + checkpointed %d != %d", recomputed.Load(), checkpointed, total)
	}
	if checkpointed == 0 {
		t.Error("nothing resumed from checkpoint — the first run's work was lost")
	}
}

// TestScriptedEndpointDeathMidRun scripts "endpoint A dies at its 4th
// call" with failover taking over, exercising the RPC reset path
// end-to-end and its deterministic replay.
func TestScriptedEndpointDeathMidRun(t *testing.T) {
	ln1, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	addrA := ln1.Addr().String()

	run := func() (kinds []string, obs, failed int) {
		plan := faultinject.New(3, faultinject.Rule{
			Op: faultinject.OpCall, Kind: faultinject.KindReset,
			Worker: -1, Key: addrA, At: 4, // dies at its 4th call, forever
		})
		spec := resilienceSpec()
		spec.Workers = 1 // one slot: pins to A, fails over to B when A dies
		spec.Retries = 4
		spec.FaultPlan = plan
		spec.RemoteWorkers = []string{addrA, ln2.Addr().String()}
		spec.poolCfg = &poolConfig{
			DialTimeout: 300 * time.Millisecond, BreakerThreshold: 2,
			BreakerCooldown: time.Minute, PingInterval: -1,
		}
		res, err := CollectDetailed(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range plan.Log() {
			kinds = append(kinds, fmt.Sprintf("%s@%s", e.Kind, e.Key))
		}
		return kinds, len(res.Observations), len(res.Failed)
	}
	k1, obs1, failed1 := run()
	k2, obs2, failed2 := run()
	total := 3 * 2 * 2 // fields × steps × bounds
	if obs1 != total || failed1 != 0 {
		t.Errorf("run 1: %d observations, %d failed; failover should complete all %d", obs1, failed1, total)
	}
	if len(k1) == 0 {
		t.Error("scripted endpoint death never fired")
	}
	if fmt.Sprint(k1) != fmt.Sprint(k2) || obs1 != obs2 || failed1 != failed2 {
		t.Errorf("replay diverged: %v/%d/%d vs %v/%d/%d", k1, obs1, failed1, k2, obs2, failed2)
	}
}
