package bench

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// Remote execution: predict-bench can fan observation tasks out to worker
// processes over TCP (net/rpc), the laptop-scale analogue of the paper's
// MPI deployment. A worker process runs ServeWorker; the driver lists the
// workers in Spec.RemoteWorkers and the queue's locality scheduling then
// operates across processes: each queue worker slot is pinned to one
// remote endpoint, so tasks sharing a DataKey still land on the same
// process and enjoy its warm caches.

// ObserveArgs is the RPC request for one observation cell.
type ObserveArgs struct {
	Dims        []int
	Replicates  int
	Field       string
	Step        int
	Bound       float64
	Compressor  string
	MetricNames []string
}

// WorkerService is the RPC service workers expose.
type WorkerService struct{}

// Observe computes one cell on the worker.
func (*WorkerService) Observe(args ObserveArgs, reply *Observation) error {
	spec := &Spec{Dims: args.Dims, Replicates: args.Replicates}
	spec.defaults()
	ob, err := observe(spec, args.Field, args.Step, args.Bound, args.Compressor, args.MetricNames)
	if err != nil {
		return err
	}
	*reply = *ob
	return nil
}

// Ping lets drivers health-check a worker.
func (*WorkerService) Ping(_ struct{}, reply *string) error {
	*reply = "ok"
	return nil
}

// ServeWorker starts an RPC worker on addr (e.g. ":7777" or
// "127.0.0.1:0") and returns the listener; close it to stop. Connections
// are served on background goroutines.
func ServeWorker(addr string) (net.Listener, error) {
	srv := rpc.NewServer()
	if err := srv.Register(&WorkerService{}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, nil
}

// remotePool holds one persistent RPC client per endpoint.
type remotePool struct {
	mu        sync.Mutex
	endpoints []string
	clients   map[string]*rpc.Client
}

func newRemotePool(endpoints []string) *remotePool {
	return &remotePool{endpoints: endpoints, clients: make(map[string]*rpc.Client)}
}

// endpointFor pins queue worker slots to endpoints round-robin so the
// queue's DataKey affinity maps onto processes.
func (p *remotePool) endpointFor(worker int) string {
	return p.endpoints[worker%len(p.endpoints)]
}

func (p *remotePool) client(endpoint string) (*rpc.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[endpoint]; ok {
		return c, nil
	}
	c, err := rpc.Dial("tcp", endpoint)
	if err != nil {
		return nil, fmt.Errorf("bench: worker %s: %w", endpoint, err)
	}
	p.clients[endpoint] = c
	return c, nil
}

// invalidate drops a cached client after an RPC failure so the next
// attempt re-dials (the worker may have restarted).
func (p *remotePool) invalidate(endpoint string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[endpoint]; ok {
		c.Close()
		delete(p.clients, endpoint)
	}
}

func (p *remotePool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = make(map[string]*rpc.Client)
}

// observeRemote runs one cell on the endpoint pinned to the queue worker.
func (p *remotePool) observeRemote(worker int, args ObserveArgs) (*Observation, error) {
	endpoint := p.endpointFor(worker)
	client, err := p.client(endpoint)
	if err != nil {
		return nil, err
	}
	var reply Observation
	if err := client.Call("WorkerService.Observe", args, &reply); err != nil {
		p.invalidate(endpoint)
		return nil, fmt.Errorf("bench: worker %s: %w", endpoint, err)
	}
	return &reply, nil
}
