package bench

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/cluster/health"
	"repro/internal/faultinject"
)

// Remote execution: predict-bench can fan observation tasks out to worker
// processes over TCP (net/rpc), the laptop-scale analogue of the paper's
// MPI deployment. A worker process runs ServeWorker; the driver lists the
// workers in Spec.RemoteWorkers and the queue's locality scheduling then
// operates across processes: each queue worker slot is pinned to one
// remote endpoint, so tasks sharing a DataKey still land on the same
// process and enjoy its warm caches.
//
// The pool is hardened against the failure shapes of a real deployment:
// dials and calls carry timeouts (a dead or hung endpoint cannot block a
// worker slot indefinitely), every endpoint sits behind a circuit
// breaker (closed → open after consecutive failures, open → half-open
// after a cooldown, half-open admits one probe), a background Ping
// health probe drives recovery detection, and worker-slot pins FAIL OVER:
// when a slot's pinned endpoint trips its breaker the slot re-pins to
// the next healthy endpoint, so one dead endpoint degrades capacity
// instead of permanently poisoning every slot mapped to it.

// ObserveArgs is the RPC request for one observation cell.
type ObserveArgs struct {
	Dims        []int
	Replicates  int
	Field       string
	Step        int
	Bound       float64
	Compressor  string
	MetricNames []string
}

// WorkerService is the RPC service workers expose.
type WorkerService struct{}

// Observe computes one cell on the worker.
func (*WorkerService) Observe(args ObserveArgs, reply *Observation) error {
	spec := &Spec{Dims: args.Dims, Replicates: args.Replicates}
	spec.defaults()
	ob, err := observe(spec, args.Field, args.Step, args.Bound, args.Compressor, args.MetricNames)
	if err != nil {
		return err
	}
	*reply = *ob
	return nil
}

// Ping lets drivers health-check a worker.
func (*WorkerService) Ping(_ struct{}, reply *string) error {
	*reply = "ok"
	return nil
}

// ServeWorker starts an RPC worker on addr (e.g. ":7777" or
// "127.0.0.1:0") and returns the listener; close it to stop. Connections
// are served on background goroutines.
func ServeWorker(addr string) (net.Listener, error) {
	srv := rpc.NewServer()
	if err := srv.Register(&WorkerService{}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, nil
}

// Circuit-breaker states (shared with the cluster router via
// internal/cluster/health).
const (
	breakerClosed   = health.StateClosed
	breakerOpen     = health.StateOpen
	breakerHalfOpen = health.StateHalfOpen
)

// ErrAllEndpointsDown is wrapped into call errors when every endpoint's
// breaker is open.
var ErrAllEndpointsDown = errors.New("bench: all remote endpoints unavailable")

// poolConfig tunes the hardened remote pool.
type poolConfig struct {
	// DialTimeout bounds connection establishment (default 3s).
	DialTimeout time.Duration
	// CallTimeout bounds one RPC round trip (default 2m).
	CallTimeout time.Duration
	// PingInterval is the background health-probe period (default 2s;
	// negative disables probing).
	PingInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// endpoint's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// Inject scripts dial/call faults (tests only).
	Inject *faultinject.Plan
	// Clock supplies the time used for breaker cooldowns and probe
	// scheduling; tests replace it to replay fault schedules
	// deterministically (default time.Now).
	Clock func() time.Time
}

func (c *poolConfig) defaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Minute
	}
	if c.PingInterval == 0 {
		c.PingInterval = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// EndpointStats is the per-endpoint slice of PoolStats.
type EndpointStats struct {
	Addr        string
	Calls       int // RPCs attempted (excluding health probes)
	Failures    int // RPCs or dials that failed
	State       string
	Transitions []string // breaker transitions, e.g. "closed→open"
}

// PoolStats summarizes the remote pool for observability.
type PoolStats struct {
	Endpoints []EndpointStats
	Repins    int // worker slots moved off an unavailable endpoint
}

type endpoint struct {
	addr   string
	client *rpc.Client
	br     *health.Breaker // guarded by the pool mutex

	calls    int
	failures int
}

// remotePool holds one persistent RPC client per endpoint behind a
// circuit breaker, with failover re-pinning of queue worker slots.
type remotePool struct {
	mu   sync.Mutex
	cfg  poolConfig
	eps  []*endpoint
	pins map[int]int // queue worker slot → endpoint index
	reps int         // re-pin count

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

func newRemotePool(endpoints []string, cfg poolConfig) *remotePool {
	cfg.defaults()
	p := &remotePool{
		cfg:  cfg,
		pins: make(map[int]int),
		stop: make(chan struct{}),
	}
	for _, addr := range endpoints {
		p.eps = append(p.eps, &endpoint{
			addr: addr,
			br:   health.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		})
	}
	if cfg.PingInterval > 0 {
		p.wg.Add(1)
		go p.pingLoop()
	}
	return p
}

// acquire picks the endpoint for a queue worker slot: the slot's current
// pin when available, else the next available endpoint scanning round-
// robin from it (failover re-pinning). When every breaker is open the
// pinned endpoint is returned with ok=false so the caller fails fast.
func (p *remotePool) acquire(worker int) (*endpoint, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.eps)
	pin, pinned := p.pins[worker]
	if !pinned {
		pin = worker % n
	}
	for i := 0; i < n; i++ {
		idx := (pin + i) % n
		ep := p.eps[idx]
		if !ep.br.Available() {
			continue
		}
		if ep.br.State() == breakerHalfOpen {
			ep.br.MarkProbing()
		}
		if pinned && idx != pin {
			p.reps++
		}
		p.pins[worker] = idx
		return ep, true
	}
	return p.eps[pin], false
}

// onResult folds one call outcome into the breaker.
func (p *remotePool) onResult(ep *endpoint, err error, probe bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !probe {
		ep.calls++
		if err != nil {
			ep.failures++
		}
	}
	ep.br.OnResult(err)
}

// clientFor returns the cached client for ep, dialing with a timeout if
// needed.
func (p *remotePool) clientFor(ep *endpoint) (*rpc.Client, error) {
	p.mu.Lock()
	if c := ep.client; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	if d := p.cfg.Inject.Fire(faultinject.OpDial, -1, ep.addr); d.Err != nil {
		return nil, fmt.Errorf("bench: worker %s: %w", ep.addr, d.Err)
	}
	conn, err := net.DialTimeout("tcp", ep.addr, p.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("bench: worker %s: %w", ep.addr, err)
	}
	c := rpc.NewClient(conn)
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.client != nil {
		// another goroutine won the dial race
		c.Close()
		return ep.client, nil
	}
	ep.client = c
	return c, nil
}

// invalidate drops a cached client after an RPC failure so the next
// attempt re-dials (the worker may have restarted).
func (p *remotePool) invalidate(ep *endpoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ep.client != nil {
		ep.client.Close()
		ep.client = nil
	}
}

// call performs one RPC against ep with the pool's call timeout; on
// timeout the connection is torn down so the abandoned call cannot
// poison later ones.
func (p *remotePool) call(ep *endpoint, method string, args, reply any, timeout time.Duration) error {
	client, err := p.clientFor(ep)
	if err != nil {
		return err
	}
	done := client.Go(method, args, reply, make(chan *rpc.Call, 1)).Done
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c := <-done:
		if c.Error != nil {
			p.invalidate(ep)
			return fmt.Errorf("bench: worker %s: %w", ep.addr, c.Error)
		}
		return nil
	case <-timer.C:
		p.invalidate(ep)
		return fmt.Errorf("bench: worker %s: %s timed out after %v", ep.addr, method, timeout)
	}
}

// pingLoop probes endpoints in the background so a dead endpoint trips
// its breaker before tasks pile onto it, and a recovered endpoint closes
// its breaker without waiting for live traffic to probe it.
func (p *remotePool) pingLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.PingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		eps := append([]*endpoint(nil), p.eps...)
		var probes []*endpoint
		for _, ep := range eps {
			// probe everything except open breakers still cooling down
			if ep.br.Available() {
				if ep.br.State() == breakerHalfOpen {
					ep.br.MarkProbing()
				}
				probes = append(probes, ep)
			}
		}
		p.mu.Unlock()
		for _, ep := range probes {
			var reply string
			err := p.call(ep, "WorkerService.Ping", struct{}{}, &reply, p.cfg.DialTimeout)
			p.onResult(ep, err, true)
		}
	}
}

func (p *remotePool) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ep := range p.eps {
		if ep.client != nil {
			ep.client.Close()
			ep.client = nil
		}
	}
}

// stats snapshots the pool's breaker and traffic state.
func (p *remotePool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{Repins: p.reps}
	for _, ep := range p.eps {
		s.Endpoints = append(s.Endpoints, EndpointStats{
			Addr:        ep.addr,
			Calls:       ep.calls,
			Failures:    ep.failures,
			State:       ep.br.State(),
			Transitions: ep.br.Transitions(),
		})
	}
	return s
}

// observeRemote runs one cell on the endpoint currently pinned to the
// queue worker slot, failing over to a healthy endpoint when the pin's
// breaker is open.
func (p *remotePool) observeRemote(worker int, args ObserveArgs) (*Observation, error) {
	ep, ok := p.acquire(worker)
	if !ok {
		return nil, fmt.Errorf("%w (worker slot %d pinned to %s)", ErrAllEndpointsDown, worker, ep.addr)
	}
	probe := false
	if d := p.cfg.Inject.Fire(faultinject.OpCall, worker, ep.addr); d.Err != nil {
		if errors.Is(d.Err, faultinject.ErrReset) {
			p.invalidate(ep)
		}
		err := fmt.Errorf("bench: worker %s: %w", ep.addr, d.Err)
		p.onResult(ep, err, probe)
		return nil, err
	} else if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	var reply Observation
	err := p.call(ep, "WorkerService.Observe", args, &reply, p.cfg.CallTimeout)
	p.onResult(ep, err, probe)
	if err != nil {
		return nil, err
	}
	return &reply, nil
}
