package bench

import (
	"context"
	"encoding/csv"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// tinySpec keeps tests fast: few fields, few steps, small grid.
func tinySpec(t *testing.T) *Spec {
	t.Helper()
	return &Spec{
		Fields:      []string{"P", "CLOUD", "U", "QRAIN", "TC", "W"},
		Steps:       3,
		Dims:        []int{4, 12, 12},
		Compressors: []string{"sz3", "zfp"},
		Bounds:      []float64{1e-4, 1e-2},
		Schemes:     []string{"khan2023", "jin2022", "rahman2023"},
		Folds:       3,
		Workers:     4,
		Seed:        7,
	}
}

func TestCollectProducesAllCells(t *testing.T) {
	spec := tinySpec(t)
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Fields) * spec.Steps * len(spec.Bounds) * len(spec.Compressors)
	if len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	for _, ob := range obs {
		if ob.CR < 1 {
			t.Errorf("%s/%s: CR = %v < 1", ob.Compressor, ob.Field, ob.CR)
		}
		if len(ob.Features) == 0 {
			t.Errorf("%s/%s: no features", ob.Compressor, ob.Field)
		}
		if ob.Compressor == "sz3" {
			if _, ok := ob.Features["jin_model:cr"]; !ok {
				t.Errorf("sz3 cell missing jin_model feature")
			}
		} else if _, ok := ob.Features["jin_model:cr"]; ok {
			t.Errorf("zfp cell should not compute jin_model")
		}
	}
}

func TestRunProducesTable2Shape(t *testing.T) {
	spec := tinySpec(t)
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Baselines) != 2 {
		t.Fatalf("baselines = %d", len(report.Baselines))
	}
	if len(report.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 schemes × 2 compressors)", len(report.Rows))
	}
	rows := map[string]MethodRow{}
	for _, r := range report.Rows {
		rows[r.Compressor+"/"+r.Scheme] = r
	}
	// jin on zfp must be the all-N/A row like the paper
	jz := rows["zfp/jin2022"]
	if jz.Supported || jz.HasMedAPE {
		t.Errorf("zfp/jin2022 should be unsupported: %+v", jz)
	}
	// jin on sz3: error-dependent present, no training/fit
	js := rows["sz3/jin2022"]
	if !js.Supported || !js.HasErrDep || js.HasFit || js.HasTraining {
		t.Errorf("sz3/jin2022 row malformed: %+v", js)
	}
	// khan: error-dependent, no error-agnostic
	ks := rows["sz3/khan2023"]
	if !ks.HasErrDep || ks.HasErrAgn || !ks.HasMedAPE {
		t.Errorf("sz3/khan2023 row malformed: %+v", ks)
	}
	// rahman: error-agnostic + training + fit + inference + MedAPE
	rs := rows["sz3/rahman2023"]
	if !rs.HasErrAgn || !rs.HasTraining || !rs.HasFit || !rs.HasInfer || !rs.HasMedAPE {
		t.Errorf("sz3/rahman2023 row malformed: %+v", rs)
	}
	// khan's error-dependent time must be well below compression time
	var sz3Base BaselineRow
	for _, b := range report.Baselines {
		if b.Compressor == "sz3" {
			sz3Base = b
		}
	}
	if ks.ErrDep.Mean >= sz3Base.Compress.Mean {
		t.Errorf("khan error-dependent %.3fms should be below sz3 compress %.3fms",
			ks.ErrDep.Mean, sz3Base.Compress.Mean)
	}
	// rendering smoke test
	text := report.Table2()
	for _, needle := range []string{"MedAPE", "sz3 Khan [7]", "zfp Rahman [13]", "N/A"} {
		if !strings.Contains(text, needle) {
			t.Errorf("Table2 output missing %q:\n%s", needle, text)
		}
	}
}

func TestCheckpointRestartSkipsWork(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "CLOUD"}
	spec.Steps = 2
	spec.StoreDir = t.TempDir()
	var ran atomic.Int64 // Progress is called from concurrent workers
	spec.Progress = func(line string) {
		if !strings.HasPrefix(line, "queue:") {
			ran.Add(1) // count computed cells, not the run summary
		}
	}
	if _, err := Collect(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if ran.Load() == 0 {
		t.Fatal("nothing ran")
	}
	// second run over the same store: everything checkpointed
	ran.Store(0)
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("restart recomputed %d cells, want 0", n)
	}
	want := len(spec.Fields) * spec.Steps * len(spec.Bounds) * len(spec.Compressors)
	if len(obs) != want {
		t.Errorf("restored %d observations, want %d", len(obs), want)
	}
}

func TestCollectSurvivesInjectedFaults(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "W"}
	spec.Steps = 2
	spec.FailureRate = 0.2
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatalf("fault injection should be absorbed by retries: %v", err)
	}
	want := 2 * 2 * len(spec.Bounds) * len(spec.Compressors)
	if len(obs) != want {
		t.Errorf("observations = %d, want %d", len(obs), want)
	}
}

func TestTable1Rendering(t *testing.T) {
	text := Table1()
	for _, needle := range []string{
		"Tao [15]", "Krasowska [9]", "Underwood [17]", "Ganguli [2]",
		"Jin [5, 6]", "Khan [7]", "Rahman [13]", "Lu [11]", "Qin [12]", "Wang [20]",
		"counterfactuals", "bounded", "trial-based", "deep learning",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("Table1 missing %q", needle)
		}
	}
	if lines := strings.Count(text, "\n"); lines < 11 {
		t.Errorf("Table1 has %d lines, want ≥ 11 (header + 10 methods)", lines)
	}
}

func TestEvaluateTrainedSchemesAcrossFolds(t *testing.T) {
	spec := tinySpec(t)
	spec.Schemes = []string{"rahman2023", "krasowska2021"}
	spec.Compressors = []string{"sz3"}
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Evaluate(spec, obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range report.Rows {
		if !row.HasMedAPE {
			t.Errorf("%s: no MedAPE", row.Scheme)
			continue
		}
		if row.MedAPE < 0 || row.MedAPE > 10000 {
			t.Errorf("%s: MedAPE %.2f implausible", row.Scheme, row.MedAPE)
		}
		if row.Fit.Mean <= 0 {
			t.Errorf("%s: fit time not measured", row.Scheme)
		}
	}
}

func TestInSampleBeatsOutOfSample(t *testing.T) {
	// future-work #1: in-sample CV is the best case; it should not be
	// substantially worse than out-of-sample on the same observations
	spec := tinySpec(t)
	spec.Schemes = []string{"rahman2023"}
	spec.Compressors = []string{"sz3"}
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	outReport, err := Evaluate(spec, obs)
	if err != nil {
		t.Fatal(err)
	}
	inSpec := *spec
	inSpec.InSample = true
	inReport, err := Evaluate(&inSpec, obs)
	if err != nil {
		t.Fatal(err)
	}
	outAPE := outReport.Rows[0].MedAPE
	inAPE := inReport.Rows[0].MedAPE
	t.Logf("out-of-sample MedAPE %.2f, in-sample %.2f", outAPE, inAPE)
	if inAPE > outAPE*1.5+5 {
		t.Errorf("in-sample (%.2f) should not be much worse than out-of-sample (%.2f)", inAPE, outAPE)
	}
}

func TestBandwidthTarget(t *testing.T) {
	// future-work #4: predict compression throughput instead of CR
	spec := tinySpec(t)
	spec.Schemes = []string{"rahman2023", "khan2023"}
	spec.Compressors = []string{"zfp"}
	spec.Target = TargetBandwidth
	spec.Replicates = 2
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]MethodRow{}
	for _, r := range report.Rows {
		rows[r.Scheme] = r
	}
	// khan computes a CR, not a bandwidth: must be N/A under this target
	if rows["khan2023"].Supported {
		t.Error("calculation scheme should be N/A for bandwidth target")
	}
	r := rows["rahman2023"]
	if !r.Supported || !r.HasMedAPE {
		t.Fatalf("rahman bandwidth row incomplete: %+v", r)
	}
	if r.MedAPE < 0 || r.MedAPE > 1000 {
		t.Errorf("bandwidth MedAPE %.1f implausible", r.MedAPE)
	}
}

func TestObservationBandwidth(t *testing.T) {
	ob := &Observation{ByteSize: 2 << 20, CompressMS: 100}
	if got := ob.BandwidthMBps(); got != 20 {
		t.Errorf("BandwidthMBps = %v, want 20 (2 MiB in 0.1 s)", got)
	}
	if (&Observation{}).BandwidthMBps() != 0 {
		t.Error("zero-time observation should report 0 bandwidth")
	}
	if ob.TargetValue(TargetBandwidth) != 20 {
		t.Error("TargetValue(bandwidth) wrong")
	}
	ob.CR = 3
	if ob.TargetValue(TargetCR) != 3 {
		t.Error("TargetValue(cr) wrong")
	}
}

func TestReplicatesAffectCellKey(t *testing.T) {
	a := tinySpec(t)
	b := tinySpec(t)
	a.defaults()
	b.Replicates = 3
	b.defaults()
	ka := cellKey(a, "P", 0, 1e-4, "sz3")
	kb := cellKey(b, "P", 0, 1e-4, "sz3")
	if ka == kb {
		t.Error("replicate count must be part of the checkpoint key")
	}
}

func TestRemoteWorkers(t *testing.T) {
	// spin up two in-process TCP workers and fan the cells out to them
	ln1, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()

	spec := tinySpec(t)
	spec.Fields = []string{"P", "CLOUD", "U"}
	spec.Steps = 2
	spec.Compressors = []string{"sz3"}
	spec.RemoteWorkers = []string{ln1.Addr().String(), ln2.Addr().String()}
	remoteObs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	localSpec := *spec
	localSpec.RemoteWorkers = nil
	localObs, err := Collect(context.Background(), &localSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(remoteObs) != len(localObs) {
		t.Fatalf("remote %d vs local %d observations", len(remoteObs), len(localObs))
	}
	// deterministic quantities must agree exactly across processes
	for i := range remoteObs {
		r, l := remoteObs[i], localObs[i]
		if r.Field != l.Field || r.Step != l.Step || r.CR != l.CR {
			t.Errorf("cell %d differs: remote %s/%d CR=%v, local %s/%d CR=%v",
				i, r.Field, r.Step, r.CR, l.Field, l.Step, l.CR)
		}
		for k, lv := range l.Features {
			rv, ok := r.Features[k]
			// map-iteration summation order may differ by an ULP
			if !ok || math.Abs(rv-lv) > 1e-9*(math.Abs(lv)+1) {
				t.Errorf("cell %d feature %s: remote %v, local %v", i, k, rv, lv)
				break
			}
		}
	}
}

func TestRemoteWorkerDown(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P"}
	spec.Steps = 1
	spec.Compressors = []string{"sz3"}
	spec.RemoteWorkers = []string{"127.0.0.1:1"} // nothing listens here
	if _, err := Collect(context.Background(), spec); err == nil {
		t.Error("unreachable worker should surface an error after retries")
	}
}

func TestWorkerPing(t *testing.T) {
	ln, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool := newRemotePool([]string{ln.Addr().String()}, poolConfig{PingInterval: -1})
	defer pool.close()
	ep, ok := pool.acquire(0)
	if !ok {
		t.Fatal("fresh endpoint should be available")
	}
	var reply string
	if err := pool.call(ep, "WorkerService.Ping", struct{}{}, &reply, time.Second); err != nil || reply != "ok" {
		t.Errorf("Ping = %q, %v", reply, err)
	}
}

func TestReportCSV(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "U", "CLOUD", "W"}
	spec.Steps = 2
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	out := report.CSV()
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v\n%s", err, out)
	}
	// header + 2 baselines + 6 scheme rows
	if len(records) != 1+2+6 {
		t.Errorf("rows = %d, want 9", len(records))
	}
	if records[0][0] != "compressor" || records[0][len(records[0])-1] != "medape_pct" {
		t.Errorf("header wrong: %v", records[0])
	}
	for _, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Errorf("ragged row: %v", rec)
		}
	}
}

func TestScatter(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "U", "CLOUD", "W"}
	spec.Steps = 2
	spec.Compressors = []string{"sz3"}
	obs, err := Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"khan2023", "rahman2023"} {
		out, err := Scatter(spec, scheme, "sz3", obs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
		if err != nil {
			t.Fatalf("%s: CSV: %v", scheme, err)
		}
		want := 1 + len(spec.Fields)*spec.Steps*len(spec.Bounds)
		if len(records) != want {
			t.Errorf("%s: rows = %d, want %d", scheme, len(records), want)
		}
	}
	if _, err := Scatter(spec, "jin2022", "zfp", obs); err == nil {
		t.Error("unsupported pair should error")
	}
	if _, err := Scatter(spec, "khan2023", "lossless", obs); err == nil {
		t.Error("compressor without observations should error")
	}
}

func TestStoreInfo(t *testing.T) {
	spec := tinySpec(t)
	spec.Fields = []string{"P", "U"}
	spec.Steps = 2
	spec.StoreDir = t.TempDir()
	if _, err := Collect(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	out, err := StoreInfo(spec.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cells: 16") { // 2 fields × 2 steps × 2 bounds × 2 compressors
		t.Errorf("StoreInfo output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "sz3 abs=") || !strings.Contains(out, "zfp abs=") {
		t.Errorf("StoreInfo missing per-config groups:\n%s", out)
	}
}
