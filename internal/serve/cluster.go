package serve

// Cluster support: the hooks internal/cluster drives when predictd runs
// replicated. The replication layer applies shipped WAL frames to the
// local store itself; Absorb keeps this server's in-memory projections
// (registry, predictor cache, result cache) coherent with those writes,
// and Adopt is the failover half — taking over a dead peer's journaled
// fit jobs so its 202 acknowledgements are honored by a survivor.

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"strings"
	"time"

	"repro/internal/store"
)

// ModelBytesEquivalent reports whether two persisted registry values
// describe the same trained model. Registry entries embed a per-node Seq
// (the "newest model wins" ordering for Lookup), so two nodes re-running
// the same deterministic fit — an adopter and the restarted owner — can
// persist byte-different values that differ only in Seq. That is not a
// divergent publish; the replication layer's divergence detector uses
// this comparison instead of raw byte equality. Values that do not decode
// as model entries are compared literally.
func ModelBytesEquivalent(a, b []byte) bool {
	if bytes.Equal(a, b) {
		return true
	}
	var ea, eb ModelEntry
	if gob.NewDecoder(bytes.NewReader(a)).Decode(&ea) != nil {
		return false
	}
	if gob.NewDecoder(bytes.NewReader(b)).Decode(&eb) != nil {
		return false
	}
	ea.Seq, eb.Seq = 0, 0
	return reflect.DeepEqual(ea, eb)
}

// Absorb folds one replicated WAL frame into the server's in-memory
// caches after the replication layer applied it to the local store.
// Model frames update the registry projection and invalidate the
// decoded-predictor and result caches for that key; job frames need no
// live projection (Recover and Adopt read them from the store, and a
// peer's jobs stay read-only until adopted).
func (s *Server) Absorb(f store.Frame) {
	if !strings.HasPrefix(f.Key, modelPrefix) {
		return
	}
	switch f.Op {
	case store.FramePut:
		s.registry.Absorb(f.Key, f.Value)
	case store.FrameDelete:
		s.registry.Forget(f.Key)
	}
	s.predMu.Lock()
	delete(s.predCache, f.Key)
	s.predMu.Unlock()
	s.cache.evictIf(func(v cacheValue) bool { return v.resp.Model == f.Key })
}

// Adopt takes over the journaled fit jobs of a dead peer: each of the
// peer's records is re-authored under this node (the original job IDs
// are preserved — they are what clients poll) and jobs the peer's death
// interrupted are re-enqueued to run here. Fit execution's
// publish-once-per-opthash adoption makes the re-run idempotent even
// when the dead node's model publish survived it. Returns how many jobs
// were adopted.
func (s *Server) Adopt(ctx context.Context, node string) (int, error) {
	if node == "" || node == s.cfg.NodeName {
		return 0, nil
	}
	recs, err := s.journal.load()
	if err != nil {
		s.stats.journalError()
		return 0, err
	}
	var adopted, pending []*FitJob
	s.jobMu.Lock()
	for i := range recs {
		rec := &recs[i]
		if rec.Node != node {
			continue
		}
		if _, ok := s.jobs[rec.ID]; ok {
			continue // already adopted
		}
		job := &FitJob{
			ID: rec.ID, Key: rec.Key, Node: s.cfg.NodeName,
			Scheme: rec.Scheme, Compressor: rec.Compressor,
			Request: rec.Request, status: rec.Status, errMsg: rec.Error,
			modelKey: rec.Model, samples: rec.Samples,
		}
		if rec.FinishedAtUnix > 0 {
			job.finishedAt = time.Unix(rec.FinishedAtUnix, 0)
		}
		if n := jobSeqOf(rec.ID); n > s.jobSeq && s.cfg.NodeName == "" {
			s.jobSeq = n
		}
		s.jobs[job.ID] = job
		if _, taken := s.jobByKey[job.Key]; !taken {
			// an identical local job (same opthash) keeps the key; the
			// adopted one still completes via publish-once adoption
			s.jobByKey[job.Key] = job.ID
		}
		adopted = append(adopted, job)
		if rec.Status == "queued" || rec.Status == "running" {
			job.status = "queued"
			pending = append(pending, job)
		}
	}
	s.jobMu.Unlock()
	for _, job := range adopted {
		// re-author the record: this node's future restarts must recover
		// the job as their own
		s.journalJob(job)
	}
	for _, job := range pending {
		// adopted jobs carry the dead node's 202 promise: wait out a full
		// fit queue instead of dropping
		for !s.enqueueFit(job) {
			if s.fitPool.isClosed() {
				return len(adopted), nil
			}
			select {
			case <-ctx.Done():
				return len(adopted), ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	return len(adopted), nil
}
