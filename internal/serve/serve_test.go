package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pressio"
	"repro/internal/store"
)

// newTestServer builds a Server over a temp store (journal replayed)
// and wraps it in an httptest server. Pool workers are drained on
// cleanup so tests leave no goroutines behind.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain(); st.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func statz(t *testing.T, base string) Statz {
	t.Helper()
	var st Statz
	getJSON(t, base+"/statz", &st)
	return st
}

// TestEndToEndServing is the acceptance flow from the issue: fit a
// trained scheme through the API, serve predictions from the registry,
// observe the cache hit, and watch an invalidate-relevant option change
// evict the model.
func TestEndToEndServing(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over real compressor runs")
	}
	_, ts := newTestServer(t, Config{Workers: 2, Deadline: 60 * time.Second})
	base := ts.URL

	// 1. fit krasowska2021/sz3 over a small hurricane training set
	fit := FitRequest{
		Scheme:     "krasowska2021",
		Compressor: "sz3",
		Training: TrainingSpec{
			Fields: []string{"P", "CLOUD"},
			Steps:  2,
			Dims:   []int{8, 8, 8},
			Bounds: []float64{1e-4, 1e-2},
		},
	}
	resp, body := postJSON(t, base+"/v1/fit", fit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: status %d body %s", resp.StatusCode, body)
	}
	var fr FitResponse
	if err := json.Unmarshal(body, &fr); err != nil || fr.JobID == "" {
		t.Fatalf("fit response %s: %v", body, err)
	}

	// 2. poll the job until done
	var job JobView
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, base+"/v1/jobs/"+fr.JobID, &job)
		if job.Status == "done" || job.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fit job stuck in %q", job.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}
	if job.Samples != 8 { // 2 fields × 2 steps × 2 bounds
		t.Errorf("trained on %d samples, want 8", job.Samples)
	}
	if job.Model == "" {
		t.Fatal("done job must report its model key")
	}

	// 3. the model is listed
	var models []modelView
	getJSON(t, base+"/v1/models", &models)
	if len(models) != 1 || models[0].Key != job.Model {
		t.Fatalf("models = %+v, want the fitted model", models)
	}
	if models[0].Predictor != "linear_regression" || models[0].StateBytes == 0 {
		t.Errorf("model view %+v lacks predictor/state", models[0])
	}

	// 4. predict from data coordinates: first miss, then cache hit
	pred := PredictRequest{
		Scheme:     "krasowska2021",
		Compressor: "sz3",
		Options:    map[string]any{"pressio:abs": 1e-4},
		Data:       &DataRef{Field: "P", Step: 5, Dims: []int{8, 8, 8}},
	}
	resp, body = postJSON(t, base+"/v1/predict", pred)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d body %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cached || pr.Model != job.Model || pr.Target != "size:compression_ratio" {
		t.Errorf("first predict %+v: want uncached, model-backed", pr)
	}
	resp, body = postJSON(t, base+"/v1/predict", pred)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat predict: status %d body %s", resp.StatusCode, body)
	}
	var pr2 PredictResponse
	json.Unmarshal(body, &pr2)
	if !pr2.Cached {
		t.Error("identical repeat request should be served from cache")
	}
	if pr2.Prediction != pr.Prediction {
		t.Errorf("cached prediction %v != fresh %v", pr2.Prediction, pr.Prediction)
	}
	if st := statz(t, base); st.CacheHits < 1 || st.Models != 1 {
		t.Errorf("statz after cache hit: %+v", st)
	}

	// 5. a changed error bound is a different cache key, not a stale hit
	pred2 := pred
	pred2.Options = map[string]any{"pressio:abs": 1e-2}
	resp, body = postJSON(t, base+"/v1/predict", pred2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with new bound: status %d body %s", resp.StatusCode, body)
	}
	var pr3 PredictResponse
	json.Unmarshal(body, &pr3)
	if pr3.Cached {
		t.Error("a changed pressio:abs must not be served from the old cache entry")
	}

	// 6. declaring the error bound invalidated evicts the model (quantized
	// entropy is error_dependent) and clears its cached predictions
	resp, body = postJSON(t, base+"/v1/invalidate", InvalidateRequest{Keys: []string{pressio.OptAbs}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: status %d body %s", resp.StatusCode, body)
	}
	var inv InvalidateResponse
	if err := json.Unmarshal(body, &inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.EvictedModels) != 1 || inv.EvictedModels[0] != job.Model {
		t.Errorf("invalidate evicted %v, want [%s]", inv.EvictedModels, job.Model)
	}
	if inv.ClearedCached == 0 {
		t.Error("invalidate should clear the scheme's cached predictions")
	}

	// 7. with the model gone, predict tells the client to fit again
	resp, body = postJSON(t, base+"/v1/predict", pred)
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte("/v1/fit")) {
		t.Errorf("predict after eviction: status %d body %s, want 404 pointing at /v1/fit", resp.StatusCode, body)
	}
	var models2 []modelView
	getJSON(t, base+"/v1/models", &models2)
	if len(models2) != 0 {
		t.Errorf("models after eviction = %+v, want none", models2)
	}
}

// khanRequest builds a non-training predict request with a direct
// feature vector — the cheap deterministic probe the concurrency tests
// lean on.
func khanRequest(feature float64) PredictRequest {
	return PredictRequest{
		Scheme:     "khan2023",
		Compressor: "sz3",
		Features:   []float64{feature},
	}
}

// TestPredictSingleflightCollapse holds the one compute of N identical
// concurrent requests open and shows the other N-1 piggyback on it.
func TestPredictSingleflightCollapse(t *testing.T) {
	gate := make(chan struct{})
	var computes atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 4,
		testHookPredict: func() {
			computes.Add(1)
			<-gate
		},
	})
	defer s.Drain()
	base := ts.URL

	const callers = 6
	var wg sync.WaitGroup
	wg.Add(callers)
	var ok atomic.Int64
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/predict", khanRequest(7.5))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d body %s", resp.StatusCode, body)
				return
			}
			var pr PredictResponse
			if err := json.Unmarshal(body, &pr); err != nil || pr.Prediction != 7.5 {
				t.Errorf("prediction %s: %v", body, err)
				return
			}
			ok.Add(1)
		}()
	}
	// release the gated compute only once the other callers are enrolled
	// in its flight — the leader cannot land while the gate is closed, so
	// every request that reaches the server before the close piggybacks
	req := khanRequest(7.5)
	key := requestKey(&req, pressio.Options{}, "")
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waiting(key) < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers enrolled in the flight", s.flight.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want exactly 1 (singleflight)", got)
	}
	if ok.Load() != callers {
		t.Errorf("%d callers succeeded, want %d", ok.Load(), callers)
	}
	if st := statz(t, base); st.DedupCollapses != callers-1 {
		t.Errorf("dedup_collapses = %d, want %d", st.DedupCollapses, callers-1)
	}

	// the landed flight is now a plain cache hit
	resp, body := postJSON(t, base+"/v1/predict", khanRequest(7.5))
	var pr PredictResponse
	json.Unmarshal(body, &pr)
	if resp.StatusCode != http.StatusOK || !pr.Cached {
		t.Errorf("post-flight request: status %d cached %v, want cache hit", resp.StatusCode, pr.Cached)
	}
}

// TestPredictSaturationReturns429 fills the single worker and the
// one-deep queue, then shows further distinct requests shed with 429 +
// Retry-After.
func TestPredictSaturationReturns429(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		testHookPredict: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	defer s.Drain()
	base := ts.URL

	// occupy the worker
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, base+"/v1/predict", khanRequest(1))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupier: status %d body %s", resp.StatusCode, body)
		}
	}()
	<-entered

	// five more distinct requests: exactly one wins the queue slot, the
	// other four are shed
	const extra = 5
	var ok429, ok200 atomic.Int64
	var retryAfterMissing atomic.Int64
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/predict", khanRequest(float64(10+i)))
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				ok429.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					retryAfterMissing.Add(1)
				}
			case http.StatusOK:
				ok200.Add(1)
			default:
				t.Errorf("status %d body %s", resp.StatusCode, body)
			}
		}(i)
	}
	// shed responses return without the gate; wait for all four
	deadline := time.Now().Add(10 * time.Second)
	for ok429.Load() < extra-1 {
		if time.Now().After(deadline) {
			t.Fatalf("saw %d rejections, want %d", ok429.Load(), extra-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if ok429.Load() != extra-1 || ok200.Load() != 1 {
		t.Errorf("got %d×429 + %d×200, want %d×429 + 1×200", ok429.Load(), ok200.Load(), extra-1)
	}
	if retryAfterMissing.Load() != 0 {
		t.Error("429 responses must carry Retry-After")
	}
	if st := statz(t, base); st.Rejected != extra-1 {
		t.Errorf("statz rejected = %d, want %d", st.Rejected, extra-1)
	}
}

// TestPredictDeadlineReturns504 pins the worker past the request
// deadline and expects a gateway timeout.
func TestPredictDeadlineReturns504(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:         1,
		Deadline:        100 * time.Millisecond,
		testHookPredict: func() { <-gate },
	})
	base := ts.URL

	resp, body := postJSON(t, base+"/v1/predict", khanRequest(3))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d body %s, want 504", resp.StatusCode, body)
	}
	close(gate)
	s.Drain()
}

// TestDrainShedsNewWork verifies the SIGTERM path: health flips to 503
// and new predict/fit requests are refused while in-flight work
// completes.
func TestDrainShedsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := ts.URL

	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	s.Drain()
	s.Drain() // idempotent
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	resp, _ := postJSON(t, base+"/v1/predict", khanRequest(1))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("predict during drain = %d, want 503 + Retry-After", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/v1/fit", FitRequest{Scheme: "krasowska2021", Compressor: "sz3"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fit during drain = %d, want 503", resp.StatusCode)
	}
	if !statz(t, base).Draining {
		t.Error("statz should report draining")
	}
}

// TestPredictValidation covers the 4xx surface.
func TestPredictValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	cases := []struct {
		name string
		body any
		want int
		frag string
	}{
		{"missing scheme", PredictRequest{Compressor: "sz3", Features: []float64{1}}, 400, "required"},
		{"unknown scheme", PredictRequest{Scheme: "nope", Compressor: "sz3", Features: []float64{1}}, 404, "nope"},
		{"unsupported compressor", PredictRequest{Scheme: "khan2023", Compressor: "lossless", Features: []float64{1}}, 400, "support"},
		{"both features and data", PredictRequest{Scheme: "khan2023", Compressor: "sz3", Features: []float64{1}, Data: &DataRef{Field: "P"}}, 400, "exactly one"},
		{"neither features nor data", PredictRequest{Scheme: "khan2023", Compressor: "sz3"}, 400, "exactly one"},
		{"wrong feature count", PredictRequest{Scheme: "khan2023", Compressor: "sz3", Features: []float64{1, 2}}, 400, "features"},
		{"no trained model", PredictRequest{Scheme: "krasowska2021", Compressor: "sz3", Features: []float64{1, 2, 3}}, 404, "/v1/fit"},
		{"oversized dims", PredictRequest{Scheme: "khan2023", Compressor: "sz3", Data: &DataRef{Field: "P", Dims: []int{4096, 4096, 4096}}}, 400, "budget"},
		{"bad option type", PredictRequest{Scheme: "khan2023", Compressor: "sz3", Features: []float64{1}, Options: map[string]any{"k": map[string]any{}}}, 400, "option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, base+"/v1/predict", tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d body %s, want %d", resp.StatusCode, body, tc.want)
			}
			if !strings.Contains(strings.ToLower(string(body)), strings.ToLower(tc.frag)) {
				t.Errorf("body %s should mention %q", body, tc.frag)
			}
		})
	}

	// fit-side validation
	fitCases := []struct {
		name string
		body FitRequest
		want int
	}{
		{"non-training scheme", FitRequest{Scheme: "khan2023", Compressor: "sz3", Training: TrainingSpec{Fields: []string{"P"}, Steps: 1, Bounds: []float64{1e-4}}}, 400},
		{"missing training", FitRequest{Scheme: "krasowska2021", Compressor: "sz3"}, 400},
		{"cell budget", FitRequest{Scheme: "krasowska2021", Compressor: "sz3", Training: TrainingSpec{Fields: []string{"P"}, Steps: 100000, Bounds: []float64{1e-4}}}, 400},
	}
	for _, tc := range fitCases {
		t.Run("fit "+tc.name, func(t *testing.T) {
			resp, body := postJSON(t, base+"/v1/fit", tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d body %s, want %d", resp.StatusCode, body, tc.want)
			}
		})
	}

	if resp := getJSON(t, base+"/v1/jobs/job-99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestPredictIntervalAlpha exercises the conformal interval path through
// the API once a ganguli2023 model exists.
func TestPredictIntervalAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over real compressor runs")
	}
	_, ts := newTestServer(t, Config{Deadline: 60 * time.Second})
	base := ts.URL
	fit := FitRequest{
		Scheme:     "ganguli2023",
		Compressor: "sz3",
		Training: TrainingSpec{
			Fields: []string{"P"},
			Steps:  4,
			Dims:   []int{8, 8, 8},
			Bounds: []float64{1e-4, 1e-3, 1e-2},
		},
	}
	resp, body := postJSON(t, base+"/v1/fit", fit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	var job JobView
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, base+"/v1/jobs/"+fr.JobID, &job)
		if job.Status == "done" || job.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fit stuck in %q", job.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}

	pred := PredictRequest{
		Scheme:     "ganguli2023",
		Compressor: "sz3",
		Options:    map[string]any{"pressio:abs": 1e-3},
		Data:       &DataRef{Field: "P", Step: 9, Dims: []int{8, 8, 8}},
		Alpha:      0.1,
	}
	resp, body = postJSON(t, base+"/v1/predict", pred)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Interval) != 2 {
		t.Fatalf("alpha request should return an interval, got %+v", pr)
	}
	if pr.Interval[0] > pr.Prediction || pr.Interval[1] < pr.Prediction {
		t.Errorf("interval %v should bracket prediction %v", pr.Interval, pr.Prediction)
	}
}
