package serve

import (
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// latencyWindow bounds the per-endpoint latency sample ring /statz
// quantiles are computed over.
const latencyWindow = 1024

// counters aggregates the serving metrics surfaced on /statz: per-
// endpoint request/error counts and latency samples, per-scheme request
// counts, and the cache/dedup/backpressure counters. Safe for concurrent
// use; hot-path cost is one mutex and a few map increments.
type counters struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointCounter
	schemes   map[string]uint64

	cacheHits      uint64
	cacheMisses    uint64
	cellHits       uint64
	coalescedHits  uint64
	batchRequests  uint64
	batchPreds     uint64
	dedupCollapses uint64
	rejected       uint64
	evictedModels  uint64
	evictedCached  uint64
	evictedJobs    uint64
	journalErrors  uint64

	fitDurations []float64 // ring of the last latencyWindow fit-execution ms
	fitNext      int
}

type endpointCounter struct {
	requests  uint64
	errors    uint64
	latencies []float64 // ring of the last latencyWindow request ms
	next      int
}

func newCounters() *counters {
	return &counters{
		start:     time.Now(),
		endpoints: map[string]*endpointCounter{},
		schemes:   map[string]uint64{},
	}
}

// observe records one finished request on an endpoint.
func (c *counters) observe(endpoint string, status int, ms float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep := c.endpoints[endpoint]
	if ep == nil {
		ep = &endpointCounter{}
		c.endpoints[endpoint] = ep
	}
	ep.requests++
	if status >= 400 {
		ep.errors++
	}
	if len(ep.latencies) < latencyWindow {
		ep.latencies = append(ep.latencies, ms)
	} else {
		ep.latencies[ep.next] = ms
		ep.next = (ep.next + 1) % latencyWindow
	}
}

func (c *counters) scheme(name string) { c.mu.Lock(); c.schemes[name]++; c.mu.Unlock() }
func (c *counters) cacheHit()          { c.mu.Lock(); c.cacheHits++; c.mu.Unlock() }
func (c *counters) cacheMiss()         { c.mu.Lock(); c.cacheMisses++; c.mu.Unlock() }

// cellHit records a request served from the cell-granular cache, as
// distinct from cacheHit's whole-request LRU — /statz keeps the two
// apart so a "99% hit rate" can be attributed to the right cache.
func (c *counters) cellHit() { c.mu.Lock(); c.cellHits++; c.mu.Unlock() }

// coalescedHit records a request whose cell another request in the same
// coalescing window computed.
func (c *counters) coalescedHit() { c.mu.Lock(); c.coalescedHits++; c.mu.Unlock() }

// batch records one batch request: every item is exactly one of a
// cell-cache hit, a computed miss, or an itemized error (errors are
// outside hit/miss accounting).
func (c *counters) batch(items, hits, errs int) {
	c.mu.Lock()
	c.batchRequests++
	c.batchPreds += uint64(items)
	c.cellHits += uint64(hits)
	if m := items - hits - errs; m > 0 {
		c.cacheMisses += uint64(m)
	}
	c.mu.Unlock()
}
func (c *counters) dedup()  { c.mu.Lock(); c.dedupCollapses++; c.mu.Unlock() }
func (c *counters) reject() { c.mu.Lock(); c.rejected++; c.mu.Unlock() }
func (c *counters) evicted(models, cached int) {
	c.mu.Lock()
	c.evictedModels += uint64(models)
	c.evictedCached += uint64(cached)
	c.mu.Unlock()
}
func (c *counters) jobsEvicted(n int) { c.mu.Lock(); c.evictedJobs += uint64(n); c.mu.Unlock() }
func (c *counters) journalError()     { c.mu.Lock(); c.journalErrors++; c.mu.Unlock() }

// fitObserve records one fit execution's duration (ms) for the adaptive
// fit Retry-After.
func (c *counters) fitObserve(ms float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fitDurations) < latencyWindow {
		c.fitDurations = append(c.fitDurations, ms)
	} else {
		c.fitDurations[c.fitNext] = ms
		c.fitNext = (c.fitNext + 1) % latencyWindow
	}
}

// fitP50 is the median recent fit-execution duration (ms); 0 when no
// fit has completed yet.
func (c *counters) fitP50() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stats.Quantile(c.fitDurations, 0.50)
}

// latencyP50 is the median recent request latency (ms) on an endpoint;
// 0 when the endpoint has no samples.
func (c *counters) latencyP50(endpoint string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep := c.endpoints[endpoint]
	if ep == nil {
		return 0
	}
	return stats.Quantile(ep.latencies, 0.50)
}

// EndpointStats is one endpoint's row in the /statz report.
type EndpointStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Statz is the full /statz JSON document.
type Statz struct {
	UptimeSeconds  float64                  `json:"uptime_seconds"`
	Draining       bool                     `json:"draining"`
	Replaying      bool                     `json:"replaying"`
	Models         int                      `json:"models"`
	Jobs           map[string]int           `json:"jobs"`
	JobsRetained   int                      `json:"jobs_retained"`
	JobsEvicted    uint64                   `json:"jobs_evicted"`
	JournalErrors  uint64                   `json:"journal_errors"`
	Endpoints      map[string]EndpointStats `json:"endpoints"`
	Schemes        map[string]uint64        `json:"schemes"`
	CacheHits      uint64                   `json:"cache_hits"`
	CacheMisses    uint64                   `json:"cache_misses"`
	CacheSize      int                      `json:"cache_size"`
	CellHits       uint64                   `json:"cell_hits"`
	CellCacheSize  int                      `json:"cell_cache_size"`
	CoalescedHits  uint64                   `json:"coalesced_hits"`
	BatchRequests  uint64                   `json:"batch_requests"`
	BatchPreds     uint64                   `json:"batch_predictions"`
	DedupCollapses uint64                   `json:"dedup_collapses"`
	Rejected       uint64                   `json:"rejected"`
	EvictedModels  uint64                   `json:"evicted_models"`
	EvictedCached  uint64                   `json:"evicted_cached"`
	// DataCache is the tiered dataset cache's tier accounting
	// (mem/disk/miss counts plus resident and mapped bytes); all-zero
	// when the cache is disabled.
	DataCache dataset.TieredStats `json:"data_cache"`
	Process   ProcessStats        `json:"process"`
}

// snapshot assembles the endpoint/scheme/cache section of Statz; the
// caller fills in registry/job/cache-size fields.
func (c *counters) snapshot() Statz {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Statz{
		UptimeSeconds:  time.Since(c.start).Seconds(),
		Endpoints:      make(map[string]EndpointStats, len(c.endpoints)),
		Schemes:        make(map[string]uint64, len(c.schemes)),
		CacheHits:      c.cacheHits,
		CacheMisses:    c.cacheMisses,
		CellHits:       c.cellHits,
		CoalescedHits:  c.coalescedHits,
		BatchRequests:  c.batchRequests,
		BatchPreds:     c.batchPreds,
		DedupCollapses: c.dedupCollapses,
		Rejected:       c.rejected,
		EvictedModels:  c.evictedModels,
		EvictedCached:  c.evictedCached,
		JobsEvicted:    c.evictedJobs,
		JournalErrors:  c.journalErrors,
	}
	for name, ep := range c.endpoints {
		s.Endpoints[name] = EndpointStats{
			Requests: ep.requests,
			Errors:   ep.errors,
			P50MS:    stats.Quantile(ep.latencies, 0.50),
			P90MS:    stats.Quantile(ep.latencies, 0.90),
			P99MS:    stats.Quantile(ep.latencies, 0.99),
		}
	}
	for name, n := range c.schemes {
		s.Schemes[name] = n
	}
	return s
}
