package serve

import (
	"container/list"
	"sync"
)

// cacheValue is what the result cache stores: the response plus the
// scheme it was computed for, so invalidation-driven eviction can clear
// exactly the entries a stale scheme produced.
type cacheValue struct {
	resp   PredictResponse
	scheme string
}

// lruCache is a fixed-capacity LRU map from opthash-derived request keys
// to served predictions. Safe for concurrent use.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent; values are *lruItem
	items map[string]*list.Element
}

type lruItem struct {
	key string
	val cacheValue
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (cacheValue, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cacheValue{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lruCache) add(key string, val cacheValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evictIf removes every entry the predicate matches and returns how many
// were dropped — the invalidation hook.
func (c *lruCache) evictIf(pred func(cacheValue) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		item := el.Value.(*lruItem)
		if pred(item.val) {
			c.ll.Remove(el)
			delete(c.items, item.key)
			n++
		}
		el = next
	}
	return n
}

// flightGroup collapses concurrent duplicate computations: the first
// caller for a key runs fn, later callers for the same in-flight key
// block and share the result — singleflight over the request hash, so a
// thundering herd of identical predictions computes once.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters int // guarded by flightGroup.mu
	val     PredictResponse
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do runs fn once per concurrent key; shared reports whether this caller
// piggybacked on another's computation.
func (g *flightGroup) do(key string, fn func() (PredictResponse, error)) (resp PredictResponse, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// waiting reports how many callers are blocked on the key's in-flight
// computation — lets tests release a gated compute only after every
// duplicate has enrolled.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
