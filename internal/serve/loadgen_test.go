package serve

import (
	"testing"
	"time"
)

// TestLoadGenDrivesPredictd drives a server with concurrent clients over
// a small working set and asserts a clean run with a high cache-hit
// rate — the soak drill behind `make serve-check`.
func TestLoadGenDrivesPredictd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Deadline: 30 * time.Second})
	defer s.Drain()

	// four distinct feature-backed requests against the non-training
	// khan2023 scheme: each computes once, then every repeat is a hit
	reqs := []PredictRequest{
		khanRequest(1.5),
		khanRequest(2.5),
		khanRequest(3.5),
		khanRequest(4.5),
	}
	const clients, perClient = 8, 25
	res, err := LoadGen(ts.URL, clients, perClient, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != clients*perClient {
		t.Errorf("ran %d requests, want %d", res.Requests, clients*perClient)
	}
	if res.Errors != 0 {
		t.Errorf("%d requests errored, want 0", res.Errors)
	}
	if res.Rejected != 0 {
		t.Errorf("%d requests rejected, want 0 (queue depth covers the load)", res.Rejected)
	}
	if res.OK != res.Requests {
		t.Errorf("%d OK of %d", res.OK, res.Requests)
	}
	// at most len(reqs) computes can miss; everything else must hit the
	// cache or collapse into an in-flight compute
	if hr := res.HitRate(); hr < 0.9 {
		t.Errorf("cache hit rate %.2f, want >= 0.90", hr)
	}
	if st := statz(t, ts.URL); st.CacheHits == 0 || st.Endpoints["/v1/predict"].Requests != uint64(res.Requests) {
		t.Errorf("statz inconsistent with loadgen: %+v", st)
	}
}

func TestLoadGenNeedsRequests(t *testing.T) {
	if _, err := LoadGen("http://127.0.0.1:0", 1, 1, nil); err == nil {
		t.Error("LoadGen with no requests should error")
	}
}
