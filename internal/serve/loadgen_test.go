package serve

import (
	"testing"
	"time"
)

// TestLoadGenDrivesPredictd drives a server with concurrent clients over
// a small working set and asserts a clean run with a high cache-hit
// rate — the soak drill behind `make serve-check`.
func TestLoadGenDrivesPredictd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Deadline: 30 * time.Second})
	defer s.Drain()

	// four distinct feature-backed requests against the non-training
	// khan2023 scheme: each computes once, then every repeat is a hit
	reqs := []PredictRequest{
		khanRequest(1.5),
		khanRequest(2.5),
		khanRequest(3.5),
		khanRequest(4.5),
	}
	const clients, perClient = 8, 25
	res, err := LoadGen(ts.URL, clients, perClient, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != clients*perClient {
		t.Errorf("ran %d requests, want %d", res.Requests, clients*perClient)
	}
	if res.Errors != 0 {
		t.Errorf("%d requests errored, want 0", res.Errors)
	}
	if res.Rejected != 0 {
		t.Errorf("%d requests rejected, want 0 (queue depth covers the load)", res.Rejected)
	}
	if res.OK != res.Requests {
		t.Errorf("%d OK of %d", res.OK, res.Requests)
	}
	// at most len(reqs) computes can miss; everything else must hit the
	// cache or collapse into an in-flight compute
	if hr := res.HitRate(); hr < 0.9 {
		t.Errorf("cache hit rate %.2f, want >= 0.90", hr)
	}
	if st := statz(t, ts.URL); st.CacheHits == 0 || st.Endpoints["/v1/predict"].Requests != uint64(res.Requests) {
		t.Errorf("statz inconsistent with loadgen: %+v", st)
	}
}

func TestLoadGenNeedsRequests(t *testing.T) {
	if _, err := LoadGen("http://127.0.0.1:0", 1, 1, nil); err == nil {
		t.Error("LoadGen with no requests should error")
	}
}

// TestLoadGenBatchMix drives a mixed single/batch load and asserts the
// amortization arithmetic: every op completes, batched ops carry their
// full item count, and the prediction total exceeds the request total
// by exactly the batched surplus.
func TestLoadGenBatchMix(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Deadline: 30 * time.Second})
	defer s.Drain()

	// data-coordinate requests over a small corpus window, all under the
	// non-training khan2023 scheme (no fit needed)
	var reqs []PredictRequest
	for i, field := range []string{"P", "TC", "QVAPOR", "W"} {
		reqs = append(reqs, PredictRequest{
			Scheme:     "khan2023",
			Compressor: "sz3",
			Data:       &DataRef{Field: field, Step: i % 2, Dims: []int{8, 8, 8}},
		})
	}
	const clients, perClient = 4, 20
	res, err := LoadGenWith(ts.URL, clients, perClient, reqs, LoadGenOpts{
		BatchPct:   50,
		BatchSizes: []int{4, 8},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != clients*perClient {
		t.Errorf("ran %d requests, want %d", res.Requests, clients*perClient)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Errorf("%d errors, %d rejected, want clean run", res.Errors, res.Rejected)
	}
	if res.Batches == 0 || res.Batches == res.Requests {
		t.Errorf("batches = %d of %d requests, want a genuine mix", res.Batches, res.Requests)
	}
	// singles carry 1 prediction each; every batch carries >= min(BatchSizes)
	singles := res.Requests - res.Batches
	if min := singles + 4*res.Batches; res.Predictions < min {
		t.Errorf("predictions = %d, want >= %d (%d singles + %d batches)", res.Predictions, min, singles, res.Batches)
	}
	st := statz(t, ts.URL)
	if st.BatchRequests != uint64(res.Batches) {
		t.Errorf("statz batch_requests = %d, loadgen counted %d", st.BatchRequests, res.Batches)
	}
	if got := uint64(res.Predictions - singles); st.BatchPreds != got {
		t.Errorf("statz batch_predictions = %d, loadgen counted %d", st.BatchPreds, got)
	}
}

func TestLoadGenBatchNeedsDataRefs(t *testing.T) {
	reqs := []PredictRequest{khanRequest(1.5)} // features, no DataRef
	if _, err := LoadGenWith("http://127.0.0.1:0", 1, 1, reqs, LoadGenOpts{BatchPct: 50, BatchSizes: []int{4}}); err == nil {
		t.Error("batch loadgen over feature requests should error")
	}
	if _, err := LoadGenWith("http://127.0.0.1:0", 1, 1, reqs, LoadGenOpts{BatchPct: 50}); err == nil {
		t.Error("batch loadgen without sizes should error")
	}
}
