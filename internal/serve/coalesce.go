package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"
)

// coalescer generalizes singleflight from "identical request dedup" to
// "same-model window batching": concurrent single predicts that miss the
// caches and share a cell-key base (scheme, compressor, options, model,
// alpha, dims) enroll into one window; when the window closes, one
// worker-pool task computes every distinct enrolled cell in a single
// batched feature-extraction pass and fans the results back out. Two
// requests for the same cell in one window compute once; two requests
// for different cells of the same model share the group resolution, the
// predictor, and — through the tiered dataset cache handing every item
// the same *pressio.Data pointers — the stats.Summary sharing that
// makes the per-item cost near zero.
type coalescer struct {
	s       *Server
	mu      sync.Mutex
	windows map[string]*coalesceWindow
}

// coalesceWindow is one open window: the group shared by its enrollees
// and the requests waiting on the flush.
type coalesceWindow struct {
	g    *batchGroup
	reqs []coalesceReq
}

type coalesceReq struct {
	field string
	step  int
	ch    chan coalesceReply
}

// coalesceReply is what the flush hands back to one enrollee. shared
// marks a request whose cell another enrollee in the same window already
// computed — the "coalesced hit" bucket in /statz accounting.
type coalesceReply struct {
	out    BatchItemResult
	err    error
	shared bool
}

func newCoalescer(s *Server) *coalescer {
	return &coalescer{s: s, windows: map[string]*coalesceWindow{}}
}

// enroll joins (opening if needed) the window for g's base. The first
// enrollee schedules the flush one CoalesceWindow later — through the
// injectable timer when a test drives the clock.
func (c *coalescer) enroll(g *batchGroup, field string, step int) <-chan coalesceReply {
	ch := make(chan coalesceReply, 1)
	c.mu.Lock()
	w, ok := c.windows[g.base]
	if !ok {
		w = &coalesceWindow{g: g}
		c.windows[g.base] = w
		base := g.base
		if t := c.s.cfg.testCoalesceTimer; t != nil {
			t(c.s.cfg.CoalesceWindow, func() { c.flush(base) })
		} else {
			time.AfterFunc(c.s.cfg.CoalesceWindow, func() { c.flush(base) })
		}
	}
	w.reqs = append(w.reqs, coalesceReq{field: field, step: step, ch: ch})
	c.mu.Unlock()
	return ch
}

// pending reports how many requests the base's open window holds — lets
// tests release a held flush only after every concurrent request has
// enrolled (the coalescing analogue of flightGroup.waiting).
func (c *coalescer) pending(base string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.windows[base]; ok {
		return len(w.reqs)
	}
	return 0
}

// flush closes the window and computes it in one worker-pool slot. Pool
// saturation rejects the whole window — every enrollee sees 429, the
// same shed a burst of single requests would have produced one by one.
func (c *coalescer) flush(base string) {
	c.mu.Lock()
	w := c.windows[base]
	delete(c.windows, base)
	c.mu.Unlock()
	if w == nil {
		return
	}
	submitted := c.s.pool.trySubmit(func() {
		if c.s.cfg.testHookBatchFlush != nil {
			c.s.cfg.testHookBatchFlush()
		}
		// the flush outlives any one enrollee's request context by
		// design, exactly like a singleflight leader
		//lint:ignore pressiovet/ctxflow window flush serves all enrollees, not one request; bounded by cfg.Deadline instead
		ctx, cancel := context.WithTimeout(context.Background(), c.s.cfg.Deadline)
		defer cancel()
		type cellID struct {
			field string
			step  int
		}
		seen := map[cellID]coalesceReply{}
		for _, r := range w.reqs {
			id := cellID{field: r.field, step: r.step}
			if prev, ok := seen[id]; ok {
				prev.shared = true
				r.ch <- prev
				continue
			}
			var reply coalesceReply
			c.s.predictCell(ctx, w.g, r.field, r.step, &reply.out)
			seen[id] = reply
			r.ch <- reply
		}
	})
	if !submitted {
		for _, r := range w.reqs {
			r.ch <- coalesceReply{err: errSaturated}
		}
	}
}

// predictCoalesced is the single-predict path through the coalescer: the
// request enrolls into its model's window and waits for the flush.
func (s *Server) predictCoalesced(w http.ResponseWriter, r *http.Request, req *PredictRequest, key string, g *batchGroup) int {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	ch := s.coalesce.enroll(g, req.Data.Field, req.Data.Step)
	select {
	case reply := <-ch:
		switch {
		case errors.Is(reply.err, errSaturated):
			s.stats.reject()
			w.Header().Set("Retry-After", s.retryAfterPredict())
			return writeError(w, http.StatusTooManyRequests, "saturated: %d workers busy, queue full", s.cfg.Workers)
		case reply.err != nil:
			return writeError(w, http.StatusBadRequest, "%v", reply.err)
		case reply.out.Error != "":
			return writeError(w, http.StatusBadRequest, "%s", reply.out.Error)
		}
		resp := PredictResponse{
			Scheme:     g.schemeName,
			Compressor: g.compressor,
			Target:     g.target,
			Prediction: reply.out.Prediction,
			Interval:   reply.out.Interval,
			Model:      g.model,
		}
		// exactly one accounting bucket per request: a window sharer is a
		// coalesced hit, a cell already cached at flush time a cell hit,
		// and the one request that paid the computation a miss
		switch {
		case reply.shared:
			s.stats.coalescedHit()
		case reply.out.Cached:
			s.stats.cellHit()
		default:
			s.stats.cacheMiss()
		}
		s.cache.add(key, cacheValue{resp: resp, scheme: req.Scheme})
		resp.Cached = reply.out.Cached
		return writeJSON(w, http.StatusOK, resp)
	case <-ctx.Done():
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", s.cfg.Deadline)
	}
}
