package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pressio"
)

// TestPredictBatchColumnar drives the columnar JSON batch body: one
// envelope, parallel fields/steps, item-aligned results, and cell-cache
// hits on the second pass.
func TestPredictBatchColumnar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := BatchRequest{
		Scheme: "khan2023", Compressor: "sz3", Dims: []int{8, 8, 8},
		Fields: []string{"P", "TC", "P"},
		Steps:  []int{0, 0, 1},
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || out.Errors != 0 || len(out.Results) != 3 {
		t.Fatalf("want 3 clean results, got %+v", out)
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Prediction <= 0 {
			t.Fatalf("result %d: %+v", i, r)
		}
		if r.Cached {
			t.Fatalf("result %d cached on a cold cache", i)
		}
	}
	// the single-request path must agree with the batch path cell-for-cell
	sresp, sraw := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Scheme: "khan2023", Compressor: "sz3",
		Data: &DataRef{Field: "P", Step: 0, Dims: []int{8, 8, 8}},
	})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("single status %d: %s", sresp.StatusCode, sraw)
	}
	var single PredictResponse
	if err := json.Unmarshal(sraw, &single); err != nil {
		t.Fatal(err)
	}
	if single.Prediction != out.Results[0].Prediction {
		t.Fatalf("single %v != batch %v for the same cell", single.Prediction, out.Results[0].Prediction)
	}
	if !single.Cached {
		t.Fatal("single request after a batch over the same cell must hit the cell cache")
	}

	// second batch: all hits
	resp, raw = postJSON(t, ts.URL+"/v1/predict/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if !r.Cached {
			t.Fatalf("result %d not cached on the second pass: %+v", i, r)
		}
	}
	st := statz(t, ts.URL)
	if st.BatchRequests != 2 || st.BatchPreds != 6 {
		t.Fatalf("batch counters: %+v", st)
	}
	// first batch: 3 misses; single: 1 cell hit; second batch: 3 cell hits
	if st.CacheMisses != 3 || st.CellHits != 4 {
		t.Fatalf("want 3 misses + 4 cell hits, got misses=%d cell_hits=%d", st.CacheMisses, st.CellHits)
	}
	if st.DataCache.Misses == 0 {
		t.Fatalf("batch over data cells must flow through the tiered dataset cache: %+v", st.DataCache)
	}
}

// TestPredictBatchPartialFailure: a bad item errors in place, the rest
// of the batch lands, and the HTTP status stays 200.
func TestPredictBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{
		Scheme: "khan2023", Compressor: "sz3", Dims: []int{8, 8, 8},
		Fields: []string{"P", "NOPE"},
		Steps:  []int{0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure must stay 200, got %d: %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 1 {
		t.Fatalf("want 1 itemized error, got %+v", out)
	}
	if out.Results[0].Error != "" || out.Results[1].Error == "" {
		t.Fatalf("error must land on item 1 only: %+v", out.Results)
	}
}

// TestPredictBatchFeatureRows drives the flat row-major features matrix.
func TestPredictBatchFeatureRows(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{
		Scheme: "khan2023", Compressor: "sz3",
		Features: []float64{3.5, 7.25}, // khan2023 has 1 feature → 2 rows
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || out.Errors != 0 {
		t.Fatalf("want 2 clean rows, got %+v", out)
	}
}

// TestPredictBatchNDJSON drives the streaming NDJSON variant: envelope
// line + item lines in, one result line per item + summary line out.
func TestPredictBatchNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	buf.WriteString(`{"scheme":"khan2023","compressor":"sz3","dims":[8,8,8]}` + "\n")
	for step := 0; step < 3; step++ {
		fmt.Fprintf(&buf, `{"field":"P","step":%d}`+"\n", step)
	}
	resp, err := http.Post(ts.URL+"/v1/predict/batch", ContentNDJSON, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentNDJSON {
		t.Fatalf("response content type %q", ct)
	}
	scn := bufio.NewScanner(resp.Body)
	var lines []string
	for scn.Scan() {
		if s := strings.TrimSpace(scn.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if len(lines) != 4 {
		t.Fatalf("want 3 result lines + summary, got %d: %v", len(lines), lines)
	}
	for _, line := range lines[:3] {
		var r BatchItemResult
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad result line %q: %v", line, err)
		}
		if r.Error != "" || r.Prediction <= 0 {
			t.Fatalf("bad result: %+v", r)
		}
	}
	var sum batchSummary
	if err := json.Unmarshal([]byte(lines[3]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Count != 3 || sum.Errors != 0 || sum.Scheme != "khan2023" {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestPredictBatchFrames drives the length-prefixed binary variant.
func TestPredictBatchFrames(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	frame := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
		buf.Write(hdr[:])
		buf.Write(b)
	}
	frame(map[string]any{"scheme": "khan2023", "compressor": "sz3", "dims": []int{8, 8, 8}})
	frame(map[string]any{"field": "P", "step": 0})
	frame(map[string]any{"field": "TC", "step": 1})
	resp, err := http.Post(ts.URL+"/v1/predict/batch", ContentFrames, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var frames [][]byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b)
	}
	if len(frames) != 3 {
		t.Fatalf("want 2 result frames + summary, got %d", len(frames))
	}
	var r BatchItemResult
	if err := json.Unmarshal(frames[0], &r); err != nil || r.Prediction <= 0 {
		t.Fatalf("bad first frame %s: %v", frames[0], err)
	}
	var sum batchSummary
	if err := json.Unmarshal(frames[2], &sum); err != nil || sum.Count != 2 {
		t.Fatalf("bad summary frame %s: %v", frames[2], err)
	}
}

// TestPredictBatchValidation pins the envelope-level failure statuses.
func TestPredictBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body BatchRequest
		want int
	}{
		{"missing scheme", BatchRequest{Compressor: "sz3", Fields: []string{"P"}, Steps: []int{0}}, 400},
		{"unknown scheme", BatchRequest{Scheme: "nope", Compressor: "sz3", Fields: []string{"P"}, Steps: []int{0}}, 404},
		{"no model", BatchRequest{Scheme: "krasowska2021", Compressor: "sz3", Fields: []string{"P"}, Steps: []int{0}}, 404},
		{"empty batch", BatchRequest{Scheme: "khan2023", Compressor: "sz3"}, 400},
		{"unparallel arrays", BatchRequest{Scheme: "khan2023", Compressor: "sz3", Fields: []string{"P"}, Steps: []int{0, 1}}, 400},
		{"both item forms", BatchRequest{Scheme: "khan2023", Compressor: "sz3", Fields: []string{"P"}, Steps: []int{0}, Features: []float64{1}}, 400},
		{"ragged features", BatchRequest{Scheme: "krasowska2021", Compressor: "sz3", Features: []float64{1}}, 404}, // model check precedes shape check
		{"non-3d dims", BatchRequest{Scheme: "khan2023", Compressor: "sz3", Dims: []int{8, 8}, Fields: []string{"P"}, Steps: []int{0}}, 400},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
		}
	}
}

// TestCoalesceCounterAccounting is the deterministic coalescing test:
// with the injectable timer holding the window open, k concurrent
// single predicts over m distinct cells of one model must fuse into one
// flush that accounts exactly m cache_misses and k-m coalesced_hits —
// the /statz split that tells window batching apart from the LRU result
// cache (cache_hits) and the cell cache (cell_hits).
func TestCoalesceCounterAccounting(t *testing.T) {
	var mu sync.Mutex
	var flushes []func()
	s, ts := newTestServer(t, Config{
		CoalesceWindow: time.Hour, // flushes fire only via the captured timer
		testCoalesceTimer: func(d time.Duration, fn func()) {
			mu.Lock()
			flushes = append(flushes, fn)
			mu.Unlock()
		},
	})
	scheme, err := core.GetScheme("khan2023")
	if err != nil {
		t.Fatal(err)
	}
	base := newBatchGroup("khan2023", "sz3", scheme, pressio.Options{}, nil, 0, defaultDataDims).base

	const k = 6
	fields := []string{"P", "TC"} // m = 2 distinct cells
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
				Scheme: "khan2023", Compressor: "sz3",
				Data: &DataRef{Field: fields[i%len(fields)], Step: 0},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.coalesce.pending(base) != k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests enrolled", s.coalesce.pending(base), k)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if len(flushes) != 1 {
		t.Fatalf("one window must schedule one flush, got %d", len(flushes))
	}
	flush := flushes[0]
	mu.Unlock()
	flush()
	wg.Wait()

	st := statz(t, ts.URL)
	if st.CacheMisses != 2 || st.CoalescedHits != k-2 {
		t.Fatalf("want 2 misses + %d coalesced hits, got misses=%d coalesced=%d", k-2, st.CacheMisses, st.CoalescedHits)
	}
	if st.CacheHits != 0 || st.CellHits != 0 {
		t.Fatalf("no request should have hit a cache yet: %+v", st)
	}

	// the flush populated both caches: an identical request is an LRU
	// hit, and a batch over the same cells is all cell hits
	resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Scheme: "khan2023", Compressor: "sz3", Data: &DataRef{Field: "P", Step: 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{
		Scheme: "khan2023", Compressor: "sz3",
		Fields: []string{"P", "TC"}, Steps: []int{0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	st = statz(t, ts.URL)
	if st.CacheHits != 1 {
		t.Fatalf("repeat single must be an LRU hit, got %+v", st)
	}
	if st.CellHits != 2 {
		t.Fatalf("batch over flushed cells must be 2 cell hits, got %+v", st)
	}
	if st.CacheMisses != 2 || st.CoalescedHits != k-2 {
		t.Fatalf("hit traffic must not move the miss buckets: %+v", st)
	}
}

// TestCoalesceConcurrent exercises the real-timer path under load (and
// under -race in the race gate): many concurrent requests against one
// model with a sub-millisecond window all land with the same answer.
func TestCoalesceConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: 200 * time.Microsecond})
	const n = 24
	preds := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
				Scheme: "khan2023", Compressor: "sz3",
				Data: &DataRef{Field: "P", Step: 0},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			var out PredictResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Error(err)
				return
			}
			preds[i] = out.Prediction
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if preds[i] != preds[0] {
			t.Fatalf("request %d got %v, request 0 got %v", i, preds[i], preds[0])
		}
	}
}

// TestBatchCellInvalidate: an invalidation that stales a scheme clears
// its cell-cache entries alongside the LRU result cache.
func TestBatchCellInvalidate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{
		Scheme: "khan2023", Compressor: "sz3",
		Fields: []string{"P", "TC"}, Steps: []int{0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if s.cells.len() != 2 {
		t.Fatalf("want 2 cached cells, got %d", s.cells.len())
	}
	resp, raw = postJSON(t, ts.URL+"/v1/invalidate", InvalidateRequest{Keys: []string{"pressio:abs"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate status %d: %s", resp.StatusCode, raw)
	}
	var inv InvalidateResponse
	if err := json.Unmarshal(raw, &inv); err != nil {
		t.Fatal(err)
	}
	if s.cells.len() != 0 {
		t.Fatalf("stale cells must be cleared, %d remain", s.cells.len())
	}
	if inv.ClearedCached < 2 {
		t.Fatalf("cleared_cached must count cell entries, got %d", inv.ClearedCached)
	}
}
