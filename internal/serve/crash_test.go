package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pressio"
	"repro/internal/store"
)

// The kill-restart harness. Each cycle runs predictd's serving stack over
// a fault-injected filesystem, crashes it at a scripted point, restarts
// on the frozen directory state (the disk as the kernel left it), and
// checks three invariants:
//
//  1. no acknowledged fit job is lost — every 202 eventually reaches
//     "done" on the restarted server;
//  2. no model is published twice with divergent content for one
//     opthash — a publish that survived the crash is adopted, never
//     overwritten;
//  3. the store reopens clean, or is repaired by storecheck (torn WAL
//     tail truncated, stale temp snapshots removed) — never refused.

// do drives the server handler directly (no sockets — the harness must
// stay deterministic under -race).
func do(h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(method, path, rd))
	return w
}

// waitTerminalRec polls a job through the handler until done/failed.
// found=false means the job does not exist (the lost-job signature).
func waitTerminalRec(h http.Handler, id string, timeout time.Duration) (JobView, bool) {
	deadline := time.Now().Add(timeout)
	for {
		w := do(h, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code == http.StatusNotFound {
			return JobView{}, false
		}
		var job JobView
		json.Unmarshal(w.Body.Bytes(), &job)
		if job.Status == "done" || job.Status == "failed" {
			return job, true
		}
		if time.Now().After(deadline) {
			return job, true
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func crashFired(plan *faultinject.Plan) bool {
	for _, ev := range plan.Log() {
		if ev.Kind == faultinject.KindCrash {
			return true
		}
	}
	return false
}

type cycleResult struct {
	crashed    bool
	acked      string // job ID acknowledged with 202 before the crash
	violations []string
}

// runCrashCycle is one fit → crash → restart → verify loop.
func runCrashCycle(t *testing.T, seed uint64, planText string, disableJournal bool) cycleResult {
	t.Helper()
	var res cycleResult
	violate := func(format string, args ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, args...))
	}

	// ---- phase 1: run against the faulty filesystem until the crash
	plan, err := faultinject.Parse(seed, planText)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	efs := faultinject.NewErrFS(dir, plan)
	st, err := store.OpenFS(dir, efs)
	if err != nil {
		t.Fatalf("phase-1 open: %v", err)
	}
	st.Sync = true   // fsync per record, so fs-sync fault points fire
	st.Inject = plan // store-level crash points share the same script
	cfg := Config{Deadline: time.Minute, DisableJournal: disableJournal}
	s, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatalf("phase-1 recover: %v", err)
	}
	h := s.Handler()

	ack := do(h, http.MethodPost, "/v1/fit", tinyFit())
	if ack.Code == http.StatusAccepted {
		var fr FitResponse
		json.Unmarshal(ack.Body.Bytes(), &fr)
		res.acked = fr.JobID
		// the fit pool always drives the job to a terminal status, even
		// when the store dies under it
		waitTerminalRec(h, res.acked, time.Minute)
	}
	s.Drain()
	st.Close()

	res.crashed = crashFired(plan)
	if !res.crashed {
		return res // the script never triggered; nothing to verify
	}
	// fs-level crashes froze the directory at the instant of death;
	// store-level crash points fired above the seam, so freeze now —
	// the store was already closed by the crash, the state is settled
	frozen := efs.FrozenDir()
	if frozen == "" {
		if frozen, err = efs.Freeze(); err != nil {
			t.Fatal(err)
		}
	}

	// ---- phase 2: fsck, restart on the frozen state, verify
	if _, err := store.Fsck(frozen, true); err != nil {
		violate("storecheck refused to repair: %v", err)
		return res
	}
	if rep, err := store.Fsck(frozen, false); err != nil || !rep.Clean() {
		violate("store not clean after repair: %+v, %v", rep, err)
	}
	st2, err := store.Open(frozen)
	if err != nil {
		violate("store did not reopen after repair: %v", err)
		return res
	}
	defer st2.Close()

	// what this opthash's model looked like before recovery ran
	req := tinyFit()
	modelKey := ModelKey(req.Scheme, req.Compressor, pressio.Options{}, req.Training)
	preModel, hadModel, _ := st2.Get(modelKey)

	s2, err := New(st2, cfg)
	if err != nil {
		violate("server did not restart: %v", err)
		return res
	}
	defer s2.Drain()
	h2 := s2.Handler()
	if w := do(h2, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		violate("healthz before replay = %d, want 503", w.Code)
	}
	if err := s2.Recover(context.Background()); err != nil {
		violate("journal replay failed: %v", err)
		return res
	}

	if res.acked != "" {
		job, found := waitTerminalRec(h2, res.acked, time.Minute)
		switch {
		case !found:
			violate("lost acknowledged job %s", res.acked)
		case job.Status != "done":
			violate("acknowledged job %s did not converge: %s (%s)", res.acked, job.Status, job.Error)
		}
	}
	if hadModel {
		postModel, ok, _ := st2.Get(modelKey)
		if !ok {
			violate("published model %s vanished during recovery", modelKey)
		} else if !bytes.Equal(preModel, postModel) {
			violate("model %s re-published with divergent content", modelKey)
		}
	}
	return res
}

// TestKillRestart sweeps every cataloged crash point with the journal
// enabled: all three invariants must hold at each.
func TestKillRestart(t *testing.T) {
	points := []struct {
		name string
		plan string
	}{
		// store-level crash points around the journal's own writes
		{"journal-queued-before", "put-before crash key=job/ count=1"},
		{"journal-queued-after", "put-after crash key=job/ count=1"},
		{"journal-running-after", "put-after crash key=job/ at=2 count=1"},
		{"journal-done-before", "put-before crash key=job/ at=3 count=1"},
		// around the model publish (the double-publish window)
		{"model-publish-before", "put-before crash key=model/ count=1"},
		{"model-publish-after", "put-after crash key=model/ count=1"},
		// below the seam: torn WAL appends and failed fsyncs
		{"wal-write-1", "fs-write crash key=wal.log at=1"},
		{"wal-write-2", "fs-write crash key=wal.log at=2"},
		{"wal-write-3", "fs-write crash key=wal.log at=3"},
		{"wal-fsync-2", "fs-sync crash key=wal.log at=2"},
		{"wal-fsync-3", "fs-sync crash key=wal.log at=3"},
	}
	for _, tc := range points {
		t.Run(tc.name, func(t *testing.T) {
			res := runCrashCycle(t, 1, tc.plan, false)
			if !res.crashed {
				t.Fatalf("crash point %q never fired — the catalog is stale", tc.plan)
			}
			for _, v := range res.violations {
				t.Errorf("invariant violated: %s", v)
			}
		})
	}
}

// TestKillRestartSeedSweep replays randomized crash scripts across a
// fixed seed set — the `make crash-check` sweep. Rates are deterministic
// per seed, so a failure reproduces from the seed alone.
func TestKillRestartSeedSweep(t *testing.T) {
	crashes := 0
	for seed := uint64(1); seed <= 6; seed++ {
		plan := "fs-write crash key=wal.log rate=0.15; fs-sync crash rate=0.1; put-after crash key=model/ rate=0.3"
		res := runCrashCycle(t, seed, plan, false)
		if res.crashed {
			crashes++
		}
		for _, v := range res.violations {
			t.Errorf("seed %d: invariant violated: %s", seed, v)
		}
	}
	if crashes == 0 {
		t.Error("no seed in the sweep produced a crash — widen the rates")
	}
	t.Logf("seed sweep: %d/6 cycles crashed", crashes)
}

// TestCrashDuringCompactRename tears the snapshot rename mid-compact:
// storecheck must sweep the orphaned temp and the journal + model must
// survive untouched.
func TestCrashDuringCompactRename(t *testing.T) {
	plan := faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSRename, Kind: faultinject.KindCrash, Worker: -1,
	})
	dir := filepath.Join(t.TempDir(), "store")
	efs := faultinject.NewErrFS(dir, plan)
	st, err := store.OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	st.Sync = true
	s, err := New(st, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	ack := do(h, http.MethodPost, "/v1/fit", tinyFit())
	if ack.Code != http.StatusAccepted {
		t.Fatalf("fit: %d %s", ack.Code, ack.Body)
	}
	var fr FitResponse
	json.Unmarshal(ack.Body.Bytes(), &fr)
	if job, _ := waitTerminalRec(h, fr.JobID, time.Minute); job.Status != "done" {
		t.Fatalf("fit did not complete: %+v", job)
	}
	if err := st.Compact(); err == nil {
		t.Fatal("Compact should have crashed at the rename")
	}
	s.Drain()
	st.Close()

	frozen := efs.FrozenDir()
	if frozen == "" {
		t.Fatal("rename crash did not freeze the directory")
	}
	rep, err := store.Fsck(frozen, true)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if len(rep.StaleTemps) != 1 || !rep.TempsRemoved {
		t.Errorf("fsck should sweep the orphaned compact temp: %+v", rep)
	}
	st2, err := store.Open(frozen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := New(st2, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	job, found := waitTerminalRec(s2.Handler(), fr.JobID, time.Minute)
	if !found || job.Status != "done" || job.Model == "" {
		t.Errorf("job after torn compact = %+v (found=%v), want done with model", job, found)
	}
	if n := s2.Registry().Len(); n != 1 {
		t.Errorf("registry has %d models after torn compact, want 1", n)
	}
}

// TestCrashHarnessCatchesJournalLoss is the harness's negative control:
// with journaling disabled, a crash after the fit ack demonstrably loses
// the acknowledged job — proving the journal (not luck) carries the
// invariant, and that the harness can actually detect a violation.
func TestCrashHarnessCatchesJournalLoss(t *testing.T) {
	res := runCrashCycle(t, 1, "put-before crash key=model/ count=1", true)
	if !res.crashed {
		t.Fatal("crash point never fired")
	}
	if res.acked == "" {
		t.Fatal("fit was never acknowledged; the control needs an ack to lose")
	}
	lost := false
	for _, v := range res.violations {
		if strings.Contains(v, "lost acknowledged job") {
			lost = true
		}
	}
	if !lost {
		t.Errorf("journal-less crash produced violations %v, want a lost acknowledged job", res.violations)
	}
}

// TestKillDuringBatchFlush kills the node while a coalesced batch flush
// is mid-computation — the instant the tentpole's hot path is busiest.
// The disk is frozen exactly when the flush worker starts (via the
// testHookBatchFlush crash point), then the frozen state is restarted:
// the fit job acked before the kill must still be done with its model
// intact, and the restarted node must serve batch traffic again. Batch
// work in flight at the kill was never acked, so it may vanish — but it
// must not corrupt the store.
func TestKillDuringBatchFlush(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	efs := faultinject.NewErrFS(dir, faultinject.New(1))
	st, err := store.OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	st.Sync = true

	flushStarted := make(chan struct{})
	gate := make(chan struct{})
	var arm sync.Once
	cfg := Config{Deadline: time.Minute}
	cfg.testHookBatchFlush = func() {
		arm.Do(func() { close(flushStarted) })
		<-gate
	}
	s, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// acked work that must survive: a fit driven to done before the kill
	ack := do(h, http.MethodPost, "/v1/fit", tinyFit())
	if ack.Code != http.StatusAccepted {
		t.Fatalf("fit ack = %d: %s", ack.Code, ack.Body.String())
	}
	var fr FitResponse
	json.Unmarshal(ack.Body.Bytes(), &fr)
	if job, found := waitTerminalRec(h, fr.JobID, time.Minute); !found || job.Status != "done" {
		t.Fatalf("pre-kill job = %+v (found=%v), want done", job, found)
	}

	// put a batch flush in flight, then freeze the disk while it runs
	batchReq := BatchRequest{
		Scheme: "khan2023", Compressor: "sz3", Dims: []int{8, 8, 8},
		Fields: []string{"P", "TC"}, Steps: []int{0, 0},
	}
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		do(h, http.MethodPost, "/v1/predict/batch", batchReq)
	}()
	<-flushStarted
	frozen, err := efs.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	// post-mortem cleanup of the "dead" process: release the orphaned
	// flush and tear down — none of it can reach the frozen snapshot
	close(gate)
	<-inflight
	s.Drain()
	st.Close()

	// restart on the disk as the kill left it
	if _, err := store.Fsck(frozen, true); err != nil {
		t.Fatalf("storecheck refused to repair: %v", err)
	}
	st2, err := store.Open(frozen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := New(st2, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	h2 := s2.Handler()

	job, found := waitTerminalRec(h2, fr.JobID, time.Minute)
	switch {
	case !found:
		t.Errorf("lost acknowledged job %s across the kill", fr.JobID)
	case job.Status != "done":
		t.Errorf("acknowledged job %s = %s (%s), want done", fr.JobID, job.Status, job.Error)
	}
	req := tinyFit()
	key := ModelKey(req.Scheme, req.Compressor, pressio.Options{}, req.Training)
	if _, ok, _ := st2.Get(key); !ok {
		t.Errorf("published model %s vanished across the kill", key)
	}
	if w := do(h2, http.MethodPost, "/v1/predict/batch", batchReq); w.Code != http.StatusOK {
		t.Errorf("restarted node batch predict = %d: %s", w.Code, w.Body.String())
	}
}
