package serve

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/pressio"
	"repro/internal/store"
)

// BenchmarkServePredictBatch measures the steady-state batch hot path:
// one 16-item batch through predictBatchItems with every cell resident
// in the cell cache — the op the ≥10x batch-QPS claim rests on. The
// allocs/op figure is gated in BENCH_kernels.json: the warm path must
// stay allocation-free (pooled scratch, struct cell keys, shared
// interval slices), so a regression that reintroduces per-item garbage
// fails make bench-check.
func BenchmarkServePredictBatch(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, err := New(st, Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer s.Drain()

	scheme, err := core.GetScheme("khan2023")
	if err != nil {
		b.Fatal(err)
	}
	dims := []int{8, 8, 8}
	g := newBatchGroup("khan2023", "sz3", scheme, pressio.Options{}, nil, 0, dims)
	const batch = 16
	req := &BatchRequest{Scheme: "khan2023", Compressor: "sz3", Dims: dims}
	fields := []string{"P", "TC", "QVAPOR", "W"}
	for i := 0; i < batch; i++ {
		req.Fields = append(req.Fields, fields[i%len(fields)])
		req.Steps = append(req.Steps, i/len(fields))
	}
	results := make([]BatchItemResult, batch)
	ctx := context.Background()

	// warm pass: misses populate the cell cache through the tiered
	// dataset cache; every timed op is then all hits
	if hits, errs := s.predictBatchItems(ctx, g, req, results); errs != 0 || hits != 0 {
		b.Fatalf("warm pass: hits=%d errs=%d (want 0 hits, 0 errs): %+v", hits, errs, results[0])
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, _ := s.predictBatchItems(ctx, g, req, results)
		if hits != batch {
			b.Fatalf("iteration %d: %d/%d hits", i, hits, batch)
		}
	}
}
