package serve

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMain is the package's goroutine-leak guard: after every test
// (including the journal replay and drain-during-replay paths) no
// goroutine may still be parked inside this package — pool workers must
// have drained, fit jobs finished, singleflight leaders landed. Leaks
// here are exactly how a "graceful" daemon wedges on SIGTERM.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := leakedServeGoroutines(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d goroutine(s) leaked from internal/serve:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// leakedServeGoroutines polls until no goroutine has a frame in this
// package (other than the caller) or the grace period expires; stragglers
// that are merely slow to exit get the grace, true leaks are reported.
func leakedServeGoroutines(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := serveGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func serveGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "repro/internal/serve.") && !strings.Contains(g, "TestMain") {
			out = append(out, g)
		}
	}
	return out
}
