package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hurricane"
	"repro/internal/opthash"
	"repro/internal/predictors"
	"repro/internal/pressio"
)

// maxElements bounds the data buffers a request may ask the server to
// synthesize and scan (backpressure against accidental giant dims).
const maxElements = 1 << 22

// requestKey derives the opthash-based cache/singleflight key of a
// predict request: the scheme/compressor/options tuple plus either the
// feature vector or the data coordinates, suffixed with the model key so
// a re-fit can never serve results cached from the previous model.
func requestKey(req *PredictRequest, opts pressio.Options, modelKey string) string {
	ro := pressio.Options{}
	ro.Set("req:scheme", req.Scheme)
	ro.Set("req:compressor", req.Compressor)
	if req.Features != nil {
		raw := make([]byte, 0, 8*len(req.Features))
		for _, f := range req.Features {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(f))
		}
		ro.Set("req:features", raw)
	}
	if req.Data != nil {
		ro.Set("req:field", req.Data.Field)
		ro.Set("req:step", int64(req.Data.Step))
		ro.Set("req:dims", dimsKey(req.Data.Dims))
	}
	if req.Alpha > 0 {
		ro.Set("req:alpha", req.Alpha)
	}
	return opthash.Combine(ro, opts) + "/" + modelKey
}

// checkDims validates request dims and applies the element budget.
func checkDims(dims []int) error {
	if len(dims) == 0 {
		return fmt.Errorf("dims required")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("dims must be positive, got %v", dims)
		}
		if n > maxElements/d {
			return fmt.Errorf("dims %v exceed the %d-element budget", dims, maxElements)
		}
		n *= d
	}
	return nil
}

// computeFeatures runs the scheme's metric plugins over one data buffer
// and extracts the feature vector — the server-side analogue of the
// Figure-4 evaluate step, with ctx checked between metrics so a deadline
// can cut a multi-metric evaluation short.
func computeFeatures(ctx context.Context, scheme core.Scheme, compressor string, opts pressio.Options, data *pressio.Data) ([]float64, error) {
	merged := opts.Clone()
	merged.Set(predictors.OptTaoCompressor, compressor)
	merged.Set(predictors.OptKhanCompressor, compressor)
	results := pressio.Options{}
	for _, name := range scheme.Metrics() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := pressio.GetMetric(name)
		if err != nil {
			return nil, err
		}
		if err := m.SetOptions(merged); err != nil {
			return nil, fmt.Errorf("metric %s: %w", name, err)
		}
		m.BeginCompress(data)
		results.Merge(m.Results())
	}
	return core.ExtractFeatures(results, scheme.Features())
}

// resolveFeatures turns a predict request into the scheme's feature
// vector, either by validating the client-supplied one or by reading the
// referenced buffer — through the tiered dataset cache when enabled, so
// repeated requests over the same cell skip synthesis and share one
// buffer pointer — and evaluating the metrics.
func (s *Server) resolveFeatures(ctx context.Context, scheme core.Scheme, req *PredictRequest, opts pressio.Options) ([]float64, error) {
	want := scheme.Features()
	if req.Features != nil {
		if len(req.Features) != len(want) {
			return nil, fmt.Errorf("scheme %s wants %d features %v, got %d", scheme.Name(), len(want), want, len(req.Features))
		}
		return req.Features, nil
	}
	dims := req.Data.Dims
	if len(dims) == 0 {
		dims = defaultDataDims
	}
	if err := checkDims(dims); err != nil {
		return nil, err
	}
	data, release, err := s.fieldData(req.Data.Field, req.Data.Step, dims)
	if err != nil {
		return nil, err
	}
	defer release()
	return computeFeatures(ctx, scheme, req.Compressor, opts, data)
}

// fieldData reads one hurricane cell, preferring the tiered dataset
// cache (3-D cells only — its spill format is the corpus layout). The
// returned release must be called once the buffer is no longer needed;
// it is a no-op on the uncached path.
func (s *Server) fieldData(field string, step int, dims []int) (*pressio.Data, func(), error) {
	if s.data != nil && len(dims) == 3 {
		h, err := s.data.Acquire(field, step, dims)
		if err != nil {
			return nil, nil, err
		}
		//lint:ignore pressiovet/poolescape ownership transfers to the caller, which must call the returned release
		return h.Data(), h.Release, nil
	}
	data, err := hurricane.Field(field, step, dims)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

// defaultDataDims keeps data-backed predict requests cheap when the
// client does not pick a grid.
var defaultDataDims = []int{16, 16, 16}

// predict is the uncached hot-path computation: resolve the feature
// vector, restore (or build) the predictor, and run it.
func (s *Server) predict(ctx context.Context, req *PredictRequest, opts pressio.Options, scheme core.Scheme, entry *ModelEntry) (PredictResponse, error) {
	resp := PredictResponse{
		Scheme:     req.Scheme,
		Compressor: req.Compressor,
		Target:     scheme.Target(),
	}
	features, err := s.resolveFeatures(ctx, scheme, req, opts)
	if err != nil {
		return resp, err
	}
	var p core.Predictor
	if entry != nil {
		resp.Model = entry.Key
		p, err = s.predictorFor(entry)
	} else {
		p, err = scheme.NewPredictor(req.Compressor)
	}
	if err != nil {
		return resp, err
	}
	if req.Alpha > 0 {
		if ip, ok := p.(core.IntervalPredictor); ok {
			pred, lo, hi, err := ip.PredictInterval(features, req.Alpha)
			if err != nil {
				return resp, err
			}
			resp.Prediction = pred
			resp.Interval = []float64{lo, hi}
			return resp, nil
		}
	}
	resp.Prediction, err = p.Predict(features)
	return resp, err
}

// predictorFor restores an entry's trained predictor, memoized per model
// key so the gob decode happens once per model, not per request. Restored
// predictors are only read concurrently (Predict), which the mlkit models
// support.
func (s *Server) predictorFor(entry *ModelEntry) (core.Predictor, error) {
	s.predMu.Lock()
	p, ok := s.predCache[entry.Key]
	s.predMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := s.registry.Restore(entry)
	if err != nil {
		return nil, err
	}
	s.predMu.Lock()
	s.predCache[entry.Key] = p
	s.predMu.Unlock()
	return p, nil
}

// observeCell measures one (field, step, bound) training cell: data
// through the tiered dataset cache — repeated fits over the same
// hurricane fields (and any concurrent predicts) share buffers and skip
// regeneration — features via the scheme's metrics, target via a real
// compressor run. The pin is released before return; observations copy
// out scalars, never the buffer.
func (s *Server) observeCell(ctx context.Context, scheme core.Scheme, compressor string, opts pressio.Options, field string, step int, dims []int, bound float64) ([]float64, float64, error) {
	data, release, err := s.fieldData(field, step, dims)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	cellOpts := opts.Clone()
	cellOpts.Set(pressio.OptAbs, bound)
	features, err := computeFeatures(ctx, scheme, compressor, cellOpts, data)
	if err != nil {
		return nil, 0, err
	}
	cr, _, _, err := core.ObserveTarget(compressor, data, cellOpts)
	if err != nil {
		return nil, 0, err
	}
	return features, cr, nil
}

// runFit executes one training job: observe every (field, step, bound)
// cell — features via the scheme's metrics, target via a real compressor
// run — fit the predictor, and publish the model to the registry.
func (s *Server) runFit(ctx context.Context, job *FitJob, req *FitRequest, opts pressio.Options, scheme core.Scheme) error {
	tr := req.Training
	key := ModelKey(req.Scheme, req.Compressor, opts, tr)
	if prev, ok := s.registry.Get(key); ok {
		// a model for this exact opthash already landed — from a crashed
		// run whose publish survived, or an identical earlier fit. Adopt
		// it instead of training again: publish-once per opthash is what
		// keeps at-least-once journal replay from ever installing two
		// divergent models under one key.
		job.mu.Lock()
		job.samples = prev.Samples
		job.modelKey = prev.Key
		job.mu.Unlock()
		return nil
	}
	dims := tr.Dims
	if len(dims) == 0 {
		dims = defaultDataDims
	}
	var x [][]float64
	var y []float64
	for _, field := range tr.Fields {
		for step := 0; step < tr.Steps; step++ {
			for _, bound := range tr.Bounds {
				if err := ctx.Err(); err != nil {
					return err
				}
				features, cr, err := s.observeCell(ctx, scheme, req.Compressor, opts, field, step, dims, bound)
				if err != nil {
					return err
				}
				x = append(x, features)
				y = append(y, cr)
			}
		}
	}
	p, err := scheme.NewPredictor(req.Compressor)
	if err != nil {
		return err
	}
	if err := p.Fit(x, y); err != nil {
		return err
	}
	state, err := predictors.MarshalState(p)
	if err != nil {
		return err
	}
	if prev, ok := s.registry.Get(key); ok {
		// the model landed while we were training — replicated from an
		// adopter that re-ran the same job. Adopt it rather than publishing
		// a duplicate.
		job.mu.Lock()
		job.samples = prev.Samples
		job.modelKey = prev.Key
		job.mu.Unlock()
		return nil
	}
	entry := &ModelEntry{
		Key:           key,
		Scheme:        req.Scheme,
		Compressor:    req.Compressor,
		PredictorName: p.Name(),
		Target:        scheme.Target(),
		Features:      scheme.Features(),
		Samples:       len(x),
		State:         state,
	}
	if err := s.registry.Put(entry); err != nil {
		return err
	}
	// a re-fit under the same key supersedes the old decoded predictor
	s.predMu.Lock()
	delete(s.predCache, entry.Key)
	s.predMu.Unlock()
	job.mu.Lock()
	job.samples = len(x)
	job.modelKey = entry.Key
	job.mu.Unlock()
	return nil
}
