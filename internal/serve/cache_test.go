package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.add("a", cacheValue{scheme: "s1"})
	c.add("b", cacheValue{scheme: "s1"})
	if _, ok := c.get("a"); !ok { // refresh a → b is now oldest
		t.Fatal("a should be cached")
	}
	c.add("c", cacheValue{scheme: "s2"})
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least-recently-used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRUCacheEvictIf(t *testing.T) {
	c := newLRUCache(8)
	c.add("a", cacheValue{scheme: "stale"})
	c.add("b", cacheValue{scheme: "fresh"})
	c.add("c", cacheValue{scheme: "stale"})
	n := c.evictIf(func(v cacheValue) bool { return v.scheme == "stale" })
	if n != 2 {
		t.Errorf("evicted %d, want 2", n)
	}
	if _, ok := c.get("b"); !ok {
		t.Error("fresh entry should survive")
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestFlightGroupCollapsesConcurrentDuplicates(t *testing.T) {
	g := newFlightGroup()
	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	const followers = 7
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	call := func() {
		defer wg.Done()
		resp, err, shared := g.do("same-key", func() (PredictResponse, error) {
			computes.Add(1)
			entered <- struct{}{}
			<-gate
			return PredictResponse{Prediction: 42}, nil
		})
		if err != nil || resp.Prediction != 42 {
			t.Errorf("do: %v %v", resp, err)
		}
		if shared {
			sharedCount.Add(1)
		}
	}
	// the leader first: once it is inside fn the flight stays open until
	// the gate drops, so everyone arriving after must piggyback
	wg.Add(1)
	go call()
	<-entered
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go call()
	}
	// release the compute only after every follower is enrolled
	for g.waiting("same-key") < followers {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("fn ran %d times, want exactly 1", got)
	}
	if got := sharedCount.Load(); got != followers {
		t.Errorf("%d callers shared, want %d", got, followers)
	}

	// after the flight lands, the key computes fresh again
	_, _, shared := g.do("same-key", func() (PredictResponse, error) {
		computes.Add(1)
		return PredictResponse{}, nil
	})
	if shared || computes.Load() != 2 {
		t.Error("a finished key should compute anew")
	}
}

func TestWorkerPoolBackpressureAndDrain(t *testing.T) {
	p := newWorkerPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int64
	if !p.trySubmit(func() { close(started); <-block; ran.Add(1) }) {
		t.Fatal("first submit should fit")
	}
	<-started
	if !p.trySubmit(func() { ran.Add(1) }) {
		t.Fatal("second submit should queue")
	}
	if p.trySubmit(func() {}) {
		t.Error("third submit should be refused: worker busy, queue full")
	}
	close(block)
	p.drain()
	if ran.Load() != 2 {
		t.Errorf("ran %d tasks, want 2", ran.Load())
	}
	if p.trySubmit(func() {}) {
		t.Error("a drained pool must refuse work")
	}
}
