package serve

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/pressio"
	"repro/internal/store"
)

// fitEntry trains a tiny krasowska2021 model and wraps it as a registry
// entry.
func fitEntry(t *testing.T, trainOpts pressio.Options, training TrainingSpec) *ModelEntry {
	t.Helper()
	scheme, err := core.GetScheme("krasowska2021")
	if err != nil {
		t.Fatal(err)
	}
	p, err := scheme.NewPredictor("sz3")
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}, {2, 0, 1}, {1, 2, 0}}
	y := []float64{2, 3, 4, 9, 8, 7}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	state, err := predictors.MarshalState(p)
	if err != nil {
		t.Fatal(err)
	}
	return &ModelEntry{
		Key:           ModelKey("krasowska2021", "sz3", trainOpts, training),
		Scheme:        "krasowska2021",
		Compressor:    "sz3",
		PredictorName: p.Name(),
		Target:        scheme.Target(),
		Features:      scheme.Features(),
		Samples:       len(x),
		State:         state,
	}
}

func openTestRegistry(t *testing.T, dir string) (*store.Store, *Registry) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, reg
}

func TestRegistryPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, reg := openTestRegistry(t, dir)
	training := TrainingSpec{Fields: []string{"P"}, Steps: 2, Dims: []int{4, 4}, Bounds: []float64{1e-4}}
	entry := fitEntry(t, pressio.Options{}, training)
	if err := reg.Put(entry); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, reg2 := openTestRegistry(t, dir)
	defer st2.Close()
	if reg2.Len() != 1 {
		t.Fatalf("reopened registry has %d entries, want 1", reg2.Len())
	}
	got, err := reg2.Lookup("krasowska2021", "sz3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != entry.Key || got.Samples != 6 || got.PredictorName != "linear_regression" {
		t.Fatalf("reopened entry mismatch: %+v", got)
	}
	p, err := reg2.Restore(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2, 3}); err != nil {
		t.Fatalf("restored predictor should predict: %v", err)
	}
}

func TestRegistryLookupServesNewest(t *testing.T) {
	st, reg := openTestRegistry(t, t.TempDir())
	defer st.Close()
	t1 := TrainingSpec{Fields: []string{"P"}, Steps: 2, Bounds: []float64{1e-4}}
	t2 := TrainingSpec{Fields: []string{"P", "CLOUD"}, Steps: 4, Bounds: []float64{1e-4}}
	e1 := fitEntry(t, pressio.Options{}, t1)
	e2 := fitEntry(t, pressio.Options{}, t2)
	if e1.Key == e2.Key {
		t.Fatal("different training sets must produce different model keys")
	}
	if err := reg.Put(e1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(e2); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Lookup("krasowska2021", "sz3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e2.Key {
		t.Errorf("Lookup served %s, want the newest %s", got.Key, e2.Key)
	}
	if _, err := reg.Lookup("krasowska2021", "zfp"); !errors.Is(err, ErrNoModel) {
		t.Errorf("unknown compressor: want ErrNoModel, got %v", err)
	}
	if len(reg.List()) != 2 {
		t.Errorf("List returned %d entries, want 2", len(reg.List()))
	}
}

func TestRegistryInvalidateEvictsStaleSchemes(t *testing.T) {
	st, reg := openTestRegistry(t, t.TempDir())
	defer st.Close()
	training := TrainingSpec{Fields: []string{"P"}, Steps: 2, Bounds: []float64{1e-4}}
	entry := fitEntry(t, pressio.Options{}, training)
	if err := reg.Put(entry); err != nil {
		t.Fatal(err)
	}

	// an unrelated option change leaves the model alone
	evicted, err := reg.Invalidate("sz3:quant_bins_unrelated")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("unrelated invalidation evicted %v", evicted)
	}

	// an error-dependent declaration evicts krasowska (quantized entropy
	// is bound-dependent) — from memory AND the durable store
	evicted, err = reg.Invalidate(pressio.InvalidateErrorDependent)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != entry.Key {
		t.Fatalf("evicted %v, want [%s]", evicted, entry.Key)
	}
	if _, err := reg.Lookup("krasowska2021", "sz3"); !errors.Is(err, ErrNoModel) {
		t.Errorf("want ErrNoModel after eviction, got %v", err)
	}
	if _, ok, _ := st.Get(entry.Key); ok {
		t.Error("evicted entry must be deleted from the store, not just memory")
	}
}

func TestRegistryInvalidateTrainingEvictsAllTrained(t *testing.T) {
	st, reg := openTestRegistry(t, t.TempDir())
	defer st.Close()
	training := TrainingSpec{Fields: []string{"P"}, Steps: 2, Bounds: []float64{1e-4}}
	if err := reg.Put(fitEntry(t, pressio.Options{}, training)); err != nil {
		t.Fatal(err)
	}
	evicted, err := reg.Invalidate(pressio.InvalidateTraining)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Errorf("predictors:training should evict every trained model, got %v", evicted)
	}
}
