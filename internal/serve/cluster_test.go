package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// newNodeServer builds a Server with a NodeName over its own store dir,
// returning the store too (cluster tests reopen it across "restarts").
func newNodeServer(t *testing.T, dir, node string, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeName = node
	s, err := New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestRequestBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	huge := append([]byte(`{"scheme":"s","pad":"`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized predict body = %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fit body = %d, want 400", resp.StatusCode)
	}
}

func TestRetryAfterAdaptsToMeasuredLatency(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4, FitWorkers: 1})

	// nothing measured yet: conservative floors
	if got := s.retryAfterFit(); got != "2" {
		t.Errorf("cold fit Retry-After = %s, want 2", got)
	}
	if got := s.retryAfterPredict(); got != "1" {
		t.Errorf("cold predict Retry-After = %s, want 1", got)
	}

	// fits measured at ~4s median, one worker, empty queue → ~4s advice
	for i := 0; i < 32; i++ {
		s.stats.fitObserve(4000)
	}
	if got := s.retryAfterFit(); got != "4" {
		t.Errorf("fit Retry-After at 4s median = %s, want 4", got)
	}

	// pathological latencies clamp instead of advising an hour
	for i := 0; i < latencyWindow; i++ {
		s.stats.fitObserve(10 * 60 * 1000)
	}
	if got := s.retryAfterFit(); got != "120" {
		t.Errorf("fit Retry-After clamp = %s, want 120", got)
	}

	// predict advice follows the endpoint's p50 and worker count:
	// 2s median / 4 workers → 1s even before queue depth piles on
	for i := 0; i < 32; i++ {
		s.stats.observe("/v1/predict", http.StatusOK, 2000)
	}
	if got := s.retryAfterPredict(); got != "1" {
		t.Errorf("predict Retry-After = %s, want 1", got)
	}
}

func TestAckBarrierGatesTheFitAck(t *testing.T) {
	barrierErr := errors.New("0/1 follower acks")
	var allow bool
	s, ts := newTestServer(t, Config{
		Deadline: time.Minute,
		AckBarrier: func(ctx context.Context) error {
			if allow {
				return nil
			}
			return barrierErr
		},
	})

	resp, body := postJSON(t, ts.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fit with failing barrier = %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("barrier 503 without Retry-After")
	}
	// the unacknowledged job must be fully withdrawn: no job registered,
	// no journal record left to replay after a restart
	s.jobMu.Lock()
	njobs := len(s.jobs)
	s.jobMu.Unlock()
	if njobs != 0 {
		t.Errorf("%d jobs registered after withdrawn ack", njobs)
	}
	if recs, _ := s.journal.load(); len(recs) != 0 {
		t.Errorf("journal holds %d records after withdrawn ack", len(recs))
	}

	allow = true
	resp, body = postJSON(t, ts.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit with passing barrier = %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	if job := waitJob(t, ts.URL, fr.JobID); job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}
}

func TestRecoverSkipsForeignJobsAndAdoptTakesThem(t *testing.T) {
	dir := t.TempDir()

	// node n2 accepts and finishes a fit, then "dies"
	s2, st2 := newNodeServer(t, dir, "n2", Config{Deadline: time.Minute})
	ts2 := httptest.NewServer(s2.Handler())
	resp, body := postJSON(t, ts2.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	if !strings.HasPrefix(fr.JobID, "job-n2-") {
		t.Fatalf("node-scoped job ID = %q", fr.JobID)
	}
	if job := waitJob(t, ts2.URL, fr.JobID); job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}
	ts2.Close()
	s2.Drain()

	// simulate death mid-fit: rewrite the record as still running
	recs, err := (&journal{st: st2}).load()
	if err != nil || len(recs) != 1 {
		t.Fatalf("journal = %d records, %v", len(recs), err)
	}
	rec := recs[0]
	rec.Status = "running"
	rec.Model = ""
	if err := (&journal{st: st2}).put(rec); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	// the survivor n1 shares the replicated store contents (same dir here)
	s1, st1 := newNodeServer(t, dir, "n1", Config{Deadline: time.Minute})
	t.Cleanup(func() { s1.Drain(); st1.Close() })

	// Recover must not have claimed the foreign record: it belongs to n2
	// until a failover decision says otherwise
	s1.jobMu.Lock()
	_, claimed := s1.jobs[rec.ID]
	s1.jobMu.Unlock()
	if claimed {
		t.Fatal("Recover claimed a foreign node's job")
	}
	if raw, ok, _ := st1.Get(rec.Key); !ok {
		t.Fatal("foreign journal record deleted during Recover")
	} else if !bytes.Contains(raw, []byte(`"node":"n2"`)) {
		t.Fatalf("foreign record rewritten: %s", raw)
	}

	// failover: n1 adopts n2's jobs and honors the interrupted 202
	n, err := s1.Adopt(context.Background(), "n2")
	if err != nil || n != 1 {
		t.Fatalf("Adopt = %d, %v", n, err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	if job := waitJob(t, ts1.URL, fr.JobID); job.Status != "done" {
		t.Fatalf("adopted job failed: %s", job.Error)
	}
	// the record is re-authored: n1's own restarts now recover it
	raw, _, _ := st1.Get(rec.Key)
	if !bytes.Contains(raw, []byte(`"node":"n1"`)) {
		t.Errorf("adopted record still foreign: %s", raw)
	}
	// adopting again is a no-op
	if n, err := s1.Adopt(context.Background(), "n2"); err != nil || n != 0 {
		t.Errorf("second Adopt = %d, %v", n, err)
	}
}

func TestModelBytesEquivalentIgnoresSeqOnly(t *testing.T) {
	enc := func(e ModelEntry) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := ModelEntry{
		Key: "model/s/c/h", Scheme: "s", Compressor: "c",
		PredictorName: "linear_regression", Target: "size:compression_ratio",
		Features: []string{"f1", "f2"}, Samples: 4, State: []byte("state"),
	}
	withSeq := func(seq uint64) ModelEntry { e := base; e.Seq = seq; return e }

	// two nodes re-publishing the same deterministic fit differ only in
	// their per-node Seq — that is not divergence
	if !ModelBytesEquivalent(enc(withSeq(1)), enc(withSeq(7))) {
		t.Error("Seq-only difference reported as divergent")
	}
	// a different trained state is
	other := withSeq(1)
	other.State = []byte("other-state")
	if ModelBytesEquivalent(enc(withSeq(1)), enc(other)) {
		t.Error("divergent state reported as equivalent")
	}
	// undecodable values fall back to literal comparison
	if ModelBytesEquivalent([]byte("aaa"), []byte("bbb")) {
		t.Error("raw unequal bytes reported as equivalent")
	}
	if !ModelBytesEquivalent([]byte("aaa"), []byte("aaa")) {
		t.Error("identical bytes reported as divergent")
	}
}

func TestAbsorbKeepsProjectionsCoherent(t *testing.T) {
	// train a real model on one server to get valid registry bytes
	sA, stA := newNodeServer(t, t.TempDir(), "", Config{Deadline: time.Minute})
	tsA := httptest.NewServer(sA.Handler())
	t.Cleanup(func() { tsA.Close(); sA.Drain(); stA.Close() })
	resp, body := postJSON(t, tsA.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	job := waitJob(t, tsA.URL, fr.JobID)
	if job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}
	modelKey := job.Model
	raw, ok, _ := stA.Get(modelKey)
	if !ok {
		t.Fatalf("model %s not in store", modelKey)
	}

	// a second server absorbs the replicated frame without fitting
	sB, tsB := newTestServer(t, Config{Deadline: time.Minute})
	sB.Absorb(store.Frame{Op: store.FramePut, Key: modelKey, Value: raw})
	var models []struct {
		Key      string `json:"key"`
		StateSHA string `json:"state_sha256"`
	}
	getJSON(t, tsB.URL+"/v1/models", &models)
	if len(models) != 1 || models[0].Key != modelKey {
		t.Fatalf("absorbed models = %+v", models)
	}
	if models[0].StateSHA == "" {
		t.Error("no state hash on absorbed model")
	}

	// and the absorbed model actually serves predictions
	resp, body = postJSON(t, tsB.URL+"/v1/predict", map[string]any{
		"scheme": "krasowska2021", "compressor": "sz3",
		"data":    map[string]any{"field": "P", "step": 1, "dims": []int{8, 8, 8}},
		"options": map[string]any{"pressio:abs": 1e-3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict from absorbed model = %d %s", resp.StatusCode, body)
	}

	// a replicated delete evicts it everywhere
	sB.Absorb(store.Frame{Op: store.FrameDelete, Key: modelKey})
	getJSON(t, tsB.URL+"/v1/models", &models)
	if len(models) != 0 {
		t.Errorf("models after absorbed delete = %+v", models)
	}
}
