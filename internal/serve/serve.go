// Package serve is the online prediction-serving subsystem behind the
// predictd daemon: the deployment shape the paper's trained predictors
// (fit/predict with serializable state, indexed by stable opthash keys)
// exist for — fit once against an expensive offline bench run, then
// answer many cheap online queries.
//
// The pieces:
//
//   - a model Registry layered on internal/store persisting trained
//     predictor state (the predictors.MarshalState envelope) keyed by the
//     opthash of the (scheme, compressor options, training-set) tuple,
//     honoring predictors:invalidate semantics: error_dependent- or
//     training-invalidated entries are evicted rather than served stale;
//   - an opthash-keyed LRU result cache with singleflight deduplication,
//     so concurrent identical requests compute once;
//   - a bounded worker pool with queue-depth backpressure (429 +
//     Retry-After when saturated) and per-request deadlines;
//   - per-endpoint/per-scheme counters and latency quantiles (via
//     internal/stats) surfaced on /statz, liveness on /healthz, and
//     graceful drain for SIGTERM shutdown.
package serve

import (
	"fmt"
	"math"

	"repro/internal/pressio"
)

// DataRef names a sample of the synthetic Hurricane dataset to compute
// prediction features from, when a client sends raw-data coordinates
// instead of a precomputed feature vector.
type DataRef struct {
	Field string `json:"field"`
	Step  int    `json:"step"`
	Dims  []int  `json:"dims,omitempty"`
}

// PredictRequest asks for the predicted target metric of a scheme applied
// to a compressor configuration. Exactly one of Features (a precomputed
// feature vector in scheme.Features() order) or Data (a buffer sample to
// compute features from) must be set.
type PredictRequest struct {
	Scheme     string         `json:"scheme"`
	Compressor string         `json:"compressor"`
	Options    map[string]any `json:"options,omitempty"`
	Features   []float64      `json:"features,omitempty"`
	Data       *DataRef       `json:"data,omitempty"`
	// Alpha, when positive, asks for a 1-alpha prediction interval from
	// schemes whose predictors are bounded (core.IntervalPredictor).
	Alpha float64 `json:"alpha,omitempty"`
}

// PredictResponse is the served prediction.
type PredictResponse struct {
	Scheme     string    `json:"scheme"`
	Compressor string    `json:"compressor"`
	Target     string    `json:"target"`
	Prediction float64   `json:"prediction"`
	Interval   []float64 `json:"interval,omitempty"` // [lo, hi] when bounded
	Model      string    `json:"model,omitempty"`    // registry key served from
	Cached     bool      `json:"cached"`
}

// TrainingSpec enumerates the synthetic-dataset cells a fit job observes:
// the cross product of fields × steps × bounds at the given dims.
type TrainingSpec struct {
	Fields []string  `json:"fields"`
	Steps  int       `json:"steps"`
	Dims   []int     `json:"dims,omitempty"`
	Bounds []float64 `json:"bounds"`
}

// FitRequest asks for an asynchronous training job.
type FitRequest struct {
	Scheme     string         `json:"scheme"`
	Compressor string         `json:"compressor"`
	Options    map[string]any `json:"options,omitempty"`
	Training   TrainingSpec   `json:"training"`
}

// FitResponse acknowledges a queued training job. Existing marks an
// idempotent resubmit: the same (scheme, options, training-set) opthash
// was already queued, running, or done, and JobID names that job.
type FitResponse struct {
	JobID    string `json:"job_id"`
	Existing bool   `json:"existing,omitempty"`
}

// InvalidateRequest declares which compressor options or predictors:*
// class keys changed, exactly as core.Session.Invalidate does for the
// in-process flow.
type InvalidateRequest struct {
	Keys []string `json:"keys"`
}

// InvalidateResponse reports what the declaration evicted.
type InvalidateResponse struct {
	EvictedModels []string `json:"evicted_models"`
	ClearedCached int      `json:"cleared_cached"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// optionsFromJSON converts a decoded JSON object into pressio.Options.
// JSON numbers arrive as float64; integral values (within exact-int
// range) are normalized to int64 so integer-typed plugin options
// (e.g. jin:quant_bins) resolve, while GetFloat still accepts them for
// float-typed settings. The rule is deterministic, so cache keys hashed
// from converted options are stable.
func optionsFromJSON(m map[string]any) (pressio.Options, error) {
	opts := pressio.Options{}
	for k, v := range m {
		switch t := v.(type) {
		case bool, string:
			opts.Set(k, t)
		case float64:
			if t == math.Trunc(t) && math.Abs(t) < 1<<53 {
				opts.Set(k, int64(t))
			} else {
				opts.Set(k, t)
			}
		case []any:
			ss := make([]string, len(t))
			for i, e := range t {
				s, ok := e.(string)
				if !ok {
					return nil, fmt.Errorf("option %q: array values must be strings", k)
				}
				ss[i] = s
			}
			opts.Set(k, ss)
		default:
			return nil, fmt.Errorf("option %q: unsupported value type %T", k, v)
		}
	}
	return opts, nil
}
