package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/opthash"
	"repro/internal/pressio"
	"repro/internal/store"
)

// jobPrefix namespaces fit-job journal records in the shared store,
// beside the registry's "model/" space.
const jobPrefix = "job/"

// fitHash is the stable opthash of a (scheme, compressor options,
// training-set) tuple — the identity shared by a fit job and the model
// it publishes. JobKey and ModelKey differ only in prefix, so "did this
// job's model land?" is a prefix swap, not a second hash.
func fitHash(scheme, compressor string, opts pressio.Options, training TrainingSpec) string {
	schemeOpts := pressio.Options{}
	schemeOpts.Set("serve:scheme", scheme)
	schemeOpts.Set("serve:compressor", compressor)
	trainOpts := pressio.Options{}
	trainOpts.Set("training:fields", append([]string(nil), training.Fields...))
	trainOpts.Set("training:steps", int64(training.Steps))
	trainOpts.Set("training:dims", dimsKey(training.Dims))
	bounds := make([]string, len(training.Bounds))
	for i, b := range training.Bounds {
		bounds[i] = fmt.Sprintf("%g", b)
	}
	trainOpts.Set("training:bounds", bounds)
	return opthash.Combine(schemeOpts, opts, trainOpts)
}

// JobKey builds the journal key of a fit job.
func JobKey(scheme, compressor string, opts pressio.Options, training TrainingSpec) string {
	return jobPrefix + scheme + "/" + compressor + "/" + fitHash(scheme, compressor, opts, training)
}

// jobRecord is the JSON journal projection of a FitJob: enough to show
// the job's state after a restart and, for interrupted jobs, to re-run
// the fit (the full original request rides along).
type jobRecord struct {
	ID             string     `json:"id"`
	Key            string     `json:"key"`
	Node           string     `json:"node,omitempty"`
	Scheme         string     `json:"scheme"`
	Compressor     string     `json:"compressor"`
	Status         string     `json:"status"`
	Error          string     `json:"error,omitempty"`
	Model          string     `json:"model,omitempty"`
	Samples        int        `json:"samples,omitempty"`
	Request        FitRequest `json:"request"`
	FinishedAtUnix int64      `json:"finished_at_unix,omitempty"`
}

// journal persists fit jobs through the store's WAL. A nil *journal
// (journaling disabled) is inert.
type journal struct {
	st *store.Store
}

// put journals the record under its job key (last write wins, so one
// record tracks a job through its state machine).
func (j *journal) put(rec jobRecord) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return j.st.Put(rec.Key, raw)
}

// remove deletes a job's journal record (evicted or never acknowledged).
func (j *journal) remove(key string) error {
	if j == nil {
		return nil
	}
	return j.st.Delete(key)
}

// load returns every journaled job, oldest job ID first. Records that
// fail to decode are dropped (and deleted best-effort) rather than
// wedging startup — the journal is a recovery aid, not primary data.
func (j *journal) load() ([]jobRecord, error) {
	if j == nil {
		return nil, nil
	}
	keys, err := j.st.Keys(jobPrefix)
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, k := range keys {
		raw, ok, err := j.st.Get(k)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Key != k {
			j.st.Delete(k)
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return jobSeqOf(recs[a].ID) < jobSeqOf(recs[b].ID) })
	return recs, nil
}

// jobSeqOf extracts N from a "job-N" or node-scoped "job-<node>-N" ID
// (0 for foreign IDs), so a restarted server resumes its ID sequence
// above every journaled job.
func jobSeqOf(id string) uint64 {
	n, err := strconv.ParseUint(id[strings.LastIndex(id, "-")+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
