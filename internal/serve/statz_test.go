package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
)

// TestStatzProcessStats exercises the live process sampler: on Linux the
// RSS of a running test binary is necessarily positive, and the runtime
// counters must be coherent.
func TestStatzProcessStats(t *testing.T) {
	ps := readProcessStats()
	if runtime.GOOS == "linux" && ps.RSSBytes <= 0 {
		t.Errorf("rss_bytes = %d on linux, want > 0", ps.RSSBytes)
	}
	if ps.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", ps.Goroutines)
	}
	if ps.HeapAllocBytes == 0 {
		t.Error("heap_alloc_bytes = 0 for a live Go process")
	}
	runtime.GC()
	after := readProcessStats()
	if after.NumGC <= ps.NumGC {
		t.Errorf("num_gc did not advance across runtime.GC(): %d -> %d", ps.NumGC, after.NumGC)
	}
	if after.GCPauseP99MS < after.GCPauseP50MS {
		t.Errorf("gc pause p99 %.4f < p50 %.4f", after.GCPauseP99MS, after.GCPauseP50MS)
	}
}

// TestStatzJSONShape pins the /statz wire shape — the scenario harness
// and any external scraper key on these exact field names, so renaming
// one is a breaking change this test makes loud.
func TestStatzJSONShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{
		"uptime_seconds", "draining", "replaying", "models", "jobs",
		"jobs_retained", "jobs_evicted", "journal_errors", "endpoints",
		"schemes", "cache_hits", "cache_misses", "cache_size",
		"cell_hits", "cell_cache_size", "coalesced_hits",
		"batch_requests", "batch_predictions", "data_cache",
		"dedup_collapses", "rejected", "evicted_models", "evicted_cached",
		"process",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/statz missing top-level key %q", key)
		}
	}

	var dc map[string]json.RawMessage
	if err := json.Unmarshal(doc["data_cache"], &dc); err != nil {
		t.Fatalf("data_cache section: %v", err)
	}
	for _, key := range []string{
		"mem_hits", "disk_hits", "misses", "evictions",
		"resident_bytes", "mapped_bytes",
	} {
		if _, ok := dc[key]; !ok {
			t.Errorf("/statz data_cache section missing key %q", key)
		}
	}

	var proc map[string]json.RawMessage
	if err := json.Unmarshal(doc["process"], &proc); err != nil {
		t.Fatalf("process section: %v", err)
	}
	for _, key := range []string{
		"rss_bytes", "goroutines", "heap_alloc_bytes", "num_gc",
		"gc_pause_p50_ms", "gc_pause_p99_ms",
	} {
		if _, ok := proc[key]; !ok {
			t.Errorf("/statz process section missing key %q", key)
		}
	}
}
