package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
)

// LoadGenResult aggregates one load-generation run against a predictd
// endpoint.
type LoadGenResult struct {
	Requests  int // completed request attempts
	OK        int // 200 responses
	Rejected  int // 429 backpressure responses
	Errors    int // transport failures and non-200/429 statuses
	CacheHits int // 200 responses served from the result cache
	// Batches counts the requests issued against /v1/predict/batch;
	// Predictions counts individual predictions across both endpoints
	// (1 per single predict, the item count per successful batch).
	Batches     int
	Predictions int
}

// HitRate returns the fraction of OK responses served from cache.
func (r *LoadGenResult) HitRate() float64 {
	if r.OK == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.OK)
}

// LoadGenOpts shapes the traffic mix LoadGenWith offers beyond plain
// single predicts.
type LoadGenOpts struct {
	// BatchPct is the share of issued operations sent as one columnar
	// /v1/predict/batch request, in percent. A batched op folds the next
	// batch-size-many requests from the round-robin into one body, so
	// every input request is still covered exactly once per lap.
	BatchPct float64
	// BatchSizes is the batch-size distribution; each batched op draws
	// uniformly from it. Required when BatchPct > 0.
	BatchSizes []int
	// Seed drives the per-worker batch draws (deterministic per worker).
	Seed int64
}

// LoadGen drives POST /v1/predict with clients concurrent workers, each
// issuing perClient requests round-robin over reqs — the test helper
// behind `make serve-check`'s load drill and the predictd soak tests.
// Transport errors are counted, not returned, so a drill can assert on
// the exact shape of a degraded run.
func LoadGen(baseURL string, clients, perClient int, reqs []PredictRequest) (*LoadGenResult, error) {
	return LoadGenWith(baseURL, clients, perClient, reqs, LoadGenOpts{})
}

// LoadGenWith is LoadGen with a declared traffic mix: a seeded fraction
// of operations fold consecutive requests into one columnar batch
// against /v1/predict/batch. Batched requests require data-coordinate
// (DataRef) inputs, since a batch body carries one shared scheme,
// compressor, and option set from the first folded request.
func LoadGenWith(baseURL string, clients, perClient int, reqs []PredictRequest, opts LoadGenOpts) (*LoadGenResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs at least one request")
	}
	if opts.BatchPct < 0 || opts.BatchPct > 100 {
		return nil, fmt.Errorf("serve: loadgen batch_pct %v outside [0, 100]", opts.BatchPct)
	}
	if opts.BatchPct > 0 {
		if len(opts.BatchSizes) == 0 {
			return nil, fmt.Errorf("serve: loadgen batch traffic needs batch sizes")
		}
		for _, r := range reqs {
			if r.Data == nil {
				return nil, fmt.Errorf("serve: loadgen batch traffic needs data-coordinate requests")
			}
		}
	}
	bodies := make([][]byte, len(reqs))
	for i := range reqs {
		b, err := json.Marshal(&reqs[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	var mu sync.Mutex
	total := &LoadGenResult{}
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(c)))
			local := LoadGenResult{}
			next := c * perClient // round-robin cursor into reqs
			for i := 0; i < perClient; i++ {
				if opts.BatchPct > 0 && rng.Float64()*100 < opts.BatchPct {
					size := opts.BatchSizes[rng.Intn(len(opts.BatchSizes))]
					issueBatch(baseURL, reqs, next, size, &local)
					next += size
				} else {
					issueSingle(baseURL, bodies[next%len(bodies)], &local)
					next++
				}
			}
			mu.Lock()
			total.Requests += local.Requests
			total.OK += local.OK
			total.Rejected += local.Rejected
			total.Errors += local.Errors
			total.CacheHits += local.CacheHits
			total.Batches += local.Batches
			total.Predictions += local.Predictions
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return total, nil
}

func issueSingle(baseURL string, body []byte, local *LoadGenResult) {
	local.Requests++
	resp, err := http.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		local.Errors++
		return
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		local.OK++
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err == nil && pr.Cached {
			local.CacheHits++
		}
		local.Predictions++
	case http.StatusTooManyRequests:
		local.Rejected++
	default:
		local.Errors++
	}
}

// issueBatch folds size consecutive requests (round-robin from cursor)
// into one columnar batch under the first request's scheme, compressor,
// and options.
func issueBatch(baseURL string, reqs []PredictRequest, cursor, size int, local *LoadGenResult) {
	first := reqs[cursor%len(reqs)]
	breq := BatchRequest{
		Scheme:     first.Scheme,
		Compressor: first.Compressor,
		Options:    first.Options,
		Alpha:      first.Alpha,
		Dims:       first.Data.Dims,
	}
	for i := 0; i < size; i++ {
		r := reqs[(cursor+i)%len(reqs)]
		breq.Fields = append(breq.Fields, r.Data.Field)
		breq.Steps = append(breq.Steps, r.Data.Step)
	}
	body, err := json.Marshal(&breq)
	if err != nil {
		local.Errors++
		return
	}
	local.Requests++
	local.Batches++
	resp, err := http.Post(baseURL+"/v1/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		local.Errors++
		return
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil || br.Errors > 0 {
			local.Errors++
			return
		}
		local.OK++
		local.Predictions += br.Count
	case http.StatusTooManyRequests:
		local.Rejected++
	default:
		local.Errors++
	}
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
