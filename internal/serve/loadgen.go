package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// LoadGenResult aggregates one load-generation run against a predictd
// endpoint.
type LoadGenResult struct {
	Requests  int // completed request attempts
	OK        int // 200 responses
	Rejected  int // 429 backpressure responses
	Errors    int // transport failures and non-200/429 statuses
	CacheHits int // 200 responses served from the result cache
}

// HitRate returns the fraction of OK responses served from cache.
func (r *LoadGenResult) HitRate() float64 {
	if r.OK == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.OK)
}

// LoadGen drives POST /v1/predict with clients concurrent workers, each
// issuing perClient requests round-robin over reqs — the test helper
// behind `make serve-check`'s load drill and the predictd soak tests.
// Transport errors are counted, not returned, so a drill can assert on
// the exact shape of a degraded run.
func LoadGen(baseURL string, clients, perClient int, reqs []PredictRequest) (*LoadGenResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs at least one request")
	}
	bodies := make([][]byte, len(reqs))
	for i := range reqs {
		b, err := json.Marshal(&reqs[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	var mu sync.Mutex
	total := &LoadGenResult{}
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			local := LoadGenResult{}
			for i := 0; i < perClient; i++ {
				body := bodies[(c*perClient+i)%len(bodies)]
				local.Requests++
				resp, err := http.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					local.Errors++
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					local.OK++
					var pr PredictResponse
					if err := json.NewDecoder(resp.Body).Decode(&pr); err == nil && pr.Cached {
						local.CacheHits++
					}
				case http.StatusTooManyRequests:
					local.Rejected++
				default:
					local.Errors++
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			total.Requests += local.Requests
			total.OK += local.OK
			total.Rejected += local.Rejected
			total.Errors += local.Errors
			total.CacheHits += local.CacheHits
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return total, nil
}
