package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	_ "repro/internal/compressor/lossless" // register compressor plugins
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	_ "repro/internal/metrics" // register metric plugins
	"repro/internal/pressio"
	"repro/internal/store"
)

// Config tunes the serving subsystem; zero values pick serving-friendly
// defaults.
type Config struct {
	// Workers is the predict worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the pending predict queue; a full queue sheds
	// load with 429 (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity (default 1024).
	CacheSize int
	// Deadline bounds each predict computation (default 30s).
	Deadline time.Duration
	// FitWorkers is the training worker-pool size (default 1).
	FitWorkers int
	// FitQueueDepth bounds queued training jobs (default 8).
	FitQueueDepth int
	// DefaultOptions are merged under every request's options (predictd
	// -opts flag).
	DefaultOptions pressio.Options

	// testHookPredict, when set, runs inside every uncached predict
	// computation — tests use it to hold worker slots busy.
	testHookPredict func()
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.FitWorkers <= 0 {
		c.FitWorkers = 1
	}
	if c.FitQueueDepth <= 0 {
		c.FitQueueDepth = 8
	}
}

// FitJob tracks one asynchronous training job.
type FitJob struct {
	ID         string
	Scheme     string
	Compressor string

	mu       sync.Mutex
	status   string // queued | running | done | failed
	errMsg   string
	modelKey string
	samples  int
}

// JobView is the immutable JSON projection of a FitJob.
type JobView struct {
	ID         string `json:"id"`
	Scheme     string `json:"scheme"`
	Compressor string `json:"compressor"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	Model      string `json:"model,omitempty"`
	Samples    int    `json:"samples,omitempty"`
}

func (j *FitJob) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID: j.ID, Scheme: j.Scheme, Compressor: j.Compressor,
		Status: j.status, Error: j.errMsg, Model: j.modelKey, Samples: j.samples,
	}
}

func (j *FitJob) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.mu.Unlock()
}

// Server is the prediction-serving subsystem: registry + cache +
// singleflight + bounded pools behind an http.Handler.
type Server struct {
	cfg      Config
	registry *Registry
	cache    *lruCache
	flight   *flightGroup
	pool     *workerPool
	fitPool  *workerPool
	stats    *counters
	draining atomic.Bool

	predMu    sync.Mutex
	predCache map[string]core.Predictor

	jobMu  sync.Mutex
	jobs   map[string]*FitJob
	jobSeq uint64
}

// New builds a Server over an open store (which it does not close).
func New(st *store.Store, cfg Config) (*Server, error) {
	cfg.defaults()
	reg, err := OpenRegistry(st)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:       cfg,
		registry:  reg,
		cache:     newLRUCache(cfg.CacheSize),
		flight:    newFlightGroup(),
		pool:      newWorkerPool(cfg.Workers, cfg.QueueDepth),
		fitPool:   newWorkerPool(cfg.FitWorkers, cfg.FitQueueDepth),
		stats:     newCounters(),
		predCache: map[string]core.Predictor{},
		jobs:      map[string]*FitJob{},
	}, nil
}

// Registry exposes the model registry (predictd CLI introspection).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the predictd HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.timed("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/fit", s.timed("/v1/fit", s.handleFit))
	mux.HandleFunc("/v1/jobs/", s.timed("/v1/jobs", s.handleJob))
	mux.HandleFunc("/v1/models", s.timed("/v1/models", s.handleModels))
	mux.HandleFunc("/v1/invalidate", s.timed("/v1/invalidate", s.handleInvalidate))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// Drain stops accepting new work and blocks until in-flight predictions
// and training jobs finish — the SIGTERM path. /healthz reports 503 from
// the first call so load balancers stop routing here.
func (s *Server) Drain() {
	if s.draining.Swap(true) {
		return
	}
	s.pool.drain()
	s.fitPool.drain()
}

// timed wraps a handler with the per-endpoint request/latency counters.
func (s *Server) timed(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := h(w, r)
		s.stats.observe(endpoint, status, time.Since(start).Seconds()*1e3)
	}
}

// writeJSON emits a JSON body with the given status and returns the
// status for the latency wrapper.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errSaturated is the backpressure sentinel the predict path maps to 429.
var errSaturated = errors.New("serve: worker pool saturated")

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusServiceUnavailable, "draining")
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if req.Scheme == "" || req.Compressor == "" {
		return writeError(w, http.StatusBadRequest, "scheme and compressor are required")
	}
	if (req.Features == nil) == (req.Data == nil) {
		return writeError(w, http.StatusBadRequest, "exactly one of features or data must be set")
	}
	scheme, err := core.GetScheme(req.Scheme)
	if err != nil {
		return writeError(w, http.StatusNotFound, "%v", err)
	}
	if !scheme.Supports(req.Compressor) {
		return writeError(w, http.StatusBadRequest, "scheme %s does not support compressor %s", req.Scheme, req.Compressor)
	}
	opts, err := s.requestOptions(req.Options)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	s.stats.scheme(req.Scheme)

	// trained schemes serve from the registry; a missing model is the
	// client's cue to POST /v1/fit first
	var entry *ModelEntry
	if trains, terr := schemeTrains(scheme, req.Compressor); terr != nil {
		return writeError(w, http.StatusBadRequest, "%v", terr)
	} else if trains {
		entry, err = s.registry.Lookup(req.Scheme, req.Compressor)
		if errors.Is(err, ErrNoModel) {
			return writeError(w, http.StatusNotFound, "%v — POST /v1/fit first", err)
		} else if err != nil {
			return writeError(w, http.StatusInternalServerError, "%v", err)
		}
	}
	modelKey := ""
	if entry != nil {
		modelKey = entry.Key
	}
	key := requestKey(&req, opts, modelKey)

	if val, ok := s.cache.get(key); ok {
		s.stats.cacheHit()
		resp := val.resp
		resp.Cached = true
		return writeJSON(w, http.StatusOK, resp)
	}
	s.stats.cacheMiss()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()

	type flightOut struct {
		resp   PredictResponse
		err    error
		shared bool
	}
	ch := make(chan flightOut, 1)
	go func() {
		resp, err, shared := s.flight.do(key, func() (PredictResponse, error) {
			// the leader computes on the bounded pool; a full queue is
			// the saturation signal
			done := make(chan struct{})
			var resp PredictResponse
			var cerr error
			// the compute context is detached from the leader's request
			// so an impatient leader doesn't poison piggybacked callers
			//lint:ignore pressiovet/ctxflow singleflight leader: shared computation must outlive any one caller; bounded by cfg.Deadline instead
			cctx, ccancel := context.WithTimeout(context.Background(), s.cfg.Deadline)
			submitted := s.pool.trySubmit(func() {
				defer close(done)
				defer ccancel()
				if s.cfg.testHookPredict != nil {
					s.cfg.testHookPredict()
				}
				resp, cerr = s.predict(cctx, &req, opts, scheme, entry)
			})
			if !submitted {
				ccancel()
				return PredictResponse{}, errSaturated
			}
			<-done
			if cerr == nil {
				s.cache.add(key, cacheValue{resp: resp, scheme: req.Scheme})
			}
			return resp, cerr
		})
		ch <- flightOut{resp, err, shared}
	}()

	select {
	case out := <-ch:
		switch {
		case errors.Is(out.err, errSaturated):
			s.stats.reject()
			w.Header().Set("Retry-After", "1")
			return writeError(w, http.StatusTooManyRequests, "saturated: %d workers busy, queue full", s.cfg.Workers)
		case out.err != nil:
			return writeError(w, http.StatusBadRequest, "%v", out.err)
		}
		if out.shared {
			s.stats.dedup()
		}
		return writeJSON(w, http.StatusOK, out.resp)
	case <-ctx.Done():
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", s.cfg.Deadline)
	}
}

// schemeTrains probes whether the scheme's predictor needs a trained
// model for this compressor.
func schemeTrains(scheme core.Scheme, compressor string) (bool, error) {
	p, err := scheme.NewPredictor(compressor)
	if err != nil {
		return false, err
	}
	return p.Trains(), nil
}

// requestOptions merges request options over the server defaults.
func (s *Server) requestOptions(m map[string]any) (pressio.Options, error) {
	opts, err := optionsFromJSON(m)
	if err != nil {
		return nil, err
	}
	if len(s.cfg.DefaultOptions) == 0 {
		return opts, nil
	}
	merged := s.cfg.DefaultOptions.Clone()
	merged.Merge(opts)
	return merged, nil
}

// maxFitCells bounds one training job's observation count.
const maxFitCells = 4096

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusServiceUnavailable, "draining")
	}
	var req FitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	scheme, err := core.GetScheme(req.Scheme)
	if err != nil {
		return writeError(w, http.StatusNotFound, "%v", err)
	}
	if !scheme.Supports(req.Compressor) {
		return writeError(w, http.StatusBadRequest, "scheme %s does not support compressor %s", req.Scheme, req.Compressor)
	}
	if trains, terr := schemeTrains(scheme, req.Compressor); terr != nil {
		return writeError(w, http.StatusBadRequest, "%v", terr)
	} else if !trains {
		return writeError(w, http.StatusBadRequest, "scheme %s does not train; predict directly", req.Scheme)
	}
	tr := &req.Training
	if len(tr.Fields) == 0 || tr.Steps <= 0 || len(tr.Bounds) == 0 {
		return writeError(w, http.StatusBadRequest, "training needs fields, steps, and bounds")
	}
	if len(tr.Dims) > 0 {
		if err := checkDims(tr.Dims); err != nil {
			return writeError(w, http.StatusBadRequest, "%v", err)
		}
	}
	if cells := len(tr.Fields) * tr.Steps * len(tr.Bounds); cells > maxFitCells {
		return writeError(w, http.StatusBadRequest, "training set of %d cells exceeds the %d-cell budget", cells, maxFitCells)
	}
	opts, err := s.requestOptions(req.Options)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	s.jobMu.Lock()
	s.jobSeq++
	job := &FitJob{
		ID:     fmt.Sprintf("job-%d", s.jobSeq),
		Scheme: req.Scheme, Compressor: req.Compressor,
		status: "queued",
	}
	s.jobs[job.ID] = job
	s.jobMu.Unlock()

	submitted := s.fitPool.trySubmit(func() {
		job.setStatus("running", "")
		//lint:ignore pressiovet/ctxflow async fit job survives the submitting request by design; bounded by 10x deadline instead
		ctx, cancel := context.WithTimeout(context.Background(), 10*s.cfg.Deadline)
		defer cancel()
		if err := s.runFit(ctx, job, &req, opts, scheme); err != nil {
			job.setStatus("failed", err.Error())
			return
		}
		job.setStatus("done", "")
	})
	if !submitted {
		s.jobMu.Lock()
		delete(s.jobs, job.ID)
		s.jobMu.Unlock()
		s.stats.reject()
		w.Header().Set("Retry-After", "5")
		return writeError(w, http.StatusTooManyRequests, "fit queue full")
	}
	return writeJSON(w, http.StatusAccepted, FitResponse{JobID: job.ID})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET only")
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.jobMu.Lock()
	job, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		return writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return writeJSON(w, http.StatusOK, job.view())
}

// modelView is a ModelEntry listing without the state payload.
type modelView struct {
	Key        string   `json:"key"`
	Scheme     string   `json:"scheme"`
	Compressor string   `json:"compressor"`
	Predictor  string   `json:"predictor"`
	Target     string   `json:"target"`
	Features   []string `json:"features"`
	Samples    int      `json:"samples"`
	StateBytes int      `json:"state_bytes"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET only")
	}
	entries := s.registry.List()
	out := make([]modelView, len(entries))
	for i, e := range entries {
		out[i] = modelView{
			Key: e.Key, Scheme: e.Scheme, Compressor: e.Compressor,
			Predictor: e.PredictorName, Target: e.Target,
			Features: e.Features, Samples: e.Samples, StateBytes: len(e.State),
		}
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	var req InvalidateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(req.Keys) == 0 {
		return writeError(w, http.StatusBadRequest, "keys required")
	}
	evicted, err := s.registry.Invalidate(req.Keys...)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, "%v", err)
	}
	s.predMu.Lock()
	for _, k := range evicted {
		delete(s.predCache, k)
	}
	s.predMu.Unlock()

	// clear cached predictions from schemes the declaration made stale
	// (memoized per scheme; cache entries are the only source of names)
	staleMemo := map[string]bool{}
	cleared := s.cache.evictIf(func(v cacheValue) bool {
		stale, ok := staleMemo[v.scheme]
		if !ok {
			scheme, err := core.GetScheme(v.scheme)
			if err != nil {
				stale = true
			} else {
				stale, _ = core.SchemeStale(scheme, req.Keys)
			}
			staleMemo[v.scheme] = stale
		}
		return stale
	})
	s.stats.evicted(len(evicted), cleared)
	resp := InvalidateResponse{EvictedModels: evicted, ClearedCached: cleared}
	if resp.EvictedModels == nil {
		resp.EvictedModels = []string{}
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := s.stats.snapshot()
	st.Draining = s.draining.Load()
	st.Models = s.registry.Len()
	st.CacheSize = s.cache.len()
	st.Jobs = map[string]int{}
	s.jobMu.Lock()
	for _, j := range s.jobs {
		st.Jobs[j.view().Status]++
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
