package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	_ "repro/internal/compressor/lossless" // register compressor plugins
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/dataset"
	_ "repro/internal/metrics" // register metric plugins
	"repro/internal/pressio"
	"repro/internal/store"
)

// Config tunes the serving subsystem; zero values pick serving-friendly
// defaults.
type Config struct {
	// Workers is the predict worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the pending predict queue; a full queue sheds
	// load with 429 (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity (default 1024).
	CacheSize int
	// Deadline bounds each predict computation (default 30s).
	Deadline time.Duration
	// FitWorkers is the training worker-pool size (default 1).
	FitWorkers int
	// FitQueueDepth bounds queued training jobs (default 8).
	FitQueueDepth int
	// DefaultOptions are merged under every request's options (predictd
	// -opts flag).
	DefaultOptions pressio.Options
	// JobTTL bounds how long finished fit jobs stay queryable via
	// /v1/jobs before eviction (default 1h).
	JobTTL time.Duration
	// JobRetain caps how many finished fit jobs are retained regardless
	// of age (default 256).
	JobRetain int
	// DisableJournal keeps fit jobs in memory only — acknowledged jobs
	// die with the process. Used by tests (and the crash harness's
	// negative control, which proves the journal is what carries the
	// no-lost-job invariant).
	DisableJournal bool
	// NodeName identifies this predictd in a replicated cluster. It is
	// stamped into fit-job IDs ("job-<node>-N") and journal records, so
	// recovery replays only this node's jobs: a peer's records arrive
	// via replication and stay read-only until explicitly adopted.
	// Empty means standalone.
	NodeName string
	// AckBarrier, when set, must return nil before a fit job is
	// acknowledged with 202. Cluster nodes use it to wait until the
	// journaled record is durable on a follower, so the 202 promise
	// survives losing this node entirely. A barrier failure withdraws
	// the job (503 + Retry-After; the client retries idempotently).
	AckBarrier func(ctx context.Context) error
	// DataCacheBytes bounds the memory tier of the tiered dataset cache
	// that predict and fit read hurricane cells through (default 128
	// MiB; negative disables the cache and every request re-synthesizes).
	// Serving buffers through one cache gives concurrent requests the
	// same *pressio.Data pointer, which is what lets stats.SummaryOf
	// share one summary pass across requests.
	DataCacheBytes int64
	// DataSpillDir, when set, enables the dataset cache's mmap-backed
	// disk tier (predictd -data-spill).
	DataSpillDir string
	// CoalesceWindow, when positive, fuses concurrent single predicts
	// against the same model into one batched feature-extraction pass:
	// the first cache-missing request opens a window, requests arriving
	// within the window enroll, and one flush computes every enrolled
	// cell (predictd default 500µs; zero disables).
	CoalesceWindow time.Duration

	// testHookPredict, when set, runs inside every uncached predict
	// computation — tests use it to hold worker slots busy.
	testHookPredict func()
	// testHookFit, when set, runs at the start of every fit execution.
	testHookFit func()
	// testHookBatchFlush, when set, runs at the start of every batch /
	// coalesce flush computation (the crash harness kills here).
	testHookBatchFlush func()
	// testClock, when set, replaces time.Now for job TTL eviction.
	testClock func() time.Time
	// testCoalesceTimer, when set, replaces time.AfterFunc for
	// scheduling window flushes — the injectable clock that keeps
	// coalescing tests deterministic.
	testCoalesceTimer func(d time.Duration, fn func())
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.FitWorkers <= 0 {
		c.FitWorkers = 1
	}
	if c.FitQueueDepth <= 0 {
		c.FitQueueDepth = 8
	}
	if c.JobTTL <= 0 {
		c.JobTTL = time.Hour
	}
	if c.JobRetain <= 0 {
		c.JobRetain = 256
	}
	if c.DataCacheBytes == 0 {
		c.DataCacheBytes = 128 << 20
	}
}

// FitJob tracks one asynchronous training job through its state machine
// (queued → running → done | failed). Key is the job's journal key — an
// opthash of the full request — and Request keeps the original body so
// an interrupted job can re-run after a restart.
type FitJob struct {
	ID         string
	Key        string
	Node       string
	Scheme     string
	Compressor string
	Request    FitRequest

	mu         sync.Mutex
	status     string // queued | running | done | failed
	errMsg     string
	modelKey   string
	samples    int
	finishedAt time.Time
}

// JobView is the immutable JSON projection of a FitJob.
type JobView struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	Scheme     string `json:"scheme"`
	Compressor string `json:"compressor"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	Model      string `json:"model,omitempty"`
	Samples    int    `json:"samples,omitempty"`
}

func (j *FitJob) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID: j.ID, Key: j.Key, Scheme: j.Scheme, Compressor: j.Compressor,
		Status: j.status, Error: j.errMsg, Model: j.modelKey, Samples: j.samples,
	}
}

func (j *FitJob) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.mu.Unlock()
}

// finish moves the job to a terminal status and stamps the eviction
// clock.
func (j *FitJob) finish(status, errMsg string, at time.Time) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.finishedAt = at
	j.mu.Unlock()
}

// doneAt returns the finish time (zero while queued/running).
func (j *FitJob) doneAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishedAt
}

// record projects the job into its journal form.
func (j *FitJob) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := jobRecord{
		ID: j.ID, Key: j.Key, Node: j.Node, Scheme: j.Scheme, Compressor: j.Compressor,
		Status: j.status, Error: j.errMsg, Model: j.modelKey,
		Samples: j.samples, Request: j.Request,
	}
	if !j.finishedAt.IsZero() {
		rec.FinishedAtUnix = j.finishedAt.Unix()
	}
	return rec
}

// Server is the prediction-serving subsystem: registry + cache +
// singleflight + bounded pools behind an http.Handler.
type Server struct {
	cfg       Config
	registry  *Registry
	cache     *lruCache
	cells     *cellCache
	data      *dataset.TieredCache
	coalesce  *coalescer
	flight    *flightGroup
	pool      *workerPool
	fitPool   *workerPool
	stats     *counters
	draining  atomic.Bool
	replaying atomic.Bool
	journal   *journal

	predMu    sync.Mutex
	predCache map[string]core.Predictor

	jobMu    sync.Mutex
	jobs     map[string]*FitJob
	jobByKey map[string]string // journal key → job ID
	jobSeq   uint64
}

// New builds a Server over an open store (which it does not close). The
// server starts in replaying state — fit submission and /healthz report
// 503 until Recover has replayed the job journal.
func New(st *store.Store, cfg Config) (*Server, error) {
	cfg.defaults()
	reg, err := OpenRegistry(st)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		registry:  reg,
		cache:     newLRUCache(cfg.CacheSize),
		cells:     newCellCache(cfg.CacheSize),
		flight:    newFlightGroup(),
		pool:      newWorkerPool(cfg.Workers, cfg.QueueDepth),
		fitPool:   newWorkerPool(cfg.FitWorkers, cfg.FitQueueDepth),
		stats:     newCounters(),
		predCache: map[string]core.Predictor{},
		jobs:      map[string]*FitJob{},
		jobByKey:  map[string]string{},
	}
	if cfg.DataCacheBytes > 0 {
		dc, err := dataset.NewTiered(dataset.TieredConfig{
			CapacityBytes: cfg.DataCacheBytes,
			SpillDir:      cfg.DataSpillDir,
		})
		if err != nil {
			return nil, err
		}
		s.data = dc
	}
	s.coalesce = newCoalescer(s)
	if !cfg.DisableJournal {
		s.journal = &journal{st: st}
	}
	s.replaying.Store(true)
	return s, nil
}

// now is the eviction clock (overridable in tests).
func (s *Server) now() time.Time {
	if s.cfg.testClock != nil {
		return s.cfg.testClock()
	}
	return time.Now()
}

// Recover replays the durable job journal: every job journaled as done
// or failed becomes queryable again via /v1/jobs, and every job caught
// queued or running by the crash is re-enqueued to run (again). Fit
// execution is idempotent — a re-run whose model already landed adopts
// it instead of re-publishing — so at-least-once replay is safe. Until
// Recover returns, /healthz and fit submission report 503.
func (s *Server) Recover(ctx context.Context) error {
	defer s.replaying.Store(false)
	recs, err := s.journal.load()
	if err != nil {
		s.stats.journalError()
		return err
	}
	var pending []*FitJob
	s.jobMu.Lock()
	for i := range recs {
		rec := &recs[i]
		if rec.Node != s.cfg.NodeName {
			// a replicated peer's record: it is that node's job (or its
			// adopter's) until Adopt re-authors it. Touching it here —
			// even loading it for TTL sweeping — would let this node
			// delete a live peer's journal entry through replication.
			continue
		}
		job := &FitJob{
			ID: rec.ID, Key: rec.Key, Node: rec.Node, Scheme: rec.Scheme, Compressor: rec.Compressor,
			Request: rec.Request, status: rec.Status, errMsg: rec.Error,
			modelKey: rec.Model, samples: rec.Samples,
		}
		if rec.FinishedAtUnix > 0 {
			job.finishedAt = time.Unix(rec.FinishedAtUnix, 0)
		}
		if n := jobSeqOf(rec.ID); n > s.jobSeq {
			s.jobSeq = n
		}
		s.jobs[job.ID] = job
		s.jobByKey[job.Key] = job.ID
		if rec.Status == "queued" || rec.Status == "running" {
			// the crash interrupted it mid-flight; run it again
			job.status = "queued"
			pending = append(pending, job)
		}
	}
	s.jobMu.Unlock()
	for _, job := range pending {
		// acknowledged jobs must run: wait out a full fit queue instead
		// of dropping. If the server is already draining, leave the job
		// journaled as queued for the next start.
		for !s.enqueueFit(job) {
			if s.fitPool.isClosed() {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	s.sweepJobs()
	return nil
}

// Replaying reports whether journal replay is still in progress.
func (s *Server) Replaying() bool { return s.replaying.Load() }

// Registry exposes the model registry (predictd CLI introspection).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the predictd HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.timed("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/predict/batch", s.timed("/v1/predict/batch", s.handlePredictBatch))
	mux.HandleFunc("/v1/fit", s.timed("/v1/fit", s.handleFit))
	mux.HandleFunc("/v1/jobs/", s.timed("/v1/jobs", s.handleJob))
	mux.HandleFunc("/v1/models", s.timed("/v1/models", s.handleModels))
	mux.HandleFunc("/v1/invalidate", s.timed("/v1/invalidate", s.handleInvalidate))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// Drain stops accepting new work and blocks until in-flight predictions
// and training jobs finish — the SIGTERM path. /healthz reports 503 from
// the first call so load balancers stop routing here.
func (s *Server) Drain() {
	if s.draining.Swap(true) {
		return
	}
	s.pool.drain()
	s.fitPool.drain()
}

// timed wraps a handler with the per-endpoint request/latency counters.
func (s *Server) timed(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := h(w, r)
		s.stats.observe(endpoint, status, time.Since(start).Seconds()*1e3)
	}
}

// writeJSON emits a JSON body with the given status and returns the
// status for the latency wrapper.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps a JSON request body: a client streaming an
// unbounded body must not pin a connection (and its decode buffer)
// indefinitely.
const maxBodyBytes = 1 << 20

// decodeJSON decodes a bounded JSON request body; the returned status
// distinguishes an oversized body (413) from a malformed one (400).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	return 0, nil
}

// retryAfterPredict derives an honest Retry-After for the predict path
// from live backpressure state: the work queued ahead of a retry times
// the recent per-request latency, spread over the workers. Clamped to
// [1, 30] seconds so a cold or idle server still answers "1".
func (s *Server) retryAfterPredict() string {
	depth := s.pool.pending()
	p50 := s.stats.latencyP50("/v1/predict")
	if p50 <= 0 {
		p50 = 100 // no samples yet: assume a cheap request
	}
	secs := int(math.Ceil(float64(depth+1) * p50 / 1e3 / float64(s.cfg.Workers)))
	return strconv.Itoa(clampInt(secs, 1, 30))
}

// retryAfterFit is the fit-path analogue of retryAfterPredict, using
// tracked fit execution durations (fits run seconds-to-minutes, so the
// clamp is [2, 120]).
func (s *Server) retryAfterFit() string {
	depth := s.fitPool.pending()
	p50 := s.stats.fitP50()
	if p50 <= 0 {
		return "2" // nothing measured yet
	}
	secs := int(math.Ceil(float64(depth+1) * p50 / 1e3 / float64(s.cfg.FitWorkers)))
	return strconv.Itoa(clampInt(secs, 2, 120))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// errSaturated is the backpressure sentinel the predict path maps to 429.
var errSaturated = errors.New("serve: worker pool saturated")

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterPredict())
		return writeError(w, http.StatusServiceUnavailable, "draining")
	}
	var req PredictRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		return writeError(w, status, "%v", err)
	}
	if req.Scheme == "" || req.Compressor == "" {
		return writeError(w, http.StatusBadRequest, "scheme and compressor are required")
	}
	if (req.Features == nil) == (req.Data == nil) {
		return writeError(w, http.StatusBadRequest, "exactly one of features or data must be set")
	}
	scheme, err := core.GetScheme(req.Scheme)
	if err != nil {
		return writeError(w, http.StatusNotFound, "%v", err)
	}
	if !scheme.Supports(req.Compressor) {
		return writeError(w, http.StatusBadRequest, "scheme %s does not support compressor %s", req.Scheme, req.Compressor)
	}
	opts, err := s.requestOptions(req.Options)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	s.stats.scheme(req.Scheme)

	// trained schemes serve from the registry; a missing model is the
	// client's cue to POST /v1/fit first
	var entry *ModelEntry
	if trains, terr := schemeTrains(scheme, req.Compressor); terr != nil {
		return writeError(w, http.StatusBadRequest, "%v", terr)
	} else if trains {
		entry, err = s.registry.Lookup(req.Scheme, req.Compressor)
		if errors.Is(err, ErrNoModel) {
			return writeError(w, http.StatusNotFound, "%v — POST /v1/fit first", err)
		} else if err != nil {
			return writeError(w, http.StatusInternalServerError, "%v", err)
		}
	}
	modelKey := ""
	if entry != nil {
		modelKey = entry.Key
	}
	key := requestKey(&req, opts, modelKey)

	if val, ok := s.cache.get(key); ok {
		s.stats.cacheHit()
		resp := val.resp
		resp.Cached = true
		return writeJSON(w, http.StatusOK, resp)
	}

	// data-backed requests on a 3-D grid have a cell identity the batch
	// path shares: check the cell cache, and past it, coalesce with
	// concurrent requests against the same model
	var g *batchGroup
	if req.Data != nil {
		dims := req.Data.Dims
		if len(dims) == 0 {
			dims = defaultDataDims
		}
		if len(dims) == 3 && checkDims(dims) == nil {
			g = newBatchGroup(req.Scheme, req.Compressor, scheme, opts, entry, req.Alpha, dims)
			if v, ok := s.cells.get(cellKey{base: g.base, field: req.Data.Field, step: req.Data.Step}); ok {
				s.stats.cellHit()
				resp := PredictResponse{
					Scheme: req.Scheme, Compressor: req.Compressor,
					Target: v.target, Prediction: v.prediction,
					Interval: v.interval, Model: v.model, Cached: true,
				}
				return writeJSON(w, http.StatusOK, resp)
			}
		}
	}
	if g != nil && s.cfg.CoalesceWindow > 0 {
		return s.predictCoalesced(w, r, &req, key, g)
	}
	s.stats.cacheMiss()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()

	type flightOut struct {
		resp   PredictResponse
		err    error
		shared bool
	}
	ch := make(chan flightOut, 1)
	go func() {
		resp, err, shared := s.flight.do(key, func() (PredictResponse, error) {
			// the leader computes on the bounded pool; a full queue is
			// the saturation signal
			done := make(chan struct{})
			var resp PredictResponse
			var cerr error
			// the compute context is detached from the leader's request
			// so an impatient leader doesn't poison piggybacked callers
			//lint:ignore pressiovet/ctxflow singleflight leader: shared computation must outlive any one caller; bounded by cfg.Deadline instead
			cctx, ccancel := context.WithTimeout(context.Background(), s.cfg.Deadline)
			submitted := s.pool.trySubmit(func() {
				defer close(done)
				defer ccancel()
				if s.cfg.testHookPredict != nil {
					s.cfg.testHookPredict()
				}
				resp, cerr = s.predict(cctx, &req, opts, scheme, entry)
			})
			if !submitted {
				ccancel()
				return PredictResponse{}, errSaturated
			}
			<-done
			if cerr == nil {
				s.cache.add(key, cacheValue{resp: resp, scheme: req.Scheme})
				if g != nil {
					// backfill the cell cache so later batches (and
					// coalesced singles) hit what this request computed
					s.cells.add(cellKey{base: g.base, field: req.Data.Field, step: req.Data.Step}, cellValue{
						prediction: resp.Prediction, interval: resp.Interval,
						scheme: req.Scheme, model: resp.Model, target: resp.Target,
					})
				}
			}
			return resp, cerr
		})
		ch <- flightOut{resp, err, shared}
	}()

	select {
	case out := <-ch:
		switch {
		case errors.Is(out.err, errSaturated):
			s.stats.reject()
			w.Header().Set("Retry-After", s.retryAfterPredict())
			return writeError(w, http.StatusTooManyRequests, "saturated: %d workers busy, queue full", s.cfg.Workers)
		case out.err != nil:
			return writeError(w, http.StatusBadRequest, "%v", out.err)
		}
		if out.shared {
			s.stats.dedup()
		}
		return writeJSON(w, http.StatusOK, out.resp)
	case <-ctx.Done():
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", s.cfg.Deadline)
	}
}

// schemeTrains probes whether the scheme's predictor needs a trained
// model for this compressor.
func schemeTrains(scheme core.Scheme, compressor string) (bool, error) {
	p, err := scheme.NewPredictor(compressor)
	if err != nil {
		return false, err
	}
	return p.Trains(), nil
}

// requestOptions merges request options over the server defaults.
func (s *Server) requestOptions(m map[string]any) (pressio.Options, error) {
	opts, err := optionsFromJSON(m)
	if err != nil {
		return nil, err
	}
	if len(s.cfg.DefaultOptions) == 0 {
		return opts, nil
	}
	merged := s.cfg.DefaultOptions.Clone()
	merged.Merge(opts)
	return merged, nil
}

// maxFitCells bounds one training job's observation count.
const maxFitCells = 4096

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterFit())
		return writeError(w, http.StatusServiceUnavailable, "draining")
	}
	if s.replaying.Load() {
		// new submissions wait for replay: job IDs resume above the
		// journaled sequence, and duplicates are detected against it
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusServiceUnavailable, "replaying job journal")
	}
	var req FitRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		return writeError(w, status, "%v", err)
	}
	scheme, err := core.GetScheme(req.Scheme)
	if err != nil {
		return writeError(w, http.StatusNotFound, "%v", err)
	}
	if !scheme.Supports(req.Compressor) {
		return writeError(w, http.StatusBadRequest, "scheme %s does not support compressor %s", req.Scheme, req.Compressor)
	}
	if trains, terr := schemeTrains(scheme, req.Compressor); terr != nil {
		return writeError(w, http.StatusBadRequest, "%v", terr)
	} else if !trains {
		return writeError(w, http.StatusBadRequest, "scheme %s does not train; predict directly", req.Scheme)
	}
	tr := &req.Training
	if len(tr.Fields) == 0 || tr.Steps <= 0 || len(tr.Bounds) == 0 {
		return writeError(w, http.StatusBadRequest, "training needs fields, steps, and bounds")
	}
	if len(tr.Dims) > 0 {
		if err := checkDims(tr.Dims); err != nil {
			return writeError(w, http.StatusBadRequest, "%v", err)
		}
	}
	if cells := len(tr.Fields) * tr.Steps * len(tr.Bounds); cells > maxFitCells {
		return writeError(w, http.StatusBadRequest, "training set of %d cells exceeds the %d-cell budget", cells, maxFitCells)
	}
	opts, err := s.requestOptions(req.Options)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	key := JobKey(req.Scheme, req.Compressor, opts, req.Training)

	s.jobMu.Lock()
	if id, ok := s.jobByKey[key]; ok {
		if prev := s.jobs[id]; prev != nil {
			if prev.view().Status != "failed" {
				// idempotent resubmit: the same opthash queued, running,
				// or done is the same job
				s.jobMu.Unlock()
				return writeJSON(w, http.StatusAccepted, FitResponse{JobID: id, Existing: true})
			}
			// a failed attempt is superseded by the retry
			delete(s.jobs, id)
			delete(s.jobByKey, key)
			s.stats.jobsEvicted(1)
		}
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%d", s.jobSeq)
	if s.cfg.NodeName != "" {
		id = fmt.Sprintf("job-%s-%d", s.cfg.NodeName, s.jobSeq)
	}
	job := &FitJob{
		ID:  id,
		Key: key, Node: s.cfg.NodeName, Scheme: req.Scheme, Compressor: req.Compressor,
		Request: req,
		status:  "queued",
	}
	s.jobs[job.ID] = job
	s.jobByKey[key] = job.ID
	s.jobMu.Unlock()

	// journal before acknowledging: the 202 promises the job survives a
	// crash, so a job that cannot be made durable is not accepted
	if err := s.journalJob(job); err != nil {
		s.unregisterJob(job)
		return writeError(w, http.StatusInternalServerError, "journal: %v", err)
	}
	// in cluster mode the 202 additionally promises the job survives
	// losing this node, so the record must replicate before the ack
	if s.cfg.AckBarrier != nil {
		if err := s.cfg.AckBarrier(r.Context()); err != nil {
			s.unregisterJob(job)
			s.journal.remove(job.Key) // never acknowledged: withdraw the record
			w.Header().Set("Retry-After", s.retryAfterFit())
			return writeError(w, http.StatusServiceUnavailable, "replication barrier: %v", err)
		}
	}
	if !s.enqueueFit(job) {
		s.unregisterJob(job)
		s.journal.remove(job.Key) // never acknowledged: withdraw the record
		s.stats.reject()
		w.Header().Set("Retry-After", s.retryAfterFit())
		return writeError(w, http.StatusTooManyRequests, "fit queue full")
	}
	s.sweepJobs()
	return writeJSON(w, http.StatusAccepted, FitResponse{JobID: job.ID})
}

// journalJob persists the job's current state, counting (but not
// propagating policy on) journal write failures.
func (s *Server) journalJob(job *FitJob) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.put(job.record()); err != nil {
		s.stats.journalError()
		return err
	}
	return nil
}

// unregisterJob drops a job that was never acknowledged.
func (s *Server) unregisterJob(job *FitJob) {
	s.jobMu.Lock()
	delete(s.jobs, job.ID)
	if s.jobByKey[job.Key] == job.ID {
		delete(s.jobByKey, job.Key)
	}
	s.jobMu.Unlock()
}

// enqueueFit submits a job to the fit pool; false means the queue is
// full or draining.
func (s *Server) enqueueFit(job *FitJob) bool {
	return s.fitPool.trySubmit(func() { s.executeFit(job) })
}

// executeFit runs one fit job through its state machine, journaling each
// transition. Journal failures past the queued ack are counted but do
// not abort the job: the queued record already guarantees a replay.
func (s *Server) executeFit(job *FitJob) {
	start := s.now()
	job.setStatus("running", "")
	s.journalJob(job)
	if s.cfg.testHookFit != nil {
		s.cfg.testHookFit()
	}
	//lint:ignore pressiovet/ctxflow async fit job survives the submitting request by design; bounded by 10x deadline instead
	ctx, cancel := context.WithTimeout(context.Background(), 10*s.cfg.Deadline)
	defer cancel()
	if err := s.fitOnce(ctx, job); err != nil {
		job.finish("failed", err.Error(), s.now())
	} else {
		job.finish("done", "", s.now())
	}
	s.stats.fitObserve(s.now().Sub(start).Seconds() * 1e3)
	s.journalJob(job)
	s.sweepJobs()
}

// fitOnce re-derives the fit inputs from the job's stored request (the
// replay path has nothing else) and runs the training.
func (s *Server) fitOnce(ctx context.Context, job *FitJob) error {
	req := &job.Request
	scheme, err := core.GetScheme(req.Scheme)
	if err != nil {
		return err
	}
	opts, err := s.requestOptions(req.Options)
	if err != nil {
		return err
	}
	return s.runFit(ctx, job, req, opts, scheme)
}

// sweepJobs evicts finished jobs past the TTL, then the oldest beyond
// the retention cap, removing their journal records so the store does
// not accrete one record per job forever.
func (s *Server) sweepJobs() {
	now := s.now()
	s.jobMu.Lock()
	var finished []*FitJob
	for _, j := range s.jobs {
		if !j.doneAt().IsZero() {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(a, b int) bool {
		return finished[a].doneAt().Before(finished[b].doneAt())
	})
	cut := 0
	for cut < len(finished) && now.Sub(finished[cut].doneAt()) > s.cfg.JobTTL {
		cut++
	}
	if rem := len(finished) - cut; rem > s.cfg.JobRetain {
		cut += rem - s.cfg.JobRetain
	}
	evicted := finished[:cut]
	for _, j := range evicted {
		delete(s.jobs, j.ID)
		if s.jobByKey[j.Key] == j.ID {
			delete(s.jobByKey, j.Key)
		}
	}
	s.jobMu.Unlock()
	for _, j := range evicted {
		s.journal.remove(j.Key)
	}
	if len(evicted) > 0 {
		s.stats.jobsEvicted(len(evicted))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET only")
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.jobMu.Lock()
	job, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		return writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return writeJSON(w, http.StatusOK, job.view())
}

// modelView is a ModelEntry listing without the state payload. The
// state digest lets cluster replicas (and their tests) compare model
// bytes across nodes without shipping the state itself.
type modelView struct {
	Key        string   `json:"key"`
	Scheme     string   `json:"scheme"`
	Compressor string   `json:"compressor"`
	Predictor  string   `json:"predictor"`
	Target     string   `json:"target"`
	Features   []string `json:"features"`
	Samples    int      `json:"samples"`
	StateBytes int      `json:"state_bytes"`
	StateSHA   string   `json:"state_sha256"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET only")
	}
	entries := s.registry.List()
	out := make([]modelView, len(entries))
	for i, e := range entries {
		sum := sha256.Sum256(e.State)
		out[i] = modelView{
			Key: e.Key, Scheme: e.Scheme, Compressor: e.Compressor,
			Predictor: e.PredictorName, Target: e.Target,
			Features: e.Features, Samples: e.Samples, StateBytes: len(e.State),
			StateSHA: hex.EncodeToString(sum[:]),
		}
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	var req InvalidateRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		return writeError(w, status, "%v", err)
	}
	if len(req.Keys) == 0 {
		return writeError(w, http.StatusBadRequest, "keys required")
	}
	evicted, err := s.registry.Invalidate(req.Keys...)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, "%v", err)
	}
	s.predMu.Lock()
	for _, k := range evicted {
		delete(s.predCache, k)
	}
	s.predMu.Unlock()

	// clear cached predictions from schemes the declaration made stale
	// (memoized per scheme; cache entries are the only source of names)
	staleMemo := map[string]bool{}
	staleScheme := func(name string) bool {
		stale, ok := staleMemo[name]
		if !ok {
			scheme, err := core.GetScheme(name)
			if err != nil {
				stale = true
			} else {
				stale, _ = core.SchemeStale(scheme, req.Keys)
			}
			staleMemo[name] = stale
		}
		return stale
	}
	cleared := s.cache.evictIf(func(v cacheValue) bool { return staleScheme(v.scheme) })
	cleared += s.cells.evictIf(staleScheme)
	s.stats.evicted(len(evicted), cleared)
	resp := InvalidateResponse{EvictedModels: evicted, ClearedCached: cleared}
	if resp.EvictedModels == nil {
		resp.EvictedModels = []string{}
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.replaying.Load() {
		// not ready: acknowledged jobs are still being re-enqueued, so a
		// load balancer must not route fit traffic here yet
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "replaying"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.sweepJobs() // TTL eviction is observable without fit traffic
	st := s.stats.snapshot()
	st.Process = readProcessStats()
	st.Draining = s.draining.Load()
	st.Replaying = s.replaying.Load()
	st.Models = s.registry.Len()
	st.CacheSize = s.cache.len()
	st.CellCacheSize = s.cells.len()
	if s.data != nil {
		st.DataCache = s.data.Stats()
	}
	st.Jobs = map[string]int{}
	s.jobMu.Lock()
	for _, j := range s.jobs {
		v := j.view()
		st.Jobs[v.Status]++
		if v.Status == "done" || v.Status == "failed" {
			st.JobsRetained++
		}
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
