package serve

import "sync"

// workerPool runs submitted tasks on a fixed number of goroutines above a
// bounded queue. When the queue is full, trySubmit refuses immediately —
// the backpressure signal the HTTP layer turns into 429 + Retry-After —
// instead of letting latency grow without bound under overload.
type workerPool struct {
	mu     sync.Mutex
	tasks  chan func()
	wg     sync.WaitGroup
	closed bool
}

func newWorkerPool(workers, queueDepth int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &workerPool{tasks: make(chan func(), queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// trySubmit enqueues the task if a queue slot is free; false means the
// pool is saturated (or draining) and the caller should shed load.
func (p *workerPool) trySubmit(task func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- task:
		return true
	default:
		return false
	}
}

// pending reports how many submitted tasks are still waiting for a
// worker — the queue-depth input of the adaptive Retry-After.
func (p *workerPool) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tasks)
}

// isClosed reports whether drain has begun (no new work is accepted).
func (p *workerPool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// drain stops accepting work and blocks until every queued task has run —
// the graceful-shutdown path.
func (p *workerPool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
