package serve

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hurricane"
	"repro/internal/opthash"
	"repro/internal/pressio"
)

// MaxBatchItems bounds one batch request, mirroring maxFitCells: a batch
// is one pool slot, so an unbounded batch would be an unbounded slot.
const MaxBatchItems = 4096

// Batch request content types. The default (anything else, normally
// application/json) is the columnar body; the other two are the
// streaming variants: newline-delimited JSON and little-endian
// u32-length-prefixed JSON frames. All three produce one result frame
// per input item.
const (
	ContentNDJSON = "application/x-ndjson"
	ContentFrames = "application/x-json-frames"
)

// BatchRequest is the columnar batch-predict body: one envelope
// (scheme/compressor/options/alpha/dims) shared by every item, plus
// parallel Fields/Steps arrays naming dataset cells — or, alternatively,
// a flat row-major Features matrix (rows of len(scheme.Features())).
// Exactly one of the two item forms must be present.
type BatchRequest struct {
	Scheme     string         `json:"scheme"`
	Compressor string         `json:"compressor"`
	Options    map[string]any `json:"options,omitempty"`
	Alpha      float64        `json:"alpha,omitempty"`
	Dims       []int          `json:"dims,omitempty"`
	Fields     []string       `json:"fields,omitempty"`
	Steps      []int          `json:"steps,omitempty"`
	Features   []float64      `json:"features,omitempty"`
}

// batchItem is one streamed item frame (NDJSON line / binary frame).
type batchItem struct {
	Field    string    `json:"field,omitempty"`
	Step     int       `json:"step,omitempty"`
	Features []float64 `json:"features,omitempty"`
}

// BatchItemResult is one item's outcome. Batches have partial-failure
// semantics: a bad item sets Error and leaves the rest of the batch
// intact, and the HTTP status stays 200.
type BatchItemResult struct {
	Prediction float64   `json:"prediction"`
	Interval   []float64 `json:"interval,omitempty"`
	Cached     bool      `json:"cached"`
	Error      string    `json:"error,omitempty"`
}

// BatchResponse is the columnar batch reply; Results is item-aligned
// with the request.
type BatchResponse struct {
	Scheme     string            `json:"scheme"`
	Compressor string            `json:"compressor"`
	Target     string            `json:"target"`
	Model      string            `json:"model,omitempty"`
	Count      int               `json:"count"`
	Errors     int               `json:"errors"`
	Results    []BatchItemResult `json:"results"`
}

// batchSummary is the trailing frame of a streamed batch reply.
type batchSummary struct {
	Scheme     string `json:"scheme"`
	Compressor string `json:"compressor"`
	Target     string `json:"target"`
	Model      string `json:"model,omitempty"`
	Count      int    `json:"count"`
	Errors     int    `json:"errors"`
}

// cellKey identifies one prediction cell: the request-shape base (scheme,
// compressor, options, model, alpha, dims — everything a batch envelope
// fixes) plus the (field, step) coordinates that vary per item. A struct
// key keeps the hot-path map lookup allocation-free.
type cellKey struct {
	base  string
	field string
	step  int
}

// cellValue is a served cell prediction. interval is written once at add
// and never mutated, so hits may share the slice header.
type cellValue struct {
	prediction float64
	interval   []float64
	scheme     string
	model      string
	target     string
}

// cellCache is the cell-granular LRU the batch and coalescing paths
// share: where lruCache keys on whole request bodies, cellCache keys on
// (envelope, field, step) so a batch, a coalesced single, and a plain
// single request against the same cell all hit the same entry.
type cellCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent; values are *cellItem
	items map[cellKey]*list.Element
}

type cellItem struct {
	key cellKey
	val cellValue
}

func newCellCache(capacity int) *cellCache {
	if capacity < 1 {
		capacity = 1
	}
	return &cellCache{cap: capacity, ll: list.New(), items: map[cellKey]*list.Element{}}
}

func (c *cellCache) get(k cellKey) (cellValue, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return cellValue{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cellItem).val, true
}

func (c *cellCache) add(k cellKey, v cellValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cellItem).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cellItem{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cellItem).key)
	}
}

func (c *cellCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evictIf drops every cell whose scheme the predicate matches — the
// invalidation hook, mirroring lruCache.evictIf.
func (c *cellCache) evictIf(pred func(scheme string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		item := el.Value.(*cellItem)
		if pred(item.val.scheme) {
			c.ll.Remove(el)
			delete(c.items, item.key)
			n++
		}
		el = next
	}
	return n
}

// batchGroup is the resolved per-batch context every item shares: one
// scheme lookup, one options merge, one model lookup, one cell-key base
// — amortized over the whole batch instead of paid per request. The
// lazily resolved predictor makes a group single-goroutine: each batch
// (or coalesce flush) builds and walks its own.
type batchGroup struct {
	schemeName string
	compressor string
	scheme     core.Scheme
	opts       pressio.Options
	entry      *ModelEntry
	model      string
	target     string
	alpha      float64
	dims       [3]int
	base       string
	pred       core.Predictor
}

// cellBase hashes the envelope part of a cell identity. The model key is
// folded in so a re-fit can never serve cells cached from the previous
// model, exactly as requestKey does for whole requests.
func cellBase(schemeName, compressor string, opts pressio.Options, modelKey string, alpha float64, dims [3]int) string {
	ro := pressio.Options{}
	ro.Set("req:scheme", schemeName)
	ro.Set("req:compressor", compressor)
	ro.Set("req:dims", dimsKey(dims[:]))
	if alpha > 0 {
		ro.Set("req:alpha", alpha)
	}
	return opthash.Combine(ro, opts) + "/" + modelKey
}

// newBatchGroup assembles a group from already-validated parts; dims
// must be exactly 3 long.
func newBatchGroup(schemeName, compressor string, scheme core.Scheme, opts pressio.Options, entry *ModelEntry, alpha float64, dims []int) *batchGroup {
	g := &batchGroup{
		schemeName: schemeName,
		compressor: compressor,
		scheme:     scheme,
		opts:       opts,
		entry:      entry,
		target:     scheme.Target(),
		alpha:      alpha,
		dims:       [3]int{dims[0], dims[1], dims[2]},
	}
	if entry != nil {
		g.model = entry.Key
	}
	g.base = cellBase(schemeName, compressor, opts, g.model, alpha, g.dims)
	return g
}

// resolveGroup validates a batch envelope and resolves the state every
// item shares, mirroring the single-path status semantics (404 unknown
// scheme / missing model, 400 everything else client-shaped). The int is
// the HTTP status when err is non-nil.
func (s *Server) resolveGroup(schemeName, compressor string, rawOpts map[string]any, alpha float64, dims []int) (*batchGroup, int, error) {
	if schemeName == "" || compressor == "" {
		return nil, http.StatusBadRequest, fmt.Errorf("scheme and compressor are required")
	}
	scheme, err := core.GetScheme(schemeName)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	if !scheme.Supports(compressor) {
		return nil, http.StatusBadRequest, fmt.Errorf("scheme %s does not support compressor %s", schemeName, compressor)
	}
	opts, err := s.requestOptions(rawOpts)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.stats.scheme(schemeName)
	var entry *ModelEntry
	if trains, terr := schemeTrains(scheme, compressor); terr != nil {
		return nil, http.StatusBadRequest, terr
	} else if trains {
		entry, err = s.registry.Lookup(schemeName, compressor)
		if errors.Is(err, ErrNoModel) {
			return nil, http.StatusNotFound, fmt.Errorf("%w — POST /v1/fit first", err)
		} else if err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	if len(dims) == 0 {
		dims = defaultDataDims
	}
	if len(dims) != 3 {
		return nil, http.StatusBadRequest, fmt.Errorf("batch cells want 3 dims, got %v", dims)
	}
	if err := checkDims(dims); err != nil {
		return nil, http.StatusBadRequest, err
	}
	return newBatchGroup(schemeName, compressor, scheme, opts, entry, alpha, dims), 0, nil
}

// groupPredictor resolves the group's predictor once per batch. Groups
// are single-goroutine, so the memo field needs no lock.
func (s *Server) groupPredictor(g *batchGroup) (core.Predictor, error) {
	if g.pred != nil {
		return g.pred, nil
	}
	var err error
	if g.entry != nil {
		g.pred, err = s.predictorFor(g.entry)
	} else {
		g.pred, err = g.scheme.NewPredictor(g.compressor)
	}
	return g.pred, err
}

// cellHitInto serves a cell from the cell cache; false means miss. The
// hit path is allocation-free — BenchmarkServePredictBatch pins that.
func (s *Server) cellHitInto(g *batchGroup, field string, step int, out *BatchItemResult) bool {
	v, ok := s.cells.get(cellKey{base: g.base, field: field, step: step})
	if !ok {
		return false
	}
	out.Prediction = v.prediction
	out.Interval = v.interval
	out.Cached = true
	out.Error = ""
	return true
}

// predictFeatureRow runs the group's predictor over one feature row.
func (s *Server) predictFeatureRow(g *batchGroup, features []float64, out *BatchItemResult) {
	if len(features) != len(g.scheme.Features()) {
		out.Error = fmt.Sprintf("scheme %s wants %d features, got %d", g.schemeName, len(g.scheme.Features()), len(features))
		return
	}
	p, err := s.groupPredictor(g)
	if err != nil {
		out.Error = err.Error()
		return
	}
	if g.alpha > 0 {
		if ip, ok := p.(core.IntervalPredictor); ok {
			pred, lo, hi, err := ip.PredictInterval(features, g.alpha)
			if err != nil {
				out.Error = err.Error()
				return
			}
			out.Prediction = pred
			out.Interval = []float64{lo, hi}
			return
		}
	}
	v, err := p.Predict(features)
	if err != nil {
		out.Error = err.Error()
		return
	}
	out.Prediction = v
}

// predictCellMiss computes one cold cell: data through the tiered
// dataset cache (pinned for exactly the feature pass), features through
// the scheme's metrics, prediction through the group predictor, result
// into the cell cache.
func (s *Server) predictCellMiss(ctx context.Context, g *batchGroup, field string, step int, out *BatchItemResult) {
	if err := ctx.Err(); err != nil {
		out.Error = err.Error()
		return
	}
	var data *pressio.Data
	if s.data != nil {
		h, err := s.data.Acquire(field, step, g.dims[:])
		if err != nil {
			out.Error = err.Error()
			return
		}
		defer h.Release()
		data = h.Data()
	} else {
		d, err := hurricane.Field(field, step, g.dims[:])
		if err != nil {
			out.Error = err.Error()
			return
		}
		data = d
	}
	features, err := computeFeatures(ctx, g.scheme, g.compressor, g.opts, data)
	if err != nil {
		out.Error = err.Error()
		return
	}
	s.predictFeatureRow(g, features, out)
	if out.Error != "" {
		return
	}
	s.cells.add(cellKey{base: g.base, field: field, step: step}, cellValue{
		prediction: out.Prediction,
		interval:   out.Interval,
		scheme:     g.schemeName,
		model:      g.model,
		target:     g.target,
	})
}

// predictCell is cellHitInto-else-predictCellMiss — the unit the
// coalescer flushes per distinct cell.
func (s *Server) predictCell(ctx context.Context, g *batchGroup, field string, step int, out *BatchItemResult) {
	if s.cellHitInto(g, field, step, out) {
		return
	}
	s.predictCellMiss(ctx, g, field, step, out)
}

// predictBatchItems serves every item of a decoded batch into the
// item-aligned results slice on the calling goroutine (the handler wraps
// the call in one worker-pool slot). This is the steady-state core the
// serve benchmark measures.
func (s *Server) predictBatchItems(ctx context.Context, g *batchGroup, req *BatchRequest, results []BatchItemResult) (hits, errs int) {
	if len(req.Features) > 0 {
		nf := len(g.scheme.Features())
		for i := range results {
			s.predictFeatureRow(g, req.Features[i*nf:(i+1)*nf], &results[i])
			if results[i].Error != "" {
				errs++
			}
		}
		return 0, errs
	}
	for i := range results {
		if s.cellHitInto(g, req.Fields[i], req.Steps[i], &results[i]) {
			hits++
			continue
		}
		s.predictCellMiss(ctx, g, req.Fields[i], req.Steps[i], &results[i])
		if results[i].Error != "" {
			errs++
		}
	}
	return hits, errs
}

// batchScratch is the pooled decode/compute scratch of one batch
// request: the envelope (slices reused across requests by resetting
// length, not capacity), the item-aligned results, and the stream
// buffers. Owned by exactly one handler between Get and Put.
type batchScratch struct {
	req     BatchRequest
	results []BatchItemResult
	item    batchItem
	buf     []byte
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// reset clears request-scoped state while keeping allocated capacity.
// The options map must be emptied explicitly: json.Unmarshal adds keys
// to an existing map without clearing it.
func (sc *batchScratch) reset() {
	sc.req.Scheme, sc.req.Compressor = "", ""
	sc.req.Alpha = 0
	sc.req.Dims = sc.req.Dims[:0]
	sc.req.Fields = sc.req.Fields[:0]
	sc.req.Steps = sc.req.Steps[:0]
	sc.req.Features = sc.req.Features[:0]
	clear(sc.req.Options)
	sc.results = sc.results[:0]
}

// resetItem clears the per-frame decode target between stream frames.
func (sc *batchScratch) resetItem() {
	sc.item.Field = ""
	sc.item.Step = 0
	sc.item.Features = sc.item.Features[:0]
}

// appendItem folds one decoded stream frame into the columnar envelope.
func (sc *batchScratch) appendItem() {
	if len(sc.item.Features) > 0 {
		sc.req.Features = append(sc.req.Features, sc.item.Features...)
		return
	}
	sc.req.Fields = append(sc.req.Fields, sc.item.Field)
	sc.req.Steps = append(sc.req.Steps, sc.item.Step)
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterPredict())
		return writeError(w, http.StatusServiceUnavailable, "draining")
	}
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	ct = strings.TrimSpace(ct)
	sc := batchScratchPool.Get().(*batchScratch)
	sc.reset()
	var status int
	var err error
	switch ct {
	case ContentNDJSON:
		status, err = decodeBatchNDJSON(w, r, sc)
	case ContentFrames:
		status, err = decodeBatchFrames(w, r, sc)
	default:
		status, err = decodeJSON(w, r, &sc.req)
	}
	if err != nil {
		status = writeError(w, status, "%v", err)
	} else {
		status = s.runBatch(w, r, sc, ct)
	}
	batchScratchPool.Put(sc)
	return status
}

// runBatch validates the decoded batch, computes it in one worker-pool
// slot, and encodes the reply in the request's content type.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request, sc *batchScratch, ct string) int {
	req := &sc.req
	g, status, err := s.resolveGroup(req.Scheme, req.Compressor, req.Options, req.Alpha, req.Dims)
	if err != nil {
		return writeError(w, status, "%v", err)
	}
	featureMode := len(req.Features) > 0
	if featureMode && len(req.Fields) > 0 {
		return writeError(w, http.StatusBadRequest, "a batch is either fields/steps cells or feature rows, not both")
	}
	var n int
	if featureMode {
		nf := len(g.scheme.Features())
		if len(req.Features)%nf != 0 {
			return writeError(w, http.StatusBadRequest, "features length %d is not a multiple of the scheme's %d features", len(req.Features), nf)
		}
		n = len(req.Features) / nf
	} else {
		if len(req.Fields) != len(req.Steps) {
			return writeError(w, http.StatusBadRequest, "fields (%d) and steps (%d) must be parallel", len(req.Fields), len(req.Steps))
		}
		n = len(req.Fields)
	}
	if n == 0 {
		return writeError(w, http.StatusBadRequest, "empty batch")
	}
	if n > MaxBatchItems {
		return writeError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item budget", n, MaxBatchItems)
	}
	if cap(sc.results) < n {
		sc.results = make([]BatchItemResult, n)
	} else {
		sc.results = sc.results[:n]
		for i := range sc.results {
			sc.results[i] = BatchItemResult{}
		}
	}

	// one pool slot computes the whole batch — that amortization is the
	// point of the endpoint; a full queue sheds the whole batch with 429
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	done := make(chan struct{})
	var hits, errs int
	submitted := s.pool.trySubmit(func() {
		defer close(done)
		if s.cfg.testHookBatchFlush != nil {
			s.cfg.testHookBatchFlush()
		}
		hits, errs = s.predictBatchItems(ctx, g, req, sc.results)
	})
	if !submitted {
		s.stats.reject()
		w.Header().Set("Retry-After", s.retryAfterPredict())
		return writeError(w, http.StatusTooManyRequests, "saturated: %d workers busy, queue full", s.cfg.Workers)
	}
	// wait for the task, not the context: the task honors ctx internally,
	// and returning early would hand the pooled scratch back while the
	// task still writes into it
	<-done
	s.stats.batch(n, hits, errs)

	sum := batchSummary{
		Scheme: g.schemeName, Compressor: g.compressor, Target: g.target,
		Model: g.model, Count: n, Errors: errs,
	}
	switch ct {
	case ContentNDJSON:
		return writeBatchNDJSON(w, sc.results, sum)
	case ContentFrames:
		return writeBatchFrames(w, sc.results, sum)
	default:
		return writeJSON(w, http.StatusOK, BatchResponse{
			Scheme: sum.Scheme, Compressor: sum.Compressor, Target: sum.Target,
			Model: sum.Model, Count: sum.Count, Errors: sum.Errors,
			Results: sc.results,
		})
	}
}

// statusForBodyErr maps a stream read error to 413 (body cap) or 400.
func statusForBodyErr(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeBatchNDJSON reads the streaming NDJSON body: line 1 is the
// envelope (a BatchRequest, which may itself carry columnar items),
// every further line one batchItem.
func decodeBatchNDJSON(w http.ResponseWriter, r *http.Request, sc *batchScratch) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	scn := bufio.NewScanner(r.Body)
	if cap(sc.buf) == 0 {
		sc.buf = make([]byte, 0, 4096)
	}
	scn.Buffer(sc.buf[:0], maxBodyBytes)
	first := true
	for scn.Scan() {
		line := bytes.TrimSpace(scn.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			if err := json.Unmarshal(line, &sc.req); err != nil {
				return http.StatusBadRequest, fmt.Errorf("bad envelope line: %v", err)
			}
			first = false
			continue
		}
		sc.resetItem()
		if err := json.Unmarshal(line, &sc.item); err != nil {
			return http.StatusBadRequest, fmt.Errorf("bad item line: %v", err)
		}
		sc.appendItem()
	}
	if err := scn.Err(); err != nil {
		return statusForBodyErr(err), fmt.Errorf("reading ndjson body: %v", err)
	}
	if first {
		return http.StatusBadRequest, fmt.Errorf("empty ndjson body: want an envelope line")
	}
	return 0, nil
}

// decodeBatchFrames reads the binary streaming body: little-endian u32
// length prefixes, first frame the envelope, every further frame one
// batchItem.
func decodeBatchFrames(w http.ResponseWriter, r *http.Request, sc *batchScratch) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	br := bufio.NewReader(r.Body)
	var hdr [4]byte
	first := true
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return statusForBodyErr(err), fmt.Errorf("reading frame header: %v", err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxBodyBytes {
			return http.StatusBadRequest, fmt.Errorf("bad frame length %d", n)
		}
		if cap(sc.buf) < int(n) {
			sc.buf = make([]byte, n)
		}
		sc.buf = sc.buf[:n]
		if _, err := io.ReadFull(br, sc.buf); err != nil {
			return statusForBodyErr(err), fmt.Errorf("reading %d-byte frame: %v", n, err)
		}
		if first {
			if err := json.Unmarshal(sc.buf, &sc.req); err != nil {
				return http.StatusBadRequest, fmt.Errorf("bad envelope frame: %v", err)
			}
			first = false
			continue
		}
		sc.resetItem()
		if err := json.Unmarshal(sc.buf, &sc.item); err != nil {
			return http.StatusBadRequest, fmt.Errorf("bad item frame: %v", err)
		}
		sc.appendItem()
	}
	if first {
		return http.StatusBadRequest, fmt.Errorf("empty frame body: want an envelope frame")
	}
	return 0, nil
}

// writeBatchNDJSON streams one result line per item plus a summary line.
func writeBatchNDJSON(w http.ResponseWriter, results []BatchItemResult, sum batchSummary) int {
	w.Header().Set("Content-Type", ContentNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range results {
		enc.Encode(&results[i])
	}
	enc.Encode(sum)
	return http.StatusOK
}

// writeBatchFrames streams one length-prefixed result frame per item
// plus a summary frame.
func writeBatchFrames(w http.ResponseWriter, results []BatchItemResult, sum batchSummary) int {
	w.Header().Set("Content-Type", ContentFrames)
	w.WriteHeader(http.StatusOK)
	for i := range results {
		writeFrame(w, &results[i])
	}
	writeFrame(w, sum)
	return http.StatusOK
}

func writeFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
