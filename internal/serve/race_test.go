package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/hurricane"
	"repro/internal/pressio"
)

// TestConcurrentKernelsUnderLoad is the -race regression drill for the
// block-parallel kernels: two compressors drawing on the shared worker
// pool and the package-level scratch pools run flat out while LoadGen
// drives the predict server, which itself evaluates metrics on the same
// pools. Every compression is compared byte-for-byte against a serial
// reference computed up front, so the test pins two properties at once —
// the race detector proves pooled scratch is never shared between
// in-flight compressions, and the byte comparison proves concurrency
// never changes the encoding.
func TestConcurrentKernelsUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Deadline: 30 * time.Second})
	defer s.Drain()

	data, err := hurricane.Field("TC", 3, []int{24, 24, 24})
	if err != nil {
		t.Fatal(err)
	}

	// serial references, one per kernel, before any concurrency starts
	kernels := []string{"sz3", "zfp"}
	refs := make(map[string][]byte, len(kernels))
	for _, name := range kernels {
		comp := newKernel(t, name, 1)
		c, err := comp.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = append([]byte(nil), c.Bytes()...)
	}

	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, len(kernels)*rounds+1)

	// the two compressors: each goroutine owns its Compressor instance
	// (plugins are not thread-safe) but all of them contend on the shared
	// worker pool and the pooled codes/recon/writer scratch
	for _, name := range kernels {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			comp := newKernel(t, name, 0)
			out := pressio.New(data.DType(), data.Dims()...)
			for i := 0; i < rounds; i++ {
				c, err := comp.Compress(data)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(c.Bytes(), refs[name]) {
					t.Errorf("%s: concurrent compression diverged from serial reference", name)
					return
				}
				if err := comp.Decompress(c, out); err != nil {
					errc <- err
					return
				}
			}
		}(name)
	}

	// the serve workload shares the process: its metric evaluations hit
	// the same stats/parallel layers the kernels do
	wg.Add(1)
	var res *LoadGenResult
	go func() {
		defer wg.Done()
		var err error
		res, err = LoadGen(ts.URL, 6, 20, []PredictRequest{
			khanRequest(1.5), khanRequest(2.5), khanRequest(3.5),
		})
		if err != nil {
			errc <- err
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if res != nil && res.Errors+res.Rejected > 0 {
		t.Errorf("loadgen under kernel load: %d errors, %d rejected, want 0", res.Errors, res.Rejected)
	}
}

// newKernel builds a named compressor pinned to nthreads workers.
func newKernel(t *testing.T, name string, nthreads int) pressio.Compressor {
	t.Helper()
	comp, err := pressio.GetCompressor(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	opts.Set(pressio.OptNThreads, int64(nthreads))
	if err := comp.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	return comp
}
