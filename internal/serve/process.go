package serve

import (
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// ProcessStats is the process-level section of /statz: resident set
// size, scheduler pressure, and GC pause quantiles. The scenario harness
// scrapes these to enforce the max-RSS SLO and to attribute latency tail
// excursions to GC rather than the serving path.
type ProcessStats struct {
	RSSBytes       int64   `json:"rss_bytes"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseP50MS   float64 `json:"gc_pause_p50_ms"`
	GCPauseP99MS   float64 `json:"gc_pause_p99_ms"`
}

// readProcessStats samples the live process. RSS comes from
// /proc/self/status (0 on platforms without procfs — the field stays
// present so the JSON shape is stable); everything else is runtime
// introspection.
func readProcessStats() ProcessStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pauses := gcPausesMS(&ms)
	return ProcessStats{
		RSSBytes:       readRSSBytes(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		NumGC:          ms.NumGC,
		GCPauseP50MS:   stats.Quantile(pauses, 0.50),
		GCPauseP99MS:   stats.Quantile(pauses, 0.99),
	}
}

// gcPausesMS extracts the recorded GC pause ring (up to the last 256
// cycles) as milliseconds.
func gcPausesMS(ms *runtime.MemStats) []float64 {
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(ms.PauseNs[i])/1e6)
	}
	return out
}

// readRSSBytes parses VmRSS from /proc/self/status; 0 when unavailable.
func readRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		rest, ok := strings.CutPrefix(line, "VmRSS:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest) // e.g. ["12345", "kB"]
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
