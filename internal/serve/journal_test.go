package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/store"
)

// tinyFit is the cheapest real training request that still fits: 1 field
// × 2 steps × 2 bounds on an 8³ grid (4 samples for 3 features).
func tinyFit() FitRequest {
	return FitRequest{
		Scheme:     "krasowska2021",
		Compressor: "sz3",
		Training: TrainingSpec{
			Fields: []string{"P"},
			Steps:  2,
			Dims:   []int{8, 8, 8},
			Bounds: []float64{1e-4, 1e-2},
		},
	}
}

// waitJob polls a job until it reaches a terminal status.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		var job JobView
		resp := getJSON(t, base+"/v1/jobs/"+id, &job)
		if resp.StatusCode == http.StatusOK && (job.Status == "done" || job.Status == "failed") {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck (last status %q)", id, job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFitIdempotentResubmit sends the same opthash three times across the
// job's lifecycle: while running and after done, the resubmit returns the
// existing job instead of fitting again.
func TestFitIdempotentResubmit(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{
		Deadline:    time.Minute,
		testHookFit: func() { entered <- struct{}{}; <-gate },
	})
	defer s.Drain()
	base := ts.URL

	resp, body := postJSON(t, base+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var first FitResponse
	json.Unmarshal(body, &first)
	<-entered // the job is running, pinned on the gate

	resp, body = postJSON(t, base+"/v1/fit", tinyFit())
	var dup FitResponse
	json.Unmarshal(body, &dup)
	if resp.StatusCode != http.StatusAccepted || !dup.Existing || dup.JobID != first.JobID {
		t.Fatalf("resubmit while running = %d %+v, want existing %s", resp.StatusCode, dup, first.JobID)
	}

	close(gate)
	if job := waitJob(t, base, first.JobID); job.Status != "done" {
		t.Fatalf("fit failed: %s", job.Error)
	}
	resp, body = postJSON(t, base+"/v1/fit", tinyFit())
	json.Unmarshal(body, &dup)
	if !dup.Existing || dup.JobID != first.JobID {
		t.Errorf("resubmit after done = %s existing=%v, want existing %s", dup.JobID, dup.Existing, first.JobID)
	}

	// a different training set is a different opthash → a new job
	other := tinyFit()
	other.Training.Bounds = []float64{1e-3, 1e-1}
	resp, body = postJSON(t, base+"/v1/fit", other)
	var fresh FitResponse
	json.Unmarshal(body, &fresh)
	if fresh.Existing || fresh.JobID == first.JobID {
		t.Errorf("distinct request got %+v, want a fresh job", fresh)
	}
	waitJob(t, base, fresh.JobID)
}

// TestJournalReplayReEnqueuesInterruptedJob simulates a crash mid-fit:
// the journal holds a running job; a fresh server over the same store
// must re-enqueue it, run it to done, and publish the model.
func TestJournalReplayReEnqueuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// hand-journal a job caught running at the crash
	req := tinyFit()
	key := JobKey(req.Scheme, req.Compressor, nil, req.Training)
	rec := jobRecord{
		ID: "job-7", Key: key, Scheme: req.Scheme, Compressor: req.Compressor,
		Status: "running", Request: req,
	}
	raw, _ := json.Marshal(rec)
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	s, err := New(st, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// not ready until replay completes
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz before replay = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/fit", tinyFit()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fit before replay = %d, want 503", resp.StatusCode)
	}

	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() { s.Drain(); st.Close() }()
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after replay = %d, want 200", resp.StatusCode)
	}

	job := waitJob(t, ts.URL, "job-7")
	if job.Status != "done" || job.Model == "" {
		t.Fatalf("replayed job = %+v, want done with a model", job)
	}
	if job.Samples != 4 {
		t.Errorf("replayed job trained on %d samples, want 4", job.Samples)
	}

	// the ID sequence resumes above the journaled job
	resp, body := postJSON(t, ts.URL+"/v1/fit", FitRequest{
		Scheme: "krasowska2021", Compressor: "sz3",
		Training: TrainingSpec{Fields: []string{"CLOUD"}, Steps: 2, Dims: []int{8, 8, 8}, Bounds: []float64{1e-4, 1e-2}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit after replay: %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	if fr.JobID != "job-8" {
		t.Errorf("post-replay job ID = %s, want job-8 (sequence resumed)", fr.JobID)
	}
	waitJob(t, ts.URL, fr.JobID)
}

// TestReplayAdoptsPublishedModel covers the crash window between model
// publish and the done-status journal write: the replayed job must adopt
// the already-published model, not train and publish a second one.
func TestReplayAdoptsPublishedModel(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// run a fit to completion to get a published model
	s1, err := New(st, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := postJSON(t, ts1.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fr FitResponse
	json.Unmarshal(body, &fr)
	done := waitJob(t, ts1.URL, fr.JobID)
	ts1.Close()
	s1.Drain()
	modelRaw, ok, err := st.Get(done.Model)
	if err != nil || !ok {
		t.Fatalf("published model unreadable: %v", err)
	}

	// rewind the journal to "running", as if the crash hit before the
	// done record landed
	req := tinyFit()
	key := done.Key
	rec := jobRecord{
		ID: fr.JobID, Key: key, Scheme: req.Scheme, Compressor: req.Compressor,
		Status: "running", Request: req,
	}
	raw, _ := json.Marshal(rec)
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	s2, err := New(st, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() { s2.Drain(); st.Close() }()

	job := waitJob(t, ts2.URL, fr.JobID)
	if job.Status != "done" || job.Model != done.Model {
		t.Fatalf("replayed job = %+v, want done with model %s", job, done.Model)
	}
	after, ok, err := st.Get(done.Model)
	if err != nil || !ok {
		t.Fatalf("model gone after replay: %v", err)
	}
	if string(after) != string(modelRaw) {
		t.Error("replay re-published the model with different content — adoption failed")
	}
	if n := s2.Registry().Len(); n != 1 {
		t.Errorf("registry has %d models, want 1", n)
	}
}

// TestJobEvictionTTLAndCap drives the retained-job bound both ways: the
// cap evicts oldest-first under load, the TTL clears the rest once the
// clock moves, and /statz accounts for every eviction.
func TestJobEvictionTTLAndCap(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	s, ts := newTestServer(t, Config{
		Deadline:  time.Minute,
		JobTTL:    time.Hour,
		JobRetain: 2,
		testClock: func() time.Time { return clock },
	})
	defer s.Drain()
	base := ts.URL

	// three distinct finished jobs against a 2-job cap
	ids := make([]string, 3)
	for i := range ids {
		req := tinyFit()
		req.Training.Steps = i + 1 // distinct opthash per job
		resp, body := postJSON(t, base+"/v1/fit", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fit %d: %d %s", i, resp.StatusCode, body)
		}
		var fr FitResponse
		json.Unmarshal(body, &fr)
		ids[i] = fr.JobID
		job := waitJob(t, base, fr.JobID)
		if job.Status != "done" {
			t.Fatalf("fit %d failed: %s", i, job.Error)
		}
		clock = clock.Add(time.Minute) // deterministic eviction order
	}

	st := statz(t, base)
	if st.JobsRetained != 2 || st.JobsEvicted != 1 {
		t.Errorf("after cap: retained=%d evicted=%d, want 2/1", st.JobsRetained, st.JobsEvicted)
	}
	if resp := getJSON(t, base+"/v1/jobs/"+ids[0], nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job should be evicted, got %d", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/v1/jobs/"+ids[2], nil); resp.StatusCode != http.StatusOK {
		t.Errorf("newest job should be retained, got %d", resp.StatusCode)
	}

	// TTL expiry clears the rest
	clock = clock.Add(2 * time.Hour)
	st = statz(t, base)
	if st.JobsRetained != 0 || st.JobsEvicted != 3 {
		t.Errorf("after TTL: retained=%d evicted=%d, want 0/3", st.JobsRetained, st.JobsEvicted)
	}

	// evicted journal records are gone from the store too: a restart
	// replays nothing
	s2, err := New(s.journal.st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2.jobMu.Lock()
	n := len(s2.jobs)
	s2.jobMu.Unlock()
	if n != 0 {
		t.Errorf("evicted jobs left %d journal records behind", n)
	}
	s2.Drain()
}

// TestFitJournalErrorRefusesAck closes the store under the server: a fit
// that cannot be journaled must not be acknowledged.
func TestFitJournalErrorRefusesAck(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st.Close() // the "disk" dies
	resp, body := postJSON(t, ts.URL+"/v1/fit", tinyFit())
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("fit with dead journal = %d %s, want 500", resp.StatusCode, body)
	}
	if st := statz(t, ts.URL); st.JournalErrors == 0 {
		t.Error("journal failure not counted in /statz")
	}
	s.jobMu.Lock()
	n := len(s.jobs)
	s.jobMu.Unlock()
	if n != 0 {
		t.Errorf("unacknowledged job left in the map (%d)", n)
	}
}

// TestDrainDuringReplay starts the drain before replay has re-enqueued a
// journaled job: Recover must return promptly (not spin on the closed
// pool) and leave the job journaled as queued for the next start.
func TestDrainDuringReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	req := tinyFit()
	key := JobKey(req.Scheme, req.Compressor, nil, req.Training)
	raw, _ := json.Marshal(jobRecord{
		ID: "job-3", Key: key, Scheme: req.Scheme, Compressor: req.Compressor,
		Status: "queued", Request: req,
	})
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	s, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Drain() // SIGTERM lands before replay finishes
	done := make(chan error, 1)
	go func() { done <- s.Recover(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Recover during drain = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recover wedged on the drained pool")
	}
	// the job survives, still queued, for the next process
	if raw, ok, _ := st.Get(key); !ok {
		t.Error("queued job lost during drained replay")
	} else {
		var rec jobRecord
		json.Unmarshal(raw, &rec)
		if rec.Status != "queued" {
			t.Errorf("journal status = %q, want queued", rec.Status)
		}
	}
}
