package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/pressio"
	"repro/internal/store"
)

// modelPrefix namespaces registry records in the shared store, beside the
// bench's "cell/" and "fail/" spaces.
const modelPrefix = "model/"

// ErrNoModel is returned when no trained model exists for a (scheme,
// compressor) pair.
var ErrNoModel = errors.New("serve: no trained model")

// ModelEntry is one persisted trained predictor.
type ModelEntry struct {
	// Key is the full registry key: modelPrefix + scheme/compressor/hash,
	// where hash is the opthash of the (scheme, compressor options,
	// training-set) tuple — §4.3's stable indexing applied to models.
	Key string
	// Scheme and Compressor identify what the model predicts for.
	Scheme     string
	Compressor string
	// PredictorName records the model family (from Predictor.Name), kept
	// for listings; the authoritative copy lives in the State envelope.
	PredictorName string
	// Target is the predicted result key, e.g. "size:compression_ratio".
	Target string
	// Features are the scheme's feature keys at fit time, in order.
	Features []string
	// Samples counts the training rows.
	Samples int
	// Seq orders entries for the same (scheme, compressor): lookups serve
	// the highest.
	Seq uint64
	// State is the predictors.MarshalState envelope.
	State []byte
}

// Registry is the model registry: a thin, fully cached layer over the
// durable store. All methods are safe for concurrent use; reads are
// served from memory, writes go through the store's WAL first.
type Registry struct {
	mu  sync.RWMutex
	st  *store.Store
	mem map[string]*ModelEntry // key → entry
	seq uint64
}

// OpenRegistry loads every persisted model entry from the store.
// Entries that fail to decode — from a corrupted record or a gob schema
// change — are dropped (and deleted best-effort) rather than served.
func OpenRegistry(st *store.Store) (*Registry, error) {
	r := &Registry{st: st, mem: map[string]*ModelEntry{}}
	keys, err := st.Keys(modelPrefix)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		raw, ok, err := st.Get(k)
		if err != nil || !ok {
			continue
		}
		var e ModelEntry
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); err != nil {
			st.Delete(k)
			continue
		}
		r.mem[k] = &e
		if e.Seq > r.seq {
			r.seq = e.Seq
		}
	}
	return r, nil
}

// ModelKey builds the registry key for a (scheme, compressor options,
// training-set) tuple. It shares its hash with JobKey, so the model a
// journaled fit job will publish is always derivable from the job.
func ModelKey(scheme, compressor string, opts pressio.Options, training TrainingSpec) string {
	return modelPrefix + scheme + "/" + compressor + "/" + fitHash(scheme, compressor, opts, training)
}

func dimsKey(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

// Put persists an entry (assigning its Seq) and publishes it to readers.
func (r *Registry) Put(e *ModelEntry) error {
	var buf bytes.Buffer
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return err
	}
	if err := r.st.Put(e.Key, buf.Bytes()); err != nil {
		return err
	}
	r.mem[e.Key] = e
	return nil
}

// Absorb publishes a replicated entry to readers without touching the
// store: the shipped WAL frame carrying raw has already been applied to
// the local store by the replication layer, so only the memory cache
// needs the update. The payload's CRC was validated frame-level before
// apply; a gob decode failure here means a schema mismatch and is
// returned rather than served.
func (r *Registry) Absorb(key string, raw []byte) error {
	var e ModelEntry
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem[key] = &e
	if e.Seq > r.seq {
		// replicated entries advance the seq high-water mark so models
		// published here after an adoption never collide below it
		r.seq = e.Seq
	}
	return nil
}

// Forget drops a replicated deletion from the memory cache (the store
// deletion was already applied by the replication layer).
func (r *Registry) Forget(key string) {
	r.mu.Lock()
	delete(r.mem, key)
	r.mu.Unlock()
}

// Get returns the entry stored under key.
func (r *Registry) Get(key string) (*ModelEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.mem[key]
	return e, ok
}

// Lookup returns the newest entry for a (scheme, compressor) pair, or
// ErrNoModel.
func (r *Registry) Lookup(scheme, compressor string) (*ModelEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	prefix := modelPrefix + scheme + "/" + compressor + "/"
	var best *ModelEntry
	for k, e := range r.mem {
		if strings.HasPrefix(k, prefix) && (best == nil || e.Seq > best.Seq) {
			best = e
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w for scheme %q on compressor %q", ErrNoModel, scheme, compressor)
	}
	return best, nil
}

// List returns every entry, ordered by key.
func (r *Registry) List() []*ModelEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ModelEntry, 0, len(r.mem))
	for _, e := range r.mem {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mem)
}

// Restore rebuilds the trained predictor of an entry through the
// predictors state envelope (typed errors on unknown/renamed predictor
// names — see predictors.RestoreState).
func (r *Registry) Restore(e *ModelEntry) (core.Predictor, error) {
	return predictors.RestoreState(e.Scheme, e.Compressor, e.State)
}

// Invalidate applies the paper's predictors:invalidate semantics to the
// registry: every model whose scheme is made stale by the given option
// names or class keys (per core.SchemeStale — error_dependent covers
// specific error-affecting options, predictors:training covers all
// trained state) is evicted from memory and the store rather than served
// stale. It returns the evicted keys, sorted.
func (r *Registry) Invalidate(keys ...string) ([]string, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var evicted []string
	staleByScheme := map[string]bool{}
	for k, e := range r.mem {
		stale, seen := staleByScheme[e.Scheme]
		if !seen {
			scheme, err := core.GetScheme(e.Scheme)
			if err != nil {
				// scheme gone from the registry since the model was
				// trained: nothing can serve it, evict
				stale = true
			} else if stale, err = core.SchemeStale(scheme, keys); err != nil {
				return nil, err
			}
			staleByScheme[e.Scheme] = stale
		}
		if !stale {
			continue
		}
		if err := r.st.Delete(k); err != nil {
			return nil, err
		}
		delete(r.mem, k)
		evicted = append(evicted, k)
	}
	sort.Strings(evicted)
	return evicted, nil
}
