package opthash

import (
	"testing"
	"testing/quick"

	"repro/internal/pressio"
)

func optsOf(pairs ...any) pressio.Options {
	o := pressio.Options{}
	for i := 0; i+1 < len(pairs); i += 2 {
		o.Set(pairs[i].(string), pairs[i+1])
	}
	return o
}

func TestHashDeterministic(t *testing.T) {
	a := optsOf("pressio:abs", 1e-6, "compressor", "sz3", "bins", 65536)
	b := optsOf("bins", 65536, "compressor", "sz3", "pressio:abs", 1e-6)
	if Hash(a) != Hash(b) {
		t.Error("hash should be independent of insertion order")
	}
	if HashString(a) != HashString(b) {
		t.Error("HashString should match too")
	}
}

func TestHashSensitiveToValues(t *testing.T) {
	a := optsOf("pressio:abs", 1e-6)
	b := optsOf("pressio:abs", 1e-4)
	if Hash(a) == Hash(b) {
		t.Error("different values should hash differently")
	}
}

func TestHashSensitiveToKeys(t *testing.T) {
	a := optsOf("x", int64(1))
	b := optsOf("y", int64(1))
	if Hash(a) == Hash(b) {
		t.Error("different keys should hash differently")
	}
}

func TestHashTypeTagged(t *testing.T) {
	a := optsOf("v", "1")
	b := optsOf("v", int64(49)) // ASCII '1'
	if Hash(a) == Hash(b) {
		t.Error("string and int values should not collide")
	}
	c := optsOf("v", int64(1))
	d := optsOf("v", float64(1))
	if Hash(c) == Hash(d) {
		t.Error("int and float values should not collide")
	}
}

func TestHashSkipsOpaque(t *testing.T) {
	a := optsOf("pressio:abs", 1e-6)
	b := a.Clone()
	b.Set("stream", struct{ X int }{7}) // wrapped in Opaque by Set
	if Hash(a) != Hash(b) {
		t.Error("opaque entries must be excluded from the hash")
	}
}

func TestHashStringsFraming(t *testing.T) {
	// ["ab","c"] must not collide with ["a","bc"].
	a := optsOf("v", []string{"ab", "c"})
	b := optsOf("v", []string{"a", "bc"})
	if Hash(a) == Hash(b) {
		t.Error("string-slice framing is ambiguous")
	}
}

func TestCombineOrderMatters(t *testing.T) {
	a := optsOf("k", int64(1))
	b := optsOf("k", int64(2))
	if Combine(a, b) == Combine(b, a) {
		t.Error("Combine should be order sensitive: the parts have distinct roles")
	}
	if Combine(a, b) != Combine(a, b) {
		t.Error("Combine should be deterministic")
	}
}

func TestHashStableAcrossRuns(t *testing.T) {
	// Golden value: guards the cross-execution stability guarantee the
	// paper relies on for checkpoint indexing. If the encoding changes,
	// update this constant deliberately (it invalidates on-disk caches).
	o := optsOf("pressio:abs", 1e-6, "compressor", "sz3")
	const golden = "1af591fe4cd67d21e774157aa8143cf45701cdd8ec1f0f728d9f4fcddd41fe3a"
	if got := HashString(o); got != golden {
		t.Errorf("HashString = %s, want %s (encoding changed?)", got, golden)
	}
}

func TestHashQuickProperties(t *testing.T) {
	f := func(k string, v int64, extra string) bool {
		if k == extra {
			return true
		}
		a := pressio.Options{}
		a.Set(k, v)
		b := a.Clone()
		// adding an entry changes the hash; removing it restores it
		b.Set(extra, "x")
		if Hash(a) == Hash(b) {
			return false
		}
		delete(b, extra)
		return Hash(a) == Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
