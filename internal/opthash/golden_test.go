package opthash

import (
	"math/rand"
	"testing"

	"repro/internal/pressio"
)

// goldenOptions builds the fixture set in a given insertion order. The
// perm slice reorders the Set calls so tests can prove the hash is
// independent of Go map insertion history.
func goldenOptions(perm []int) pressio.Options {
	o := pressio.Options{}
	sets := []func(){
		func() { o.Set("pressio:abs", 1e-4) },
		func() { o.Set("sz3:quant_bins", int64(65536)) },
		func() { o.Set("compressor", "sz3") },
		func() { o.Set("lossless", true) },
		func() { o.Set("fields", []string{"P", "CLOUD", "QVAPOR"}) },
		func() { o.Set("seed-bytes", []byte{0x00, 0x01, 0xfe, 0xff}) },
		func() { o.Set("handle", pressio.Opaque{Value: "excluded"}) },
	}
	for _, i := range perm {
		sets[i]()
	}
	return o
}

// golden hex digests, computed once from the fixtures above. They pin the
// wire format of the hash: if any of these change, every persisted model
// registry key and checkpoint store entry in the field is orphaned — treat
// a diff here as a breaking change, not a test to update casually.
const (
	goldenFixtureHash = "40ce04efe35f8e85f5698dcf61c83c26d4fbc9e66265826712850dbc16421452"
	goldenEmptyHash   = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	goldenCombined    = "83dd9d3b8e1863ac52bf86aa9853d889f03458e8cf1f41831db0980d83023598"
	goldenBoundHash   = "98384b9cc0aa32e5554f1c13d8ebf6ea324fef24867432817d589a29525dcb2f"
)

func TestGoldenHashFixtures(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6}
	if got := HashString(goldenOptions(order)); got != goldenFixtureHash {
		t.Errorf("fixture hash drifted:\n got %s\nwant %s", got, goldenFixtureHash)
	}
	if got := HashString(pressio.Options{}); got != goldenEmptyHash {
		t.Errorf("empty hash = %s, want SHA-256 of nothing %s", got, goldenEmptyHash)
	}

	bound := pressio.Options{}
	bound.Set(pressio.OptAbs, 1e-6)
	if got := HashString(bound); got != goldenBoundHash {
		t.Errorf("bound hash drifted:\n got %s\nwant %s", got, goldenBoundHash)
	}
	if got := Combine(goldenOptions(order), bound); got != goldenCombined {
		t.Errorf("combined hash drifted:\n got %s\nwant %s", got, goldenCombined)
	}
}

// TestGoldenHashInsertionOrderIndependent rebuilds the fixture options
// under many random insertion orders: whatever history the underlying Go
// map saw, the digest must match the golden value, because store keys
// written by one process layout must resolve under another.
func TestGoldenHashInsertionOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(7)
		if got := HashString(goldenOptions(perm)); got != goldenFixtureHash {
			t.Fatalf("insertion order %v changed the hash to %s", perm, got)
		}
	}
}

// TestGoldenHashMutationRoundTrip proves set-then-restore lands back on
// the golden digest, so invalidation bookkeeping can rely on hash
// equality to detect "returned to a known configuration".
func TestGoldenHashMutationRoundTrip(t *testing.T) {
	o := goldenOptions([]int{0, 1, 2, 3, 4, 5, 6})
	o.Set("pressio:abs", 1e-2) // drift away
	if HashString(o) == goldenFixtureHash {
		t.Fatal("changing a value must change the hash")
	}
	o.Set("pressio:abs", 1e-4) // and back
	if got := HashString(o); got != goldenFixtureHash {
		t.Errorf("round-trip hash = %s, want golden %s", got, goldenFixtureHash)
	}
}
