// Package opthash computes stable cryptographic hashes of pressio.Options
// structures, the capability the paper introduces into LibPressio to index
// checkpointed results (paper §4.3).
//
// Unlike the hash functions in standard library containers, these hashes
// are stable between executions and across machines: the option structure
// is walked in deterministic (sorted-key) order, every entry with a
// hashable value is folded into a SHA-256 digest with an unambiguous
// type-tagged, length-prefixed framing, and opaque entries (the analogue of
// void* CUDA streams or MPI communicators) are excluded.
package opthash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/pressio"
)

// tag bytes keep the encoding prefix-free across value types so that, e.g.,
// the string "1" and the integer 1 never collide.
const (
	tagBool    = 'b'
	tagInt     = 'i'
	tagFloat   = 'f'
	tagString  = 's'
	tagStrings = 'S'
	tagBytes   = 'B'
)

// Hash returns the 32-byte SHA-256 digest of the options.
func Hash(opts pressio.Options) [32]byte {
	h := sha256.New()
	var scratch [8]byte
	writeLen := func(n int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(n))
		h.Write(scratch[:])
	}
	for _, key := range opts.Keys() {
		value := opts[key]
		if _, opaque := value.(pressio.Opaque); opaque {
			continue // excluded, like void* objects in LibPressio
		}
		writeLen(len(key))
		h.Write([]byte(key))
		switch v := value.(type) {
		case bool:
			h.Write([]byte{tagBool})
			if v {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		case int64:
			h.Write([]byte{tagInt})
			binary.LittleEndian.PutUint64(scratch[:], uint64(v))
			h.Write(scratch[:])
		case float64:
			h.Write([]byte{tagFloat})
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			h.Write(scratch[:])
		case string:
			h.Write([]byte{tagString})
			writeLen(len(v))
			h.Write([]byte(v))
		case []string:
			h.Write([]byte{tagStrings})
			writeLen(len(v))
			for _, s := range v {
				writeLen(len(s))
				h.Write([]byte(s))
			}
		case []byte:
			h.Write([]byte{tagBytes})
			writeLen(len(v))
			h.Write(v)
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashString returns the hex-encoded Hash, convenient as a store key.
func HashString(opts pressio.Options) string {
	sum := Hash(opts)
	return hex.EncodeToString(sum[:])
}

// Combine hashes several option structures together in order — used to key
// a benchmark task by (compressor config, dataset config, experiment
// metadata, replicate) as §4.3 describes.
func Combine(parts ...pressio.Options) string {
	h := sha256.New()
	for _, p := range parts {
		sum := Hash(p)
		h.Write(sum[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
