// Package parallel provides the shared bounded worker pool behind the
// block-parallel compression kernels and the fused feature extraction
// (DESIGN.md §10). The pool is process-global and sized to
// runtime.NumCPU(): no matter how many compressions, metric evaluations,
// and serving requests are in flight, at most NumCPU goroutines do kernel
// work at once. Callers always participate in their own work, so the pool
// can never deadlock and a saturated pool degrades to inline serial
// execution rather than queueing.
//
// Everything here is a pure performance knob: a For over [0, n) invokes fn
// on disjoint contiguous ranges exactly covering [0, n), so any computation
// whose chunks write disjoint outputs produces results independent of the
// worker count.
package parallel

import (
	"runtime"
	"sync"
)

// tokens is the global admission semaphore. Capacity NumCPU-1: the
// caller's goroutine is the implicit extra worker, so total concurrency is
// NumCPU. On a single-core machine the channel has zero capacity and every
// chunk runs inline — the parallel path then costs one failed channel
// select per chunk over the serial path.
var tokens = make(chan struct{}, maxInt(runtime.NumCPU()-1, 0))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaxWorkers returns the width of the shared pool (runtime.NumCPU()).
func MaxWorkers() int { return runtime.NumCPU() }

// Resolve maps a pressio:nthreads option value to an effective worker
// count: values <= 0 mean "all cores"; anything else is capped at the pool
// width.
func Resolve(n int) int {
	w := MaxWorkers()
	if n <= 0 || n > w {
		return w
	}
	return n
}

// minGrain is the smallest per-chunk element count worth a goroutine;
// below it the spawn and synchronization overhead exceeds the work.
const minGrain = 2048

// Split returns the chunk boundaries For would use for (workers, n):
// bounds[i]..bounds[i+1] is chunk i, and the boundaries depend only on
// (workers, n, NumCPU) — never on scheduling. Callers that reduce
// floating-point partials use it to accumulate per-chunk results into an
// indexed slice and merge them in chunk order, so the reduced value is
// identical across runs (float addition is not associative, so merging
// in completion order is not).
func Split(workers, n int) []int {
	if n <= 0 {
		return []int{0}
	}
	workers = Resolve(workers)
	if max := (n + minGrain - 1) / minGrain; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	bounds := []int{0}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, hi)
	}
	return bounds
}

// For divides [0, n) into at most `workers` contiguous chunks and invokes
// fn(lo, hi) for each, using pool goroutines when tokens are available and
// the caller's goroutine otherwise. It returns when every chunk is done.
// Chunk boundaries depend only on (workers, n), never on scheduling, and
// the chunks partition [0, n) exactly.
func For(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if max := (n + minGrain - 1) / minGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if hi == n {
			// the caller always runs the final chunk itself
			fn(lo, hi)
			break
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer func() {
					<-tokens
					wg.Done()
				}()
				fn(lo, hi)
			}(lo, hi)
		default:
			// pool saturated: degrade to inline execution
			fn(lo, hi)
		}
	}
	wg.Wait()
}

// ForTasks invokes fn(i) for every i in [0, tasks), distributing whole
// tasks across at most `workers` concurrent executors. Use it when tasks
// are few and individually heavy (per-chunk kernel encoders); use For when
// splitting one large index space.
func ForTasks(workers, tasks int, fn func(i int)) {
	if tasks <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	// deterministic block assignment: executor e owns tasks [starts[e], starts[e+1])
	var wg sync.WaitGroup
	chunk := (tasks + workers - 1) / workers
	for lo := 0; lo < tasks; lo += chunk {
		hi := lo + chunk
		if hi > tasks {
			hi = tasks
		}
		run := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
		if hi == tasks {
			run(lo, hi)
			break
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer func() {
					<-tokens
					wg.Done()
				}()
				run(lo, hi)
			}(lo, hi)
		default:
			run(lo, hi)
		}
	}
	wg.Wait()
}
