package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, minGrain, minGrain + 1, 10 * minGrain} {
		for _, workers := range []int{0, 1, 2, 3, 16, 1000} {
			seen := make([]int32, n)
			var mu sync.Mutex
			ranges := 0
			For(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("n=%d workers=%d: empty chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
				mu.Lock()
				ranges++
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
			if n > 0 && ranges == 0 {
				t.Fatalf("n=%d workers=%d: fn never called", n, workers)
			}
		}
	}
}

func TestForChunkBoundariesDeterministic(t *testing.T) {
	// chunk boundaries must depend only on (workers, n): run twice,
	// collect the boundary sets, compare.
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		out := map[[2]int]bool{}
		For(4, 50*minGrain, func(lo, hi int) {
			mu.Lock()
			out[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk count varies: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if !b[r] {
			t.Fatalf("chunk %v present in one run only", r)
		}
	}
}

func TestForTasks(t *testing.T) {
	for _, tasks := range []int{0, 1, 5, 64} {
		for _, workers := range []int{0, 1, 3, 100} {
			seen := make([]int32, tasks)
			ForTasks(workers, tasks, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("tasks=%d workers=%d: task %d ran %d times", tasks, workers, i, c)
				}
			}
		}
	}
}

func TestResolve(t *testing.T) {
	w := MaxWorkers()
	if got := Resolve(0); got != w {
		t.Errorf("Resolve(0) = %d, want %d", got, w)
	}
	if got := Resolve(-3); got != w {
		t.Errorf("Resolve(-3) = %d, want %d", got, w)
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(w + 100); got != w {
		t.Errorf("Resolve(w+100) = %d, want %d", got, w)
	}
}

// TestForNested pins that pool exhaustion degrades to inline execution
// rather than deadlocking when For calls nest (a parallel kernel invoked
// from a parallel driver).
func TestForNested(t *testing.T) {
	var count int64
	For(0, 8*minGrain, func(lo, hi int) {
		For(0, 8*minGrain, func(lo2, hi2 int) {
			atomic.AddInt64(&count, int64(hi2-lo2))
		})
	})
	// every outer chunk runs a full inner For
	if count%int64(8*minGrain) != 0 || count == 0 {
		t.Fatalf("nested For did %d units, want a positive multiple of %d", count, 8*minGrain)
	}
}
