// Package metrics implements the LibPressio metric plugins used by the
// prediction schemes, each tagged with the predictors:invalidate metadata
// the paper introduces (§4.2): error-agnostic data statistics (moments,
// entropy, variogram, SVD truncation, spatial features, coding gain),
// error-dependent observations (quantized entropy, general distortion,
// reconstruction error), and runtime/nondeterministic observations
// (sizes and timings from running the compressor).
package metrics

import (
	"math"

	"repro/internal/pressio"
	"repro/internal/stats"
)

func init() {
	pressio.RegisterMetric("stat", func() pressio.Metric { return &Stat{} })
	pressio.RegisterMetric("entropy", func() pressio.Metric { return &Entropy{} })
	pressio.RegisterMetric("quantized_entropy", func() pressio.Metric { return &QuantizedEntropy{} })
	pressio.RegisterMetric("variogram", func() pressio.Metric { return &Variogram{} })
	pressio.RegisterMetric("svd_trunc", func() pressio.Metric { return &SVDTrunc{} })
	pressio.RegisterMetric("spatial", func() pressio.Metric { return &Spatial{} })
	pressio.RegisterMetric("distortion", func() pressio.Metric { return &Distortion{} })
	pressio.RegisterMetric("size", func() pressio.Metric { return &Size{} })
	pressio.RegisterMetric("error_stat", func() pressio.Metric { return &ErrorStat{} })
}

func invalidate(keys ...string) pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.CfgInvalidate, keys)
	return o
}

// Stat observes error-agnostic moments of the input: min, max, range,
// mean, std, and the exact-zero sparsity fraction (the signal behind
// FXRZ's sparsity correction factor).
type Stat struct {
	pressio.BaseMetric
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Stat) Name() string { return "stat" }

// Configuration implements pressio.Metric.
func (*Stat) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorAgnostic)
}

// BeginCompress implements pressio.Metric. All moments come from the
// fused single-pass summary shared with every other metric observing the
// same buffer, so a chain of metrics reads the data once.
func (m *Stat) BeginCompress(in *pressio.Data) {
	s := stats.SummaryOf(in, 0, 0)
	r := pressio.Options{}
	r.Set("stat:min", s.Min)
	r.Set("stat:max", s.Max)
	r.Set("stat:range", s.Range())
	r.Set("stat:mean", s.Mean)
	r.Set("stat:std", s.Std)
	r.Set("stat:sparsity", s.Sparsity())
	r.Set("stat:n", int64(s.N))
	m.results = r
}

// Results implements pressio.Metric.
func (m *Stat) Results() pressio.Options { return m.results.Clone() }

// Entropy observes the error-agnostic Shannon entropy of a fixed-width
// histogram of the values.
type Entropy struct {
	pressio.BaseMetric
	Bins    int
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Entropy) Name() string { return "entropy" }

// Configuration implements pressio.Metric.
func (*Entropy) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorAgnostic)
}

// SetOptions implements pressio.Metric.
func (m *Entropy) SetOptions(o pressio.Options) error {
	if v, ok := o.GetInt("entropy:bins"); ok && v > 1 {
		m.Bins = int(v)
	}
	return nil
}

// Options implements pressio.Metric.
func (m *Entropy) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("entropy:bins", int64(m.bins()))
	return o
}

func (m *Entropy) bins() int {
	if m.Bins <= 1 {
		return 4096
	}
	return m.Bins
}

// BeginCompress implements pressio.Metric. The histogram rides on the
// shared summary's second sweep instead of a dedicated pass.
func (m *Entropy) BeginCompress(in *pressio.Data) {
	s := stats.SummaryOf(in, m.bins(), 0)
	r := pressio.Options{}
	r.Set("entropy:shannon", s.Entropy())
	m.results = r
}

// Results implements pressio.Metric.
func (m *Entropy) Results() pressio.Options { return m.results.Clone() }

// QuantizedEntropy observes the entropy after quantization at the active
// absolute error bound — error-dependent by construction (Krasowska 2021).
type QuantizedEntropy struct {
	pressio.BaseMetric
	Abs     float64
	results pressio.Options
}

// Name implements pressio.Metric.
func (*QuantizedEntropy) Name() string { return "quantized_entropy" }

// Configuration implements pressio.Metric.
func (*QuantizedEntropy) Configuration() pressio.Options {
	return invalidate(pressio.OptAbs, pressio.InvalidateErrorDependent)
}

// SetOptions implements pressio.Metric.
func (m *QuantizedEntropy) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	return nil
}

// Options implements pressio.Metric.
func (m *QuantizedEntropy) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	return o
}

// BeginCompress implements pressio.Metric. The quantized histogram is a
// single sweep over the native element type (no float64 copy), with the
// key range bounded by the shared summary's min/max.
func (m *QuantizedEntropy) BeginCompress(in *pressio.Data) {
	r := pressio.Options{}
	r.Set("quantized_entropy:bits", stats.QuantizedEntropyOf(in, m.Abs, 0))
	m.results = r
}

// Results implements pressio.Metric.
func (m *QuantizedEntropy) Results() pressio.Options { return m.results.Clone() }

// Variogram observes the error-agnostic small-lag semivariogram
// (Krasowska 2021's spatial statistic).
type Variogram struct {
	pressio.BaseMetric
	MaxLag  int
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Variogram) Name() string { return "variogram" }

// Configuration implements pressio.Metric.
func (*Variogram) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorAgnostic)
}

func (m *Variogram) maxLag() int {
	if m.MaxLag <= 0 {
		return 4
	}
	return m.MaxLag
}

// BeginCompress implements pressio.Metric.
func (m *Variogram) BeginCompress(in *pressio.Data) {
	xs := stats.Float64Of(in)
	g := stats.Variogram(xs, in.Dims(), m.maxLag())
	r := pressio.Options{}
	r.Set("variogram:gamma1", g[0])
	if len(g) > 1 {
		r.Set("variogram:gamma2", g[1])
	}
	// slope of the first lags, normalized: captures decorrelation speed
	if len(g) > 1 && g[0] > 0 {
		r.Set("variogram:slope", (g[len(g)-1]-g[0])/(float64(len(g)-1)*g[0]))
	} else {
		r.Set("variogram:slope", 0.0)
	}
	m.results = r
}

// Results implements pressio.Metric.
func (m *Variogram) Results() pressio.Options { return m.results.Clone() }

// SVDTrunc observes the error-agnostic SVD truncation rank fraction
// (Underwood 2023). It is deliberately the most expensive metric, as in
// the paper (§6 reports ~771 ms against ~43 ms for the cheap features).
type SVDTrunc struct {
	pressio.BaseMetric
	Tau     float64
	results pressio.Options
}

// Name implements pressio.Metric.
func (*SVDTrunc) Name() string { return "svd_trunc" }

// Configuration implements pressio.Metric.
func (*SVDTrunc) Configuration() pressio.Options {
	// the randomized SVD implementations the paper mentions are also
	// nondeterministic; our Jacobi solver is deterministic but keeps the
	// class label so schedulers treat it equivalently
	return invalidate(pressio.InvalidateErrorAgnostic)
}

func (m *SVDTrunc) tau() float64 {
	if m.Tau <= 0 || m.Tau >= 1 {
		return 0.99
	}
	return m.Tau
}

// BeginCompress implements pressio.Metric.
func (m *SVDTrunc) BeginCompress(in *pressio.Data) {
	xs := stats.Float64Of(in)
	rank, frac := stats.SVDTruncation(xs, in.Dims(), m.tau())
	r := pressio.Options{}
	r.Set("svd_trunc:rank", int64(rank))
	r.Set("svd_trunc:fraction", frac)
	m.results = r
}

// Results implements pressio.Metric.
func (m *SVDTrunc) Results() pressio.Options { return m.results.Clone() }

// Spatial observes Ganguli 2023's error-agnostic trio: spatial
// correlation, spatial diversity, and spatial smoothness, plus coding
// gain.
type Spatial struct {
	pressio.BaseMetric
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Spatial) Name() string { return "spatial" }

// Configuration implements pressio.Metric.
func (*Spatial) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorAgnostic)
}

// BeginCompress implements pressio.Metric.
func (m *Spatial) BeginCompress(in *pressio.Data) {
	xs := stats.Float64Of(in)
	r := pressio.Options{}
	r.Set("spatial:correlation", stats.SpatialCorrelation(xs, in.Dims()))
	r.Set("spatial:smoothness", stats.SpatialSmoothness(xs, in.Dims()))
	r.Set("spatial:diversity", stats.SpatialDiversity(xs, in.Dims(), 64))
	r.Set("spatial:coding_gain", stats.CodingGain(xs, in.Dims()))
	m.results = r
}

// Results implements pressio.Metric.
func (m *Spatial) Results() pressio.Options { return m.results.Clone() }

// Distortion observes the error-dependent general-distortion feature:
// log2(range / (2·abs)).
type Distortion struct {
	pressio.BaseMetric
	Abs     float64
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Distortion) Name() string { return "distortion" }

// Configuration implements pressio.Metric.
func (*Distortion) Configuration() pressio.Options {
	return invalidate(pressio.OptAbs, pressio.InvalidateErrorDependent)
}

// SetOptions implements pressio.Metric.
func (m *Distortion) SetOptions(o pressio.Options) error {
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	return nil
}

// Options implements pressio.Metric.
func (m *Distortion) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(pressio.OptAbs, m.Abs)
	return o
}

// BeginCompress implements pressio.Metric.
func (m *Distortion) BeginCompress(in *pressio.Data) {
	s := stats.SummaryOf(in, 0, 0)
	r := pressio.Options{}
	r.Set("distortion:general", stats.GeneralDistortion(s.Range(), m.Abs))
	r.Set("distortion:abs", m.Abs)
	m.results = r
}

// Results implements pressio.Metric.
func (m *Distortion) Results() pressio.Options { return m.results.Clone() }

// Size observes the compressed size and compression ratio — the training
// target of every CR prediction scheme. Running the compressor is a
// runtime observation, so it carries the runtime invalidation class in
// addition to error dependence.
type Size struct {
	pressio.BaseMetric
	results pressio.Options
}

// Name implements pressio.Metric.
func (*Size) Name() string { return "size" }

// Configuration implements pressio.Metric.
func (*Size) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorDependent, pressio.InvalidateRuntime)
}

// EndCompress implements pressio.Metric.
func (m *Size) EndCompress(in, compressed *pressio.Data, err error) {
	r := pressio.Options{}
	if err != nil || compressed == nil {
		r.Set("size:error", true)
		m.results = r
		return
	}
	r.Set("size:uncompressed", int64(in.ByteSize()))
	r.Set("size:compressed", int64(compressed.ByteSize()))
	cr := float64(in.ByteSize()) / float64(compressed.ByteSize())
	r.Set("size:compression_ratio", cr)
	r.Set("size:bit_rate", float64(compressed.ByteSize()*8)/float64(in.Len()))
	m.results = r
}

// Results implements pressio.Metric.
func (m *Size) Results() pressio.Options { return m.results.Clone() }

// ErrorStat observes reconstruction error statistics after decompression:
// max absolute error, MSE, and PSNR. Error-dependent by definition.
type ErrorStat struct {
	pressio.BaseMetric
	input   *pressio.Data
	results pressio.Options
}

// Name implements pressio.Metric.
func (*ErrorStat) Name() string { return "error_stat" }

// Configuration implements pressio.Metric.
func (*ErrorStat) Configuration() pressio.Options {
	return invalidate(pressio.InvalidateErrorDependent)
}

// BeginCompress implements pressio.Metric: retains the input for later
// comparison, as the C++ error_stat module does.
func (m *ErrorStat) BeginCompress(in *pressio.Data) { m.input = in }

// EndDecompress implements pressio.Metric.
func (m *ErrorStat) EndDecompress(_, out *pressio.Data, err error) {
	r := pressio.Options{}
	if err != nil || out == nil || m.input == nil || out.Len() != m.input.Len() {
		r.Set("error_stat:error", true)
		m.results = r
		return
	}
	var maxErr, sse float64
	n := m.input.Len()
	for i := 0; i < n; i++ {
		e := math.Abs(m.input.At(i) - out.At(i))
		if e > maxErr {
			maxErr = e
		}
		sse += e * e
	}
	mse := sse / float64(n)
	lo, hi := m.input.Range()
	r.Set("error_stat:max_error", maxErr)
	r.Set("error_stat:mse", mse)
	if mse > 0 && hi > lo {
		r.Set("error_stat:psnr", 20*math.Log10(hi-lo)-10*math.Log10(mse))
	} else {
		r.Set("error_stat:psnr", math.Inf(1))
	}
	m.results = r
}

// Results implements pressio.Metric.
func (m *ErrorStat) Results() pressio.Options { return m.results.Clone() }
