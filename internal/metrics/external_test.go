package metrics

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/opthash"
	"repro/internal/pressio"
)

// writeScript creates an executable shell script for the external metric.
func writeScript(t *testing.T, body string) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("shell-script fixture")
	}
	path := filepath.Join(t.TempDir(), "metric.sh")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+body), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func externalWith(t *testing.T, script string, extra pressio.Options) pressio.Options {
	t.Helper()
	m := &External{}
	opts := pressio.Options{}
	opts.Set(OptExternalCommand, script)
	opts.Merge(extra)
	if err := m.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	d := pressio.NewFloat32(4, 8)
	for i := 0; i < d.Len(); i++ {
		d.Set(i, float64(i))
	}
	m.BeginCompress(d)
	return m.Results()
}

func TestExternalReceivesPayloadAndEnv(t *testing.T) {
	script := writeScript(t, `
n=$(wc -c)
echo "stdin_bytes $n"
echo "dims_ok $([ "$PRESSIO_DIMS" = "4,8" ] && echo 1 || echo 0)"
echo "dtype_ok $([ "$PRESSIO_DTYPE" = "float32" ] && echo 1 || echo 0)"
echo "abs $PRESSIO_ABS"
`)
	extra := pressio.Options{}
	extra.Set(pressio.OptAbs, 0.5)
	r := externalWith(t, script, extra)
	if v, ok := r.GetFloat("external:stdin_bytes"); !ok || v != 128 {
		t.Errorf("stdin_bytes = %v, %v (want 128 = 32 float32s)", v, ok)
	}
	if v, _ := r.GetFloat("external:dims_ok"); v != 1 {
		t.Error("PRESSIO_DIMS not delivered")
	}
	if v, _ := r.GetFloat("external:dtype_ok"); v != 1 {
		t.Error("PRESSIO_DTYPE not delivered")
	}
	if v, _ := r.GetFloat("external:abs"); v != 0.5 {
		t.Errorf("PRESSIO_ABS = %v", v)
	}
}

func TestExternalNamespacing(t *testing.T) {
	script := writeScript(t, `
cat > /dev/null
echo "plain 1"
echo "custom:key 2"
echo "not-a-number x"
echo "malformed line with words"
`)
	r := externalWith(t, script, pressio.Options{})
	if v, ok := r.GetFloat("external:plain"); !ok || v != 1 {
		t.Error("bare keys should be namespaced under external:")
	}
	if v, ok := r.GetFloat("custom:key"); !ok || v != 2 {
		t.Error("namespaced keys should pass through")
	}
	if len(r.Keys()) != 2 {
		t.Errorf("malformed lines should be skipped: %v", r.Keys())
	}
}

func TestExternalFailuresAreReported(t *testing.T) {
	// missing command
	m := &External{}
	m.BeginCompress(pressio.NewFloat32(4))
	if _, ok := m.Results().GetString("external:error"); !ok {
		t.Error("unconfigured metric should report an error result")
	}
	// failing program
	script := writeScript(t, "cat > /dev/null\nexit 3\n")
	r := externalWith(t, script, pressio.Options{})
	if _, ok := r.GetString("external:error"); !ok {
		t.Error("non-zero exit should be reported")
	}
	// program with no output
	script = writeScript(t, "cat > /dev/null\n")
	r = externalWith(t, script, pressio.Options{})
	if _, ok := r.GetString("external:error"); !ok {
		t.Error("empty output should be reported")
	}
}

func TestExternalTimeout(t *testing.T) {
	script := writeScript(t, "sleep 5\n")
	extra := pressio.Options{}
	extra.Set(OptExternalTimeoutMS, 50)
	r := externalWith(t, script, extra)
	if _, ok := r.GetString("external:error"); !ok {
		t.Error("timeout should be reported as an error")
	}
}

func TestExternalInvalidateOverride(t *testing.T) {
	m := &External{}
	// default: error-agnostic
	inv, _ := m.Configuration().GetStrings(pressio.CfgInvalidate)
	if len(inv) != 1 || inv[0] != pressio.InvalidateErrorAgnostic {
		t.Errorf("default invalidation = %v", inv)
	}
	opts := pressio.Options{}
	opts.Set(OptExternalInvalidate, []string{pressio.OptAbs, pressio.InvalidateErrorDependent})
	m.SetOptions(opts)
	inv, _ = m.Configuration().GetStrings(pressio.CfgInvalidate)
	if len(inv) != 2 || inv[0] != pressio.OptAbs {
		t.Errorf("override invalidation = %v", inv)
	}
	bad := pressio.Options{}
	bad.Set(OptExternalTimeoutMS, 0)
	if err := m.SetOptions(bad); err == nil {
		t.Error("zero timeout accepted")
	}
}

// TestExternalOptionsGolden pins the opthash digest of a configured
// External metric's Options(). The digest changed when Options() was
// audited against the struct: Invalidate and Abs previously fell out of
// the option map, so two runs differing only in invalidation override or
// error bound collapsed onto one checkpoint key. Including them orphans
// old external-metric checkpoint entries once — deliberately (see
// CHANGES.md); treat any further diff here as a breaking change.
func TestExternalOptionsGolden(t *testing.T) {
	m := &External{}
	opts := pressio.Options{}
	opts.Set(OptExternalCommand, "/usr/bin/env")
	opts.Set(OptExternalArgs, []string{"python3", "metric.py"})
	opts.Set(OptExternalInvalidate, []string{pressio.InvalidateErrorDependent})
	opts.Set(OptExternalTimeoutMS, 1500)
	opts.Set(pressio.OptAbs, 1e-4)
	if err := m.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	const golden = "4b57251c02958132601e8d06fac87020af366ebe92b1ecdc99de05dfa7863b0f"
	if got := opthash.HashString(m.Options()); got != golden {
		t.Errorf("External options hash drifted:\n got %s\nwant %s", got, golden)
	}
	for _, key := range []string{OptExternalCommand, OptExternalArgs,
		OptExternalInvalidate, OptExternalTimeoutMS, pressio.OptAbs} {
		if _, ok := m.Options()[key]; !ok {
			t.Errorf("Options() lost key %s", key)
		}
	}
}
