package metrics

import (
	"errors"
	"math"
	"testing"

	_ "repro/internal/compressor/sz3"
	"repro/internal/hurricane"
	"repro/internal/pressio"
)

var testDims = []int{8, 16, 16}

func field(t *testing.T, name string) *pressio.Data {
	t.Helper()
	d, err := hurricane.Field(name, 20, testDims)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllMetricsRegistered(t *testing.T) {
	for _, name := range []string{"stat", "entropy", "quantized_entropy", "variogram",
		"svd_trunc", "spatial", "distortion", "size", "error_stat"} {
		m, err := pressio.GetMetric(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("%s: Name() = %q", name, m.Name())
		}
		inv, ok := m.Configuration().GetStrings(pressio.CfgInvalidate)
		if !ok || len(inv) == 0 {
			t.Errorf("%s: missing %s metadata", name, pressio.CfgInvalidate)
		}
	}
}

func TestStatValues(t *testing.T) {
	m := &Stat{}
	d := pressio.FromFloat32([]float32{0, 0, 2, 4}, 4)
	m.BeginCompress(d)
	r := m.Results()
	if v, _ := r.GetFloat("stat:range"); v != 4 {
		t.Errorf("range = %v", v)
	}
	if v, _ := r.GetFloat("stat:sparsity"); v != 0.5 {
		t.Errorf("sparsity = %v", v)
	}
	if v, _ := r.GetFloat("stat:mean"); v != 1.5 {
		t.Errorf("mean = %v", v)
	}
}

func TestQuantizedEntropyRespondsToBound(t *testing.T) {
	d := field(t, "P")
	loose := &QuantizedEntropy{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1.0)
	loose.SetOptions(opts)
	loose.BeginCompress(d)
	lv, _ := loose.Results().GetFloat("quantized_entropy:bits")

	tight := &QuantizedEntropy{}
	opts.Set(pressio.OptAbs, 1e-6)
	tight.SetOptions(opts)
	tight.BeginCompress(d)
	tv, _ := tight.Results().GetFloat("quantized_entropy:bits")
	if lv >= tv {
		t.Errorf("loose bound entropy %v should be below tight %v", lv, tv)
	}
}

func TestSpatialDistinguishesFields(t *testing.T) {
	sm := &Spatial{}
	sm.BeginCompress(field(t, "P"))
	pSmooth, _ := sm.Results().GetFloat("spatial:smoothness")
	sm.BeginCompress(field(t, "W"))
	wSmooth, _ := sm.Results().GetFloat("spatial:smoothness")
	if pSmooth <= wSmooth {
		t.Errorf("P smoothness %v should exceed W %v", pSmooth, wSmooth)
	}
	sm.BeginCompress(field(t, "QRAIN"))
	qDiv, _ := sm.Results().GetFloat("spatial:diversity")
	sm.BeginCompress(field(t, "P"))
	pDiv, _ := sm.Results().GetFloat("spatial:diversity")
	if qDiv <= pDiv {
		t.Errorf("sparse QRAIN diversity %v should exceed dense P %v", qDiv, pDiv)
	}
}

func TestDistortionMetric(t *testing.T) {
	m := &Distortion{}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 0.5)
	m.SetOptions(opts)
	d := pressio.FromFloat32([]float32{0, 16}, 2)
	m.BeginCompress(d)
	v, _ := m.Results().GetFloat("distortion:general")
	if math.Abs(v-4) > 1e-9 {
		t.Errorf("distortion = %v, want 4 (log2(16/1))", v)
	}
}

func TestSizeAndErrorStatThroughGroup(t *testing.T) {
	comp, err := pressio.GetCompressor("sz3")
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	g, err := pressio.NewMetricsGroup(comp, "size", "error_stat")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	in := field(t, "TC")
	compressed, err := g.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	out := pressio.New(in.DType(), in.Dims()...)
	if err := g.Decompress(compressed, out); err != nil {
		t.Fatal(err)
	}
	r := g.Results()
	cr, ok := r.GetFloat("size:compression_ratio")
	if !ok || cr <= 1 {
		t.Errorf("compression_ratio = %v, %v", cr, ok)
	}
	maxErr, ok := r.GetFloat("error_stat:max_error")
	if !ok || maxErr > 1e-3 || maxErr <= 0 {
		t.Errorf("max_error = %v, %v", maxErr, ok)
	}
	if _, ok := r.GetFloat("error_stat:psnr"); !ok {
		t.Error("missing psnr")
	}
	if _, ok := r.GetFloat("time:compress"); !ok {
		t.Error("missing compressor timing")
	}
}

func TestSizeHandlesCompressError(t *testing.T) {
	m := &Size{}
	m.EndCompress(pressio.NewFloat32(4), nil, errors.New("boom"))
	if v, ok := m.Results().GetBool("size:error"); !ok || !v {
		t.Error("size should record the failure")
	}
}

func TestErrorStatHandlesMismatch(t *testing.T) {
	m := &ErrorStat{}
	m.BeginCompress(pressio.NewFloat32(4))
	m.EndDecompress(nil, pressio.NewFloat32(2), nil)
	if v, ok := m.Results().GetBool("error_stat:error"); !ok || !v {
		t.Error("error_stat should record the mismatch")
	}
}

func TestVariogramMetric(t *testing.T) {
	m := &Variogram{}
	m.BeginCompress(field(t, "P"))
	r := m.Results()
	g1, ok := r.GetFloat("variogram:gamma1")
	if !ok || g1 < 0 {
		t.Errorf("gamma1 = %v, %v", g1, ok)
	}
	if _, ok := r.GetFloat("variogram:slope"); !ok {
		t.Error("missing slope")
	}
}

func TestSVDTruncMetric(t *testing.T) {
	m := &SVDTrunc{}
	m.BeginCompress(field(t, "P"))
	r := m.Results()
	frac, ok := r.GetFloat("svd_trunc:fraction")
	if !ok || frac <= 0 || frac > 1 {
		t.Errorf("fraction = %v, %v", frac, ok)
	}
	// smooth P needs less rank than noisy W
	m.BeginCompress(field(t, "W"))
	wFrac, _ := m.Results().GetFloat("svd_trunc:fraction")
	if frac >= wFrac {
		t.Errorf("P rank fraction %v should be below W %v", frac, wFrac)
	}
}

func TestEntropyBinsOption(t *testing.T) {
	m := &Entropy{}
	o := pressio.Options{}
	o.Set("entropy:bins", 16)
	m.SetOptions(o)
	if v, _ := m.Options().GetInt("entropy:bins"); v != 16 {
		t.Errorf("bins = %v", v)
	}
	m.BeginCompress(field(t, "U"))
	h, ok := m.Results().GetFloat("entropy:shannon")
	if !ok || h <= 0 || h > 4 {
		t.Errorf("entropy with 16 bins = %v (must be in (0, 4])", h)
	}
}
