package metrics

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/pressio"
)

// Option keys of the external metric.
const (
	// OptExternalCommand is the executable to run ("external:command").
	OptExternalCommand = "external:command"
	// OptExternalArgs are extra arguments ("external:args").
	OptExternalArgs = "external:args"
	// OptExternalInvalidate overrides the invalidation metadata the
	// external program's results carry ("external:invalidate"); defaults
	// to error-agnostic.
	OptExternalInvalidate = "external:invalidate"
	// OptExternalTimeoutMS bounds the subprocess runtime
	// ("external:timeout_ms", default 30000).
	OptExternalTimeoutMS = "external:timeout_ms"
)

func init() {
	pressio.RegisterMetric("external", func() pressio.Metric { return &External{} })
}

// External is the external-metrics framework of LibPressio (paper §4.2):
// it lets users write metrics in any language by running a subprocess per
// observation, "at the cost of some overhead".
//
// Protocol: the uncompressed buffer is streamed to the program's stdin as
// raw little-endian values; buffer metadata arrives in the environment
// (PRESSIO_DTYPE, PRESSIO_DIMS as comma-separated ints, PRESSIO_ABS). The
// program prints one result per stdout line as "key value" with a numeric
// value; keys without a colon are namespaced under "external:".
type External struct {
	pressio.BaseMetric
	Command    string
	Args       []string
	Invalidate []string
	TimeoutMS  int64
	Abs        float64

	results pressio.Options
}

// Name implements pressio.Metric.
func (*External) Name() string { return "external" }

// Configuration implements pressio.Metric.
func (m *External) Configuration() pressio.Options {
	o := pressio.Options{}
	inv := m.Invalidate
	if len(inv) == 0 {
		inv = []string{pressio.InvalidateErrorAgnostic}
	}
	o.Set(pressio.CfgInvalidate, inv)
	return o
}

// SetOptions implements pressio.Metric.
func (m *External) SetOptions(o pressio.Options) error {
	if v, ok := o.GetString(OptExternalCommand); ok {
		m.Command = v
	}
	if v, ok := o.GetStrings(OptExternalArgs); ok {
		m.Args = v
	}
	if v, ok := o.GetStrings(OptExternalInvalidate); ok {
		m.Invalidate = v
	}
	if v, ok := o.GetInt(OptExternalTimeoutMS); ok {
		if v < 1 {
			return fmt.Errorf("external: timeout %d ms must be positive", v)
		}
		m.TimeoutMS = v
	}
	if v, ok := o.GetFloat(pressio.OptAbs); ok {
		m.Abs = v
	}
	return nil
}

// Options implements pressio.Metric.
func (m *External) Options() pressio.Options {
	o := pressio.Options{}
	o.Set(OptExternalCommand, m.Command)
	o.Set(OptExternalArgs, append([]string(nil), m.Args...))
	o.Set(OptExternalInvalidate, append([]string(nil), m.Invalidate...))
	o.Set(OptExternalTimeoutMS, m.timeout())
	o.Set(pressio.OptAbs, m.Abs)
	return o
}

func (m *External) timeout() int64 {
	if m.TimeoutMS <= 0 {
		return 30000
	}
	return m.TimeoutMS
}

// BeginCompress implements pressio.Metric: run the external program over
// the input and collect its key/value results.
func (m *External) BeginCompress(in *pressio.Data) {
	r := pressio.Options{}
	defer func() { m.results = r }()
	if m.Command == "" {
		r.Set("external:error", "no command configured")
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(m.timeout())*time.Millisecond)
	defer cancel()
	cmd := exec.CommandContext(ctx, m.Command, m.Args...)
	// don't wait on grandchildren holding the output pipe after a kill
	cmd.WaitDelay = 250 * time.Millisecond

	dims := make([]string, len(in.Dims()))
	for i, d := range in.Dims() {
		dims[i] = strconv.Itoa(d)
	}
	cmd.Env = append(cmd.Environ(),
		"PRESSIO_DTYPE="+in.DType().String(),
		"PRESSIO_DIMS="+strings.Join(dims, ","),
		"PRESSIO_ABS="+strconv.FormatFloat(m.Abs, 'g', -1, 64),
	)
	cmd.Stdin = bytes.NewReader(rawPayload(in))
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		r.Set("external:error", err.Error())
		return
	}

	scanner := bufio.NewScanner(&stdout)
	parsed := 0
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) != 2 {
			continue
		}
		value, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		key := fields[0]
		if !strings.Contains(key, ":") {
			key = "external:" + key
		}
		r.Set(key, value)
		parsed++
	}
	if parsed == 0 {
		r.Set("external:error", "program produced no parsable results")
	}
}

// rawPayload renders the buffer as raw little-endian values, the layout
// external programs expect (same as the .f32/.f64 on-disk convention).
func rawPayload(in *pressio.Data) []byte {
	out := make([]byte, 0, in.ByteSize())
	switch in.DType() {
	case pressio.DTypeFloat32:
		for _, v := range in.Float32() {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
	case pressio.DTypeFloat64:
		for _, v := range in.Float64() {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case pressio.DTypeByte:
		out = append(out, in.Bytes()...)
	default:
		for i := 0; i < in.Len(); i++ {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(in.At(i)))
		}
	}
	return out
}

// Results implements pressio.Metric.
func (m *External) Results() pressio.Options { return m.results.Clone() }
