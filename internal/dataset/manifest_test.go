package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildSmall(t *testing.T, dir string, seed uint64) *Manifest {
	t.Helper()
	m, cached, err := BuildCorpus(dir, []string{"P", "CLOUD"}, 2, []int{4, 4, 4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("fresh directory reported a cache hit")
	}
	return m
}

func TestBuildCorpusWritesManifest(t *testing.T) {
	dir := t.TempDir()
	m := buildSmall(t, dir, 0)
	if len(m.Entries) != 4 {
		t.Fatalf("2 fields x 2 steps should give 4 entries, got %d", len(m.Entries))
	}
	for _, e := range m.Entries {
		if e.Bytes != 4*4*4*4 {
			t.Errorf("%s: %d bytes, want %d", e.File, e.Bytes, 4*4*4*4)
		}
		if len(e.SHA256) != 64 {
			t.Errorf("%s: digest %q is not hex sha256", e.File, e.SHA256)
		}
	}
	// the manifest must round-trip and verify against the files
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SpecMatches([]string{"P", "CLOUD"}, 2, []int{4, 4, 4}, 0) {
		t.Errorf("round-tripped manifest lost its spec: %+v", got)
	}
	if err := got.Verify(dir); err != nil {
		t.Errorf("fresh corpus fails its own manifest: %v", err)
	}
	// the corpus loads through the folder pipeline
	f, err := NewFolder(dir, "*.f32")
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Errorf("folder sees %d entries, want 4", f.Len())
	}
}

func TestBuildCorpusCacheHit(t *testing.T) {
	dir := t.TempDir()
	first := buildSmall(t, dir, 3)
	m, cached, err := BuildCorpus(dir, []string{"P", "CLOUD"}, 2, []int{4, 4, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("identical spec did not reuse the corpus")
	}
	if m.TotalBytes() != first.TotalBytes() {
		t.Errorf("cached manifest drifted: %d vs %d bytes", m.TotalBytes(), first.TotalBytes())
	}
}

func TestBuildCorpusSpecChangeRegenerates(t *testing.T) {
	dir := t.TempDir()
	buildSmall(t, dir, 0)
	// a different seed is a different corpus: same shape, different bytes
	m2, cached, err := BuildCorpus(dir, []string{"P", "CLOUD"}, 2, []int{4, 4, 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("seed change served the stale corpus")
	}
	if err := m2.Verify(dir); err != nil {
		t.Fatalf("regenerated corpus fails its manifest: %v", err)
	}
}

func TestBuildCorpusSeedChangesBytes(t *testing.T) {
	m0 := buildSmall(t, t.TempDir(), 0)
	m1 := buildSmall(t, t.TempDir(), 1)
	same := 0
	for i := range m0.Entries {
		if m0.Entries[i].SHA256 == m1.Entries[i].SHA256 {
			same++
		}
	}
	// dense fields must differ byte-wise under a different seed; fully
	// sparse 4x4x4 CLOUD timesteps may legitimately hash equal (all-zero)
	if same == len(m0.Entries) {
		t.Error("seeds 0 and 1 produced byte-identical corpora")
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	m0 := buildSmall(t, t.TempDir(), 5)
	m1 := buildSmall(t, t.TempDir(), 5)
	for i := range m0.Entries {
		if m0.Entries[i].SHA256 != m1.Entries[i].SHA256 {
			t.Errorf("%s: same seed, different bytes", m0.Entries[i].File)
		}
	}
}

func TestBuildCorpusTamperDetected(t *testing.T) {
	dir := t.TempDir()
	m := buildSmall(t, dir, 0)
	path := filepath.Join(dir, m.Entries[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(dir); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("bit flip not caught by Verify: %v", err)
	}
	// BuildCorpus over the tampered corpus must refuse, not silently reuse
	// or rebuild
	if _, _, err := BuildCorpus(dir, []string{"P", "CLOUD"}, 2, []int{4, 4, 4}, 0); err == nil {
		t.Fatal("BuildCorpus accepted a corpus that fails its own manifest")
	}
}

func TestManifestSpecMatches(t *testing.T) {
	m := &Manifest{Fields: []string{"P"}, Steps: 2, Dims: []int{4, 4, 4}, Seed: 1}
	if !m.SpecMatches([]string{"P"}, 2, []int{4, 4, 4}, 1) {
		t.Error("identical spec rejected")
	}
	for _, bad := range []bool{
		m.SpecMatches([]string{"TC"}, 2, []int{4, 4, 4}, 1),
		m.SpecMatches([]string{"P"}, 3, []int{4, 4, 4}, 1),
		m.SpecMatches([]string{"P"}, 2, []int{8, 4, 4}, 1),
		m.SpecMatches([]string{"P"}, 2, []int{4, 4, 4}, 2),
		m.SpecMatches([]string{"P", "TC"}, 2, []int{4, 4, 4}, 1),
	} {
		if bad {
			t.Error("differing spec accepted")
		}
	}
}
