package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hurricane"
	"repro/internal/pressio"
)

func synth(t *testing.T) *Synthetic {
	t.Helper()
	s, err := NewSynthetic([]string{"P", "CLOUD"}, 3, []int{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSyntheticBasics(t *testing.T) {
	s := synth(t)
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	m, err := s.LoadMetadata(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "P.t00" || m.DType != pressio.DTypeFloat32 {
		t.Errorf("metadata = %+v", m)
	}
	if m.Elements() != 4*8*8 || m.ByteSize() != 4*8*8*4 {
		t.Errorf("Elements/ByteSize wrong: %d/%d", m.Elements(), m.ByteSize())
	}
	d, err := s.LoadData(1) // CLOUD.t00
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != m.Elements() {
		t.Errorf("data size %d != metadata %d", d.Len(), m.Elements())
	}
	if _, err := s.LoadData(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.LoadMetadata(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(nil, 0, []int{4, 4, 4}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewSynthetic(nil, 2, []int{4, 4}); err == nil {
		t.Error("2-D dims accepted")
	}
	s, err := NewSynthetic(nil, 2, []int{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2*len(hurricane.FieldNames) {
		t.Errorf("nil fields should select all 13: Len=%d", s.Len())
	}
}

func TestSyntheticLoadAll(t *testing.T) {
	s := synth(t)
	metas, err := s.LoadMetadataAll()
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.LoadDataAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 6 || len(all) != 6 {
		t.Fatalf("batch lengths %d/%d", len(metas), len(all))
	}
}

func TestFolderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := synth(t)
	for i := 0; i < src.Len(); i++ {
		m, _ := src.LoadMetadata(i)
		d, _ := src.LoadData(i)
		if _, err := WriteRaw(dir, m.Name, d); err != nil {
			t.Fatal(err)
		}
	}
	// an unrelated file that must be skipped by the pattern
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := NewFolder(dir, "*.f32")
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != src.Len() {
		t.Fatalf("folder found %d entries, want %d", f.Len(), src.Len())
	}
	m, err := f.LoadMetadata(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Dims) != 3 || m.Dims[0] != 4 || m.Dims[1] != 8 || m.Dims[2] != 8 {
		t.Errorf("parsed dims = %v", m.Dims)
	}
	got, err := f.LoadData(0)
	if err != nil {
		t.Fatal(err)
	}
	// entries are name-sorted: CLOUD.t00 first
	want, _ := src.LoadData(1)
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestFolderPdat(t *testing.T) {
	dir := t.TempDir()
	d := pressio.NewFloat64(3, 5)
	for i := 0; i < d.Len(); i++ {
		d.Set(i, float64(i)*1.5)
	}
	raw, _ := d.MarshalBinary()
	if err := os.WriteFile(filepath.Join(dir, "matrix.pdat"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := NewFolder(dir, "*.pdat")
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
	m, _ := f.LoadMetadata(0)
	if m.Name != "matrix" || m.DType != pressio.DTypeFloat64 || m.Dims[0] != 3 || m.Dims[1] != 5 {
		t.Errorf("pdat metadata = %+v", m)
	}
	got, err := f.LoadData(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(4) != 6.0 {
		t.Errorf("payload wrong: %v", got.At(4))
	}
}

func TestFolderRejectsBadNames(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "nodims.f32"), []byte{0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFolder(dir, "*.f32"); err == nil {
		t.Error("file without dims suffix accepted")
	}
	if _, err := NewFolder(dir+"/missing", "*"); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestFolderSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	// claims 4x4 f32 = 64 bytes but holds 8
	if err := os.WriteFile(filepath.Join(dir, "bad_4x4.f32"), make([]byte, 8), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := NewFolder(dir, "*.f32")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadData(0); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCacheMemoryTier(t *testing.T) {
	s := synth(t)
	c, err := NewCache(s, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadData(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadData(0); err != nil {
		t.Fatal(err)
	}
	mem, disk, miss := c.Stats()
	if mem != 1 || disk != 0 || miss != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/0/1", mem, disk, miss)
	}
}

func TestCacheEviction(t *testing.T) {
	s := synth(t)
	one, _ := s.LoadData(0)
	c, err := NewCache(s, one.ByteSize()+1, "") // fits exactly one entry
	if err != nil {
		t.Fatal(err)
	}
	c.LoadData(0)
	c.LoadData(1) // evicts 0
	c.LoadData(0) // miss again
	_, _, miss := c.Stats()
	if miss != 3 {
		t.Errorf("misses = %d, want 3 (eviction)", miss)
	}
}

func TestCacheDiskTier(t *testing.T) {
	s := synth(t)
	dir := t.TempDir()
	c, err := NewCache(s, 0, dir) // no memory tier: everything spills
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.LoadData(2)
	got, err := c.LoadData(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatal("first load mismatch")
		}
	}
	got2, err := c.LoadData(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Len(); i++ {
		if got2.At(i) != want.At(i) {
			t.Fatal("disk-tier load mismatch")
		}
	}
	_, disk, miss := c.Stats()
	if disk != 1 || miss != 1 {
		t.Errorf("disk/miss = %d/%d, want 1/1", disk, miss)
	}
}

func TestCacheRestartHitsDisk(t *testing.T) {
	// a new Cache over the same spill dir serves from disk, the restart
	// acceleration Figure 2 describes
	s := synth(t)
	dir := t.TempDir()
	c1, _ := NewCache(s, 0, dir)
	c1.LoadData(3)
	c2, _ := NewCache(s, 1<<20, dir)
	if _, err := c2.LoadData(3); err != nil {
		t.Fatal(err)
	}
	_, disk, miss := c2.Stats()
	if disk != 1 || miss != 0 {
		t.Errorf("restart disk/miss = %d/%d, want 1/0", disk, miss)
	}
}

func TestSamplerSubset(t *testing.T) {
	s := synth(t)
	sm, err := NewSampler(s, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Len() != 3 {
		t.Errorf("Len = %d, want 3 (ceil(6*0.5))", sm.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < sm.Len(); i++ {
		inner := sm.InnerIndex(i)
		if inner < 0 || inner >= s.Len() || seen[inner] {
			t.Errorf("bad inner index %d", inner)
		}
		seen[inner] = true
		m, err := sm.LoadMetadata(i)
		if err != nil {
			t.Fatal(err)
		}
		wm, _ := s.LoadMetadata(inner)
		if m.Name != wm.Name {
			t.Errorf("metadata routed wrong: %s != %s", m.Name, wm.Name)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := synth(t)
	a, _ := NewSampler(s, 0.5, 7)
	b, _ := NewSampler(s, 0.5, 7)
	for i := 0; i < a.Len(); i++ {
		if a.InnerIndex(i) != b.InnerIndex(i) {
			t.Fatal("sampler not deterministic for equal seeds")
		}
	}
	c, _ := NewSampler(s, 0.5, 8)
	diff := false
	for i := 0; i < a.Len(); i++ {
		if a.InnerIndex(i) != c.InnerIndex(i) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds gave identical samples (suspicious)")
	}
}

func TestSamplerValidation(t *testing.T) {
	s := synth(t)
	if _, err := NewSampler(s, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := NewSampler(s, 1.5, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	sm, _ := NewSampler(s, 1.0, 1)
	if sm.Len() != s.Len() {
		t.Errorf("full sample Len = %d, want %d", sm.Len(), s.Len())
	}
}

func TestPipelineStack(t *testing.T) {
	// folder → cache → sampler, the full Figure-2 stack
	dir := t.TempDir()
	src := synth(t)
	for i := 0; i < src.Len(); i++ {
		m, _ := src.LoadMetadata(i)
		d, _ := src.LoadData(i)
		WriteRaw(dir, m.Name, d)
	}
	folder, err := NewFolder(dir, "*.f32")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(folder, 1<<20, filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := NewSampler(cache, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sampled.Len(); i++ {
		if _, err := sampled.LoadData(i); err != nil {
			t.Fatal(err)
		}
	}
	opts := sampled.Options()
	if _, ok := opts.GetString("folder:dir"); !ok {
		t.Error("stacked options should include inner loader settings")
	}
	if _, ok := opts.GetFloat("sample:fraction"); !ok {
		t.Error("stacked options should include sampler settings")
	}
}

func TestPluginNamesAndBatchMethods(t *testing.T) {
	dir := t.TempDir()
	src := synth(t)
	for i := 0; i < src.Len(); i++ {
		m, _ := src.LoadMetadata(i)
		d, _ := src.LoadData(i)
		WriteRaw(dir, m.Name, d)
	}
	folder, err := NewFolder(dir, "*.f32")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(folder, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := NewSampler(cache, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	names := map[Plugin]string{folder: "folder", cache: "cache", sampler: "sample"}
	for p, want := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
		if err := p.SetOptions(pressio.Options{}); err != nil {
			t.Errorf("%s: SetOptions: %v", want, err)
		}
		metas, err := p.LoadMetadataAll()
		if err != nil || len(metas) != p.Len() {
			t.Errorf("%s: LoadMetadataAll = %d entries, err %v", want, len(metas), err)
		}
		all, err := p.LoadDataAll()
		if err != nil || len(all) != p.Len() {
			t.Errorf("%s: LoadDataAll = %d entries, err %v", want, len(all), err)
		}
	}
	// cache delegates metadata to the inner loader
	m, err := cache.LoadMetadata(0)
	if err != nil {
		t.Fatal(err)
	}
	fm, _ := folder.LoadMetadata(0)
	if m.Name != fm.Name {
		t.Errorf("cache metadata %q != folder %q", m.Name, fm.Name)
	}
}

func TestWriteRawRejectsIntData(t *testing.T) {
	if _, err := WriteRaw(t.TempDir(), "x", pressio.NewInt32(4)); err == nil {
		t.Error("WriteRaw should reject integer data")
	}
}

func TestFolderFloat64RoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := pressio.NewFloat64(3, 4)
	for i := 0; i < d.Len(); i++ {
		d.Set(i, float64(i)*0.5)
	}
	if _, err := WriteRaw(dir, "dbl", d); err != nil {
		t.Fatal(err)
	}
	f, err := NewFolder(dir, "*.f64")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.LoadData(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.DType() != pressio.DTypeFloat64 || got.At(5) != 2.5 {
		t.Errorf("f64 round trip wrong: %v %v", got.DType(), got.At(5))
	}
}

func TestCacheOversizeEntryServesThrough(t *testing.T) {
	s := synth(t)
	c, err := NewCache(s, 1, "") // capacity smaller than any entry
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadData(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadData(0); err != nil {
		t.Fatal(err)
	}
	_, _, miss := c.Stats()
	if miss != 2 {
		t.Errorf("oversize entries should never cache: misses = %d", miss)
	}
}
