package dataset

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/hurricane"
	"repro/internal/pressio"
)

// TieredCache is the paper's loader → local_cache tier rebuilt for the
// serving hot path: a byte-budgeted, refcounted cache of hurricane field
// buffers keyed by (field, step, dims), with an mmap-backed disk tier.
//
// Three properties distinguish it from the Plugin-shaped Cache above:
//
//   - Identity. Every concurrent Acquire of the same cell observes the
//     SAME *pressio.Data pointer, which is what lets stats.SummaryOf's
//     (pointer, version)-keyed derived-value cache share one summary pass
//     across requests — the cross-request amortization §4.1 of the paper
//     argues prediction cost rests on.
//   - Zero-copy reload. Spilled cells are raw little-endian .f32 files in
//     the exact corpus naming convention of WriteRaw/BuildCorpus
//     ("P.t07_8x8x8.f32"), so a spill file's digest equals the corpus
//     manifest's digest for the same cell. Reload mmaps the file
//     read-only and reinterprets it in place; a SHA-256 sidecar written
//     at spill time is re-verified on every reload, so a torn or
//     tampered spill is regenerated instead of served.
//   - Refcounts. Data may be mmap-backed, so "evicted" cannot mean
//     "garbage collected eventually": handles pin the mapping, and the
//     region is unmapped only when the entry has left the cache and the
//     last Handle is released.
//
// Loads of the same cell are single-flighted: concurrent Acquires share
// one synthesis/mmap.
type TieredCache struct {
	capacity int64
	spillDir string
	loader   func(field string, step int, dims []int) (*pressio.Data, error)

	mu      sync.Mutex
	entries map[tieredKey]*tieredEntry
	lru     *list.List // of *tieredEntry, front = most recent
	used    int64      // resident payload bytes across lru members
	mapped  int64      // live mmap-backed bytes (resident or handle-pinned)

	memHits, diskHits, misses, evictions uint64
}

// TieredConfig configures NewTiered; the zero Loader synthesizes
// canonical (seed 0) hurricane fields, matching what BuildCorpus writes
// at seed 0.
type TieredConfig struct {
	// CapacityBytes bounds resident payload bytes in the memory tier.
	CapacityBytes int64
	// SpillDir enables the disk tier when non-empty.
	SpillDir string
	// Loader regenerates a cell on a full miss (default hurricane.Field).
	Loader func(field string, step int, dims []int) (*pressio.Data, error)
}

// TieredStats is the cache's observable state, shaped for /statz.
type TieredStats struct {
	MemHits       uint64 `json:"mem_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	ResidentBytes int64  `json:"resident_bytes"`
	MappedBytes   int64  `json:"mapped_bytes"`
}

type tieredKey struct {
	field      string
	step       int
	d0, d1, d2 int
}

type tieredEntry struct {
	key   tieredKey
	ready chan struct{} // closed when the load settles
	err   error

	// set before ready closes, immutable afterwards
	data     *pressio.Data
	raw      []byte // backing bytes when reloaded from disk
	isMapped bool   // raw needs unmapRaw when the entry dies
	bytes    int64

	// guarded by TieredCache.mu
	refs int           // outstanding handles (the loader holds one)
	elem *list.Element // LRU membership; nil once evicted or unmanaged
}

// NewTiered builds the cache, creating the spill directory if needed.
func NewTiered(cfg TieredConfig) (*TieredCache, error) {
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("dataset: tiered: negative capacity")
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("dataset: tiered: %w", err)
		}
	}
	loader := cfg.Loader
	if loader == nil {
		loader = hurricane.Field
	}
	return &TieredCache{
		capacity: cfg.CapacityBytes,
		spillDir: cfg.SpillDir,
		loader:   loader,
		entries:  map[tieredKey]*tieredEntry{},
		lru:      list.New(),
	}, nil
}

// Handle pins one cell of the cache. Data stays valid until Release;
// Release is idempotent. Do not retain the Data pointer past Release —
// for mmap-backed cells the backing region is unmapped once the entry is
// both evicted and unpinned.
type Handle struct {
	c    *TieredCache
	e    *tieredEntry
	once sync.Once
}

// Data returns the pinned buffer.
func (h *Handle) Data() *pressio.Data { return h.e.data }

// Release unpins the cell.
func (h *Handle) Release() { h.once.Do(func() { h.c.release(h.e) }) }

// Acquire pins (field, step, dims), loading through the tiers on a miss:
// memory, then the mmap disk tier, then the loader. dims must be 3-D
// (the hurricane grid). Concurrent Acquires of an in-flight cell share
// the load and count as memory hits.
func (c *TieredCache) Acquire(field string, step int, dims []int) (*Handle, error) {
	if len(dims) != 3 {
		return nil, fmt.Errorf("dataset: tiered: want 3 dims, got %v", dims)
	}
	k := tieredKey{field: field, step: step, d0: dims[0], d1: dims[1], d2: dims[2]}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.release(e)
			return nil, e.err
		}
		c.mu.Lock()
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.memHits++
		c.mu.Unlock()
		return &Handle{c: c, e: e}, nil
	}
	e := &tieredEntry{key: k, ready: make(chan struct{}), refs: 1}
	c.entries[k] = e
	c.mu.Unlock()

	c.load(e, field, step, dims)
	if e.err != nil {
		c.release(e)
		return nil, e.err
	}
	return &Handle{c: c, e: e}, nil
}

// load settles an entry outside the lock (synthesis can take tens of
// milliseconds), then admits it under the lock.
func (c *TieredCache) load(e *tieredEntry, field string, step int, dims []int) {
	data, raw, isMapped, fromDisk, err := c.loadTiers(field, step, dims)
	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, e.key)
	} else {
		e.data, e.raw, e.isMapped = data, raw, isMapped
		e.bytes = int64(data.ByteSize())
		if e.isMapped {
			c.mapped += int64(len(e.raw))
		}
		if fromDisk {
			c.diskHits++
		} else {
			c.misses++
		}
		c.admit(e)
	}
	c.mu.Unlock()
	close(e.ready)
}

// admit inserts a loaded entry into the memory tier, evicting from the
// LRU tail to fit. An entry larger than the whole tier is served
// unmanaged: it leaves the map at once and dies with its last handle.
// Called with c.mu held.
func (c *TieredCache) admit(e *tieredEntry) {
	if e.bytes > c.capacity {
		delete(c.entries, e.key)
		return
	}
	for c.used+e.bytes > c.capacity && c.lru.Len() > 0 {
		victim := c.lru.Back().Value.(*tieredEntry)
		c.lru.Remove(victim.elem)
		victim.elem = nil
		delete(c.entries, victim.key)
		c.used -= victim.bytes
		c.evictions++
		if victim.refs == 0 {
			c.free(victim)
		}
	}
	e.elem = c.lru.PushFront(e)
	c.used += e.bytes
}

// release drops one handle reference; the last reference on an entry
// that has left the cache frees its backing.
func (c *TieredCache) release(e *tieredEntry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && e.elem == nil {
		c.free(e)
	}
	c.mu.Unlock()
}

// free returns an entry's backing storage. Called with c.mu held; munmap
// is a fast syscall, so holding the lock across it is fine.
func (c *TieredCache) free(e *tieredEntry) {
	if e.isMapped {
		c.mapped -= int64(len(e.raw))
		unmapRaw(e.raw)
		e.isMapped = false
	}
	e.raw = nil
	e.data = nil
}

// Stats snapshots the tier counters.
func (c *TieredCache) Stats() TieredStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TieredStats{
		MemHits:       c.memHits,
		DiskHits:      c.diskHits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		ResidentBytes: c.used,
		MappedBytes:   c.mapped,
	}
}

// loadTiers reads through disk then loader, spilling loader results.
func (c *TieredCache) loadTiers(field string, step int, dims []int) (data *pressio.Data, raw []byte, isMapped, fromDisk bool, err error) {
	if c.spillDir != "" {
		if d, m, mp, ok := c.readSpillTier(field, step, dims); ok {
			return d, m, mp, true, nil
		}
	}
	d, err := c.loader(field, step, dims)
	if err != nil {
		return nil, nil, false, false, err
	}
	if c.spillDir != "" {
		// spill failures degrade the disk tier, not the request: the
		// loaded buffer is still correct, the next miss just regenerates
		_ = c.writeSpillTier(field, step, d)
	}
	return d, nil, false, false, nil
}

// spillName is the on-disk base name of a spilled cell — identical to
// what BuildCorpus writes through WriteRaw for the same cell, so spill
// digests can be pinned against a corpus manifest.
func spillName(field string, step int, dims []int) string {
	return fmt.Sprintf("%s.t%02d_%dx%dx%d.f32", field, step, dims[0], dims[1], dims[2])
}

// readSpillTier reloads a spilled cell via mmap, verifying its SHA-256
// sidecar byte-for-byte. Any inconsistency (missing sidecar, size drift,
// digest drift — e.g. a write torn by a crash) deletes the pair and
// reports a miss so the cell regenerates.
func (c *TieredCache) readSpillTier(field string, step int, dims []int) (*pressio.Data, []byte, bool, bool) {
	path := filepath.Join(c.spillDir, spillName(field, step, dims))
	want, err := os.ReadFile(path + ".sha256")
	if err != nil {
		return nil, nil, false, false
	}
	n := dims[0] * dims[1] * dims[2]
	fl, raw, isMapped, err := mapFloat32(path, n)
	if err != nil {
		c.dropSpill(path)
		return nil, nil, false, false
	}
	sum := sha256.Sum256(raw)
	if hex.EncodeToString(sum[:]) != strings.TrimSpace(string(want)) {
		if isMapped {
			unmapRaw(raw)
		}
		c.dropSpill(path)
		return nil, nil, false, false
	}
	return pressio.FromFloat32(fl, dims...), raw, isMapped, true
}

// writeSpillTier persists a cell through WriteRaw (the corpus writer, so
// bytes and naming match BuildCorpus exactly) and then its digest
// sidecar. Ordering makes a crash between the two safe: data without a
// sidecar is invisible to readSpillTier, and stale data under a fresh
// rewrite is caught by the digest.
func (c *TieredCache) writeSpillTier(field string, step int, d *pressio.Data) error {
	name := fmt.Sprintf("%s.t%02d", field, step)
	path, err := WriteRaw(c.spillDir, name, d)
	if err != nil {
		return err
	}
	rawBytes, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(rawBytes)
	return os.WriteFile(path+".sha256", []byte(hex.EncodeToString(sum[:])+"\n"), 0o644)
}

func (c *TieredCache) dropSpill(path string) {
	os.Remove(path)
	os.Remove(path + ".sha256")
}

// readFloat32 is the copying reload path: decode a raw little-endian
// .f32 file into a fresh slice. Used on platforms without mmap support
// and on big-endian hosts where in-place reinterpretation is wrong.
func readFloat32(path string, n int) ([]float32, []byte, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	if len(raw) != 4*n {
		return nil, nil, false, fmt.Errorf("dataset: %s is %d bytes, want %d", path, len(raw), 4*n)
	}
	fl := make([]float32, n)
	for i := range fl {
		fl[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return fl, raw, false, nil
}
