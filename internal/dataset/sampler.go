package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/pressio"
)

// Sampler wraps another Plugin and exposes a random subset of its entries.
// Because selection needs only metadata, the sampler can sit at the end of
// the Figure-2 pipeline and the upstream loaders still avoid reading the
// payloads of unselected entries (the property §4.1 calls out).
type Sampler struct {
	inner Plugin
	pick  []int // indices into inner, sorted
	seed  int64
	frac  float64
}

// NewSampler selects ceil(frac·N) entries of inner uniformly at random
// without replacement, deterministically from seed.
func NewSampler(inner Plugin, frac float64, seed int64) (*Sampler, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sampler: fraction %v outside (0, 1]", frac)
	}
	n := inner.Len()
	k := int(float64(n)*frac + 0.999999)
	if k > n {
		k = n
	}
	if k < 1 && n > 0 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:k]
	// keep inner order for locality-friendly access
	pick := append([]int(nil), perm...)
	for i := 1; i < len(pick); i++ {
		for j := i; j > 0 && pick[j] < pick[j-1]; j-- {
			pick[j], pick[j-1] = pick[j-1], pick[j]
		}
	}
	return &Sampler{inner: inner, pick: pick, seed: seed, frac: frac}, nil
}

// Name implements Plugin.
func (s *Sampler) Name() string { return "sample" }

// Len implements Plugin.
func (s *Sampler) Len() int { return len(s.pick) }

// InnerIndex maps a sampler index to the wrapped plugin's index.
func (s *Sampler) InnerIndex(i int) int { return s.pick[i] }

// LoadMetadata implements Plugin.
func (s *Sampler) LoadMetadata(i int) (Metadata, error) {
	if err := checkIndex(s, i); err != nil {
		return Metadata{}, err
	}
	return s.inner.LoadMetadata(s.pick[i])
}

// LoadData implements Plugin.
func (s *Sampler) LoadData(i int) (*pressio.Data, error) {
	if err := checkIndex(s, i); err != nil {
		return nil, err
	}
	return s.inner.LoadData(s.pick[i])
}

// LoadMetadataAll implements Plugin.
func (s *Sampler) LoadMetadataAll() ([]Metadata, error) { return loadMetadataAll(s) }

// LoadDataAll implements Plugin.
func (s *Sampler) LoadDataAll() ([]*pressio.Data, error) { return loadDataAll(s) }

// SetOptions implements Plugin, forwarding to the inner loader.
func (s *Sampler) SetOptions(o pressio.Options) error { return s.inner.SetOptions(o) }

// Options implements Plugin.
func (s *Sampler) Options() pressio.Options {
	o := s.inner.Options()
	o.Set("sample:fraction", s.frac)
	o.Set("sample:seed", s.seed)
	return o
}
