package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pressio"
)

// Folder walks a directory for data files matching a glob pattern and
// serves them through the extension-dispatching file loader — the
// folder_loader + io_loader pair of the paper's Figure 2.
//
// Two on-disk formats are understood, dispatched by extension as the
// paper's io_loader dispatches .bin vs .h5:
//
//   - name_D0xD1xD2.f32 / .f64 — raw little-endian arrays with the shape
//     and element type encoded in the file name (the convention used for
//     the SDRBench/Hurricane binaries).
//   - *.pdat — the self-describing pressio.Data binary encoding.
type Folder struct {
	dir     string
	pattern string
	entries []Metadata
}

// NewFolder scans dir for files matching pattern (a filepath.Match glob
// against the base name, e.g. "*.f32") and returns a loader over them in
// sorted name order.
func NewFolder(dir, pattern string) (*Folder, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("folder: %w", err)
	}
	f := &Folder{dir: dir, pattern: pattern}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		ok, err := filepath.Match(pattern, de.Name())
		if err != nil {
			return nil, fmt.Errorf("folder: bad pattern %q: %w", pattern, err)
		}
		if !ok {
			continue
		}
		path := filepath.Join(dir, de.Name())
		meta, err := FileMetadata(path)
		if err != nil {
			return nil, err
		}
		f.entries = append(f.entries, meta)
	}
	sort.Slice(f.entries, func(i, j int) bool { return f.entries[i].Name < f.entries[j].Name })
	return f, nil
}

// FileMetadata derives Metadata from a path without reading the payload
// (raw files) or by reading only the header (pdat files).
func FileMetadata(path string) (Metadata, error) {
	base := filepath.Base(path)
	ext := filepath.Ext(base)
	switch ext {
	case ".f32", ".f64":
		dt := pressio.DTypeFloat32
		if ext == ".f64" {
			dt = pressio.DTypeFloat64
		}
		stem := strings.TrimSuffix(base, ext)
		us := strings.LastIndex(stem, "_")
		if us < 0 {
			return Metadata{}, fmt.Errorf("folder: %s: raw file name needs _D0xD1x... dims suffix", base)
		}
		var dims []int
		for _, part := range strings.Split(stem[us+1:], "x") {
			n, err := strconv.Atoi(part)
			if err != nil || n <= 0 {
				return Metadata{}, fmt.Errorf("folder: %s: bad dims suffix %q", base, stem[us+1:])
			}
			dims = append(dims, n)
		}
		attrs := pressio.Options{}
		attrs.Set("dataset:file", base)
		return Metadata{Name: stem[:us], DType: dt, Dims: dims, Path: path, Attrs: attrs}, nil
	case ".pdat":
		fh, err := os.Open(path)
		if err != nil {
			return Metadata{}, err
		}
		defer fh.Close()
		var head [8]byte
		if _, err := fh.ReadAt(head[:], 0); err != nil {
			return Metadata{}, fmt.Errorf("folder: %s: short header", base)
		}
		dt := pressio.DType(binary.LittleEndian.Uint32(head[:]))
		nd := int(binary.LittleEndian.Uint32(head[4:]))
		dimBuf := make([]byte, 8*nd)
		if _, err := fh.ReadAt(dimBuf, 8); err != nil {
			return Metadata{}, fmt.Errorf("folder: %s: short dims", base)
		}
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = int(binary.LittleEndian.Uint64(dimBuf[8*i:]))
		}
		attrs := pressio.Options{}
		attrs.Set("dataset:file", base)
		return Metadata{Name: strings.TrimSuffix(base, ext), DType: dt, Dims: dims, Path: path, Attrs: attrs}, nil
	}
	return Metadata{}, fmt.Errorf("folder: %s: unsupported extension %q", base, ext)
}

// LoadFile reads one data file, dispatching on its extension; it is the
// io_loader entry point and is also usable standalone.
func LoadFile(meta Metadata) (*pressio.Data, error) {
	raw, err := os.ReadFile(meta.Path)
	if err != nil {
		return nil, err
	}
	switch filepath.Ext(meta.Path) {
	case ".f32", ".f64":
		out := pressio.New(meta.DType, meta.Dims...)
		if len(raw) != out.ByteSize() {
			return nil, fmt.Errorf("folder: %s: %d bytes, metadata says %d", meta.Path, len(raw), out.ByteSize())
		}
		if meta.DType == pressio.DTypeFloat32 {
			dst := out.Float32()
			for i := range dst {
				dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		} else {
			dst := out.Float64()
			for i := range dst {
				dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			}
		}
		return out, nil
	case ".pdat":
		var out pressio.Data
		if err := out.UnmarshalBinary(raw); err != nil {
			return nil, fmt.Errorf("folder: %s: %w", meta.Path, err)
		}
		return &out, nil
	}
	return nil, fmt.Errorf("folder: %s: unsupported extension", meta.Path)
}

// WriteRaw writes data as a raw little-endian file with the naming
// convention NewFolder parses: dir/name_D0xD1xD2.f32 (or .f64). It
// returns the path written.
func WriteRaw(dir, name string, data *pressio.Data) (string, error) {
	ext := ".f32"
	if data.DType() == pressio.DTypeFloat64 {
		ext = ".f64"
	} else if data.DType() != pressio.DTypeFloat32 {
		return "", fmt.Errorf("folder: WriteRaw supports float32/float64, got %v", data.DType())
	}
	parts := make([]string, len(data.Dims()))
	for i, d := range data.Dims() {
		parts[i] = strconv.Itoa(d)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s%s", name, strings.Join(parts, "x"), ext))
	buf := make([]byte, 0, data.ByteSize())
	if data.DType() == pressio.DTypeFloat32 {
		for _, v := range data.Float32() {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	} else {
		for _, v := range data.Float64() {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return path, os.WriteFile(path, buf, 0o644)
}

// Name implements Plugin.
func (f *Folder) Name() string { return "folder" }

// Len implements Plugin.
func (f *Folder) Len() int { return len(f.entries) }

// LoadMetadata implements Plugin.
func (f *Folder) LoadMetadata(i int) (Metadata, error) {
	if err := checkIndex(f, i); err != nil {
		return Metadata{}, err
	}
	return f.entries[i], nil
}

// LoadData implements Plugin.
func (f *Folder) LoadData(i int) (*pressio.Data, error) {
	if err := checkIndex(f, i); err != nil {
		return nil, err
	}
	return LoadFile(f.entries[i])
}

// LoadMetadataAll implements Plugin (already resident: no I/O).
func (f *Folder) LoadMetadataAll() ([]Metadata, error) {
	return append([]Metadata(nil), f.entries...), nil
}

// LoadDataAll implements Plugin.
func (f *Folder) LoadDataAll() ([]*pressio.Data, error) { return loadDataAll(f) }

// SetOptions implements Plugin.
func (f *Folder) SetOptions(pressio.Options) error { return nil }

// Options implements Plugin.
func (f *Folder) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("folder:dir", f.dir)
	o.Set("folder:pattern", f.pattern)
	return o
}
