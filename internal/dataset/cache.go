package dataset

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/pressio"
)

// Cache wraps another Plugin with a bounded in-memory LRU tier and an
// optional on-disk tier (.pdat files in a spill directory) — the
// local_cache stage of the paper's Figure-2 pipeline, which exploits deep
// memory hierarchies (DRAM, then node-local SSD) so that re-reading a
// dataset after a metric invalidation or a restart does not pay the cost
// of the remote filesystem again.
type Cache struct {
	inner    Plugin
	capacity int // max resident payload bytes in memory
	spillDir string

	mu    sync.Mutex
	used  int
	lru   *list.List // of cacheEntry, front = most recent
	items map[int]*list.Element

	// hit statistics for the Figure-2 benchmark
	memHits, diskHits, misses int
}

type cacheEntry struct {
	index int
	data  *pressio.Data
}

// NewCache wraps inner with capacityBytes of in-memory cache. spillDir may
// be empty to disable the disk tier; if set, evicted and loaded entries
// are persisted there and served back without consulting inner.
func NewCache(inner Plugin, capacityBytes int, spillDir string) (*Cache, error) {
	if capacityBytes < 0 {
		return nil, fmt.Errorf("cache: negative capacity")
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{
		inner:    inner,
		capacity: capacityBytes,
		spillDir: spillDir,
		lru:      list.New(),
		items:    make(map[int]*list.Element),
	}, nil
}

// Name implements Plugin.
func (c *Cache) Name() string { return "cache" }

// Len implements Plugin.
func (c *Cache) Len() int { return c.inner.Len() }

// LoadMetadata implements Plugin, delegating to the inner loader
// (metadata is cheap; only payloads are cached).
func (c *Cache) LoadMetadata(i int) (Metadata, error) { return c.inner.LoadMetadata(i) }

// LoadMetadataAll implements Plugin.
func (c *Cache) LoadMetadataAll() ([]Metadata, error) { return c.inner.LoadMetadataAll() }

// LoadData implements Plugin: memory tier, then disk tier, then inner.
func (c *Cache) LoadData(i int) (*pressio.Data, error) {
	c.mu.Lock()
	if el, ok := c.items[i]; ok {
		c.lru.MoveToFront(el)
		d := el.Value.(cacheEntry).data
		c.memHits++
		c.mu.Unlock()
		return d, nil
	}
	c.mu.Unlock()

	if c.spillDir != "" {
		if d, err := c.readSpill(i); err == nil {
			c.mu.Lock()
			c.diskHits++
			c.mu.Unlock()
			c.insert(i, d)
			return d, nil
		}
	}

	d, err := c.inner.LoadData(i)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	if c.spillDir != "" {
		if err := c.writeSpill(i, d); err != nil {
			return nil, err
		}
	}
	c.insert(i, d)
	return d, nil
}

// LoadDataAll implements Plugin.
func (c *Cache) LoadDataAll() ([]*pressio.Data, error) { return loadDataAll(c) }

// Stats returns (memory hits, disk hits, misses).
func (c *Cache) Stats() (memHits, diskHits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memHits, c.diskHits, c.misses
}

func (c *Cache) insert(i int, d *pressio.Data) {
	size := d.ByteSize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[i]; ok {
		c.lru.MoveToFront(el)
		return
	}
	if size > c.capacity {
		return // larger than the whole tier: serve through, don't thrash
	}
	for c.used+size > c.capacity && c.lru.Len() > 0 {
		back := c.lru.Back()
		entry := back.Value.(cacheEntry)
		c.lru.Remove(back)
		delete(c.items, entry.index)
		c.used -= entry.data.ByteSize()
	}
	c.items[i] = c.lru.PushFront(cacheEntry{index: i, data: d})
	c.used += size
}

func (c *Cache) spillPath(i int) string {
	return filepath.Join(c.spillDir, fmt.Sprintf("entry-%06d.pdat", i))
}

func (c *Cache) readSpill(i int) (*pressio.Data, error) {
	raw, err := os.ReadFile(c.spillPath(i))
	if err != nil {
		return nil, err
	}
	var d pressio.Data
	if err := d.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return &d, nil
}

func (c *Cache) writeSpill(i int, d *pressio.Data) error {
	raw, err := d.MarshalBinary()
	if err != nil {
		return err
	}
	tmp := c.spillPath(i) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.spillPath(i)) // atomic publish
}

// SetOptions implements Plugin, forwarding to the inner loader.
func (c *Cache) SetOptions(o pressio.Options) error { return c.inner.SetOptions(o) }

// Options implements Plugin.
func (c *Cache) Options() pressio.Options {
	o := c.inner.Options()
	o.Set("cache:capacity", int64(c.capacity))
	o.Set("cache:spill_dir", c.spillDir)
	return o
}
