//go:build !linux

package dataset

// mapFloat32 falls back to a copying read where mmap is unavailable; the
// digest verification contract is identical, only zero-copy is lost.
func mapFloat32(path string, n int) ([]float32, []byte, bool, error) {
	return readFloat32(path, n)
}

func unmapRaw([]byte) {}
