package dataset

import (
	"fmt"
	"sync"

	"repro/internal/pressio"
)

// TieredPlugin adapts a TieredCache into the Plugin pipeline so the
// Figure-2 stack composes as loader → local_cache → sampler with the
// tiered cache as the local_cache stage: a Sampler (or any other
// wrapper) stacked on top sees fields × steps entries and pays only for
// the payloads it actually loads.
//
// Plugin's LoadData contract has no release step, so the adapter pins
// one handle per loaded entry (re-loading an entry reuses the pin) and
// Close releases them all. Callers must not use returned buffers after
// Close.
type TieredPlugin struct {
	cache  *TieredCache
	fields []string
	steps  int
	dims   []int

	mu      sync.Mutex
	handles map[int]*Handle
}

// NewTieredPlugin exposes fields × steps cells of cache at dims as a
// Plugin, in field-major order (field f, step t ↦ index f*steps+t).
func NewTieredPlugin(cache *TieredCache, fields []string, steps int, dims []int) (*TieredPlugin, error) {
	if len(fields) == 0 || steps <= 0 {
		return nil, fmt.Errorf("dataset: tiered plugin needs fields and steps")
	}
	if len(dims) != 3 {
		return nil, fmt.Errorf("dataset: tiered plugin: want 3 dims, got %v", dims)
	}
	return &TieredPlugin{
		cache:   cache,
		fields:  append([]string(nil), fields...),
		steps:   steps,
		dims:    append([]int(nil), dims...),
		handles: map[int]*Handle{},
	}, nil
}

// Name implements Plugin.
func (p *TieredPlugin) Name() string { return "tiered" }

// Len implements Plugin.
func (p *TieredPlugin) Len() int { return len(p.fields) * p.steps }

func (p *TieredPlugin) cell(i int) (field string, step int) {
	return p.fields[i/p.steps], i % p.steps
}

// LoadMetadata implements Plugin without touching payload bytes.
func (p *TieredPlugin) LoadMetadata(i int) (Metadata, error) {
	if err := checkIndex(p, i); err != nil {
		return Metadata{}, err
	}
	field, step := p.cell(i)
	attrs := pressio.Options{}
	attrs.Set("dataset:field", field)
	attrs.Set("dataset:step", int64(step))
	return Metadata{
		Name:  fmt.Sprintf("%s.t%02d", field, step),
		DType: pressio.DTypeFloat32,
		Dims:  append([]int(nil), p.dims...),
		Attrs: attrs,
	}, nil
}

// LoadData implements Plugin, pinning the cell until Close.
func (p *TieredPlugin) LoadData(i int) (*pressio.Data, error) {
	if err := checkIndex(p, i); err != nil {
		return nil, err
	}
	field, step := p.cell(i)
	p.mu.Lock()
	if h, ok := p.handles[i]; ok {
		p.mu.Unlock()
		return h.Data(), nil
	}
	p.mu.Unlock()
	h, err := p.cache.Acquire(field, step, p.dims)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if prev, ok := p.handles[i]; ok {
		// a concurrent load won; keep its pin
		p.mu.Unlock()
		h.Release()
		return prev.Data(), nil
	}
	p.handles[i] = h
	p.mu.Unlock()
	//lint:ignore pressiovet/poolescape h is pinned in p.handles until Close; the branch above released the duplicate, not this handle
	return h.Data(), nil
}

// LoadMetadataAll implements Plugin.
func (p *TieredPlugin) LoadMetadataAll() ([]Metadata, error) { return loadMetadataAll(p) }

// LoadDataAll implements Plugin.
func (p *TieredPlugin) LoadDataAll() ([]*pressio.Data, error) { return loadDataAll(p) }

// SetOptions implements Plugin.
func (p *TieredPlugin) SetOptions(pressio.Options) error { return nil }

// Options implements Plugin.
func (p *TieredPlugin) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("tiered:fields", append([]string(nil), p.fields...))
	o.Set("tiered:steps", int64(p.steps))
	return o
}

// Close releases every pinned handle. The plugin is reusable after
// Close; previously returned buffers are not.
func (p *TieredPlugin) Close() {
	p.mu.Lock()
	handles := p.handles
	p.handles = map[int]*Handle{}
	p.mu.Unlock()
	for _, h := range handles {
		h.Release()
	}
}
