// Package dataset implements the libpressio-dataset abstraction of the
// paper (§4.1): stackable dataset plugins with the four primary methods
// load_metadata, load_data, load_metadata_all, and load_data_all, plus the
// concrete loaders of the Figure-2 pipeline — a folder walker, an
// extension-dispatching file loader, a local cache tier, and a sampler
// that can sit at the end of the pipeline because metadata flows through
// without touching payload bytes.
package dataset

import (
	"fmt"

	"repro/internal/pressio"
)

// Metadata describes one dataset entry without loading its payload: the
// shape/size/type information the paper notes is enough for job placement.
type Metadata struct {
	// Name identifies the entry, e.g. "CLOUD.t07".
	Name string
	// DType is the element type of the payload.
	DType pressio.DType
	// Dims is the payload shape in C order.
	Dims []int
	// Path is the backing file, if any (empty for synthetic sources).
	Path string
	// Attrs carries loader-specific annotations (field names, timestep
	// indices, provenance) used by experiment drivers.
	Attrs pressio.Options
}

// Elements returns the number of elements described by the metadata.
func (m Metadata) Elements() int {
	n := 1
	for _, d := range m.Dims {
		n *= d
	}
	if len(m.Dims) == 0 {
		return 0
	}
	return n
}

// ByteSize returns the payload size in bytes described by the metadata.
func (m Metadata) ByteSize() int { return m.Elements() * m.DType.Size() }

// Plugin is the dataset_plugin interface. Implementations may be stacked:
// a wrapper consumes another Plugin and transforms its entries.
type Plugin interface {
	// Name returns the plugin kind, e.g. "folder", "cache", "sample".
	Name() string

	// Len returns the number of entries.
	Len() int

	// LoadMetadata returns the metadata of entry i without loading data.
	LoadMetadata(i int) (Metadata, error)

	// LoadData loads the payload of entry i.
	LoadData(i int) (*pressio.Data, error)

	// LoadMetadataAll returns all metadata; loaders can batch expensive
	// per-entry operations here.
	LoadMetadataAll() ([]Metadata, error)

	// LoadDataAll loads every payload. Prefer LoadData in loops when
	// memory is constrained.
	LoadDataAll() ([]*pressio.Data, error)

	// SetOptions applies configuration; unknown keys are ignored.
	SetOptions(pressio.Options) error

	// Options returns the current configuration.
	Options() pressio.Options
}

// base provides LoadMetadataAll/LoadDataAll in terms of the per-entry
// methods for plugins without a cheaper batch path.
func loadMetadataAll(p Plugin) ([]Metadata, error) {
	out := make([]Metadata, p.Len())
	for i := range out {
		m, err := p.LoadMetadata(i)
		if err != nil {
			return nil, fmt.Errorf("%s: entry %d: %w", p.Name(), i, err)
		}
		out[i] = m
	}
	return out, nil
}

func loadDataAll(p Plugin) ([]*pressio.Data, error) {
	out := make([]*pressio.Data, p.Len())
	for i := range out {
		d, err := p.LoadData(i)
		if err != nil {
			return nil, fmt.Errorf("%s: entry %d: %w", p.Name(), i, err)
		}
		out[i] = d
	}
	return out, nil
}

// checkIndex validates an entry index against a plugin.
func checkIndex(p Plugin, i int) error {
	if i < 0 || i >= p.Len() {
		return fmt.Errorf("%s: index %d out of range [0, %d)", p.Name(), i, p.Len())
	}
	return nil
}
