//go:build linux

package dataset

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// hostLittleEndian reports the native byte order once at init; raw .f32
// files are little-endian, so only a little-endian host may reinterpret
// the mapping in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mapFloat32 maps a raw little-endian float32 file of exactly n elements
// read-only and reinterprets the mapping in place — the zero-copy reload
// path of the tiered cache. raw is the file's backing bytes (hash them,
// then unmapRaw when the entry dies); isMapped reports whether raw is an
// mmap region that unmapRaw must return. The mapping is PROT_READ, so a
// stray write through the reloaded buffer faults instead of silently
// diverging from the spill file.
func mapFloat32(path string, n int) (fl []float32, raw []byte, isMapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	if st.Size() != int64(4*n) {
		return nil, nil, false, fmt.Errorf("dataset: %s is %d bytes, want %d", path, st.Size(), 4*n)
	}
	if !hostLittleEndian || n == 0 {
		return readFloat32(path, n)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, false, fmt.Errorf("dataset: mmap %s: %w", path, err)
	}
	fl = unsafe.Slice((*float32)(unsafe.Pointer(&m[0])), n)
	return fl, m, true, nil
}

// unmapRaw returns a region obtained from mapFloat32 with isMapped=true.
func unmapRaw(raw []byte) { syscall.Munmap(raw) }
